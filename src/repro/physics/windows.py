"""Per-level active bin windows: accuracy-budgeted pruning of the RRC grid.

Each level's Eq. (1) integrand is identically zero below its recombination
edge ``I_l`` and decays as ``exp(-(E - I_l)/kT)`` above it, so out of the
``n_levels x n_bins`` bin integrals a kernel launch nominally covers, only
the bins inside a per-level window

    [first_bin(I_l), cutoff_bin(I_l + tau)]

can contribute more than a requested relative tail tolerance.  The cutoff
distance ``tau`` comes from the closed-form tail mass of the Kramers+Milne
collapsed integrand (:func:`repro.physics.rrc.analytic_bin_integral`):
the mass beyond ``E`` is exactly ``C * kT * exp(-(E - I)/kT)`` for
``gaunt=False``, and bounded by a constant multiple of it for
``gaunt=True`` because the Gaunt correction is bounded on the grid's
``x = E/I`` range.  Choosing ``tau`` so that the dropped tail is at most
``tail_tol`` times the level's total emission above its edge gives every
batch kernel a license to skip the inactive bins.

:class:`LevelWindows` is consumed by the pruned kernels in
:mod:`repro.quadrature.batch` and :mod:`repro.physics.apec`, and by the
service cost model (:func:`repro.service.requests.compile_tasks`), which
prices tasks by *active* integral counts so the simulated device, the
scheduler's load counters, and the autotuner all see the cheaper tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physics.rrc import gaunt_factor
from repro.physics.spectrum import EnergyGrid

__all__ = [
    "GAUNT_SUP",
    "LevelWindows",
    "gaunt_range_bounds",
    "tail_cutoff_kev",
    "level_windows",
]

#: Safe upper bound on :func:`repro.physics.rrc.gaunt_factor` over
#: ``x >= 1`` (the true supremum is ~1.02489 at x ~ 4.9; the factor is
#: unimodal — it rises from g(1) = 1 to the peak, then decays like
#: ``x**(-1/3)``).
GAUNT_SUP: float = 1.03


def gaunt_range_bounds(x_max: float) -> tuple[float, float]:
    """(inf, sup) of :func:`gaunt_factor` over ``x in [1, x_max]``.

    The factor is unimodal on ``[1, inf)``, so its infimum over an
    interval starting at 1 is attained at an endpoint; the supremum is
    the global one (:data:`GAUNT_SUP`) once the interval covers the peak.
    """
    if x_max < 1.0:
        raise ValueError(f"x_max must be >= 1, got {x_max}")
    g_end = float(gaunt_factor(np.array(x_max)))
    return min(1.0, g_end), GAUNT_SUP


def tail_cutoff_kev(
    kt_kev: float,
    tail_tol: float,
    gaunt: bool = True,
    x_max: float = 1.0,
) -> float:
    """Cutoff distance ``tau`` above a level's edge for a tail tolerance.

    Dropping everything beyond ``I + tau`` discards at most ``tail_tol``
    of the level's total emission above its edge:

    - ``gaunt=False``: tail mass beyond ``I + tau`` is exactly
      ``C kT exp(-tau/kT)`` while the total is ``C kT``, so
      ``tau = kT ln(1/tail_tol)``;
    - ``gaunt=True``: the dropped tail gains at most a factor
      :data:`GAUNT_SUP` and the kept mass shrinks by at most the
      infimum of the Gaunt factor over the grid's ``x = E/I`` range
      (``x_max`` = highest grid energy over smallest edge), so the
      budget widens to ``tau = kT ln(sup/(inf * tail_tol))``.

    ``tail_tol = 0`` disables the cutoff (``tau = inf``).
    """
    if kt_kev <= 0.0:
        raise ValueError("kT must be positive")
    if tail_tol < 0.0:
        raise ValueError("tail tolerance must be non-negative")
    if tail_tol == 0.0:
        return float("inf")
    if gaunt:
        g_inf, g_sup = gaunt_range_bounds(max(1.0, x_max))
        safety = g_sup / g_inf
    else:
        safety = 1.0
    return kt_kev * float(np.log(safety / tail_tol))


@dataclass(frozen=True)
class LevelWindows:
    """Active bin windows of one ion's levels on one energy grid.

    Level ``l`` touches exactly the bins ``first[l] <= b < cutoff[l]``;
    an empty window (``first[l] == cutoff[l]``) means the whole level is
    skippable (its edge sits above the grid, or the grid starts beyond
    its accuracy-budgeted tail).

    Attributes
    ----------
    first, cutoff:
        Per-level half-open bin ranges (int64 arrays).
    tau_kev:
        The tail-cutoff distance used (``inf`` when ``tail_tol = 0``).
    n_bins:
        Bins of the underlying grid.
    dropped_mass_per_c:
        Per-level upper bound on the emission mass discarded beyond the
        cutoff, in units of the level's flat constant ``C_l`` — multiply
        by ``C_l`` (see :func:`repro.physics.rrc._flat_constant`) for an
        absolute bound.  Zero where the cutoff lies beyond the grid.
    """

    first: np.ndarray
    cutoff: np.ndarray
    tau_kev: float
    n_bins: int
    dropped_mass_per_c: np.ndarray

    @property
    def n_levels(self) -> int:
        return self.first.size

    @property
    def counts(self) -> np.ndarray:
        """Active bins per level."""
        return self.cutoff - self.first

    @property
    def n_active(self) -> int:
        """Total active (level, bin) pairs — the pruned integral count."""
        return int(self.counts.sum())

    @property
    def n_total(self) -> int:
        """Unpruned (level, bin) pairs of the same launch."""
        return self.n_levels * self.n_bins

    def dropped_mass_bound(self, c_l: np.ndarray) -> np.ndarray:
        """Absolute per-level dropped-mass bounds for flat constants ``c_l``."""
        c_l = np.asarray(c_l, dtype=np.float64)
        if c_l.shape != self.first.shape:
            raise ValueError("c_l must have one entry per level")
        return c_l * self.dropped_mass_per_c


def level_windows(
    energies_kev: np.ndarray,
    grid: EnergyGrid,
    kt_kev: float,
    tail_tol: float,
    gaunt: bool = True,
) -> LevelWindows:
    """Compute the active window of every level on ``grid``.

    Parameters
    ----------
    energies_kev:
        Per-level binding energies ``I_l`` (the recombination edges).
    kt_kev:
        Plasma thermal energy (sets the tail decay scale).
    tail_tol:
        Relative tail tolerance; ``0`` keeps every bin above each edge
        (no cutoff) — the windows then only encode the exact-zero region
        below the edges.
    gaunt:
        Whether the integrand carries the Gaunt correction; widens the
        cutoff by the rigorous constant-factor bound.
    """
    energies = np.asarray(energies_kev, dtype=np.float64)
    if energies.ndim != 1:
        raise ValueError("energies must be a 1-D array")
    n_bins = grid.n_bins
    if energies.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return LevelWindows(
            first=empty,
            cutoff=empty.copy(),
            tau_kev=float("inf"),
            n_bins=n_bins,
            dropped_mass_per_c=np.zeros(0),
        )
    if np.any(energies <= 0.0):
        raise ValueError("binding energies must be positive")
    x_max = float(grid.upper[-1] / energies.min())
    tau = tail_cutoff_kev(kt_kev, tail_tol, gaunt=gaunt, x_max=max(1.0, x_max))

    # First bin whose upper edge clears the recombination edge ...
    first = np.searchsorted(grid.upper, energies, side="right")
    # ... and first bin lying entirely beyond the budgeted tail.
    if np.isinf(tau):
        cutoff = np.full(energies.shape, n_bins, dtype=np.int64)
    else:
        cutoff = np.searchsorted(grid.lower, energies + tau, side="left")
    first = np.minimum(first, n_bins).astype(np.int64)
    cutoff = np.maximum(np.minimum(cutoff, n_bins).astype(np.int64), first)

    # Closed-form bound on what the cutoff discards: the full analytic
    # tail beyond the first dropped bin's lower edge, times the Gaunt
    # supremum when the integrand carries the correction.
    dropped = np.zeros(energies.shape, dtype=np.float64)
    cut_inside = cutoff < n_bins
    if cut_inside.any():
        e_cut = grid.lower[cutoff[cut_inside]]
        sup = GAUNT_SUP if gaunt else 1.0
        dropped[cut_inside] = (
            sup * kt_kev * np.exp(-(e_cut - energies[cut_inside]) / kt_kev)
        )
    return LevelWindows(
        first=first,
        cutoff=cutoff,
        tau_kev=tau,
        n_bins=n_bins,
        dropped_mass_per_c=dropped,
    )
