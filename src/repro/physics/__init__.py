"""RRC spectral physics — the APEC role of the reproduction.

- :mod:`repro.physics.rrc` — Eq. (1): the RRC integrand dP/dE and the
  per-level emissivity machinery.
- :mod:`repro.physics.ionbalance` — collisional ionization equilibrium
  (CIE) ion fractions that set n_(Z, j+1).
- :mod:`repro.physics.spectrum` — energy-bin grids and the Spectrum
  container (Eq. 2 output).
- :mod:`repro.physics.apec` — the serial APEC-style calculator: the three
  nested loops of Fig. 1, plus the batched per-ion emissivity that GPU
  tasks execute.
- :mod:`repro.physics.windows` — per-level active bin windows with the
  accuracy-budgeted tail cutoff that prunes the batch kernels.
"""

from repro.physics.rrc import (
    RRCLevelParams,
    rrc_integrand,
    make_level_integrand,
    analytic_bin_integral,
    rrc_prefactor,
)
from repro.physics.spectrum import EnergyGrid, Spectrum
from repro.physics.ionbalance import cie_fractions, ion_density
from repro.physics.apec import (
    GridPoint,
    SerialAPEC,
    ion_emissivity_batched,
    ion_emissivity_scalar,
)
from repro.physics.windows import LevelWindows, level_windows, tail_cutoff_kev

__all__ = [
    "LevelWindows",
    "level_windows",
    "tail_cutoff_kev",
    "RRCLevelParams",
    "rrc_integrand",
    "make_level_integrand",
    "analytic_bin_integral",
    "rrc_prefactor",
    "EnergyGrid",
    "Spectrum",
    "cie_fractions",
    "ion_density",
    "GridPoint",
    "SerialAPEC",
    "ion_emissivity_batched",
    "ion_emissivity_scalar",
]
