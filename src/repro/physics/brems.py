"""Thermal bremsstrahlung (free-free) continuum.

The third emission component of a hot optically-thin plasma.  Standard
form for the spectral emissivity at photon energy E:

    dP/dE  ~  n_e * sum_i n_i Z_i^2 * g_ff(E, T) * exp(-E / kT) / sqrt(T)

with the free-free Gaunt factor approximated by the Born-limit
logarithmic form (Rybicki & Lightman-style), clipped to stay >= ~0.2 at
high E/kT.  The sum over ions uses the same CIE fractions as the RRC and
line components, so all three share one consistent ionization state.

Bin integration reuses :func:`repro.quadrature.batch.batch_simpson` —
bremsstrahlung is smooth, so Simpson-64 per bin is exact to rounding.
"""

from __future__ import annotations

import numpy as np

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.elements import ELEMENTS, MAX_Z
from repro.constants import K_B_KEV
from repro.physics.apec import GridPoint
from repro.physics.ionbalance import cie_fractions
from repro.physics.spectrum import EnergyGrid
from repro.quadrature.batch import batch_simpson

__all__ = ["gaunt_ff", "brems_spectral_density", "brems_emissivity"]


def gaunt_ff(e_kev: np.ndarray, kt_kev: float) -> np.ndarray:
    """Approximate free-free Gaunt factor g_ff(E, T), order unity.

    Logarithmic in kT/E for soft photons; clipped below at 0.2 so the
    hard tail stays positive (the Born approximation's validity edge).
    """
    e = np.asarray(e_kev, dtype=np.float64)
    if kt_kev <= 0.0:
        raise ValueError("kT must be positive")
    with np.errstate(divide="ignore"):
        g = np.sqrt(3.0) / np.pi * np.log(
            np.maximum(4.0 * kt_kev / np.maximum(e, 1e-300), 1.0 + 1e-12)
        )
    return np.maximum(g, 0.2)


def _zeff_sq_density(
    point: GridPoint, z_max: int, abundances: AbundanceSet = SOLAR
) -> float:
    """sum over elements/charges of n_i * charge^2, in cm^-3."""
    total = 0.0
    n_h = 0.83 * point.ne_cm3
    for z in range(1, z_max + 1):
        fractions = cie_fractions(z, point.temperature_k)
        abundance = abundances.of(z)
        charges_sq = np.arange(z + 1, dtype=np.float64) ** 2
        total += n_h * abundance * float(charges_sq @ fractions)
    return total


def brems_spectral_density(
    e_kev: np.ndarray,
    point: GridPoint,
    z_max: int = MAX_Z,
    abundances: AbundanceSet = SOLAR,
) -> np.ndarray:
    """dP/dE of free-free emission at photon energies ``e_kev``.

    Units follow the package convention (consistent but arbitrary overall
    scale — every experiment uses normalized or relative quantities).
    """
    e = np.asarray(e_kev, dtype=np.float64)
    kt = point.kt_kev
    z2n = _zeff_sq_density(point, z_max, abundances)
    # Scale constant folding the dimensional prefactors; chosen so the
    # free-free continuum is comparable to (but below) the RRC at keV
    # energies for T ~ 1e7 K, as in real hot plasmas.
    norm = 1.0e-4
    with np.errstate(over="ignore", under="ignore"):
        return (
            norm
            * point.ne_cm3
            * z2n
            * gaunt_ff(e, kt)
            * np.exp(-e / kt)
            / np.sqrt(point.temperature_k)
        )


def brems_emissivity(
    grid: EnergyGrid,
    point: GridPoint,
    z_max: int = MAX_Z,
    abundances: AbundanceSet = SOLAR,
) -> np.ndarray:
    """Per-bin integrated free-free emission (Eq. 2's binning)."""
    f = lambda e: brems_spectral_density(e, point, z_max=z_max, abundances=abundances)
    return batch_simpson(f, grid.lower, grid.upper, pieces=64)
