"""Compiled spectrum plans and the cross-request plan cache.

``SerialAPEC`` re-derives the same temperature-independent structure —
level parameters, flat Kramers+Milne constants, active-window searches —
for every ion on every grid point of every request.  A
:class:`SpectrumPlan` compiles that structure *once* per
``(database, grid, ion set, method, rule knobs, tail_tol, gaunt)``
combination into flat structure-of-arrays form:

- ``energy_kev`` / ``c_base`` — per-level binding energies and the
  temperature-independent part of the flat constant ``C_l``, concatenated
  over all ions (one global "row" index per level);
- ``ion_index`` / ``offsets`` — the level-to-ion indirection used to
  broadcast per-ion prefactors and to split per-ion statistics back out;
- per-ion ``e_min`` — feeds the vectorized per-ion Gaunt tail budget so
  the plan's windows reproduce :func:`repro.physics.windows.level_windows`
  ion by ion, bit for bit.

Executing a plan at a grid point binds the temperature-dependent pieces
(windows for ``kT``, per-ion prefactors) and issues one megabatch launch
(:mod:`repro.quadrature.megabatch`) over the fused windows of every ion —
a handful of vectorized passes instead of one launch per ion.

:class:`PlanCache` content-addresses compiled plans so repeated grid
points, parameter sweeps, and cache-miss service requests reuse them; hit,
miss, compilation and eviction counters are exported through the
Prometheus registry (:func:`repro.obs.prom.service_registry`) and, when a
tracer is bound, as instant events on a ``plan-cache`` track.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.database import AtomicDatabase
from repro.atomic.ions import Ion
from repro.constants import K_B_KEV, ME_C2_KEV, SIGMA_KRAMERS_CM2, maxwellian_norm
from repro.physics.ionbalance import ion_density
from repro.physics.rrc import gaunt_factor
from repro.physics.spectrum import EnergyGrid
from repro.physics.windows import GAUNT_SUP
from repro.quadrature.batch import (
    _chunks,
    _flatten_windows,
    simpson_weights,
    unit_fractions,
)
from repro.quadrature.megabatch import (
    MegabatchResult,
    megabatch_gauss_windows,
    megabatch_romberg_windows,
    megabatch_simpson_windows,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer, Track

__all__ = [
    "PLAN_CACHE",
    "PlanCache",
    "PlanCacheStats",
    "PlanKey",
    "SpectrumPlan",
    "db_fingerprint",
    "grid_fingerprint",
    "ions_fingerprint",
]

PLAN_METHODS = ("simpson", "romberg", "gauss")

#: Scratch elements per cache block of the factorized pair loop — sized
#: so the per-block gather + rational buffers stay L2-resident.
_PAIR_BLOCK_ELEMENTS = 1 << 14


def db_fingerprint(db: AtomicDatabase) -> str:
    """Content address of a synthetic database.

    The database is fully determined by its :class:`AtomicConfig`
    (construction is deterministic), so hashing the size knobs suffices.
    """
    text = f"atomicdb|n_max={db.config.n_max}|z_max={db.config.z_max}"
    return hashlib.sha1(text.encode()).hexdigest()


def grid_fingerprint(grid: EnergyGrid) -> str:
    """Content address of an energy grid (exact edge bytes)."""
    return hashlib.sha1(grid.edges.tobytes()).hexdigest()


def ions_fingerprint(ions: Iterable[Ion]) -> str:
    """Content address of an ordered ion subset."""
    text = "|".join(f"{ion.z},{ion.charge}" for ion in ions)
    return hashlib.sha1(text.encode()).hexdigest()


@dataclass(frozen=True)
class PlanKey:
    """Content address of one compiled plan.

    Every field that changes the compiled structure or the launch math is
    part of the key; anything temperature-dependent is deliberately *not*
    (plans are reused across grid points and bound at execution time).
    """

    db: str
    grid: str
    ions: str
    method: str
    pieces: int
    k: int
    gl_points: int
    tail_tol: float
    gaunt: bool


class SpectrumPlan:
    """Temperature-independent compiled form of one fused RRC launch.

    Built by :meth:`PlanCache.get` (or :func:`compile_plan`); execute with
    :meth:`execute` at any grid point.  Immutable after construction apart
    from the small per-``kT`` window memo.
    """

    #: Window sets memoized per plan (parameter sweeps revisit few kTs).
    _WINDOW_MEMO_MAX = 64

    def __init__(
        self,
        key: PlanKey,
        db: AtomicDatabase,
        grid: EnergyGrid,
        ions: tuple[Ion, ...],
    ) -> None:
        self.key = key
        self.grid = grid
        self.ions = ions
        energies: list[np.ndarray] = []
        c_base: list[np.ndarray] = []
        offsets = np.zeros(len(ions) + 1, dtype=np.int64)
        e_min = np.full(len(ions), np.inf)
        for i, ion in enumerate(ions):
            ls = db.levels(ion)
            offsets[i + 1] = offsets[i] + len(ls)
            if len(ls) == 0:
                continue
            energies.append(ls.energy_kev)
            # Temperature-independent factor of the Kramers+Milne flat
            # constant: C_l = prefactor(T) * c_base_l.
            c_base.append(
                (ls.degeneracy / 2.0)
                * SIGMA_KRAMERS_CM2
                * ls.n_arr
                * ls.energy_kev**3
                / (2.0 * ME_C2_KEV * ls.c_eff**2)
            )
            e_min[i] = float(ls.energy_kev.min())
        if energies:
            self.energy_kev = np.concatenate(energies)
            self.c_base = np.concatenate(c_base)
        else:
            self.energy_kev = np.zeros(0)
            self.c_base = np.zeros(0)
        self.offsets = offsets
        self.e_min_ion = e_min
        self.ion_index = np.repeat(
            np.arange(len(ions), dtype=np.int64), np.diff(offsets)
        )
        for arr in (self.energy_kev, self.c_base, self.offsets,
                    self.e_min_ion, self.ion_index):
            arr.setflags(write=False)
        self._window_memo: OrderedDict[float, tuple[np.ndarray, np.ndarray]]
        self._window_memo = OrderedDict()
        self._memo_lock = threading.Lock()
        self._simpson_shared_arrays: tuple[np.ndarray, ...] | None = None

    # ------------------------------------------------------------------
    @property
    def n_levels(self) -> int:
        return int(self.energy_kev.size)

    def windows(self, kt_kev: float) -> tuple[np.ndarray, np.ndarray]:
        """Fused per-level ``(first, cutoff)`` windows at one temperature.

        Vectorized over all ions at once, but with the tail budget
        computed *per ion* (the Gaunt safety factor depends on each ion's
        ``x_max = E_grid_max / min(I_l)``), so the result matches running
        :func:`repro.physics.windows.level_windows` ion by ion exactly —
        including the task prices the service cost model derives from it.
        """
        if kt_kev <= 0.0:
            raise ValueError("kT must be positive")
        kt = float(kt_kev)
        with self._memo_lock:
            cached = self._window_memo.get(kt)
            if cached is not None:
                self._window_memo.move_to_end(kt)
                return cached
        first, cutoff = self._compute_windows(kt)
        first.setflags(write=False)
        cutoff.setflags(write=False)
        with self._memo_lock:
            self._window_memo[kt] = (first, cutoff)
            self._window_memo.move_to_end(kt)
            while len(self._window_memo) > self._WINDOW_MEMO_MAX:
                self._window_memo.popitem(last=False)
        return first, cutoff

    def _compute_windows(self, kt: float) -> tuple[np.ndarray, np.ndarray]:
        grid = self.grid
        n_bins = grid.n_bins
        energies = self.energy_kev
        if energies.size == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        first = np.searchsorted(grid.upper, energies, side="right")
        tail_tol = self.key.tail_tol
        if tail_tol == 0.0:
            cutoff = np.full(energies.shape, n_bins, dtype=np.int64)
        else:
            if self.key.gaunt:
                # Same double-precision expression sequence as
                # tail_cutoff_kev, vectorized over ions: x_max -> g_inf
                # -> safety -> tau.
                with np.errstate(divide="ignore"):
                    x_max = np.maximum(1.0, grid.upper[-1] / self.e_min_ion)
                g_inf = np.minimum(1.0, gaunt_factor(x_max))
                safety = GAUNT_SUP / g_inf
            else:
                safety = np.ones(len(self.ions))
            tau_ion = kt * np.log(safety / tail_tol)
            cutoff = np.searchsorted(
                grid.lower, energies + tau_ion[self.ion_index], side="left"
            )
        first = np.minimum(first, n_bins).astype(np.int64)
        cutoff = np.maximum(np.minimum(cutoff, n_bins).astype(np.int64), first)
        return first, cutoff

    def per_ion_active(self, kt_kev: float) -> np.ndarray:
        """Active (level, bin) pairs per ion — the pruned task prices."""
        first, cutoff = self.windows(kt_kev)
        counts = cutoff - first
        csum = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=csum[1:])
        return csum[self.offsets[1:]] - csum[self.offsets[:-1]]

    def flat_constants(
        self, point: "GridPointLike", abundances: AbundanceSet = SOLAR
    ) -> np.ndarray:
        """Per-level flat constants C_l at one grid point (all ions)."""
        kt = point.kt_kev
        ne = point.ne_cm3
        norm = maxwellian_norm(kt / K_B_KEV)
        pref = np.empty(len(self.ions))
        for i, ion in enumerate(self.ions):
            n_ion = ion_density(
                ion, point.temperature_k, ne, abundances=abundances
            )
            pref[i] = ne * n_ion * 4.0 * norm / kt
        return pref[self.ion_index] * self.c_base

    def _simpson_shared(self) -> tuple[np.ndarray, ...]:
        """Temperature-independent Simpson node arrays, built once per plan.

        Every quantity here depends only on the grid and the rule knobs:
        the full-grid node matrix ``x_all``, its ``cbrt``, the per-bin
        step ``h_all = width / pieces`` and its outer product with the
        Simpson weights, and the per-level ``1 / cbrt(I_l)``.  The
        factorized executor *slices* these instead of recomputing them —
        elementwise ufuncs make the slice bit-identical to computing on
        the slice — so repeated and batched executions amortize every
        transcendental except ``exp(-E/kT)`` itself.
        """
        shared = self._simpson_shared_arrays
        if shared is None:
            pieces = self.key.pieces
            w = simpson_weights(pieces)
            frac = unit_fractions(pieces + 1)
            grid = self.grid
            x_all = grid.lower[:, None] + grid.widths[:, None] * frac[None, :]
            cbrt_all = np.cbrt(x_all)
            h_all = grid.widths / pieces
            hw_all = h_all[:, None] * w[None, :]
            with np.errstate(divide="ignore"):
                inv_cbrt = 1.0 / np.cbrt(self.energy_kev)
            shared = (w, frac, x_all, cbrt_all, h_all, hw_all, inv_cbrt)
            for arr in shared:
                arr.setflags(write=False)
            self._simpson_shared_arrays = shared
        return shared

    def _factorized_safe(self, kt: float) -> bool:
        """Whether the shared-abscissa rescaling holds at this ``kT``.

        Mirrors the guard inside :meth:`_execute_simpson_factorized`:
        ``exp(I_l/kT) * exp(-E/kT)`` must neither overflow nor cost more
        relative precision than the tail budget tolerates.
        """
        from repro.physics.apec import _SAFE_RESCALE_ARG

        tail_tol = self.key.tail_tol
        if tail_tol <= 0.0 or self.n_levels == 0:
            return False
        arg = (float(self.energy_kev.max()) + float(self.grid.upper[-1])) / kt
        return (
            arg < _SAFE_RESCALE_ARG
            and arg * np.finfo(np.float64).eps < 0.05 * tail_tol
        )

    def execute(
        self, point: "GridPointLike", abundances: AbundanceSet = SOLAR
    ) -> MegabatchResult:
        """One fused launch: the grid point's full RRC spectrum + stats."""
        kt = point.kt_kev
        first, cutoff = self.windows(kt)
        if self.n_levels == 0:
            return MegabatchResult(np.zeros(self.grid.n_bins), 0, 0, 0, 0)
        c_l = self.flat_constants(point, abundances)
        f = _flat_window_integrand(self.energy_kev, c_l, kt, self.key.gaunt)
        if self.key.method == "simpson":
            fast = self._execute_simpson_factorized(first, cutoff, c_l, kt)
            if fast is not None:
                return fast
            return megabatch_simpson_windows(
                f, self.grid.edges, first, cutoff,
                lower_clip=self.energy_kev, pieces=self.key.pieces,
            )
        if self.key.method == "romberg":
            return megabatch_romberg_windows(
                f, self.grid.edges, first, cutoff,
                lower_clip=self.energy_kev, k=self.key.k,
            )
        return megabatch_gauss_windows(
            f, self.grid.edges, first, cutoff,
            lower_clip=self.energy_kev, n=self.key.gl_points,
        )

    def execute_many(
        self,
        points: Iterable["GridPointLike"],
        abundances: AbundanceSet = SOLAR,
    ) -> list[MegabatchResult]:
        """Execute one plan at N grid points with shared launch setup.

        The temperature axis of the factorized Simpson path is batched:
        ``exp(-x/kT)`` for every temperature is issued as *one* stacked
        ufunc call over the plan's shared node matrix, and the node
        ``cbrt``/weight products are reused from the per-plan memo — so a
        group of N compatible requests pays the transcendental setup once
        instead of N times.  Each element of the result is bit-identical
        to ``execute(points[i])``: the stacked exp is elementwise, so its
        i-th row equals the per-temperature exp exactly, and every other
        array on the path is shared (not recomputed) between the two
        entry points.  Non-Simpson methods and temperatures rejected by
        the rescaling guard fall back to a per-point :meth:`execute`
        loop.
        """
        points = list(points)
        if not points:
            return []
        results: list[MegabatchResult | None] = [None] * len(points)
        batch: list[tuple[int, float]] = []
        if self.key.method == "simpson":
            for i, point in enumerate(points):
                kt = float(point.kt_kev)
                if self._factorized_safe(kt):
                    batch.append((i, kt))
        if batch:
            x_all = self._simpson_shared()[2]
            kts = np.array([kt for _, kt in batch])
            with np.errstate(under="ignore"):
                exp_stack = np.exp(-x_all[None, :, :] / kts[:, None, None])
            for j, (i, kt) in enumerate(batch):
                first, cutoff = self.windows(kt)
                c_l = self.flat_constants(points[i], abundances)
                results[i] = self._execute_simpson_factorized(
                    first, cutoff, c_l, kt, exp_full=exp_stack[j]
                )
        for i, point in enumerate(points):
            if results[i] is None:
                results[i] = self.execute(point, abundances)
        return results

    def _execute_simpson_factorized(
        self,
        first: np.ndarray,
        cutoff: np.ndarray,
        c_l: np.ndarray,
        kt: float,
        exp_full: np.ndarray | None = None,
    ) -> MegabatchResult | None:
        """Shared-abscissa Simpson megabatch (all ions fused, one exp).

        The megabatch analogue of
        :func:`repro.physics.apec._fused_simpson_windows`: every full bin
        (not split by a recombination edge) uses the same Simpson nodes
        for *every level of every ion*, so ``exp(-E/kT)`` and the Gaunt
        factor's ``cbrt`` are computed once per launch over the bin union
        and each (level, bin) pair only rescales by
        ``C_l * exp(I_l/kT)`` plus the cheap Gaunt rational.  Edge bins
        keep per-level nodes.  Returns ``None`` when the rescaling would
        overflow or cost more precision than the tail budget allows — the
        caller then takes the generic unfactored megabatch.

        ``exp_full``, when given, is the precomputed ``exp(-x/kT)`` over
        the *whole* grid's node matrix (one row of the stacked exp that
        :meth:`execute_many` issues for N temperatures at once); the bin
        union is sliced out of it.
        """
        if not self._factorized_safe(kt):
            return None
        energies = self.energy_kev
        grid = self.grid

        n_bins = grid.n_bins
        out = np.zeros(n_bins, dtype=np.float64)
        active = first < cutoff
        if not active.any():
            return MegabatchResult(out, 0, 0, 0, 0)
        pieces = self.key.pieces
        w, frac, x_all, cbrt_all, h_all, hw_all, inv_cbrt = (
            self._simpson_shared()
        )
        n_passes = 0

        # --- edge pairs: the one bin per level split by its
        # recombination edge needs level-specific abscissae (from I_l up).
        has_edge = active & (
            grid.lower[np.minimum(first, n_bins - 1)] < energies
        )
        n_edge = int(np.count_nonzero(has_edge))
        if n_edge:
            b_e = first[has_edge]
            i_e = energies[has_edge][:, None]
            width_e = grid.upper[b_e][:, None] - i_e
            x = i_e + width_e * frac[None, :]
            with np.errstate(over="ignore", under="ignore"):
                y = np.exp(-(x - i_e) / kt)
                if self.key.gaunt:
                    y = y * gaunt_factor(x / i_e)
            vals = (width_e[:, 0] / pieces) * (y @ w) * c_l[has_edge]
            # Levels of different ions can share one edge bin ->
            # unbuffered scatter-add.
            np.add.at(out, b_e, vals)
            n_passes += 1

        # --- full bins: shared abscissae across the union of windows.
        start = np.minimum(np.where(has_edge, first + 1, first), cutoff)
        full = start < cutoff
        if not full.any():
            return MegabatchResult(out, n_passes, n_edge, 0, 0)
        bmin = int(start[full].min())
        bmax = int(cutoff[full].max())
        if exp_full is not None:
            e_sh = exp_full[bmin:bmax]
        else:
            with np.errstate(under="ignore"):
                e_sh = np.exp(-x_all[bmin:bmax] / kt)
        h_u = h_all[bmin:bmax]
        scale = c_l * np.exp(np.where(full, energies, 0.0) / kt)
        n_passes += 1

        if not self.key.gaunt:
            # The integrand factorizes completely: each level contributes
            # scale_l * base[b] on its window, so accumulate the per-bin
            # sum of scales with a difference array (O(levels + bins)).
            base = h_u * (e_sh @ w)
            diff = np.zeros(bmax - bmin + 1)
            np.add.at(diff, start[full] - bmin, scale[full])
            np.add.at(diff, cutoff[full] - bmin, -scale[full])
            out[bmin:bmax] += np.cumsum(diff[:-1]) * base
            n_full = int((cutoff[full] - start[full]).sum())
            return MegabatchResult(out, n_passes, n_edge + n_full, 0, 0)

        # With the Gaunt correction the per-(level, bin) factor
        # g(E / I_l) remains, but its cbrt is shared: g = (a + b*c) /
        # (d + e*c^2) with c = cbrt(E) / cbrt(I_l), so each chunk of the
        # flat (row, bin) batch gathers the shared transcendentals and
        # pays only cheap rational arithmetic per pair.
        rows, bins = _flatten_windows(start, cutoff)
        rel = bins - bmin
        cbrt_sh = cbrt_all[bmin:bmax]
        ehw = e_sh * hw_all[bmin:bmax]
        # One logical launch per memory-bounded chunk (what a device
        # would issue); within a chunk the host evaluation blocks pairs
        # so the rational-arithmetic scratch stays cache-resident — the
        # CPU analogue of the launch's thread blocks.
        n_passes += sum(1 for _ in _chunks(rows.size, pieces + 1))
        vals = np.empty(rows.size)
        block = max(1, _PAIR_BLOCK_ELEMENTS // (pieces + 1))
        for s in range(0, rows.size, block):
            sl = slice(s, min(s + block, rows.size))
            c = cbrt_sh[rel[sl]] * inv_cbrt[rows[sl]][:, None]
            np.maximum(c, 1.0, out=c)
            num = 0.1728 * c
            num += 1.0 - 0.1728
            den = c * c
            den *= 0.0496
            den += 1.0 - 0.0496
            num /= den
            vals[sl] = scale[rows[sl]] * np.einsum(
                "bp,bp->b", num, ehw[rel[sl]]
            )
        out += np.bincount(bins, weights=vals, minlength=n_bins)
        return MegabatchResult(out, n_passes, n_edge + int(rows.size), 0, 0)


class GridPointLike:
    """Structural protocol of :class:`repro.physics.apec.GridPoint`."""

    temperature_k: float
    ne_cm3: float
    kt_kev: float


def _flat_window_integrand(
    energies: np.ndarray, c_l: np.ndarray, kt: float, gaunt: bool
):
    """Megabatch form of the collapsed Eq. (1) integrand.

    Identical math to ``repro.physics.apec._window_integrand``; ``rows``
    index the plan's flat level arrays instead of one ion's levels.
    """

    def f(rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        i_r = energies[rows][:, None]
        with np.errstate(over="ignore", under="ignore"):
            y = np.exp(-np.maximum(x - i_r, 0.0) / kt)
            if gaunt:
                y = y * gaunt_factor(np.maximum(x / i_r, 1.0))
        return c_l[rows][:, None] * y

    return f


@dataclass
class PlanCacheStats:
    """Monotonic counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    compilations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compilations": self.compilations,
            "evictions": self.evictions,
        }


class PlanCache:
    """Thread-safe LRU cache of compiled :class:`SpectrumPlan` objects.

    Plans are content-addressed by :class:`PlanKey`; a second request
    with the same database, grid, ion set and rule knobs performs zero
    compilations regardless of temperature (the temperature-dependent
    pieces bind at execution time).
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.stats = PlanCacheStats()
        self._plans: OrderedDict[PlanKey, SpectrumPlan] = OrderedDict()
        self._lock = threading.RLock()
        self._tracer: "Tracer | None" = None

    def bind_tracer(self, tracer: "Tracer | None") -> None:
        """Route hit/miss/compile instants to a tracer (or unbind)."""
        self._tracer = tracer

    def _instant(self, name: str, parent: int = 0, **args: object) -> None:
        # The track is interned lazily on the first event so traces that
        # never consult the plan cache are unchanged by the binding.
        if self._tracer is not None:
            track = self._tracer.track("service", "plan-cache")
            self._tracer.instant(
                track, name, cat="plan", args=dict(args), parent=parent or None
            )

    def make_key(
        self,
        db: AtomicDatabase,
        grid: EnergyGrid,
        ions: tuple[Ion, ...] | None = None,
        method: str = "simpson",
        pieces: int = 64,
        k: int = 7,
        gl_points: int = 12,
        tail_tol: float = 0.0,
        gaunt: bool = True,
    ) -> tuple[PlanKey, tuple[Ion, ...]]:
        if method not in PLAN_METHODS:
            raise ValueError(f"unknown plan method {method!r}")
        if tail_tol < 0.0:
            raise ValueError("tail_tol must be non-negative")
        ion_set = tuple(ions) if ions is not None else db.ions
        key = PlanKey(
            db=db_fingerprint(db),
            grid=grid_fingerprint(grid),
            ions=ions_fingerprint(ion_set),
            method=method,
            pieces=int(pieces),
            k=int(k),
            gl_points=int(gl_points),
            tail_tol=float(tail_tol),
            gaunt=bool(gaunt),
        )
        return key, ion_set

    def get(
        self,
        db: AtomicDatabase,
        grid: EnergyGrid,
        ions: tuple[Ion, ...] | None = None,
        method: str = "simpson",
        pieces: int = 64,
        k: int = 7,
        gl_points: int = 12,
        tail_tol: float = 0.0,
        gaunt: bool = True,
        trace_parent: int = 0,
    ) -> SpectrumPlan:
        """The compiled plan for these inputs, compiling on first use.

        ``trace_parent`` links the cache instants (and a compile, when
        one happens) to the causing span — the request or megabatch
        group whose lowering consulted the plan.
        """
        key, ion_set = self.make_key(
            db, grid, ions, method, pieces, k, gl_points, tail_tol, gaunt
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.stats.hits += 1
                self._plans.move_to_end(key)
                self._instant("plan-hit", parent=trace_parent, method=method)
                return plan
            self.stats.misses += 1
            self._instant("plan-miss", parent=trace_parent, method=method)
        # Compile outside the lock: a concurrent duplicate costs repeated
        # work, never an inconsistent cache (last writer wins).
        plan = SpectrumPlan(key, db, grid, ion_set)
        with self._lock:
            self.stats.compilations += 1
            self._instant(
                "plan-compile",
                parent=trace_parent,
                method=method,
                levels=plan.n_levels,
            )
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


#: Process-global plan cache shared by the model layer, the service cost
#: model, and worker processes of the parallel backend (each process gets
#: its own instance).
PLAN_CACHE = PlanCache()
