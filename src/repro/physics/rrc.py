"""The RRC integrand of Eq. (1) and per-level emissivity helpers.

Equation (1) of the paper:

    dP/dE = n_e * n_(Z,j+1) * 4 * (E_e / kT) * sqrt(1 / (2 pi m_e kT)) * A
    A     = sigma_rec_n(E_e) * exp(-E_e / kT) * E_gamma,
    E_e   = E_gamma - I_(Z,j,n)   (zero below threshold)

which is exactly the Maxwellian-averaged Milne form of radiative
recombination emission.  With the pure Kramers cross section the power-law
factors cancel and the integrand reduces to ``C * exp(-E_e / kT)`` above
threshold; we therefore multiply by a Karzas–Latter-style bound-free Gaunt
factor by default so the integrand keeps realistic curvature, and expose
``gaunt=False`` (with :func:`analytic_bin_integral` as the closed-form
reference) for exactness tests.

Units: energies keV, densities cm^-3, cross sections cm^2; the emitted
power carries an arbitrary-but-consistent overall scale, which cancels in
every experiment (normalized flux, relative error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.atomic.cross_sections import kramers_photoionization
from repro.constants import K_B_KEV, ME_C2_KEV, maxwellian_norm

__all__ = [
    "RRCLevelParams",
    "gaunt_factor",
    "rrc_prefactor",
    "rrc_integrand",
    "make_level_integrand",
    "analytic_bin_integral",
]


@dataclass(frozen=True)
class RRCLevelParams:
    """Everything Eq. (1) needs for one level of one ion at one grid point.

    Attributes
    ----------
    binding_kev:
        Level binding energy I(Z, j, n).
    n, c_eff, g_level:
        Principal quantum number, effective charge and statistical weight
        of the captured level (cross-section inputs).
    kt_kev:
        Plasma thermal energy.
    ne_cm3, n_ion_cm3:
        Electron and recombining-ion number densities.
    """

    binding_kev: float
    n: int
    c_eff: float
    g_level: float
    kt_kev: float
    ne_cm3: float
    n_ion_cm3: float

    def __post_init__(self) -> None:
        if self.binding_kev <= 0.0:
            raise ValueError("binding energy must be positive")
        if self.kt_kev <= 0.0:
            raise ValueError("kT must be positive")
        if self.ne_cm3 < 0.0 or self.n_ion_cm3 < 0.0:
            raise ValueError("densities must be non-negative")

    @property
    def temperature_k(self) -> float:
        return self.kt_kev / K_B_KEV


def gaunt_factor(x: np.ndarray) -> np.ndarray:
    """Bound-free Gaunt-like correction g(E_gamma / I) >= 0.

    Smooth, equal to 1 at threshold (x = 1), with the gentle sub-power-law
    rise and turnover of Karzas–Latter tables.  Exact values are not
    physical claims — only the *shape class* matters for the workload.
    """
    x = np.asarray(x, dtype=np.float64)
    xc = np.maximum(x, 1.0)
    cbrt = np.cbrt(xc)
    # Ratio form: equals 1 at threshold, rises gently, then decays like
    # x^(-1/3) far above it — positive everywhere, unlike the truncated
    # Karzas-Latter series whose quadratic term goes negative at x ~ 250.
    return (1.0 + 0.1728 * (cbrt - 1.0)) / (1.0 + 0.0496 * (cbrt**2 - 1.0))


def rrc_prefactor(p: RRCLevelParams) -> float:
    """The energy-independent factor n_e n_i 4 sqrt(1/(2 pi m_e kT)) / kT."""
    return (
        p.ne_cm3
        * p.n_ion_cm3
        * 4.0
        * maxwellian_norm(p.temperature_k)
        / p.kt_kev
    )


def rrc_integrand(
    e_gamma_kev: np.ndarray,
    p: RRCLevelParams,
    gaunt: bool = True,
) -> np.ndarray:
    """dP/dE of Eq. (1) at photon energies ``e_gamma_kev`` (any shape).

    Zero below the recombination edge E_gamma < I.
    """
    e = np.asarray(e_gamma_kev, dtype=np.float64)
    e_e = e - p.binding_kev
    # The Milne relation divides by E_e, but Eq. (1) multiplies it back:
    #   E_e * sigma_rec(E_e) = g/(2 g_ion) * E_gamma^2 / (2 m_e c^2)
    #                          * sigma_ph(E_gamma).
    # Using the product form keeps the integrand finite *and defined* at
    # the threshold E_gamma = I (closed mask), so fixed-node rules that
    # evaluate the clipped endpoint (Simpson, Romberg) agree with
    # open-node rules (Gauss-Kronrod) to rounding.
    above = e_e >= 0.0
    sigma_ph = kramers_photoionization(e, p.binding_kev, p.n, p.c_eff)
    with np.errstate(over="ignore", under="ignore"):
        val = (
            rrc_prefactor(p)
            * (p.g_level / 2.0)
            * e**2
            / (2.0 * ME_C2_KEV)
            * sigma_ph
            * np.exp(-np.where(above, e_e, 0.0) / p.kt_kev)
            * e
        )
    if gaunt:
        val = val * gaunt_factor(e / p.binding_kev)
    return np.where(above, val, 0.0)


def make_level_integrand(
    p: RRCLevelParams, gaunt: bool = True
) -> Callable[[np.ndarray], np.ndarray]:
    """Closure form of :func:`rrc_integrand`, for the quadrature APIs."""

    def f(e_gamma_kev: np.ndarray) -> np.ndarray:
        return rrc_integrand(e_gamma_kev, p, gaunt=gaunt)

    return f


def _flat_constant(p: RRCLevelParams) -> float:
    """The constant C of the gaunt-free integrand C * exp(-E_e / kT).

    Kramers + Milne collapse:  E_e * sigma_rec(E_e) * E_gamma
      = E_e * [g/(2 g_ion) * E_gamma^2 / (2 m_e c^2 E_e) * sigma_K n (I/E_gamma)^3 / c_eff^2] * E_gamma
      = g/(2 g_ion) * sigma_K * n * I^3 / (2 m_e c^2 c_eff^2).
    """
    from repro.constants import ME_C2_KEV, SIGMA_KRAMERS_CM2

    weight = p.g_level / 2.0
    return (
        rrc_prefactor(p)
        * weight
        * SIGMA_KRAMERS_CM2
        * p.n
        * p.binding_kev**3
        / (2.0 * ME_C2_KEV * p.c_eff**2)
    )


def analytic_bin_integral(
    e0_kev: float, e1_kev: float, p: RRCLevelParams
) -> float:
    """Exact Eq. (2) bin integral for the ``gaunt=False`` integrand.

    integral_{max(E0, I)}^{E1} C exp(-(E - I)/kT) dE
      = C kT [exp(-(lo - I)/kT) - exp(-(E1 - I)/kT)].

    Used by tests to pin the quadrature stack against a closed form.
    """
    if e1_kev < e0_kev:
        raise ValueError("bin upper edge below lower edge")
    lo = max(e0_kev, p.binding_kev)
    if e1_kev <= lo:
        return 0.0
    c = _flat_constant(p)
    kt = p.kt_kev
    return c * kt * (
        np.exp(-(lo - p.binding_kev) / kt) - np.exp(-(e1_kev - p.binding_kev) / kt)
    )
