"""Serial APEC-style spectral calculator — the three nested loops of Fig. 1.

For each grid point (temperature, density, time) the RRC emissivity is
integrated over every energy bin of every level of every ion:

    for ion in 496 ions:
        for level in thousands of levels:
            for bin in ~1e5 energy bins:
                Lambda_RRC(bin) += integral of Eq. (1) over the bin

Two execution styles are provided, mirroring the paper's CPU and GPU code
paths:

- :func:`ion_emissivity_scalar` — one scalar integration per (level, bin),
  using QAGS (the paper's CPU fallback) or scalar Simpson;
- :func:`ion_emissivity_batched` — all bins of all levels of one ion in
  vectorized batches (Algorithm 2's coarse-grained kernel), with Simpson
  (default, 64 pieces) or Romberg (accuracy-scaled by ``k``) rules.

Both paths produce a per-bin array that :class:`SerialAPEC` accumulates
into a :class:`~repro.physics.spectrum.Spectrum`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.atomic.ions import Ion
from repro.constants import K_B_KEV
from repro.parallel.executor import (
    BACKENDS,
    ExecutionBackend,
    get_backend,
    shard_items,
    tree_reduce,
)
from repro.physics.ionbalance import ion_density
from repro.physics.rrc import (
    RRCLevelParams,
    gaunt_factor,
    make_level_integrand,
    rrc_prefactor,
)
from repro.physics.spectrum import EnergyGrid, Spectrum
from repro.physics.windows import LevelWindows, level_windows
from repro.quadrature.batch import (
    batch_gauss_windows,
    batch_romberg,
    batch_romberg_windows,
    batch_simpson,
    batch_simpson_windows,
    simpson_weights,
    unit_fractions,
)
from repro.quadrature.gauss_legendre import batch_gauss_legendre
from repro.quadrature.qags import qags
from repro.quadrature.simpson import simpson

__all__ = [
    "GridPoint",
    "level_params_for",
    "ion_emissivity_batched",
    "ion_emissivity_scalar",
    "SerialAPEC",
    "ApecModel",
]

#: Model-level method name -> batch kernel name (the fused plan layer
#: only exists for the vectorized kernels).
_BATCH_METHOD = {
    "simpson-batch": "simpson",
    "romberg": "romberg",
    "gauss": "gauss",
}

BatchMethod = Literal["simpson", "romberg", "gauss"]
ScalarMethod = Literal["qags", "simpson"]

#: Levels processed per fused-kernel chunk; bounds scratch memory at
#: roughly chunk * n_bins * (pieces + 1) float64 elements.
_LEVEL_CHUNK = 16

#: Largest exponent magnitude the shared-abscissa rescaling may produce:
#: the fast path splits exp(-(E - I)/kT) into exp(I/kT) * exp(-E/kT),
#: which overflows float64 near 709 and loses ~(E/kT) * eps relative
#: precision; beyond this the pruned kernel falls back to per-level
#: abscissae.
_SAFE_RESCALE_ARG = 600.0


@dataclass(frozen=True)
class GridPoint:
    """One point of the (temperature, density, time) parameter space."""

    temperature_k: float
    ne_cm3: float
    time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("temperature must be positive")
        if self.ne_cm3 < 0.0:
            raise ValueError("electron density must be non-negative")

    @property
    def kt_kev(self) -> float:
        return K_B_KEV * self.temperature_k


def level_params_for(
    db: AtomicDatabase,
    ion: Ion,
    level_index: int,
    point: GridPoint,
    abundances: AbundanceSet = SOLAR,
) -> RRCLevelParams:
    """Assemble Eq. (1) parameters for one level at one grid point."""
    ls = db.levels(ion)
    return RRCLevelParams(
        binding_kev=float(ls.energy_kev[level_index]),
        n=int(ls.n_arr[level_index]),
        c_eff=float(ls.c_eff[level_index]),
        g_level=float(ls.degeneracy[level_index]),
        kt_kev=point.kt_kev,
        ne_cm3=point.ne_cm3,
        n_ion_cm3=ion_density(
            ion, point.temperature_k, point.ne_cm3, abundances=abundances
        ),
    )


def _flat_constants(ls, point: GridPoint, n_ion: float) -> np.ndarray:
    """Per-level flat constants C_l of the Kramers+Milne collapse.

    integrand_l(E) = C_l * exp(-(E - I_l)/kT) * [gaunt(E / I_l)] * (E >= I_l)
    with C_l = prefactor * (g_l/2) * sigma_K n_l I_l^3 / (2 m_e c^2 c_eff_l^2).
    """
    from repro.constants import ME_C2_KEV, SIGMA_KRAMERS_CM2

    base = RRCLevelParams(
        binding_kev=float(ls.energy_kev[0]),
        n=int(ls.n_arr[0]),
        c_eff=float(ls.c_eff[0]),
        g_level=float(ls.degeneracy[0]),
        kt_kev=point.kt_kev,
        ne_cm3=point.ne_cm3,
        n_ion_cm3=n_ion,
    )
    pref = rrc_prefactor(base)
    return (
        pref
        * (ls.degeneracy / 2.0)
        * SIGMA_KRAMERS_CM2
        * ls.n_arr
        * ls.energy_kev**3
        / (2.0 * ME_C2_KEV * ls.c_eff**2)
    )


def _fused_simpson(
    db: AtomicDatabase,
    ion: Ion,
    point: GridPoint,
    grid: EnergyGrid,
    pieces: int,
    gaunt: bool,
    abundances: AbundanceSet = SOLAR,
) -> np.ndarray:
    """All levels x all bins of one ion in chunked broadcast evaluations.

    This is the software analogue of the Algorithm 2 CUDA kernel: the
    per-level emission is accumulated *inside* the kernel, and only the
    final n_bins array leaves (one device-to-host transfer per ion task).
    """
    ls = db.levels(ion)
    n_levels = len(ls)
    out = np.zeros(grid.n_bins, dtype=np.float64)
    if n_levels == 0:
        return out

    n_ion = ion_density(
        ion, point.temperature_k, point.ne_cm3, abundances=abundances
    )
    kt = point.kt_kev
    c_l = _flat_constants(ls, point, n_ion)

    w = simpson_weights(pieces)
    frac = unit_fractions(pieces + 1)

    for start in range(0, n_levels, _LEVEL_CHUNK):
        sl = slice(start, min(start + _LEVEL_CHUNK, n_levels))
        i_l = ls.energy_kev[sl][:, None]  # (chunk, 1)
        # APEC tabulates each level's RRC from its recombination edge
        # upward, so the bin integral runs over [max(E0, I_l), E1]; bins
        # entirely below the edge have zero width and contribute nothing.
        lo = np.maximum(grid.lower[None, :], i_l)  # (chunk, n_bins)
        width = np.maximum(grid.upper[None, :] - lo, 0.0)
        x = lo[:, :, None] + width[:, :, None] * frac[None, None, :]
        with np.errstate(over="ignore", under="ignore"):
            y = np.exp(-(x - i_l[:, :, None]) / kt)
            if gaunt:
                y = y * gaunt_factor(x / i_l[:, :, None])
        y *= c_l[sl][:, None, None]
        h = width / pieces
        # Simpson reduce over points, then sum the chunk's levels.
        out += (h * (y @ w)).sum(axis=0)
    return out


def _window_integrand(energies: np.ndarray, c_l: np.ndarray, kt: float, gaunt: bool):
    """Ragged-batch form of the collapsed Eq. (1) integrand.

    ``f(rows, x)`` evaluates level ``rows[i]`` at abscissae ``x[i]`` —
    the calling convention of the CSR window kernels in
    :mod:`repro.quadrature.batch`.
    """

    def f(rows: np.ndarray, x: np.ndarray) -> np.ndarray:
        i_r = energies[rows][:, None]
        with np.errstate(over="ignore", under="ignore"):
            y = np.exp(-np.maximum(x - i_r, 0.0) / kt)
            if gaunt:
                y = y * gaunt_factor(np.maximum(x / i_r, 1.0))
        return c_l[rows][:, None] * y

    return f


def _fused_simpson_windows(
    db: AtomicDatabase,
    ion: Ion,
    point: GridPoint,
    grid: EnergyGrid,
    pieces: int,
    gaunt: bool,
    tail_tol: float,
    abundances: AbundanceSet = SOLAR,
) -> np.ndarray:
    """Active-window variant of :func:`_fused_simpson`.

    Two task-shaping moves on top of the fused kernel:

    1. **Pruning** — only bins inside each level's accuracy-budgeted
       window (:func:`repro.physics.windows.level_windows`) are
       evaluated; levels whose window is empty are skipped outright.
    2. **Shared abscissae** — every full bin (not split by a
       recombination edge) uses the same Simpson nodes for every level,
       so ``exp(-x/kT)`` (and the Gaunt factor's ``cbrt``) is computed
       once per ion and each level only rescales it by
       ``C_l * exp(I_l/kT)``.  Edge bins keep per-level nodes.  When the
       rescaling would overflow or cost more precision than ``tail_tol``
       allows, the kernel falls back to the generic CSR evaluation with
       unfactored exponentials.

    Results agree with :func:`_fused_simpson` to within ``tail_tol``
    (dropped tail mass) plus floating-point reassociation noise many
    orders below it.
    """
    ls = db.levels(ion)
    n_levels = len(ls)
    out = np.zeros(grid.n_bins, dtype=np.float64)
    if n_levels == 0:
        return out
    n_ion = ion_density(
        ion, point.temperature_k, point.ne_cm3, abundances=abundances
    )
    kt = point.kt_kev
    c_l = _flat_constants(ls, point, n_ion)
    energies = ls.energy_kev
    win = level_windows(energies, grid, kt, tail_tol, gaunt=gaunt)
    first, cutoff = win.first, win.cutoff
    active = first < cutoff
    if not active.any():
        return out

    # Rescaling safety: exponent magnitude of the exp(I/kT) * exp(-E/kT)
    # split, and the precision it costs relative to the tail budget.
    arg = (float(energies.max()) + float(grid.upper[-1])) / kt
    if arg >= _SAFE_RESCALE_ARG or arg * np.finfo(np.float64).eps >= 0.05 * tail_tol:
        return batch_simpson_windows(
            _window_integrand(energies, c_l, kt, gaunt),
            grid.edges,
            first,
            cutoff,
            lower_clip=energies,
            pieces=pieces,
        )

    w = simpson_weights(pieces)
    frac = unit_fractions(pieces + 1)

    # --- edge bins: the one bin per level split by its recombination
    # edge needs level-specific abscissae (integration from I_l up).
    has_edge = active & (grid.lower[np.minimum(first, grid.n_bins - 1)] < energies)
    if has_edge.any():
        b_e = first[has_edge]
        i_e = energies[has_edge][:, None]
        width_e = grid.upper[b_e][:, None] - i_e
        x = i_e + width_e * frac[None, :]
        with np.errstate(over="ignore", under="ignore"):
            y = np.exp(-(x - i_e) / kt)
            if gaunt:
                y = y * gaunt_factor(x / i_e)
        vals = (width_e[:, 0] / pieces) * (y @ w) * c_l[has_edge]
        # Several levels can share one edge bin -> unbuffered scatter-add.
        np.add.at(out, b_e, vals)

    # --- full bins: shared abscissae across the union of windows.
    start = np.minimum(np.where(has_edge, first + 1, first), cutoff)
    full = start < cutoff
    if not full.any():
        return out
    bmin = int(start[full].min())
    bmax = int(cutoff[full].max())
    lo_u = grid.lower[bmin:bmax]
    width_u = grid.widths[bmin:bmax]
    x_sh = lo_u[:, None] + width_u[:, None] * frac[None, :]
    with np.errstate(under="ignore"):
        e_sh = np.exp(-x_sh / kt)
    h_u = width_u / pieces
    scale = c_l * np.exp(np.where(full, energies, 0.0) / kt)

    if not gaunt:
        # The integrand factorizes completely: each level contributes
        # scale_l * base[b] on its window, so accumulate the per-bin sum
        # of scales with a difference array (O(levels + bins) adds).
        base = h_u * (e_sh @ w)
        diff = np.zeros(bmax - bmin + 1)
        np.add.at(diff, start[full] - bmin, scale[full])
        np.add.at(diff, cutoff[full] - bmin, -scale[full])
        out[bmin:bmax] += np.cumsum(diff[:-1]) * base
        return out

    # With the Gaunt correction the per-level factor g(E / I_l) remains,
    # but its cbrt is shared: g(x/I) = (a + b*c) / (d + e*c^2) with
    # c = cbrt(x) / cbrt(I), so each level costs only cheap arithmetic
    # on its own window slice (small enough to stay cache-resident —
    # chunking levels here would spill the scratch out of cache).
    cbrt_sh = np.cbrt(x_sh)
    ehw = e_sh * (h_u[:, None] * w[None, :])
    inv_cbrt = 1.0 / np.cbrt(energies)
    for li in np.flatnonzero(full):
        s = int(start[li]) - bmin
        e = int(cutoff[li]) - bmin
        c = cbrt_sh[s:e] * inv_cbrt[li]
        np.maximum(c, 1.0, out=c)
        num = 0.1728 * c
        num += 1.0 - 0.1728
        den = c * c
        den *= 0.0496
        den += 1.0 - 0.0496
        num /= den
        out[bmin + s : bmin + e] += scale[li] * np.einsum(
            "bp,bp->b", num, ehw[s:e]
        )
    return out


def ion_emissivity_batched(
    db: AtomicDatabase,
    ion: Ion,
    point: GridPoint,
    grid: EnergyGrid,
    method: BatchMethod = "simpson",
    pieces: int = 64,
    k: int = 7,
    gl_points: int = 12,
    gaunt: bool = True,
    abundances: AbundanceSet = SOLAR,
    tail_tol: float = 0.0,
) -> np.ndarray:
    """Per-bin RRC emission of one ion, computed with batch kernels.

    This is the unit of work of a coarse-grained (``Ion``) GPU task.
    ``method`` selects the pluggable kernel — the paper: "a general
    interface of the GPU-accelerated component is developed, so that
    different numerical integration algorithms can be connected to the
    main program on demand".

    ``tail_tol > 0`` enables active-window pruning: each level is only
    evaluated inside its accuracy-budgeted bin window and the result
    differs from the unpruned kernel by at most ``tail_tol`` relative
    tail mass per level.  ``tail_tol = 0`` (default) runs the original
    unpruned kernels bit-for-bit.
    """
    if tail_tol < 0.0:
        raise ValueError("tail_tol must be non-negative")
    if method == "simpson":
        if tail_tol > 0.0:
            return _fused_simpson_windows(
                db, ion, point, grid, pieces, gaunt, tail_tol, abundances
            )
        return _fused_simpson(db, ion, point, grid, pieces, gaunt, abundances)
    if method in ("romberg", "gauss"):
        ls = db.levels(ion)
        if tail_tol > 0.0 and len(ls) > 0:
            n_ion = ion_density(
                ion, point.temperature_k, point.ne_cm3, abundances=abundances
            )
            kt = point.kt_kev
            win = level_windows(ls.energy_kev, grid, kt, tail_tol, gaunt=gaunt)
            f = _window_integrand(ls.energy_kev, _flat_constants(ls, point, n_ion), kt, gaunt)
            if method == "romberg":
                return batch_romberg_windows(
                    f, grid.edges, win.first, win.cutoff,
                    lower_clip=ls.energy_kev, k=k,
                )
            return batch_gauss_windows(
                f, grid.edges, win.first, win.cutoff,
                lower_clip=ls.energy_kev, n=gl_points,
            )
        out = np.zeros(grid.n_bins, dtype=np.float64)
        for i in range(len(ls)):
            p = level_params_for(db, ion, i, point, abundances)
            f = make_level_integrand(p, gaunt=gaunt)
            lo = np.maximum(grid.lower, p.binding_kev)
            hi = np.maximum(grid.upper, lo)
            if method == "romberg":
                out += batch_romberg(f, lo, hi, k=k)
            else:
                out += batch_gauss_legendre(f, lo, hi, n=gl_points)
        return out
    raise ValueError(f"unknown batch method {method!r}")


def ion_emissivity_scalar(
    db: AtomicDatabase,
    ion: Ion,
    point: GridPoint,
    grid: EnergyGrid,
    method: ScalarMethod = "qags",
    pieces: int = 64,
    epsabs: float = 1.0e-30,
    epsrel: float = 1.0e-10,
    gaunt: bool = True,
    abundances: AbundanceSet = SOLAR,
    tail_tol: float = 0.0,
) -> np.ndarray:
    """Per-bin RRC emission of one ion, one scalar integral at a time.

    This is the CPU fallback path of Algorithm 1 (``CPU-Integr`` calling
    QAGS serially) and the reference for accuracy experiments.

    ``tail_tol > 0`` clamps each level's bin loop to its active window
    (same budget as the batched path); ``0`` scans every bin.
    """
    if tail_tol < 0.0:
        raise ValueError("tail_tol must be non-negative")
    ls = db.levels(ion)
    out = np.zeros(grid.n_bins, dtype=np.float64)
    win: LevelWindows | None = None
    if tail_tol > 0.0 and len(ls) > 0:
        win = level_windows(
            ls.energy_kev, grid, point.kt_kev, tail_tol, gaunt=gaunt
        )
    for i in range(len(ls)):
        p = level_params_for(db, ion, i, point, abundances)
        f = make_level_integrand(p, gaunt=gaunt)
        threshold = p.binding_kev
        if win is not None:
            bin_range = range(int(win.first[i]), int(win.cutoff[i]))
        else:
            bin_range = range(grid.n_bins)
        for b in bin_range:
            e0, e1 = float(grid.edges[b]), float(grid.edges[b + 1])
            if e1 <= threshold:
                continue  # entirely below the recombination edge
            # Split at the edge so adaptive quadrature sees a smooth
            # integrand (the kink at E = I is exactly representable).
            lo = max(e0, threshold)
            if method == "qags":
                out[b] += qags(f, lo, e1, epsabs=epsabs, epsrel=epsrel).value
            elif method == "simpson":
                out[b] += simpson(f, lo, e1, pieces=pieces).value
            else:
                raise ValueError(f"unknown scalar method {method!r}")
    return out


@dataclass(frozen=True)
class _RRCShard:
    """Picklable unit of parallel RRC work: some ions at one grid point.

    Carries everything a worker process needs to rebuild the calculation
    (database size knobs, grid edges, rule configuration) — never live
    objects with closures.
    """

    n_max: int
    z_max: int
    ions: tuple[Ion, ...]
    point: GridPoint
    edges: np.ndarray
    method: str
    pieces: int
    k: int
    gaunt: bool
    tail_tol: float
    abundances: AbundanceSet
    fused: bool


#: Per-process memo of rebuilt databases (worker processes pay the level
#: construction once per configuration, not once per shard).
_WORKER_DBS: dict[tuple[int, int], AtomicDatabase] = {}


def _worker_db(n_max: int, z_max: int) -> AtomicDatabase:
    key = (n_max, z_max)
    db = _WORKER_DBS.get(key)
    if db is None:
        db = AtomicDatabase(AtomicConfig(n_max=n_max, z_max=z_max))
        _WORKER_DBS[key] = db
    return db


def _rrc_shard_worker(task: _RRCShard) -> tuple[np.ndarray, dict[str, int]]:
    """Compute one shard's RRC emission (module-level: process-picklable).

    Fused shards execute one megabatch plan (compiled once per process by
    the plan cache) and return the shard's per-bin partial plus launch
    statistics.  Unfused shards return the *stacked per-ion* arrays so
    the parent can reduce them in exact ion order — bit-identical to the
    serial loop on every backend.
    """
    db = _worker_db(task.n_max, task.z_max)
    grid = EnergyGrid(task.edges)
    if task.fused:
        from repro.physics.plan import PLAN_CACHE

        plan = PLAN_CACHE.get(
            db, grid, ions=task.ions,
            method=_BATCH_METHOD[task.method],
            pieces=task.pieces, k=task.k,
            tail_tol=task.tail_tol, gaunt=task.gaunt,
        )
        res = plan.execute(task.point, task.abundances)
        stats = {
            "n_passes": res.n_passes,
            "n_pairs": res.n_pairs,
            "n_pairs_skipped": res.n_pairs_skipped,
            "evals_saved": res.evals_saved,
        }
        return res.values, stats
    model = SerialAPEC(
        db, grid, method=task.method, pieces=task.pieces, k=task.k,
        gaunt=task.gaunt, abundances=task.abundances, tail_tol=task.tail_tol,
    )
    rows = np.stack(
        [model.ion_emissivity(ion, task.point) for ion in task.ions]
    )
    return rows, {}


class SerialAPEC:
    """The APEC-style calculator: serial reference plus opt-in speedups.

    Parameters
    ----------
    db:
        Atomic database (size set by its :class:`AtomicConfig`).
    grid:
        Output energy grid.
    method / pieces / k:
        Integration rule used for every (level, bin) integral.  ``qags``
        and scalar ``simpson`` follow the scalar path; ``simpson-batch``
        and ``romberg`` use the vectorized kernels (useful when the serial
        reference itself would be too slow at full scale).
    tail_tol:
        Relative tail tolerance of active-window pruning; ``0`` (the
        default) disables pruning and reproduces the unpruned kernels
        bit-for-bit.
    fused:
        Execute each grid point's RRC component as megabatch plans
        (:mod:`repro.physics.plan`) — all ions of a shard in one fused
        launch, compiled once and cached across grid points.  Requires a
        batch method.  Results agree with the per-ion path to summation-
        order rounding (<= ~1e-12 relative), not bit-for-bit.
    backend / jobs:
        Wall-clock execution backend for the RRC ion loop: ``serial``
        (default; the unfused serial path is bit-for-bit the original
        loop), ``thread`` or ``process`` (see :mod:`repro.parallel`).
        Any backend produces the same spectrum bits as ``serial`` at the
        same ``fused`` setting.
    shards:
        Number of work shards the ion set is split into.  Deliberately
        independent of ``jobs`` so results do not depend on worker
        count; lower it to 1 for maximal fusion, raise it for better
        load balance.
    """

    def __init__(
        self,
        db: AtomicDatabase,
        grid: EnergyGrid,
        method: str = "qags",
        pieces: int = 64,
        k: int = 7,
        gaunt: bool = True,
        components: tuple[str, ...] = ("rrc",),
        abundances: AbundanceSet = SOLAR,
        tail_tol: float = 0.0,
        fused: bool = False,
        backend: str = "serial",
        jobs: int | None = None,
        shards: int = 8,
    ) -> None:
        if method not in ("qags", "simpson", "simpson-batch", "romberg", "gauss"):
            raise ValueError(f"unknown method {method!r}")
        unknown = set(components) - {"rrc", "lines", "brems"}
        if unknown:
            raise ValueError(f"unknown components {sorted(unknown)}")
        if not components:
            raise ValueError("need at least one emission component")
        if tail_tol < 0.0:
            raise ValueError("tail_tol must be non-negative")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if fused and method not in _BATCH_METHOD:
            raise ValueError(
                f"fused execution requires a batch method "
                f"({sorted(_BATCH_METHOD)}), got {method!r}"
            )
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.db = db
        self.grid = grid
        self.method = method
        self.pieces = pieces
        self.k = k
        self.gaunt = gaunt
        self.components = tuple(components)
        self.abundances = abundances
        self.tail_tol = tail_tol
        self.fused = fused
        self.backend = backend
        self.jobs = jobs
        self.shards = shards
        #: Launch statistics of the last fused compute (None otherwise).
        self.last_plan_stats: dict[str, int] | None = None
        self._backend_obj: ExecutionBackend | None = None

    def _get_backend(self) -> ExecutionBackend:
        if self._backend_obj is None:
            self._backend_obj = get_backend(self.backend, self.jobs)
        return self._backend_obj

    def close(self) -> None:
        """Release pooled workers (no-op for the serial backend)."""
        if self._backend_obj is not None:
            self._backend_obj.close()
            self._backend_obj = None

    def __enter__(self) -> "SerialAPEC":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def ion_emissivity(self, ion: Ion, point: GridPoint) -> np.ndarray:
        if self.method in ("qags", "simpson"):
            return ion_emissivity_scalar(
                self.db, ion, point, self.grid,
                method=self.method, pieces=self.pieces, gaunt=self.gaunt,
                abundances=self.abundances, tail_tol=self.tail_tol,
            )
        return ion_emissivity_batched(
            self.db, ion, point, self.grid,
            method=_BATCH_METHOD[self.method],
            pieces=self.pieces, k=self.k, gaunt=self.gaunt,
            abundances=self.abundances, tail_tol=self.tail_tol,
        )

    def _rrc_values(
        self, point: GridPoint, ions: tuple[Ion, ...]
    ) -> np.ndarray:
        """RRC per-bin totals of one grid point over ``ions``.

        Serial + unfused runs the original per-ion loop in-process.
        Otherwise the ion set is split into backend-independent shards;
        unfused shards ship per-ion arrays back and are reduced in exact
        ion order (bit-identical to the serial loop), fused shards are
        megabatch partials combined by a deterministic tree reduction
        (bit-identical across backends).
        """
        self.last_plan_stats = None
        if not self.fused and self.backend == "serial":
            out = np.zeros(self.grid.n_bins, dtype=np.float64)
            for ion in ions:
                out += self.ion_emissivity(ion, point)
            return out
        shards = shard_items(ions, self.shards)
        if not shards:
            return np.zeros(self.grid.n_bins, dtype=np.float64)
        tasks = [
            _RRCShard(
                n_max=self.db.config.n_max,
                z_max=self.db.config.z_max,
                ions=shard,
                point=point,
                edges=self.grid.edges,
                method=self.method,
                pieces=self.pieces,
                k=self.k,
                gaunt=self.gaunt,
                tail_tol=self.tail_tol,
                abundances=self.abundances,
                fused=self.fused,
            )
            for shard in shards
        ]
        results = self._get_backend().map(_rrc_shard_worker, tasks)
        if self.fused:
            totals = {
                "n_passes": 0, "n_pairs": 0,
                "n_pairs_skipped": 0, "evals_saved": 0,
            }
            for _, stats in results:
                for name in totals:
                    totals[name] += stats[name]
            totals["n_shards"] = len(shards)
            self.last_plan_stats = totals
            return tree_reduce([values for values, _ in results])
        out = np.zeros(self.grid.n_bins, dtype=np.float64)
        for block, _ in results:
            for row in block:
                out += row
        return out

    def compute(self, point: GridPoint, ions: tuple[Ion, ...] | None = None) -> Spectrum:
        """Full spectrum at one grid point.

        Sums the configured emission components: ``rrc`` (the paper's
        workload), ``lines`` (collisional line emission) and ``brems``
        (free-free continuum).  Only the RRC component uses the fused /
        parallel execution paths; the others stay serial.
        """
        spectrum = Spectrum.zeros(
            self.grid,
            temperature_k=point.temperature_k,
            ne_cm3=point.ne_cm3,
            method=self.method,
            components=self.components,
            tail_tol=self.tail_tol,
        )
        ion_set = ions if ions is not None else self.db.ions
        if "rrc" in self.components:
            spectrum.accumulate(self._rrc_values(point, ion_set))
        if "lines" in self.components:
            from repro.physics.lines import ion_line_emissivity

            for ion in ion_set:
                spectrum.accumulate(
                    ion_line_emissivity(
                        self.db, ion, point, self.grid,
                        abundances=self.abundances,
                    )
                )
        if "brems" in self.components:
            from repro.physics.brems import brems_emissivity

            spectrum.accumulate(
                brems_emissivity(
                    self.grid, point, z_max=self.db.config.z_max,
                    abundances=self.abundances,
                )
            )
        return spectrum


#: Public name of the model entry point; ``SerialAPEC`` is kept as the
#: historical alias (the class long ago stopped being serial-only).
ApecModel = SerialAPEC
