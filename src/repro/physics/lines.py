"""Synthetic line emission — the "line emissivity" half of APEC.

APEC "calculates both line and continuum emissivity"; the paper's
acceleration targets the continuum (RRC) integrals, but a credible APEC
stand-in needs the line component too.  We synthesize it from the same
level structure the RRC uses:

- one line per radiatively allowed (n_u, l_u) -> (n_d, l_d = l_u +- 1)
  transition with n_u > n_d, at energy E = I_d - I_u (binding-energy
  difference — consistent with the RRC edges by construction);
- emissivity from collisional excitation in the coronal limit:
  proportional to n_e * n_ion * f_lu * exp(-dE / kT) / sqrt(T), with a
  hydrogenic 1/(n_u^3 n_d^3) oscillator-strength scaling;
- Gaussian thermal Doppler profiles, integrated over bins exactly with
  the error function (so line flux is conserved regardless of binning).

All arrays are vectorized over lines; per-ion output is a per-bin array,
the same contract as the RRC emissivity, so the hybrid machinery can
schedule line tasks identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.database import AtomicDatabase
from repro.atomic.ions import Ion
from repro.constants import K_B_KEV, ME_C2_KEV
from repro.physics.apec import GridPoint
from repro.physics.ionbalance import ion_density
from repro.physics.spectrum import EnergyGrid

__all__ = ["LineList", "build_line_list", "ion_line_emissivity", "doppler_sigma_kev"]

#: Proton mass in units of electron mass (for Doppler widths).
_MP_OVER_ME = 1836.15267343


@dataclass(frozen=True)
class LineList:
    """Vectorized line data for one ion (arrays aligned by line index)."""

    ion: Ion
    energy_kev: np.ndarray  # transition energies
    strength: np.ndarray  # dimensionless relative strengths
    upper_n: np.ndarray
    lower_n: np.ndarray

    def __len__(self) -> int:
        return int(self.energy_kev.size)


def doppler_sigma_kev(energy_kev: np.ndarray, temperature_k: float, mass_amu: float) -> np.ndarray:
    """Thermal Doppler width sigma_E = E sqrt(kT / (A m_p c^2))."""
    if temperature_k <= 0.0 or mass_amu <= 0.0:
        raise ValueError("need positive temperature and mass")
    kt = K_B_KEV * temperature_k
    mc2 = mass_amu * _MP_OVER_ME * ME_C2_KEV
    return np.asarray(energy_kev) * np.sqrt(kt / mc2)


def build_line_list(db: AtomicDatabase, ion: Ion, max_lines: int = 200) -> LineList:
    """All allowed transitions of the recombined ion, strongest first.

    Deterministic: same database config -> same line list.
    """
    ls = db.levels(ion)
    n = ls.n_arr
    l = ls.l_arr
    e_bind = ls.energy_kev

    # Pair every upper level with every lower level; keep dipole-allowed
    # (delta l = +-1) downward transitions.
    iu, id_ = np.meshgrid(np.arange(len(ls)), np.arange(len(ls)), indexing="ij")
    iu, id_ = iu.ravel(), id_.ravel()
    allowed = (
        (n[iu] > n[id_])
        & (np.abs(l[iu] - l[id_]) == 1)
        & (e_bind[id_] > e_bind[iu])
    )
    iu, id_ = iu[allowed], id_[allowed]
    energy = e_bind[id_] - e_bind[iu]
    # Hydrogenic Kramers-like oscillator scaling with degeneracy weight.
    strength = (
        ls.degeneracy[iu]
        / (n[iu].astype(float) ** 3 * n[id_].astype(float) ** 3)
        * (energy / e_bind[id_]) ** 2
    )
    order = np.argsort(-strength)[:max_lines]
    return LineList(
        ion=ion,
        energy_kev=energy[order],
        strength=strength[order],
        upper_n=n[iu][order],
        lower_n=n[id_][order],
    )


def ion_line_emissivity(
    db: AtomicDatabase,
    ion: Ion,
    point: GridPoint,
    grid: EnergyGrid,
    max_lines: int = 200,
    abundances: AbundanceSet = SOLAR,
) -> np.ndarray:
    """Per-bin line emission of one ion at one grid point.

    Gaussian profiles are integrated over each bin with erf, so total
    line power is independent of the grid (flux conservation); lines
    whose centers fall outside the grid still deposit their in-grid tails.
    """
    lines = build_line_list(db, ion, max_lines=max_lines)
    out = np.zeros(grid.n_bins)
    if len(lines) == 0:
        return out

    kt = point.kt_kev
    n_ion = ion_density(
        ion, point.temperature_k, point.ne_cm3, abundances=abundances
    )
    if n_ion == 0.0:
        return out
    # Coronal-limit excitation rate ~ exp(-dE/kT)/sqrt(T).
    with np.errstate(over="ignore", under="ignore"):
        power = (
            point.ne_cm3
            * n_ion
            * lines.strength
            * np.exp(-lines.energy_kev / kt)
            / np.sqrt(point.temperature_k)
            * lines.energy_kev
        )
    mass_amu = 2.0 * ion.z  # ~A for light/mid elements
    sigma = doppler_sigma_kev(lines.energy_kev, point.temperature_k, mass_amu)
    sigma = np.maximum(sigma, 1e-12)

    # Fraction of each Gaussian inside each bin, via the erf CDF.
    edges = grid.edges[None, :]  # (1, n_bins + 1)
    z = (edges - lines.energy_kev[:, None]) / (np.sqrt(2.0) * sigma[:, None])
    cdf = 0.5 * (1.0 + erf(z))
    frac = np.diff(cdf, axis=1)  # (n_lines, n_bins)
    out = power @ frac
    return out
