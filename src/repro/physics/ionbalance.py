"""Collisional ionization equilibrium (CIE) ion fractions.

APEC computes spectra for "a hot, optically-thin plasma in collisional
ionization equilibrium".  In CIE the charge-state ladder of each element
satisfies detailed balance between neighbouring states:

    f_c * S_c(T) = f_{c+1} * alpha_{c+1}(T),   c = 0..Z-1

so the fractions follow from the rate ratios alone.  The recursion is done
in log space: rate ratios span many orders of magnitude across a ladder
(that same spread is what makes the NEI ODEs stiff).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.elements import cosmic_abundance
from repro.atomic.ions import Ion
from repro.atomic.rates import ionization_rate, recombination_rate

__all__ = ["cie_fractions", "ion_fraction", "ion_density"]


@lru_cache(maxsize=4096)
def _cie_fractions_cached(z: int, temperature_k: float) -> tuple[float, ...]:
    log_ratio = np.empty(z, dtype=np.float64)
    t = np.array([temperature_k])
    for c in range(z):
        s = float(ionization_rate(z, c, t)[0])
        a = float(recombination_rate(z, c + 1, t)[0])
        if s <= 0.0:
            log_ratio[c] = -np.inf
        elif a <= 0.0:
            log_ratio[c] = np.inf
        else:
            log_ratio[c] = np.log(s) - np.log(a)
    # log f_c relative to log f_0 = 0.
    log_f = np.concatenate([[0.0], np.cumsum(log_ratio)])
    log_f -= log_f.max()  # stabilize before exponentiating
    f = np.exp(log_f)
    f /= f.sum()
    return tuple(float(x) for x in f)


def cie_fractions(z: int, temperature_k: float) -> np.ndarray:
    """Equilibrium charge-state fractions f_0..f_Z of element ``z`` at T.

    Returns an array of ``z + 1`` non-negative values summing to 1.
    """
    if z < 1:
        raise ValueError("z must be >= 1")
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive")
    return np.array(_cie_fractions_cached(z, float(temperature_k)))


def ion_fraction(ion: Ion, temperature_k: float) -> float:
    """CIE fraction of the *recombining* ion (charge j+1)."""
    return float(cie_fractions(ion.z, temperature_k)[ion.charge])


def ion_density(
    ion: Ion,
    temperature_k: float,
    ne_cm3: float,
    n_h_over_ne: float = 0.83,
    abundances: AbundanceSet = SOLAR,
) -> float:
    """Number density of the recombining ion, cm^-3.

    n_ion = n_H * (N_X / N_H) * f_(Z, j+1), with n_H tied to the electron
    density by the usual hot-plasma ratio n_H ~ 0.83 n_e and the relative
    abundance drawn from ``abundances`` (solar by default).
    """
    if ne_cm3 < 0.0:
        raise ValueError("electron density must be non-negative")
    n_h = n_h_over_ne * ne_cm3
    return n_h * abundances.of(ion.z) * ion_fraction(ion, temperature_k)
