"""Spectral fitting — the use case that motivates the paper.

"So it is a common task for modern astronomers to fit the observed
spectrum with the spectrum calculated from theoretical models in order to
verify their researches."  Each fit iteration needs a full model spectrum
at trial parameters — which is exactly why fast spectral calculation
matters.  This module provides the minimal observing + fitting loop:

- :class:`InstrumentResponse`: Gaussian energy-redistribution matrix
  (a toy RMF) applied to model spectra;
- :func:`mock_observation`: expected counts for an exposure, optionally
  with deterministic (seeded) Poisson noise;
- :func:`fit_temperature`: golden-section minimization of chi^2 over
  plasma temperature, each trial evaluated with the fast batched kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np
from scipy.special import erf

from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.spectrum import EnergyGrid, Spectrum

__all__ = [
    "InstrumentResponse",
    "mock_observation",
    "chi_squared",
    "FitResult",
    "fit_temperature",
    "fit_temperature_and_norm",
    "fit_metallicity",
]


@dataclass(frozen=True)
class InstrumentResponse:
    """Gaussian energy redistribution on a grid (a toy detector RMF).

    ``fwhm_kev`` is the detector resolution; the redistribution matrix
    is built with erf-integrated Gaussians so counts are conserved for
    photons that stay on the grid.
    """

    grid: EnergyGrid
    fwhm_kev: float
    effective_area: float = 1.0

    def __post_init__(self) -> None:
        if self.fwhm_kev <= 0.0:
            raise ValueError("FWHM must be positive")
        if self.effective_area <= 0.0:
            raise ValueError("effective area must be positive")
        sigma = self.fwhm_kev / (2.0 * np.sqrt(2.0 * np.log(2.0)))
        centers = self.grid.centers
        edges = self.grid.edges
        z = (edges[None, :] - centers[:, None]) / (np.sqrt(2.0) * sigma)
        cdf = 0.5 * (1.0 + erf(z))
        matrix = np.diff(cdf, axis=1)  # (true bin, measured bin)
        object.__setattr__(self, "_matrix", matrix)

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix  # type: ignore[attr-defined]

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Fold per-bin model flux through the response."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.grid.n_bins,):
            raise ValueError("flux shape does not match the response grid")
        return self.effective_area * (values @ self.matrix)


def mock_observation(
    model: Spectrum,
    response: InstrumentResponse,
    exposure: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Observed counts for a model spectrum.

    Deterministic expected counts when ``rng`` is None; seeded Poisson
    deviates otherwise.  The model's absolute normalization is arbitrary
    (package convention), so ``exposure`` doubles as the scale knob that
    sets the counting statistics.
    """
    if exposure <= 0.0:
        raise ValueError("exposure must be positive")
    expected = exposure * response.apply(model.values)
    if rng is None:
        return expected
    return rng.poisson(expected).astype(np.float64)


def chi_squared(model_counts: np.ndarray, observed: np.ndarray) -> float:
    """Pearson chi^2 with the usual max(model, 1) variance floor."""
    model_counts = np.asarray(model_counts, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if model_counts.shape != observed.shape:
        raise ValueError("shape mismatch")
    var = np.maximum(model_counts, 1.0)
    return float(np.sum((observed - model_counts) ** 2 / var))


@dataclass
class FitResult:
    """Outcome of a 1-D temperature fit."""

    temperature_k: float
    chi2: float
    n_model_evals: int
    history: list[tuple[float, float]] = field(default_factory=list)

    def chi2_curve(self) -> tuple[np.ndarray, np.ndarray]:
        h = sorted(self.history)
        return np.array([t for t, _ in h]), np.array([c for _, c in h])


def fit_temperature(
    apec: SerialAPEC,
    observed: np.ndarray,
    response: InstrumentResponse,
    exposure: float,
    t_bounds: tuple[float, float] = (1.0e6, 1.0e8),
    ne_cm3: float = 1.0,
    tol: float = 1.0e-3,
    max_evals: int = 60,
    model_cache: Optional[Callable[[float], Spectrum]] = None,
) -> FitResult:
    """Golden-section search for the best-fit plasma temperature.

    The search runs in log10(T) (temperatures span decades); each trial
    computes a full model spectrum — with the batched kernel this is
    milliseconds, with per-bin QAGS it would be the paper's problem
    statement.
    """
    lo, hi = t_bounds
    if not 0.0 < lo < hi:
        raise ValueError("need 0 < t_lo < t_hi")
    history: list[tuple[float, float]] = []

    def model(t: float) -> Spectrum:
        if model_cache is not None:
            return model_cache(t)
        return apec.compute(GridPoint(temperature_k=t, ne_cm3=ne_cm3))

    def objective(log_t: float) -> float:
        t = 10.0**log_t
        counts = exposure * response.apply(model(t).values)
        c2 = chi_squared(counts, observed)
        history.append((t, c2))
        return c2

    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = np.log10(lo), np.log10(hi)
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = objective(c), objective(d)
    evals = 2
    while (b - a) > tol and evals < max_evals:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = objective(d)
        evals += 1

    best_t, best_c2 = min(history, key=lambda tc: tc[1])
    return FitResult(
        temperature_k=best_t, chi2=best_c2, n_model_evals=len(history), history=history
    )


def fit_temperature_and_norm(
    apec: SerialAPEC,
    observed: np.ndarray,
    response: InstrumentResponse,
    t_bounds: tuple[float, float] = (1.0e6, 1.0e8),
    ne_cm3: float = 1.0,
    tol: float = 1.0e-3,
    max_evals: int = 60,
) -> tuple[FitResult, float]:
    """Joint temperature + normalization fit.

    Real observations never share the model's absolute scale (distance,
    emission measure, exposure all enter), so every real fit floats a
    normalization.  The normalization that minimizes Pearson chi^2 for a
    fixed shape is available in closed form per temperature trial — with
    variance ~ model, chi^2(A) = sum((d - A m)^2 / (A m)) is minimized at
    A* = sqrt(sum(d^2/m) / sum(m)) — so the search stays one-dimensional
    in log T with the optimal A* profiled out.

    Returns ``(fit_result, best_norm)``; ``fit_result.history`` records
    the profiled chi^2 per temperature.
    """
    lo, hi = t_bounds
    if not 0.0 < lo < hi:
        raise ValueError("need 0 < t_lo < t_hi")
    observed = np.asarray(observed, dtype=np.float64)
    history: list[tuple[float, float]] = []
    norms: dict[float, float] = {}

    def objective(log_t: float) -> float:
        t = 10.0**log_t
        model = response.apply(
            apec.compute(GridPoint(temperature_k=t, ne_cm3=ne_cm3)).values
        )
        usable = model > 0.0
        m = model[usable]
        d = observed[usable]
        if m.size == 0 or m.sum() <= 0.0:
            c2 = float("inf")
            norm = 0.0
        else:
            norm = float(np.sqrt(np.sum(d**2 / m) / np.sum(m)))
            c2 = chi_squared(norm * model, observed)
        history.append((t, c2))
        norms[t] = norm
        return c2

    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = np.log10(lo), np.log10(hi)
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = objective(c), objective(d)
    evals = 2
    while (b - a) > tol and evals < max_evals:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = objective(d)
        evals += 1

    best_t, best_c2 = min(history, key=lambda tc: tc[1])
    result = FitResult(
        temperature_k=best_t,
        chi2=best_c2,
        n_model_evals=len(history),
        history=history,
    )
    return result, norms[best_t]


def fit_metallicity(
    db,
    grid: EnergyGrid,
    observed: np.ndarray,
    response: InstrumentResponse,
    exposure: float,
    temperature_k: float,
    z_bounds: tuple[float, float] = (0.05, 5.0),
    components: tuple[str, ...] = ("rrc", "lines", "brems"),
    tol: float = 1.0e-3,
    max_evals: int = 40,
) -> FitResult:
    """Golden-section fit of the global metallicity at known temperature.

    The abundance knob the plumbing exists for: cluster gas is typically
    0.2-0.5 solar, and the metal-to-H/He emission ratio in the soft X-ray
    band pins Z.  ``FitResult.temperature_k`` is reused to carry the
    best-fit metallicity (the result type is a 1-D fit record).
    """
    from repro.atomic.abundances import AbundanceSet
    from repro.physics.apec import SerialAPEC

    lo, hi = z_bounds
    if not 0.0 < lo < hi:
        raise ValueError("need 0 < z_lo < z_hi")
    history: list[tuple[float, float]] = []

    def objective(log_z: float) -> float:
        z = 10.0**log_z
        apec = SerialAPEC(
            db, grid, method="simpson-batch", components=components,
            abundances=AbundanceSet(metallicity=z),
        )
        model = apec.compute(GridPoint(temperature_k=temperature_k, ne_cm3=1.0))
        counts = exposure * response.apply(model.values)
        c2 = chi_squared(counts, observed)
        history.append((z, c2))
        return c2

    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = np.log10(lo), np.log10(hi)
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc, fd = objective(c), objective(d)
    evals = 2
    while (b - a) > tol and evals < max_evals:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = objective(d)
        evals += 1

    best_z, best_c2 = min(history, key=lambda tc: tc[1])
    return FitResult(
        temperature_k=best_z,  # carries the metallicity (1-D fit record)
        chi2=best_c2,
        n_model_evals=len(history),
        history=history,
    )
