"""Energy grids and the Spectrum container (the Eq. 2 output).

The paper reports spectra as normalized flux against wavelength (Fig. 7,
10–45 Angstrom); internally everything is binned in photon energy.  The
grid owns the bin edges; a :class:`Spectrum` pairs a grid with per-bin
emissivities and supports the operations the experiments need: addition
(accumulating ions), normalization, wavelength view, and relative-error
comparison (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import HC_KEV_ANGSTROM

__all__ = ["EnergyGrid", "Spectrum"]


@dataclass(frozen=True)
class EnergyGrid:
    """Contiguous photon-energy bins.

    ``edges`` has ``n_bins + 1`` strictly ascending entries in keV.
    """

    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must be 1-D with at least 2 entries")
        if edges[0] <= 0.0:
            raise ValueError("energies must be positive")
        if np.any(np.diff(edges) <= 0.0):
            raise ValueError("edges must be strictly ascending")
        object.__setattr__(self, "edges", edges)
        self.edges.setflags(write=False)

    @classmethod
    def linear(cls, e_min_kev: float, e_max_kev: float, n_bins: int) -> "EnergyGrid":
        """Uniform bins between two energies."""
        if n_bins < 1:
            raise ValueError("need at least one bin")
        if not 0.0 < e_min_kev < e_max_kev:
            raise ValueError("need 0 < e_min < e_max")
        return cls(np.linspace(e_min_kev, e_max_kev, n_bins + 1))

    @classmethod
    def from_wavelength(
        cls, lambda_min_a: float, lambda_max_a: float, n_bins: int
    ) -> "EnergyGrid":
        """Uniform-in-wavelength bins (Fig. 7's x-axis), stored in energy.

        The shortest wavelength maps to the highest energy, so edges are
        reversed to stay ascending in energy.
        """
        if not 0.0 < lambda_min_a < lambda_max_a:
            raise ValueError("need 0 < lambda_min < lambda_max")
        wl = np.linspace(lambda_min_a, lambda_max_a, n_bins + 1)
        return cls((HC_KEV_ANGSTROM / wl)[::-1].copy())

    @property
    def n_bins(self) -> int:
        return self.edges.size - 1

    @property
    def lower(self) -> np.ndarray:
        return self.edges[:-1]

    @property
    def upper(self) -> np.ndarray:
        return self.edges[1:]

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def widths(self) -> np.ndarray:
        return np.diff(self.edges)

    @property
    def wavelength_centers(self) -> np.ndarray:
        """Bin-center wavelengths in Angstrom (descending as energy rises)."""
        return HC_KEV_ANGSTROM / self.centers


@dataclass
class Spectrum:
    """Per-bin integrated emission Lambda_RRC(E_bin) on a grid."""

    grid: EnergyGrid
    values: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (self.grid.n_bins,):
            raise ValueError(
                f"values shape {self.values.shape} does not match grid "
                f"({self.grid.n_bins} bins)"
            )

    @classmethod
    def zeros(cls, grid: EnergyGrid, **meta: object) -> "Spectrum":
        return cls(grid=grid, values=np.zeros(grid.n_bins), meta=dict(meta))

    def __add__(self, other: "Spectrum") -> "Spectrum":
        # Keep the left operand's meta, matching __iadd__.
        self._check_same_grid(other)
        return Spectrum(
            grid=self.grid,
            values=self.values + other.values,
            meta=dict(self.meta),
        )

    def __iadd__(self, other: "Spectrum") -> "Spectrum":
        self._check_same_grid(other)
        self.values += other.values
        return self

    def accumulate(self, bin_values: np.ndarray) -> None:
        """In-place add of a raw per-bin array (one ion's contribution)."""
        bin_values = np.asarray(bin_values, dtype=np.float64)
        if bin_values.shape != self.values.shape:
            raise ValueError("shape mismatch in accumulate")
        self.values += bin_values

    def normalized(self) -> "Spectrum":
        """Flux scaled so the peak bin equals 1 (Fig. 7's y-axis)."""
        peak = float(np.max(np.abs(self.values)))
        if peak == 0.0:
            return Spectrum(grid=self.grid, values=self.values.copy(), meta=dict(self.meta))
        return Spectrum(
            grid=self.grid, values=self.values / peak, meta=dict(self.meta)
        )

    def total(self) -> float:
        """Total emitted power (sum over bins; Eq. 2 already integrated)."""
        return float(np.sum(self.values))

    def relative_error_percent(self, reference: "Spectrum") -> np.ndarray:
        """Per-bin relative error vs a reference, in percent (Fig. 8).

        Bins where the reference is zero are reported as 0 when both agree
        and excluded (NaN) otherwise, matching how the paper's error
        histogram ignores empty bins.
        """
        self._check_same_grid(reference)
        ref = reference.values
        out = np.full(ref.shape, np.nan)
        nz = ref != 0.0
        out[nz] = (self.values[nz] - ref[nz]) / ref[nz] * 100.0
        both_zero = (~nz) & (self.values == 0.0)
        out[both_zero] = 0.0
        return out

    def rebin(self, factor: int) -> "Spectrum":
        """Merge every ``factor`` adjacent bins (flux-conserving).

        Per-bin values are already *integrated* emission (Eq. 2), so
        rebinning is a plain sum; ``n_bins`` must divide evenly.
        """
        if factor < 1:
            raise ValueError("rebin factor must be >= 1")
        if self.grid.n_bins % factor != 0:
            raise ValueError(
                f"{self.grid.n_bins} bins do not divide by {factor}"
            )
        new_edges = self.grid.edges[::factor]
        new_values = self.values.reshape(-1, factor).sum(axis=1)
        return Spectrum(
            grid=EnergyGrid(new_edges), values=new_values, meta=dict(self.meta)
        )

    def slice_energy(self, e_lo_kev: float, e_hi_kev: float) -> "Spectrum":
        """The sub-spectrum of whole bins inside ``[e_lo, e_hi]``."""
        if not e_lo_kev < e_hi_kev:
            raise ValueError("need e_lo < e_hi")
        edges = self.grid.edges
        keep = (edges[:-1] >= e_lo_kev) & (edges[1:] <= e_hi_kev)
        if not keep.any():
            raise ValueError("no whole bins inside the requested window")
        first = int(np.argmax(keep))
        last = int(len(keep) - np.argmax(keep[::-1]))
        return Spectrum(
            grid=EnergyGrid(edges[first : last + 1]),
            values=self.values[first:last].copy(),
            meta=dict(self.meta),
        )

    def slice_wavelength(self, wl_lo_a: float, wl_hi_a: float) -> "Spectrum":
        """Like :meth:`slice_energy`, bounds given in Angstrom."""
        if not 0.0 < wl_lo_a < wl_hi_a:
            raise ValueError("need 0 < wl_lo < wl_hi")
        return self.slice_energy(
            HC_KEV_ANGSTROM / wl_hi_a, HC_KEV_ANGSTROM / wl_lo_a
        )

    def _check_same_grid(self, other: "Spectrum") -> None:
        if self.grid.n_bins != other.grid.n_bins or not np.array_equal(
            self.grid.edges, other.grid.edges
        ):
            raise ValueError("spectra live on different grids")
