"""The radiative cooling function Lambda(T).

Integrating the emitted spectrum over photon energy gives the plasma's
total radiative power — the cooling function that drives thermal
evolution in hydro simulations (the upstream producer of the paper's
parameter spaces).  Built directly on the same emission components the
spectral calculator uses, so the cooling curve and the spectra are
mutually consistent by construction.

Physical expectations encoded in the tests: line + recombination
emission dominate around 1e5-1e7 K (the "cooling hump"); free-free takes
over at high temperature where ions are stripped; Lambda is normalized by
n_e n_H so density dependence divides out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.atomic.database import AtomicDatabase
from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.spectrum import EnergyGrid

__all__ = ["CoolingCurve", "cooling_function", "cooling_curve"]


def cooling_function(
    db: AtomicDatabase,
    temperature_k: float,
    grid: EnergyGrid | None = None,
    components: tuple[str, ...] = ("rrc", "lines", "brems"),
) -> float:
    """Lambda(T): total emitted power per unit n_e n_H (arbitrary scale).

    The integration grid defaults to a wide logarithmic energy window
    around kT so the exponential tails are captured at any temperature.
    """
    if temperature_k <= 0.0:
        raise ValueError("temperature must be positive")
    point = GridPoint(temperature_k=temperature_k, ne_cm3=1.0)
    if grid is None:
        kt = point.kt_kev
        e_lo = max(1e-4, kt * 1e-3)
        e_hi = max(kt * 30.0, db.max_binding_energy_kev() * 3.0)
        grid = EnergyGrid(np.geomspace(e_lo, e_hi, 241))
    apec = SerialAPEC(db, grid, method="simpson-batch", components=components)
    spectrum = apec.compute(point)
    n_h = 0.83 * point.ne_cm3
    return spectrum.total() / (point.ne_cm3 * n_h)


@dataclass(frozen=True)
class CoolingCurve:
    """Lambda(T) sampled on a temperature grid."""

    temperatures_k: np.ndarray
    lambda_values: np.ndarray

    def __post_init__(self) -> None:
        if self.temperatures_k.shape != self.lambda_values.shape:
            raise ValueError("temperature/value shape mismatch")

    def __len__(self) -> int:
        return int(self.temperatures_k.size)

    def interpolate(self, temperature_k: float) -> float:
        """Log-log interpolation of Lambda at an arbitrary temperature."""
        t = np.log10(temperature_k)
        xs = np.log10(self.temperatures_k)
        positive = self.lambda_values > 0.0
        ys = np.log10(np.where(positive, self.lambda_values, 1e-300))
        return float(10.0 ** np.interp(t, xs, ys))

    def peak_temperature(self) -> float:
        """The temperature of the cooling hump's maximum."""
        return float(self.temperatures_k[int(np.argmax(self.lambda_values))])

    def cooling_time_scale(self, temperature_k: float, ne_cm3: float) -> float:
        """~ thermal energy / radiated power, up to the package's scale.

        Only *ratios* of this quantity between temperatures/densities are
        meaningful (the emissivity carries an arbitrary overall constant).
        """
        from repro.constants import K_B_KEV

        lam = self.interpolate(temperature_k)
        if lam <= 0.0:
            return np.inf
        n_h = 0.83 * ne_cm3
        thermal = 3.0 * (ne_cm3 + n_h) * K_B_KEV * temperature_k / 2.0
        return thermal / (ne_cm3 * n_h * lam)


def cooling_curve(
    db: AtomicDatabase,
    t_min_k: float = 1.0e5,
    t_max_k: float = 1.0e8,
    n_samples: int = 25,
    components: tuple[str, ...] = ("rrc", "lines", "brems"),
) -> CoolingCurve:
    """Sample Lambda(T) on a log grid."""
    if not 0.0 < t_min_k < t_max_k:
        raise ValueError("need 0 < t_min < t_max")
    if n_samples < 2:
        raise ValueError("need at least two samples")
    temps = np.geomspace(t_min_k, t_max_k, n_samples)
    values = np.array(
        [cooling_function(db, float(t), components=components) for t in temps]
    )
    return CoolingCurve(temperatures_k=temps, lambda_values=values)
