"""The log-T spectrum lattice: nodes, certification, and refinement.

A :class:`SpectrumLattice` holds exact spectra at log-spaced
temperatures and serves any in-domain temperature by log-log
interpolation (:mod:`repro.approx.interp`).  The accuracy story is
*measured*, not assumed: every interval between adjacent nodes carries a
certificate obtained by evaluating the exact spectrum at the interval's
log-midpoint and comparing it with the interpolant there.  The certified
bound is ``safety x`` the measured peak-relative midpoint error — for
linear interpolation the error curve vanishes at both endpoints and
peaks near the midpoint, so the midpoint sample estimates the interval
maximum and the safety factor absorbs the curvature variation the single
sample cannot see.  Held-out sweeps in ``tests/approx`` verify the bound
empirically across methods and tail tolerances.

Refinement is bisection: :meth:`SpectrumLattice.refine` promotes an
interval's (already computed) midpoint spectrum to a full node and
certifies the two child intervals with one new exact evaluation each.
Each bisection cuts ``h`` in half and the O(h^2) interpolation error by
~4x, so a handful of demand-driven refinements walks any smooth interval
under its requested budget.

The exact evaluator is pluggable.  :func:`plan_exact_fn` builds one from
the megabatch plan path — every node evaluation goes through
:data:`repro.physics.plan.PLAN_CACHE` and ``SpectrumPlan.execute``, so a
whole lattice build is one plan compilation plus a vectorized sweep of
cheap temperature binds (the model-grid precomputation idiom of
production astronomy codes).  The service tier instead plugs in its own
payload evaluator (:class:`repro.approx.store.RequestEvaluator`), so the
certificate is measured against the very spectra the exact path would
serve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.approx.interp import (
    INTERP_METHODS,
    interpolate_loglog,
    peak_rel_error,
)

__all__ = [
    "ExactFn",
    "ExactManyFn",
    "LatticeSpec",
    "SpectrumLattice",
    "plan_exact_fn",
    "plan_exact_many_fn",
]

#: An exact spectrum evaluator: temperature (K) -> per-bin flux array.
ExactFn = Callable[[float], np.ndarray]

#: A batched exact evaluator: temperatures (K) -> one flux array each.
#: Contract: element ``i`` must be bit-identical to ``exact_fn(temps[i])``
#: — batching amortizes setup, never changes the answer.
ExactManyFn = Callable[[list[float]], list[np.ndarray]]

#: Flat bookkeeping charge per node (abscissa, list links, certificates).
NODE_OVERHEAD_BYTES = 64

#: Midpoint-to-maximum correction of the certificate, per method.  The
#: linear interpolant's error profile t(1-t) peaks exactly at the
#: sampled midpoint (factor 1).  The cubic Hermite's profile — shaped by
#: the three-point slope approximation — is systematically *smallest*
#: near the midpoint: measured on smooth service spectra the in-interval
#: maximum runs a uniform ~4.8x the midpoint sample, so the certificate
#: scales the sample by 5 before the user-facing safety factor applies.
_CERT_FACTOR = {"linear": 1.0, "cubic": 5.0}


@dataclass(frozen=True)
class LatticeSpec:
    """Shape of one lattice: domain, initial resolution, method."""

    t_min_k: float
    t_max_k: float
    #: Initial node count (log-spaced, inclusive of both endpoints).
    n_nodes: int = 17
    #: Interpolation method along ln kT ("linear" | "cubic").
    method: str = "linear"
    #: Certified bound = safety x measured midpoint error.
    safety: float = 2.0
    #: Hard cap on nodes per lattice (refinement stops here).
    max_nodes: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.t_min_k < self.t_max_k:
            raise ValueError("need 0 < t_min_k < t_max_k")
        if self.n_nodes < 2:
            raise ValueError("need at least two lattice nodes")
        if self.method not in INTERP_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; expected {INTERP_METHODS}"
            )
        if self.safety < 1.0:
            raise ValueError("safety factor must be >= 1")
        if self.max_nodes < self.n_nodes:
            raise ValueError("max_nodes must be >= n_nodes")
        # The midpoint certificate assumes the interpolation error is
        # resolved by one interior sample; intervals wider than ~1
        # e-fold of temperature break that (measured on service
        # spectra: sound at h <= 0.88, unsound at h >= 1.06), so a
        # minimum density is part of the spec's validity envelope
        # rather than a tuning suggestion.  The cap of 0.75 e-folds
        # per interval keeps a margin below the measured edge.
        span = math.log(self.t_max_k / self.t_min_k)
        needed = 1 + math.ceil(span / 0.75)
        if self.n_nodes < needed:
            raise ValueError(
                f"n_nodes={self.n_nodes} too coarse for a "
                f"{span:.1f} e-fold domain; need >= {needed} "
                "(at most 0.75 e-folds per interval)"
            )


@dataclass
class _Interval:
    """Certificate of one inter-node interval.

    The midpoint spectrum is retained so (a) re-certification after a
    neighbouring insert costs no exact evaluation (the cubic stencil
    changes when a neighbour gains a node) and (b) refinement promotes
    it to a node for free.
    """

    mid_u: float
    mid_values: np.ndarray
    abs_err: np.ndarray  # per-bin |interp(mid) - exact(mid)|
    rel_err: float  # peak-relative midpoint error

    @property
    def nbytes(self) -> int:
        return int(self.mid_values.nbytes + self.abs_err.nbytes)


class SpectrumLattice:
    """Exact spectra on a refinable log-T lattice with error certificates."""

    def __init__(
        self,
        spec: LatticeSpec,
        exact_fn: ExactFn,
        fingerprint: str = "",
        exact_many_fn: Optional[ExactManyFn] = None,
    ) -> None:
        self.spec = spec
        self.exact_fn = exact_fn
        #: Batched evaluator for node sets whose temperatures are known
        #: up front (the whole initial build).  Rides the megabatch path
        #: — one stacked launch instead of a node-by-node loop — and
        #: must return bit-identical spectra per temperature.
        self.exact_many_fn = exact_many_fn
        #: Content address of the inputs the node spectra derive from
        #: (database + grid); the store drops lattices whose fingerprint
        #: no longer matches the live evaluator's.
        self.fingerprint = fingerprint
        #: Exact evaluations performed (build + certification + refines).
        self.node_evals = 0
        u = np.log(
            np.geomspace(spec.t_min_k, spec.t_max_k, spec.n_nodes)
        )
        self._u: list[float] = [float(x) for x in u]
        # Build-time node and certificate temperatures are all known
        # before any evaluation happens, so both sweeps batch.
        self._values: list[np.ndarray] = self._eval_many_u(self._u)
        mid_us = [
            0.5 * (self._u[i] + self._u[i + 1])
            for i in range(len(self._u) - 1)
        ]
        mid_values = self._eval_many_u(mid_us)
        self._intervals: list[_Interval] = [
            self._measure(mu, mv) for mu, mv in zip(mid_us, mid_values)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self._u)

    @property
    def n_intervals(self) -> int:
        return len(self._intervals)

    @property
    def node_temperatures_k(self) -> np.ndarray:
        return np.exp(np.asarray(self._u))

    @property
    def nbytes(self) -> int:
        """Budgeted size: node spectra + certificates + fixed overhead."""
        payload = sum(v.nbytes for v in self._values)
        certs = sum(iv.nbytes for iv in self._intervals)
        return payload + certs + self.n_nodes * NODE_OVERHEAD_BYTES

    def max_certified_error(self) -> float:
        """The loosest interval's certified peak-relative bound."""
        return max(self.certified_error(i) for i in range(self.n_intervals))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def locate(self, temperature_k: float) -> Optional[int]:
        """Index of the interval containing ``T``; None outside the domain."""
        if temperature_k <= 0.0:
            return None
        u = math.log(temperature_k)
        if not self._u[0] <= u <= self._u[-1]:
            return None
        j = int(np.searchsorted(self._u, u, side="right"))
        return min(j - 1, self.n_intervals - 1) if j > 0 else 0

    @property
    def _cert_scale(self) -> float:
        return self.spec.safety * _CERT_FACTOR[self.spec.method]

    def certified_error(self, interval: int) -> float:
        """Peak-relative error bound certified for one interval."""
        return self._cert_scale * self._intervals[interval].rel_err

    def interpolate(self, temperature_k: float) -> np.ndarray:
        """The interpolated spectrum at ``T`` (must be in the domain)."""
        return interpolate_loglog(
            np.asarray(self._u),
            np.asarray(self._values),
            math.log(temperature_k),
            method=self.spec.method,
        )

    def error_bound(self, temperature_k: float) -> np.ndarray:
        """Per-bin absolute error bound at ``T``.

        ``safety x`` the containing interval's measured per-bin midpoint
        error — the computable certificate the broker attaches to every
        lattice-served spectrum.  A ``T`` exactly on a node is exact,
        but still reports its interval's bound (a valid over-estimate).
        """
        i = self.locate(temperature_k)
        if i is None:
            raise ValueError(
                f"temperature {temperature_k} outside the lattice domain"
            )
        return self._cert_scale * self._intervals[i].abs_err

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def refine(self, interval: int) -> None:
        """Bisect one interval: its midpoint becomes a node.

        Costs two exact evaluations (one per child certificate); the new
        node's spectrum was already computed for the parent certificate.
        Neighbouring intervals are re-certified for free when the cubic
        stencil shift touches them.
        """
        if self.n_nodes >= self.spec.max_nodes:
            raise ValueError(
                f"lattice at max_nodes={self.spec.max_nodes}; cannot refine"
            )
        iv = self._intervals[interval]
        self._u.insert(interval + 1, iv.mid_u)
        self._values.insert(interval + 1, iv.mid_values)
        self._intervals[interval: interval + 1] = [
            self._certify(interval),
            self._certify(interval + 1),
        ]
        if self.spec.method == "cubic":
            # The Hermite stencil of the flanking intervals now includes
            # the new node; refresh their certificates from the stored
            # midpoint spectra (no new exact evaluations).
            for j in (interval - 1, interval + 2):
                if 0 <= j < self.n_intervals:
                    self._intervals[j] = self._recertify(j, self._intervals[j])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eval_u(self, u: float) -> np.ndarray:
        self.node_evals += 1
        out = np.asarray(self.exact_fn(float(math.exp(u))), dtype=np.float64)
        out.setflags(write=False)
        return out

    def _eval_many_u(self, us: list[float]) -> list[np.ndarray]:
        """Evaluate a known set of node abscissae, batched when possible.

        With no batched evaluator this is exactly the node-by-node loop;
        with one, all temperatures go through a single megabatched call
        (bit-identical per node by the :data:`ExactManyFn` contract) and
        the eval counter advances by the same amount either way.
        """
        if self.exact_many_fn is None or len(us) <= 1:
            return [self._eval_u(u) for u in us]
        self.node_evals += len(us)
        values = self.exact_many_fn([float(math.exp(u)) for u in us])
        if len(values) != len(us):
            raise ValueError(
                f"batched evaluator returned {len(values)} spectra "
                f"for {len(us)} temperatures"
            )
        out = []
        for v in values:
            arr = np.asarray(v, dtype=np.float64)
            arr.setflags(write=False)
            out.append(arr)
        return out

    def _certify(self, interval: int) -> _Interval:
        mid_u = 0.5 * (self._u[interval] + self._u[interval + 1])
        mid_values = self._eval_u(mid_u)
        return self._measure(mid_u, mid_values)

    def _recertify(self, interval: int, old: _Interval) -> _Interval:
        return self._measure(old.mid_u, old.mid_values)

    def _measure(self, mid_u: float, mid_values: np.ndarray) -> _Interval:
        approx = interpolate_loglog(
            np.asarray(self._u),
            np.asarray(self._values),
            mid_u,
            method=self.spec.method,
        )
        raw = np.abs(approx - mid_values)
        # Per-bin certification from one midpoint sample needs two
        # corrections.  (a) Dilate by one bin to each side: in steep
        # spectral tails the error drops orders of magnitude bin to bin
        # and shifts sideways as T moves off the midpoint, so a bin's
        # bound must cover its neighbours' midpoint errors too.
        # (b) Floor at half the interval's peak error: fine sub-peak
        # structure in the midpoint sample is not certifiable across a
        # coarse interval, while the half-peak level *is* — every bin's
        # error is below the interval max, which the scalar certificate
        # (= cert scale x peak) covers with a factor-2 margin.  The
        # peak itself (and the scalar certificate) is unchanged.
        abs_err = raw.copy()
        if raw.size > 1:
            np.maximum(abs_err[1:], raw[:-1], out=abs_err[1:])
            np.maximum(abs_err[:-1], raw[1:], out=abs_err[:-1])
        np.maximum(abs_err, 0.5 * float(raw.max(initial=0.0)), out=abs_err)
        abs_err.setflags(write=False)
        return _Interval(
            mid_u=mid_u,
            mid_values=mid_values,
            abs_err=abs_err,
            rel_err=peak_rel_error(approx, mid_values),
        )


def plan_exact_fn(
    db,
    grid,
    ions=None,
    method: str = "simpson",
    pieces: int = 64,
    k: int = 7,
    gl_points: int = 12,
    tail_tol: float = 0.0,
    gaunt: bool = True,
    ne_cm3: float = 1.0,
    plan_cache=None,
) -> ExactFn:
    """An :data:`ExactFn` over the megabatch plan path.

    All evaluations share one compiled :class:`~repro.physics.plan.
    SpectrumPlan` out of the plan cache — building a lattice is exactly
    the cheap sweep the plan was designed for: compile once, bind a
    temperature per node, one fused launch each.
    """
    from repro.physics.apec import GridPoint
    from repro.physics.plan import PLAN_CACHE

    cache = plan_cache if plan_cache is not None else PLAN_CACHE

    def exact(temperature_k: float) -> np.ndarray:
        plan = cache.get(
            db, grid, ions=ions, method=method, pieces=pieces, k=k,
            gl_points=gl_points, tail_tol=tail_tol, gaunt=gaunt,
        )
        point = GridPoint(temperature_k=temperature_k, ne_cm3=ne_cm3)
        return plan.execute(point).values

    return exact


def plan_exact_many_fn(
    db,
    grid,
    ions=None,
    method: str = "simpson",
    pieces: int = 64,
    k: int = 7,
    gl_points: int = 12,
    tail_tol: float = 0.0,
    gaunt: bool = True,
    ne_cm3: float = 1.0,
    plan_cache=None,
) -> ExactManyFn:
    """An :data:`ExactManyFn` over ``SpectrumPlan.execute_many``.

    The batched companion of :func:`plan_exact_fn`: a whole lattice
    build becomes one plan lookup plus a single stacked-exp megabatch
    over every node temperature, bit-identical per node to the scalar
    evaluator.
    """
    from repro.physics.apec import GridPoint
    from repro.physics.plan import PLAN_CACHE

    cache = plan_cache if plan_cache is not None else PLAN_CACHE

    def exact_many(temps_k: list[float]) -> list[np.ndarray]:
        plan = cache.get(
            db, grid, ions=ions, method=method, pieces=pieces, k=k,
            gl_points=gl_points, tail_tol=tail_tol, gaunt=gaunt,
        )
        points = [
            GridPoint(temperature_k=float(t), ne_cm3=ne_cm3) for t in temps_k
        ]
        return [res.values for res in plan.execute_many(points)]

    return exact_many
