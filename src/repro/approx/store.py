"""The lattice store: per-family lattices, byte budget, invalidation.

One :class:`LatticeStore` sits beside the exact spectrum cache in the
broker.  Requests that declare a positive ``accuracy`` budget are
grouped by :attr:`~repro.service.requests.SpectrumRequest.family_key`
(everything but temperature and accuracy); each family gets one
:class:`~repro.approx.lattice.SpectrumLattice` built on demand and
shared by every temperature in that family.  The serve path is:

1. locate the request's temperature on the family lattice (outside the
   domain: **miss**, the broker computes exactly);
2. compare the containing interval's certified error with the declared
   budget; while it is too loose, bisect (up to ``refine_max`` per
   request) — each bisection is bounded, demand-driven work that stays
   paid for in the lattice;
3. certificate within budget: **hit**, return the interpolated spectrum
   plus its error bound; still too loose: **fallback**, the broker
   computes exactly and the booking shows where the lattice lost.

The store enforces a byte budget with LRU eviction across families and
drops any lattice whose input fingerprint (database + energy grid) no
longer matches the live evaluator — stale spectra are never served.
Lattice construction is host-side precomputation (the plan-compilation
idiom: zero virtual time), so building costs wall time once and every
subsequent in-budget request is an O(1) lookup.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.approx.lattice import (
    ExactFn,
    ExactManyFn,
    LatticeSpec,
    SpectrumLattice,
)
from repro.obs.tracer import NULL_TRACER

__all__ = ["LatticeResult", "LatticeStats", "LatticeStore", "RequestEvaluator"]


class RequestEvaluator:
    """Exact service-path spectra for lattice nodes.

    Nodes are evaluated with :func:`repro.service.requests.
    request_spectrum` — the *same* payload function the broker's exact
    path uses — so a lattice certificate measures distance from exactly
    what an ``accuracy=0`` request would have returned.
    """

    def __init__(self, db) -> None:
        self.db = db

    def fingerprint(self, request) -> str:
        """Content address of everything a node spectrum derives from."""
        from repro.physics.plan import db_fingerprint, grid_fingerprint
        from repro.service.requests import request_grid

        text = "|".join(
            (
                db_fingerprint(self.db),
                grid_fingerprint(request_grid(request)),
                request.family_canonical(),
            )
        )
        return hashlib.sha1(text.encode("ascii")).hexdigest()

    def exact_fn(self, request) -> ExactFn:
        """Exact evaluator over temperature for one request family."""
        from repro.service.requests import request_spectrum

        n_max = self.db.config.n_max
        z_max = self.db.config.z_max

        def exact(temperature_k: float) -> np.ndarray:
            probe = dataclasses.replace(
                request, temperature_k=float(temperature_k), accuracy=0.0
            )
            return request_spectrum((probe, n_max, z_max))

        return exact

    def exact_many_fn(self, request) -> "ExactManyFn":
        """Batched node evaluator over the megabatch payload path.

        Lattice builds know every node temperature up front, so node
        refills ride :func:`repro.service.requests.family_spectra` —
        one ion-major stacked evaluation whose row ``j`` is
        bit-identical to ``exact_fn(request)(temps[j])``.
        """
        from repro.service.requests import family_spectra

        n_max = self.db.config.n_max
        z_max = self.db.config.z_max

        def exact_many(temps_k: list) -> list[np.ndarray]:
            probes = tuple(
                dataclasses.replace(
                    request, temperature_k=float(t), accuracy=0.0
                )
                for t in temps_k
            )
            stacked = family_spectra((probes, n_max, z_max))
            return [stacked[j].copy() for j in range(stacked.shape[0])]

        return exact_many


@dataclass
class LatticeStats:
    """Serve-path and lifecycle counters of one store."""

    requests: int = 0
    #: Served by interpolation within the declared budget.
    hits: int = 0
    #: Temperature outside the lattice domain (no interpolant exists).
    misses: int = 0
    #: In domain, but the certificate stayed above budget after the
    #: allowed refinement — the broker computed exactly instead.
    fallbacks: int = 0
    refinements: int = 0
    builds: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Exact node evaluations paid across builds and refinements.
    node_evals: int = 0

    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "refinements": self.refinements,
            "builds": self.builds,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "node_evals": self.node_evals,
            "hit_ratio": self.hit_ratio(),
        }


@dataclass
class LatticeResult:
    """Outcome of one lattice lookup."""

    #: "hit" | "miss" | "fallback"
    status: str
    #: Interpolated spectrum on a hit; ``None`` otherwise.
    values: Optional[np.ndarray] = None
    #: Certified peak-relative error bound of the served spectrum.
    error_bound: float = 0.0
    #: Certified per-bin absolute error bound (hits only).
    abs_bound: Optional[np.ndarray] = None
    #: Intervals bisected while serving this request.
    refinements: int = 0

    @property
    def served(self) -> bool:
        return self.status == "hit"


@dataclass
class LatticeStore:
    """Byte-budgeted, fingerprint-checked family lattices."""

    evaluator: RequestEvaluator
    spec: LatticeSpec
    #: Store-wide byte budget; LRU families are evicted past it.  The
    #: most recent family is never evicted, so one lattice may exceed
    #: the budget rather than thrash rebuild-per-request.
    max_bytes: int = 8 << 20
    #: Interval bisections allowed per served request.
    refine_max: int = 2
    tracer: object = NULL_TRACER
    track: int = 0
    stats: LatticeStats = field(default_factory=LatticeStats)

    def __post_init__(self) -> None:
        if self.max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if self.refine_max < 0:
            raise ValueError("refine_max must be >= 0")
        self._lattices: OrderedDict[str, SpectrumLattice] = OrderedDict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lattices)

    @property
    def bytes_stored(self) -> int:
        return sum(lat.nbytes for lat in self._lattices.values())

    @property
    def n_nodes(self) -> int:
        return sum(lat.n_nodes for lat in self._lattices.values())

    def lattice(self, family_key: str) -> Optional[SpectrumLattice]:
        """The family's lattice, if resident (no LRU touch)."""
        return self._lattices.get(family_key)

    def as_dict(self) -> dict:
        out = self.stats.as_dict()
        out["families"] = len(self)
        out["nodes"] = self.n_nodes
        out["bytes_stored"] = self.bytes_stored
        return out

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(self, request) -> LatticeResult:
        """Serve one positive-accuracy request from its family lattice.

        Never raises for in-protocol requests: anything the lattice
        cannot certify within budget comes back as a miss or fallback
        for the broker's exact path.
        """
        self.stats.requests += 1
        lat = self._resident(request)
        i = lat.locate(request.temperature_k)
        if i is None:
            self.stats.misses += 1
            self._instant("lattice.miss", request)
            return LatticeResult(status="miss")

        refined = 0
        evals_before = lat.node_evals
        while (
            lat.certified_error(i) > request.accuracy
            and refined < self.refine_max
            and lat.n_nodes < lat.spec.max_nodes
        ):
            lat.refine(i)
            refined += 1
            self.stats.refinements += 1
            self._instant("lattice.refine", request)
            i = lat.locate(request.temperature_k)
        self.stats.node_evals += lat.node_evals - evals_before
        if refined:
            self._enforce_budget(keep=request.family_key)

        bound = lat.certified_error(i)
        if bound > request.accuracy:
            self.stats.fallbacks += 1
            self._instant("lattice.fallback", request, bound=bound)
            return LatticeResult(
                status="fallback", error_bound=bound, refinements=refined
            )

        self.stats.hits += 1
        self._instant("lattice.hit", request, bound=bound)
        return LatticeResult(
            status="hit",
            values=lat.interpolate(request.temperature_k),
            error_bound=bound,
            abs_bound=lat.error_bound(request.temperature_k),
            refinements=refined,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self, family_key: Optional[str] = None) -> int:
        """Drop one family (or all); returns the number dropped."""
        if family_key is None:
            n = len(self._lattices)
            self._lattices.clear()
        else:
            n = 1 if self._lattices.pop(family_key, None) is not None else 0
        self.stats.invalidations += n
        return n

    def _resident(self, request) -> SpectrumLattice:
        """The request family's lattice, building/validating as needed."""
        key = request.family_key
        fp = self.evaluator.fingerprint(request)
        lat = self._lattices.get(key)
        if lat is not None and lat.fingerprint != fp:
            # Database or grid changed under the family: stale spectra.
            del self._lattices[key]
            self.stats.invalidations += 1
            self._instant("lattice.invalidate", request)
            lat = None
        if lat is None:
            # Duck-typed evaluators (tests, plan-backed sweeps) may not
            # offer a batched path; the lattice then builds node by node.
            many_factory = getattr(self.evaluator, "exact_many_fn", None)
            lat = SpectrumLattice(
                self.spec,
                self.evaluator.exact_fn(request),
                fingerprint=fp,
                exact_many_fn=(
                    many_factory(request) if many_factory is not None else None
                ),
            )
            self._lattices[key] = lat
            self.stats.builds += 1
            self.stats.node_evals += lat.node_evals
            self._instant(
                "lattice.build", request,
                nodes=lat.n_nodes, nbytes=lat.nbytes,
            )
            self._enforce_budget(keep=key)
        else:
            self._lattices.move_to_end(key)
        return lat

    def _enforce_budget(self, keep: str) -> None:
        while self.bytes_stored > self.max_bytes and len(self._lattices) > 1:
            victim = next(iter(self._lattices))
            if victim == keep:
                self._lattices.move_to_end(victim, last=False)
                break
            del self._lattices[victim]
            self.stats.evictions += 1

    def _instant(self, name: str, request, **extra) -> None:
        if getattr(self.tracer, "enabled", False):
            args = {
                "family": request.family_key[:8],
                "T": request.temperature_k,
                "accuracy": request.accuracy,
            }
            args.update(extra)
            self.tracer.instant(self.track, name, cat="approx", args=args)
