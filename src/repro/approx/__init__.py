"""Approximate serving: log-T spectrum lattices with certified error.

The service's answer to a continuous temperature axis defeating exact
content-address caching: precompute spectra on a refinable log-spaced
temperature lattice (:mod:`repro.approx.lattice`), interpolate in
log-log space with a measured per-interval error certificate
(:mod:`repro.approx.interp`), and serve any request whose declared
``accuracy`` budget the certificate satisfies from the lattice in O(1)
(:mod:`repro.approx.store`).  Requests the lattice cannot certify fall
back to the exact path — accuracy is a contract, never a hope.
"""

from repro.approx.interp import (
    INTERP_METHODS,
    interpolate_loglog,
    peak_rel_error,
)
from repro.approx.lattice import (
    ExactFn,
    ExactManyFn,
    LatticeSpec,
    SpectrumLattice,
    plan_exact_fn,
    plan_exact_many_fn,
)
from repro.approx.store import (
    LatticeResult,
    LatticeStats,
    LatticeStore,
    RequestEvaluator,
)

__all__ = [
    "ExactFn",
    "ExactManyFn",
    "INTERP_METHODS",
    "LatticeResult",
    "LatticeSpec",
    "LatticeStats",
    "LatticeStore",
    "RequestEvaluator",
    "SpectrumLattice",
    "interpolate_loglog",
    "peak_rel_error",
    "plan_exact_fn",
    "plan_exact_many_fn",
]
