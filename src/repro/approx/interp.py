"""Log-log spectral interpolation kernels and the error metric.

The lattice tier stores spectra at log-spaced temperatures and serves
intermediate temperatures by interpolating each bin's flux along the
``u = ln kT`` axis.  Fluxes span many orders of magnitude and are close
to exponential in ``1/kT``, so the natural variable pair is
``(ln kT, ln flux)`` — log-log interpolation linearizes the dominant
``exp(-E/kT)`` behaviour and keeps the per-interval curvature (and with
it the interpolation error) small.

Bins can hold *exactly* zero flux (a bin entirely above every modelled
edge), where the log transform is undefined.  Rather than flooring into
a fake epsilon, each bin picks its transform from its own stencil: bins
whose stencil values are all positive interpolate in log flux, the rest
fall back to linear flux (which reproduces exact zeros exactly).

Errors are measured **peak-relative**: ``max |approx - exact|`` over
bins divided by the exact spectrum's peak.  Per-bin relative error is
meaningless in the far tail (fluxes underflow toward 0 where even a
perfect method has huge relative noise); peak-normalized error is the
metric the repo's fused-kernel gates already use
(``fused_max_rel_err`` in :mod:`repro.bench.harness`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "INTERP_METHODS",
    "interpolate_loglog",
    "peak_rel_error",
]

#: Supported interpolation methods along the log-T axis.
INTERP_METHODS = ("linear", "cubic")

#: Peak floor guarding the relative-error division for all-zero spectra.
_TINY_PEAK = 1.0e-300


def peak_rel_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Peak-relative error: ``max |approx - exact| / max |exact|``."""
    approx = np.asarray(approx, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    peak = max(float(np.max(np.abs(exact))), _TINY_PEAK)
    return float(np.max(np.abs(approx - exact)) / peak)


def _log_mask(stencil: np.ndarray) -> np.ndarray:
    """Bins safe for the log transform: every stencil value positive."""
    return np.all(stencil > 0.0, axis=0)


def _hermite_slopes(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-node derivative estimates dv/du on a non-uniform grid.

    Interior nodes use the h-weighted three-point formula (exact for
    quadratics); the end nodes use one-sided secants.  ``u`` is (n,)
    ascending, ``v`` is (n, bins); returns (n, bins).
    """
    n = u.size
    dv = np.diff(v, axis=0)
    h = np.diff(u)[:, None]
    sec = dv / h
    m = np.empty_like(v)
    m[0] = sec[0]
    m[-1] = sec[-1]
    if n > 2:
        h0 = h[:-1]
        h1 = h[1:]
        m[1:-1] = (h1 * sec[:-1] + h0 * sec[1:]) / (h0 + h1)
    return m


def _hermite_eval(
    u0: float, u1: float, v0: np.ndarray, v1: np.ndarray,
    m0: np.ndarray, m1: np.ndarray, u: float,
) -> np.ndarray:
    """Cubic Hermite value at ``u`` on one interval (vectorized per bin)."""
    h = u1 - u0
    t = (u - u0) / h
    t2 = t * t
    t3 = t2 * t
    h00 = 2.0 * t3 - 3.0 * t2 + 1.0
    h10 = t3 - 2.0 * t2 + t
    h01 = -2.0 * t3 + 3.0 * t2
    h11 = t3 - t2
    return h00 * v0 + h10 * h * m0 + h01 * v1 + h11 * h * m1


def interpolate_loglog(
    u_nodes: np.ndarray,
    values: np.ndarray,
    u: float,
    method: str = "linear",
) -> np.ndarray:
    """Interpolate node spectra to one abscissa ``u`` (``= ln kT``).

    ``u_nodes`` is a (n,) strictly-ascending array, ``values`` the
    matching (n, bins) node spectra.  ``u`` must lie inside
    ``[u_nodes[0], u_nodes[-1]]``.  ``method`` is ``"linear"`` (2-node
    stencil) or ``"cubic"`` (4-node Hermite stencil, clamped at the
    boundary).  Each bin interpolates ``ln flux`` when its whole stencil
    is positive and raw flux otherwise; a ``u`` exactly on a node
    returns that node's spectrum bit for bit.
    """
    u_nodes = np.asarray(u_nodes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if method not in INTERP_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {INTERP_METHODS}"
        )
    n = u_nodes.size
    if n < 2:
        raise ValueError("need at least two lattice nodes")
    if not u_nodes[0] <= u <= u_nodes[-1]:
        raise ValueError(
            f"u={u} outside the lattice domain "
            f"[{u_nodes[0]}, {u_nodes[-1]}]"
        )
    # Node coincidence: serve the stored spectrum exactly.
    j = int(np.searchsorted(u_nodes, u))
    if j < n and u_nodes[j] == u:
        return values[j].copy()
    i = j - 1  # containing interval [u_i, u_{i+1}]

    if method == "linear":
        lo, hi = i, i + 2
    else:
        lo, hi = max(0, i - 1), min(n, i + 3)
    stencil = values[lo:hi]
    log_ok = _log_mask(stencil)

    def blend(vals: np.ndarray) -> np.ndarray:
        """Interpolate one (stencil, bins) value block at ``u``."""
        if method == "linear":
            t = (u - u_nodes[i]) / (u_nodes[i + 1] - u_nodes[i])
            return (1.0 - t) * vals[i - lo] + t * vals[i + 1 - lo]
        m = _hermite_slopes(u_nodes[lo:hi], vals)
        return _hermite_eval(
            u_nodes[i], u_nodes[i + 1],
            vals[i - lo], vals[i + 1 - lo],
            m[i - lo], m[i + 1 - lo], u,
        )

    out = blend(stencil)
    if log_ok.any():
        logged = np.exp(blend(np.log(stencil[:, log_ok])))
        out[log_ok] = logged
    return out
