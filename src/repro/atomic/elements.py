"""Elements Z = 1..31 and their cosmic abundances.

The paper counts "the most abundant elements in the universe which totally
contain 496 ions".  A recombining ion (Z, j+1) exists for every charge
state j+1 in 1..Z, so elements Z = 1..31 give exactly
sum_{Z=1}^{31} Z = 496 ions.

Abundances follow the Anders & Grevesse (1989) solar photosphere scale,
``log10(N_X / N_H) + 12``, with smooth interpolation for the elements that
table treats as trace; only relative magnitudes matter for spectral shape.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Element", "ELEMENTS", "MAX_Z", "cosmic_abundance"]

MAX_Z: int = 31

_SYMBOLS = [
    "H", "He", "Li", "Be", "B", "C", "N", "O", "F", "Ne",
    "Na", "Mg", "Al", "Si", "P", "S", "Cl", "Ar", "K", "Ca",
    "Sc", "Ti", "V", "Cr", "Mn", "Fe", "Co", "Ni", "Cu", "Zn",
    "Ga",
]

_NAMES = [
    "hydrogen", "helium", "lithium", "beryllium", "boron", "carbon",
    "nitrogen", "oxygen", "fluorine", "neon", "sodium", "magnesium",
    "aluminium", "silicon", "phosphorus", "sulfur", "chlorine", "argon",
    "potassium", "calcium", "scandium", "titanium", "vanadium", "chromium",
    "manganese", "iron", "cobalt", "nickel", "copper", "zinc", "gallium",
]

# log10(N/N_H) + 12, Anders & Grevesse (1989)-like values.
_LOG_ABUND = [
    12.00, 10.99, 1.16, 1.15, 2.6, 8.56, 8.05, 8.93, 4.56, 8.09,
    6.33, 7.58, 6.47, 7.55, 5.45, 7.21, 5.5, 6.56, 5.12, 6.36,
    3.10, 4.99, 4.00, 5.67, 5.39, 7.67, 4.92, 6.25, 4.21, 4.60,
    3.13,
]


@dataclass(frozen=True)
class Element:
    """One chemical element.

    Attributes
    ----------
    z:
        Atomic number.
    symbol, name:
        Standard chemical symbol and lowercase English name.
    log_abundance:
        ``log10(N_X / N_H) + 12`` on the solar scale.
    """

    z: int
    symbol: str
    name: str
    log_abundance: float

    @property
    def abundance(self) -> float:
        """Number density relative to hydrogen, N_X / N_H."""
        return 10.0 ** (self.log_abundance - 12.0)

    @property
    def n_ions(self) -> int:
        """Number of recombining charge states: j+1 runs over 1..Z."""
        return self.z


#: All elements, keyed by atomic number 1..31.
ELEMENTS: dict[int, Element] = {
    z: Element(
        z=z,
        symbol=_SYMBOLS[z - 1],
        name=_NAMES[z - 1],
        log_abundance=_LOG_ABUND[z - 1],
    )
    for z in range(1, MAX_Z + 1)
}


def cosmic_abundance(z: int) -> float:
    """Number density of element ``z`` relative to hydrogen."""
    try:
        return ELEMENTS[z].abundance
    except KeyError:
        raise ValueError(f"element Z={z} outside supported range 1..{MAX_Z}") from None
