"""Assembly and caching of the synthetic atomic database.

:class:`AtomicDatabase` is the single entry point the spectral code uses:
it owns the ion registry, builds (and memoizes) per-ion level structures,
and exposes validation so tests can assert database-wide invariants in one
call.  Two presets bracket the scale:

- :meth:`AtomicConfig.small` — n_max = 10 (55 levels max/ion), for tests
  and quick examples;
- :meth:`AtomicConfig.paper` — n_max = 62, giving the "thousands [of]
  energy levels in each ion" of the paper (1953 for a full ladder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atomic.elements import MAX_Z
from repro.atomic.ions import Ion, ion_registry
from repro.atomic.levels import LevelStructure, build_levels

__all__ = ["AtomicConfig", "AtomicDatabase"]


@dataclass(frozen=True)
class AtomicConfig:
    """Size knobs of the synthetic database.

    Attributes
    ----------
    n_max:
        Principal-quantum-number cutoff of the hydrogenic ladders.
    z_max:
        Highest element included (default all 31 -> 496 ions); lower values
        shrink the ion set for unit tests (e.g. z_max=8 -> 36 ions).
    """

    n_max: int = 10
    z_max: int = MAX_Z

    def __post_init__(self) -> None:
        if self.n_max < 1:
            raise ValueError(f"n_max must be >= 1, got {self.n_max}")
        if not 1 <= self.z_max <= MAX_Z:
            raise ValueError(f"z_max must be 1..{MAX_Z}, got {self.z_max}")

    @classmethod
    def small(cls) -> "AtomicConfig":
        """Test-scale database: full ion set, short level ladders."""
        return cls(n_max=10)

    @classmethod
    def tiny(cls) -> "AtomicConfig":
        """Minimal database for fast unit tests: 36 ions, tiny ladders."""
        return cls(n_max=4, z_max=8)

    @classmethod
    def paper(cls) -> "AtomicConfig":
        """Paper-scale database: thousands of levels per ion."""
        return cls(n_max=62)


class AtomicDatabase:
    """Memoizing facade over the synthetic atomic data.

    Thread-safety note: construction of a level structure is deterministic
    and idempotent, so the worst a race can do is duplicate work; the cache
    dict write is atomic under the GIL.
    """

    def __init__(self, config: AtomicConfig | None = None) -> None:
        self.config = config or AtomicConfig.small()
        self._levels: dict[Ion, LevelStructure] = {}

    @property
    def ions(self) -> tuple[Ion, ...]:
        """All ions in scope, (Z, charge) ordered."""
        return tuple(i for i in ion_registry() if i.z <= self.config.z_max)

    def levels(self, ion: Ion) -> LevelStructure:
        """Level structure of the recombined product of ``ion`` (cached)."""
        if ion.z > self.config.z_max:
            raise ValueError(
                f"{ion.name} outside configured z_max={self.config.z_max}"
            )
        cached = self._levels.get(ion)
        if cached is None:
            cached = build_levels(ion.z, ion.charge, self.config.n_max)
            self._levels[ion] = cached
        return cached

    def n_levels(self, ion: Ion) -> int:
        return len(self.levels(ion))

    def total_levels(self) -> int:
        """Sum of level counts over every ion in scope."""
        return sum(self.n_levels(ion) for ion in self.ions)

    def max_binding_energy_kev(self) -> float:
        """Largest binding energy across the database (spectral hard edge)."""
        return max(float(self.levels(ion).energy_kev.max()) for ion in self.ions)

    def validate(self) -> None:
        """Database-wide invariant checks; raises ``ValueError`` on breach.

        - every binding energy positive and finite;
        - within an ion, ground state (n=1, l=0) is the most bound level;
        - energies weakly decrease along the n-ladder at fixed l;
        - degeneracies equal 2(2l+1).
        """
        for ion in self.ions:
            ls = self.levels(ion)
            e = ls.energy_kev
            if not np.all(np.isfinite(e)) or np.any(e <= 0.0):
                raise ValueError(f"{ion.name}: invalid binding energies")
            if e.argmax() != 0:
                raise ValueError(f"{ion.name}: ground state is not most bound")
            for l in np.unique(ls.l_arr):
                sel = ls.l_arr == l
                series = e[sel][np.argsort(ls.n_arr[sel])]
                if np.any(np.diff(series) > 0.0):
                    raise ValueError(
                        f"{ion.name}: binding energy not decreasing in n at l={l}"
                    )
            if np.any(ls.degeneracy != 2 * (2 * ls.l_arr + 1)):
                raise ValueError(f"{ion.name}: bad degeneracies")
