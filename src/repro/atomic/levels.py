"""Hydrogenic level structure with quantum-defect screening.

Each recombined ion (Z, j) carries a ladder of bound levels (n, l).  Real
ATOMDB level data is replaced by the hydrogenic form

    I(Z, j, n, l) = Ry * c_eff(Z, c, l)^2 / (n - delta_l)^2

where ``c`` is the recombining charge, ``c_eff`` interpolates between the
bare nuclear charge (no screening, c = Z) and a screened charge for many
core electrons, and ``delta_l`` is a quantum defect that decays with
orbital angular momentum — the textbook behaviour of Rydberg series.  This
keeps the two properties that matter for the workload: binding energies
decrease like 1/n^2 (so integrand edges pile up toward low photon energy)
and each ion has a *different* number of levels/energy scale, making task
costs inhomogeneous exactly as in APEC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import RYDBERG_KEV

__all__ = ["Level", "LevelStructure", "build_levels", "n_levels_for"]


@dataclass(frozen=True)
class Level:
    """One bound (n, l) level of a recombined ion."""

    n: int
    l: int
    energy_kev: float  # binding energy I > 0
    degeneracy: int  # statistical weight g = 2 (2l + 1)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"principal quantum number must be >= 1, got {self.n}")
        if not 0 <= self.l < self.n:
            raise ValueError(f"l={self.l} invalid for n={self.n}")
        if self.energy_kev <= 0.0:
            raise ValueError("binding energy must be positive")


@dataclass(frozen=True)
class LevelStructure:
    """Vectorized level data for one ion, ready for batch kernels.

    Arrays are aligned: entry ``i`` describes level ``i`` in (n, l) order.
    """

    z: int
    charge: int
    n_arr: np.ndarray  # int64, principal quantum numbers
    l_arr: np.ndarray  # int64, orbital quantum numbers
    energy_kev: np.ndarray  # float64, binding energies, descending in n
    degeneracy: np.ndarray  # int64, 2(2l+1)
    c_eff: np.ndarray  # float64, effective charge per level

    def __post_init__(self) -> None:
        sizes = {
            a.shape
            for a in (
                self.n_arr,
                self.l_arr,
                self.energy_kev,
                self.degeneracy,
                self.c_eff,
            )
        }
        if len(sizes) != 1:
            raise ValueError("level arrays must be aligned")

    def __len__(self) -> int:
        return int(self.n_arr.size)

    def level(self, i: int) -> Level:
        """Materialize level ``i`` as a :class:`Level` object."""
        return Level(
            n=int(self.n_arr[i]),
            l=int(self.l_arr[i]),
            energy_kev=float(self.energy_kev[i]),
            degeneracy=int(self.degeneracy[i]),
        )


def effective_charge(z: int, charge: int, l: int) -> float:
    """Effective charge seen by the captured electron.

    Slater-like screening: s-electrons (low l) penetrate the core and see
    more nuclear charge; high-l orbits see the asymptotic ionic charge
    ``charge``.  For hydrogen-like ions (charge == z) there is nothing to
    screen and the value is exactly ``z``.
    """
    core = z - charge  # electrons already bound
    if core == 0:
        return float(z)
    penetration = np.exp(-0.7 * l)
    return charge + core * 0.35 * penetration


def quantum_defect(z: int, charge: int, l: int) -> float:
    """Quantum defect delta_l, decaying ~exponentially with l.

    Bounded well below 1 so that (n - delta) stays positive for n >= 1.
    """
    core = z - charge
    if core == 0:
        return 0.0
    scale = 0.3 * core / z
    return scale * np.exp(-0.8 * l)


def n_levels_for(z: int, charge: int, n_max: int) -> int:
    """Number of (n, l) levels an ion carries for a given ``n_max``.

    Heavier / more highly charged ions hold their full hydrogenic ladder
    ``n_max (n_max+1)/2``; low-charge ions of light elements are cut off
    earlier (the paper: "some methods of cutting off the level calculation
    is necessary"), which makes per-ion task sizes genuinely unequal.
    """
    if n_max < 1:
        raise ValueError(f"n_max must be >= 1, got {n_max}")
    # Cutoff grows with charge: bare/hydrogenic ions keep every level.
    frac = 0.4 + 0.6 * (charge / z)
    eff_n_max = max(1, int(round(n_max * frac)))
    return eff_n_max * (eff_n_max + 1) // 2


def build_levels(z: int, charge: int, n_max: int) -> LevelStructure:
    """Build the level arrays of the recombined ion (Z, charge-1).

    Levels are ordered by (n, l); binding energies follow the
    quantum-defect hydrogenic formula with ``c_eff``.
    """
    total = n_levels_for(z, charge, n_max)
    # Invert the triangular count to recover the effective n_max.
    eff_n_max = int((np.sqrt(8.0 * total + 1.0) - 1.0) / 2.0 + 0.5)
    n_list, l_list = [], []
    for n in range(1, eff_n_max + 1):
        for l in range(n):
            n_list.append(n)
            l_list.append(l)
    n_arr = np.array(n_list, dtype=np.int64)
    l_arr = np.array(l_list, dtype=np.int64)

    c_eff = np.array(
        [effective_charge(z, charge, int(l)) for l in l_arr], dtype=np.float64
    )
    delta = np.array(
        [quantum_defect(z, charge, int(l)) for l in l_arr], dtype=np.float64
    )
    energy = RYDBERG_KEV * c_eff**2 / (n_arr - delta) ** 2
    degeneracy = 2 * (2 * l_arr + 1)
    return LevelStructure(
        z=z,
        charge=charge,
        n_arr=n_arr,
        l_arr=l_arr,
        energy_kev=energy,
        degeneracy=degeneracy,
        c_eff=c_eff,
    )
