"""Synthetic ATOMDB-like atomic database.

APEC draws level energies, recombination cross sections and ionization
balance data from the ATOMDB database, which is not redistributable here.
This package generates a *synthetic but physically shaped* replacement:

- elements Z = 1..31 whose recombining ions number exactly
  sum(Z) = 496, matching the paper's "496 ions";
- hydrogenic level structure with quantum-defect screening
  (:mod:`repro.atomic.levels`);
- Kramers photoionization cross sections mapped to recombination cross
  sections through the Milne relation (:mod:`repro.atomic.cross_sections`);
- Voronov-form collisional ionization and radiative+dielectronic
  recombination rate coefficients (:mod:`repro.atomic.rates`).

Everything is deterministic: the same configuration always produces the
same database, so experiments are exactly reproducible.
"""

from repro.atomic.elements import Element, ELEMENTS, cosmic_abundance
from repro.atomic.ions import Ion, ion_registry, TOTAL_IONS
from repro.atomic.levels import Level, LevelStructure, build_levels
from repro.atomic.cross_sections import (
    kramers_photoionization,
    milne_recombination,
    recombination_cross_section,
)
from repro.atomic.rates import ionization_rate, recombination_rate
from repro.atomic.database import AtomicConfig, AtomicDatabase

__all__ = [
    "Element",
    "ELEMENTS",
    "cosmic_abundance",
    "Ion",
    "ion_registry",
    "TOTAL_IONS",
    "Level",
    "LevelStructure",
    "build_levels",
    "kramers_photoionization",
    "milne_recombination",
    "recombination_cross_section",
    "ionization_rate",
    "recombination_rate",
    "AtomicConfig",
    "AtomicDatabase",
]
