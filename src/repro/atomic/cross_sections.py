"""Recombination cross sections: Kramers photoionization + Milne relation.

The RRC integrand of Eq. (1) needs sigma_rec_n(E_e), the cross section for
capturing a free electron of energy E_e into level n.  We derive it the
standard way:

1. Kramers' semi-classical photoionization cross section from level n,

       sigma_ph(E_gamma) = sigma_K * n * (I_n / E_gamma)^3 / c_eff^2,

   valid for E_gamma >= I_n (zero below threshold).

2. The Milne relation (detailed balance) converts photoionization into
   radiative recombination:

       sigma_rec(E_e) = (g_n / (2 g_ion)) * E_gamma^2 / (2 m_e c^2 E_e)
                        * sigma_ph(E_gamma),   E_gamma = E_e + I_n.

All energies in keV, cross sections in cm^2.  The functions are NumPy
ufunc-style (scalars or arrays in, same shape out) so the *identical* code
runs in the scalar CPU path and the batched GPU kernel path.
"""

from __future__ import annotations

import numpy as np

from repro.constants import ME_C2_KEV, SIGMA_KRAMERS_CM2

__all__ = [
    "kramers_photoionization",
    "milne_recombination",
    "recombination_cross_section",
]


def kramers_photoionization(
    e_gamma_kev: np.ndarray,
    binding_kev: float,
    n: int,
    c_eff: float,
) -> np.ndarray:
    """Kramers bound-free photoionization cross section in cm^2.

    Zero below threshold (E_gamma < I_n); ~E^-3 falloff above it, with the
    1/n and 1/c_eff^2 scalings of the semi-classical formula.
    """
    e = np.asarray(e_gamma_kev, dtype=np.float64)
    if binding_kev <= 0.0:
        raise ValueError("binding energy must be positive")
    if n < 1:
        raise ValueError("n must be >= 1")
    if c_eff <= 0.0:
        raise ValueError("effective charge must be positive")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(e > 0.0, binding_kev / e, 0.0)
    sigma = SIGMA_KRAMERS_CM2 * (ratio**3) * n / (c_eff**2)
    return np.where(e >= binding_kev, sigma, 0.0)


def milne_recombination(
    e_electron_kev: np.ndarray,
    binding_kev: float,
    n: int,
    c_eff: float,
    g_level: float,
    g_ion: float = 1.0,
) -> np.ndarray:
    """Radiative recombination cross section via the Milne relation, cm^2.

    Parameters
    ----------
    e_electron_kev:
        Free-electron kinetic energy E_e (>= 0); the emitted photon has
        E_gamma = E_e + I_n.
    g_level, g_ion:
        Statistical weights of the captured level and of the recombining
        ion ground state.
    """
    e_e = np.asarray(e_electron_kev, dtype=np.float64)
    e_gamma = e_e + binding_kev
    sigma_ph = kramers_photoionization(e_gamma, binding_kev, n, c_eff)
    weight = g_level / (2.0 * g_ion)
    with np.errstate(divide="ignore", invalid="ignore"):
        factor = np.where(
            e_e > 0.0, e_gamma**2 / (2.0 * ME_C2_KEV * e_e), 0.0
        )
    return np.where(e_e > 0.0, weight * factor * sigma_ph, 0.0)


def recombination_cross_section(
    e_electron_kev: np.ndarray,
    binding_kev: float,
    n: int,
    c_eff: float,
    g_level: float,
    g_ion: float = 1.0,
) -> np.ndarray:
    """Public alias with validation: the sigma_rec_n(E_e) of Eq. (1)."""
    return milne_recombination(
        e_electron_kev, binding_kev, n, c_eff, g_level, g_ion
    )
