"""Ionization and recombination rate coefficients.

These feed two consumers:

- the CIE ionization balance (:mod:`repro.physics.ionbalance`) that sets
  the ion densities n_(Z, j+1) in Eq. (1), and
- the NEI ODE system of Eq. (4), whose stiffness comes from rate
  coefficients spanning many orders of magnitude across charge states.

Forms are the standard fit shapes with deterministic synthetic parameters:

- collisional ionization: Voronov (1997) functional form,
  ``S = A (1 + P sqrt(U)) U^K exp(-U) / (X + U)`` with ``U = dE / kT``;
- radiative recombination: power law ``A_r (T / 1e4 K)^-eta``;
- dielectronic recombination: Burgess-style
  ``A_d T^-3/2 exp(-T0 / T) (1 + B_d exp(-T1 / T))``.

Units: cm^3 s^-1; temperatures in K; all functions vectorized over T.
"""

from __future__ import annotations

import numpy as np

from repro.atomic.levels import effective_charge, quantum_defect
from repro.constants import K_B_KEV, RYDBERG_KEV

__all__ = [
    "ionization_potential",
    "ionization_rate",
    "radiative_recombination_rate",
    "dielectronic_recombination_rate",
    "recombination_rate",
]


def ionization_potential(z: int, charge: int) -> float:
    """Ground-state ionization potential of ion (Z, charge), in keV.

    ``charge`` is the ion's own charge (0 = neutral); ionization produces
    charge + 1.  Hydrogenic with the same screening model as the level
    structure, so thresholds and level energies are mutually consistent.
    """
    if charge < 0 or charge >= z:
        raise ValueError(
            f"cannot ionize (Z={z}, charge={charge}); charge must be 0..{z - 1}"
        )
    # The outermost electron of ion `charge` behaves like the captured
    # electron of recombining ion `charge + 1`.
    c_rec = charge + 1
    c_eff = effective_charge(z, c_rec, 0)
    delta = quantum_defect(z, c_rec, 0)
    # Outermost shell grows with the number of core electrons.
    n_out = 1 + int(np.floor((z - c_rec) / 2.5))
    return RYDBERG_KEV * c_eff**2 / (n_out - delta) ** 2


def ionization_rate(z: int, charge: int, temperature_k: np.ndarray) -> np.ndarray:
    """Collisional ionization rate coefficient S_{Z,charge}(T), cm^3/s.

    Voronov functional form with synthetic parameters tied smoothly to
    (Z, charge) so neighbouring ions have neighbouring rates.
    """
    t = np.asarray(temperature_k, dtype=np.float64)
    if np.any(t <= 0.0):
        raise ValueError("temperature must be positive")
    de_kev = ionization_potential(z, charge)
    u = de_kev / (K_B_KEV * t)
    # Synthetic Voronov-like parameters (deterministic in Z, charge).
    a = 2.0e-8 / (1.0 + 0.5 * charge) / np.sqrt(z)
    p = 1.0 if (z + charge) % 2 == 0 else 0.0
    k_exp = 0.35 + 0.05 * (charge / z)
    x = 0.2 + 0.6 * (charge + 1) / z
    with np.errstate(over="ignore", under="ignore"):
        rate = a * (1.0 + p * np.sqrt(u)) * u**k_exp * np.exp(-u) / (x + u)
    return rate


def radiative_recombination_rate(
    z: int, charge: int, temperature_k: np.ndarray
) -> np.ndarray:
    """Radiative recombination rate alpha_r for (Z, charge) -> charge-1."""
    t = np.asarray(temperature_k, dtype=np.float64)
    if charge < 1 or charge > z:
        raise ValueError(f"recombining charge must be 1..{z}, got {charge}")
    a_r = 2.0e-13 * charge**2 / np.sqrt(z)
    eta = 0.6 + 0.1 * charge / z
    return a_r * (t / 1.0e4) ** (-eta)


def dielectronic_recombination_rate(
    z: int, charge: int, temperature_k: np.ndarray
) -> np.ndarray:
    """Dielectronic recombination alpha_d (zero for bare/H-like cores)."""
    t = np.asarray(temperature_k, dtype=np.float64)
    if charge < 1 or charge > z:
        raise ValueError(f"recombining charge must be 1..{z}, got {charge}")
    if z - charge < 1:
        # A bare nucleus has no core electron to excite.
        return np.zeros_like(t)
    de_kev = ionization_potential(z, charge - 1)
    t0 = de_kev / K_B_KEV * 0.3
    t1 = t0 * 0.1
    a_d = 1.0e-3 * charge**2 / z
    with np.errstate(over="ignore", under="ignore"):
        return a_d * t ** (-1.5) * np.exp(-t0 / t) * (1.0 + 0.3 * np.exp(-t1 / t))


def recombination_rate(z: int, charge: int, temperature_k: np.ndarray) -> np.ndarray:
    """Total recombination alpha = alpha_r + alpha_d, cm^3/s."""
    return radiative_recombination_rate(
        z, charge, temperature_k
    ) + dielectronic_recombination_rate(z, charge, temperature_k)
