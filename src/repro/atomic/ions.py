"""The 496-ion registry.

A radiative recombination event is ``(Z, j+1) + e- -> (Z, j) + photon``.
The *recombining* ion is identified by its element ``Z`` and its charge
``c = j+1`` in 1..Z (from singly ionized up to the bare nucleus).  The
total over elements 1..31 is exactly 496, the count quoted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.atomic.elements import ELEMENTS, MAX_Z, Element

__all__ = ["Ion", "ion_registry", "ions_of_element", "TOTAL_IONS"]

#: sum_{Z=1}^{31} Z — the paper's "496 ions".
TOTAL_IONS: int = sum(range(1, MAX_Z + 1))


@dataclass(frozen=True, order=True)
class Ion:
    """One recombining ion (Z, j+1).

    Attributes
    ----------
    z:
        Atomic number of the element.
    charge:
        Charge of the recombining ion, ``c = j+1`` in 1..Z.  ``charge == z``
        is the bare nucleus; the recombined product has charge ``c - 1``.
    """

    z: int
    charge: int

    def __post_init__(self) -> None:
        if self.z < 1 or self.z > MAX_Z:
            raise ValueError(f"Z={self.z} outside 1..{MAX_Z}")
        if self.charge < 1 or self.charge > self.z:
            raise ValueError(
                f"charge {self.charge} invalid for Z={self.z}; must be 1..{self.z}"
            )

    @property
    def element(self) -> Element:
        return ELEMENTS[self.z]

    @property
    def recombined_charge(self) -> int:
        """Charge j of the product ion (Z, j)."""
        return self.charge - 1

    @property
    def n_core_electrons(self) -> int:
        """Bound electrons of the recombining ion (before capture)."""
        return self.z - self.charge

    @property
    def name(self) -> str:
        """Spectroscopic-style name, e.g. ``O+7`` for hydrogen-like oxygen."""
        return f"{self.element.symbol}+{self.charge}"

    @property
    def index(self) -> int:
        """Stable 0-based index in the global 496-ion ordering."""
        return self.z * (self.z - 1) // 2 + (self.charge - 1)


@lru_cache(maxsize=1)
def ion_registry() -> tuple[Ion, ...]:
    """All 496 ions in (Z, charge) lexicographic order."""
    ions = tuple(
        Ion(z=z, charge=c) for z in range(1, MAX_Z + 1) for c in range(1, z + 1)
    )
    assert len(ions) == TOTAL_IONS
    return ions


def ions_of_element(z: int) -> tuple[Ion, ...]:
    """The recombining charge states of element ``z``."""
    if z < 1 or z > MAX_Z:
        raise ValueError(f"Z={z} outside 1..{MAX_Z}")
    return tuple(Ion(z=z, charge=c) for c in range(1, z + 1))
