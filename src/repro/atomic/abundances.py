"""Elemental abundance sets — APEC's metallicity knob.

Real APEC exposes per-element abundances as fit parameters (cluster gas
is rarely solar).  An :class:`AbundanceSet` scales the solar table: a
global ``metallicity`` multiplies every element heavier than helium, and
``overrides`` pin individual elements to absolute N_X/N_H values.  The
default (solar, metallicity 1) reproduces the original behaviour
everywhere, so the plumbing is invisible until someone turns the knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.atomic.elements import MAX_Z, cosmic_abundance

__all__ = ["AbundanceSet", "SOLAR"]


@dataclass(frozen=True)
class AbundanceSet:
    """Abundances relative to hydrogen.

    Attributes
    ----------
    metallicity:
        Multiplier on the solar abundance of every element with Z > 2
        (H and He are primordial and not scaled).
    overrides:
        Absolute N_X/N_H values for specific elements; takes precedence
        over the metallicity scaling.
    """

    metallicity: float = 1.0
    overrides: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.metallicity < 0.0:
            raise ValueError("metallicity must be non-negative")
        for z, value in self.overrides.items():
            if not 1 <= z <= MAX_Z:
                raise ValueError(f"override for Z={z} outside 1..{MAX_Z}")
            if value < 0.0:
                raise ValueError(f"override for Z={z} must be non-negative")

    def of(self, z: int) -> float:
        """N_X / N_H for element ``z`` under this abundance set."""
        if z in self.overrides:
            return float(self.overrides[z])
        solar = cosmic_abundance(z)
        if z <= 2:
            return solar
        return solar * self.metallicity

    def with_metallicity(self, metallicity: float) -> "AbundanceSet":
        return AbundanceSet(metallicity=metallicity, overrides=dict(self.overrides))

    def with_override(self, z: int, value: float) -> "AbundanceSet":
        merged = dict(self.overrides)
        merged[z] = value
        return AbundanceSet(metallicity=self.metallicity, overrides=merged)


#: The default: solar composition.
SOLAR = AbundanceSet()
