"""Physical constants used throughout the spectral calculation.

Values follow CODATA 2018 in CGS-flavoured units common in X-ray
astrophysics: energies in keV, temperatures in K, densities in cm^-3.
Equation (1) of the paper mixes Boltzmann factors (kT), the electron
mass and recombination cross sections; keeping a single constants
module avoids unit drift between the serial and batched code paths.
"""

from __future__ import annotations

import math

#: Boltzmann constant in keV / K.
K_B_KEV: float = 8.617333262e-8

#: Electron rest mass energy m_e c^2 in keV.
ME_C2_KEV: float = 510.99895

#: Speed of light in cm / s.
C_CGS: float = 2.99792458e10

#: Electron mass in grams (used in the sqrt(1/(2 pi m_e kT)) factor).
ME_G: float = 9.1093837015e-28

#: Boltzmann constant in erg / K.
K_B_ERG: float = 1.380649e-16

#: 1 keV in erg.
KEV_ERG: float = 1.602176634e-9

#: Rydberg energy (hydrogen ionization potential) in keV.
RYDBERG_KEV: float = 13.605693122994e-3

#: Thomson cross section in cm^2 (scale for synthetic cross sections).
SIGMA_THOMSON_CM2: float = 6.6524587321e-25

#: Fine-structure constant.
ALPHA_FS: float = 7.2973525693e-3

#: Planck constant times c, in keV * Angstrom (E[keV] = HC_KEV_A / lambda[A]).
HC_KEV_ANGSTROM: float = 12.39841984

#: Kramers photoionization cross-section scale at threshold for hydrogen
#: ground state, in cm^2 (sigma_0 ~ 6.30e-18 cm^2).
SIGMA_KRAMERS_CM2: float = 6.30e-18


def kt_kev(temperature_k: float) -> float:
    """Thermal energy kT in keV for a plasma temperature in Kelvin."""
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return K_B_KEV * temperature_k


def maxwellian_norm(temperature_k: float) -> float:
    """The sqrt(1 / (2 pi m_e k T)) factor of Eq. (1).

    Evaluated in CGS so the emitted-power units match the serial APEC
    convention; the spectral *shape* (what all experiments compare) is
    independent of this overall scale.
    """
    kt_erg = K_B_ERG * temperature_k
    return math.sqrt(1.0 / (2.0 * math.pi * ME_G * kt_erg))


def wavelength_to_energy_kev(wavelength_angstrom: float) -> float:
    """Convert photon wavelength in Angstrom to energy in keV."""
    if wavelength_angstrom <= 0.0:
        raise ValueError("wavelength must be positive")
    return HC_KEV_ANGSTROM / wavelength_angstrom


def energy_to_wavelength_angstrom(energy_kev: float) -> float:
    """Convert photon energy in keV to wavelength in Angstrom."""
    if energy_kev <= 0.0:
        raise ValueError("energy must be positive")
    return HC_KEV_ANGSTROM / energy_kev
