"""Deterministic static HTML dashboards over the time-series store.

One self-contained HTML file — inline SVG line charts, inline CSS, no
external assets, no scripts — rendered from a
:class:`~repro.obs.tsdb.TimeSeriesStore` by evaluating one query per
panel at every scrape time.  Determinism is a contract, not an
accident: the same store renders byte-identical HTML (fixed palette,
fixed ``%g``-style float formatting, sorted iteration everywhere, no
wall-clock timestamps), which is what lets a golden-file test pin the
output and CI archive dashboards as comparable build artifacts.

Annotations ride the charts: SLO transitions draw dashed vertical rules
(red for ``firing``, green for resolution) and anomaly events draw
orange markers, each listed in an annotation table under the panels.

Federation: :func:`federate` merges per-node stores under a constant
``node=`` label (any label name works — ``replica=``, ``shard=``), so a
:class:`~repro.core.multinode.MultiNodeRunner` run renders every node's
series in one dashboard, distinguished per-line in the legends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.query import QueryEngine, QueryError, Sample
from repro.obs.tsdb import TimeSeriesStore, federate_stores

__all__ = ["Panel", "SERVICE_PANELS", "federate", "render_dashboard"]

federate = federate_stores


@dataclass(frozen=True)
class Panel:
    """One chart: a title, a query, and an axis unit."""

    title: str
    expr: str
    unit: str = ""


#: The service-run default layout: utilization, per-lane latency
#: quantiles, request rates, cache/lattice/plan hit rates, batch width,
#: queue depth.  Panels whose metrics a store lacks render "no data"
#: rather than failing, so the same layout serves partial stores.
SERVICE_PANELS: tuple[Panel, ...] = (
    Panel(
        "Device utilization (1 - idle rate)",
        '1 - rate(repro_device_load_residency_seconds{load="0"}[2s])',
    ),
    Panel(
        "Request latency p95 per lane",
        "histogram_quantile(0.95, repro_request_latency_seconds_bucket)",
        "s",
    ),
    Panel(
        "Completed request rate per lane",
        'rate(repro_requests_total{outcome="computed"}[2s])',
        "req/s",
    ),
    Panel("Spectrum cache hit ratio", "repro_cache_hit_ratio"),
    Panel("Plan cache hit ratio", "repro_plan_cache_hit_ratio"),
    Panel("Lattice hit ratio", "repro_approx_lattice_hit_ratio"),
    Panel(
        "Mean megabatch width",
        "repro_batch_width_sum / repro_batch_width_count",
        "temperatures",
    ),
    Panel("Queue depth", "repro_queue_depth"),
)

# A fixed, order-stable palette (Okabe-Ito-ish, readable on white).
_PALETTE = (
    "#0072b2",
    "#d55e00",
    "#009e73",
    "#cc79a7",
    "#e69f00",
    "#56b4e9",
    "#f0e442",
    "#000000",
)

_W, _H = 640, 150
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 54, 10, 8, 20


def _fmt(value: float) -> str:
    """Fixed float formatting for axes, legends, and annotations."""
    if value != value:  # NaN
        return "nan"
    return f"{value:.6g}"


def _auto_panels(store: TimeSeriesStore, limit: int = 12) -> tuple[Panel, ...]:
    """One panel per scraped family when no layout is given.

    Histogram families chart their ``_count`` growth; everything else
    charts raw values.  Used by ``spectrum``/``bench`` dashboards whose
    registries are not the service layout.
    """
    panels = []
    for name in sorted(store.families):
        kind = store.families[name]
        if kind == "histogram":
            continue
        if name.endswith(("_bucket",)):
            continue
        panels.append(Panel(name, name))
        if len(panels) >= limit:
            break
    return tuple(panels)


def _svg_chart(
    times: Sequence[float],
    lines: Mapping[str, list[tuple[float, float]]],
    vlines: Sequence[tuple[float, str, str]],
    unit: str,
) -> str:
    """One inline SVG line chart.

    ``lines`` maps legend label -> points; ``vlines`` holds
    ``(t, color, dash)`` annotation rules.
    """
    t0, t1 = times[0], times[-1]
    span_t = (t1 - t0) or 1.0
    values = [v for pts in lines.values() for _, v in pts]
    lo = min(values)
    hi = max(values)
    if hi == lo:
        hi = lo + 1.0
    span_v = hi - lo

    def x(t: float) -> float:
        return _PAD_L + (t - t0) / span_t * (_W - _PAD_L - _PAD_R)

    def y(v: float) -> float:
        return _PAD_T + (hi - v) / span_v * (_H - _PAD_T - _PAD_B)

    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" width="{_W}" height="{_H}" '
        'xmlns="http://www.w3.org/2000/svg">'
    ]
    # Frame and gridlines.
    x0, x1 = _PAD_L, _W - _PAD_R
    y0, y1 = _H - _PAD_B, _PAD_T
    parts.append(
        f'<rect x="{x0}" y="{y1}" width="{x1 - x0}" height="{y0 - y1}" '
        'fill="#fcfcfc" stroke="#ccc"/>'
    )
    mid = (y0 + y1) / 2.0
    parts.append(
        f'<line x1="{x0}" y1="{mid:.1f}" x2="{x1}" y2="{mid:.1f}" '
        'stroke="#eee"/>'
    )
    # Axis labels: value range and time range.
    parts.append(
        f'<text x="{x0 - 4}" y="{y1 + 10}" text-anchor="end" '
        f'class="ax">{_fmt(hi)}</text>'
    )
    parts.append(
        f'<text x="{x0 - 4}" y="{y0}" text-anchor="end" '
        f'class="ax">{_fmt(lo)}</text>'
    )
    parts.append(
        f'<text x="{x0}" y="{_H - 6}" class="ax">t={_fmt(t0)}s</text>'
    )
    parts.append(
        f'<text x="{x1}" y="{_H - 6}" text-anchor="end" '
        f'class="ax">t={_fmt(t1)}s{(" [" + unit + "]") if unit else ""}</text>'
    )
    # Annotation rules behind the data.
    for t, color, dash in vlines:
        if t0 <= t <= t1:
            parts.append(
                f'<line x1="{x(t):.1f}" y1="{y1}" x2="{x(t):.1f}" y2="{y0}" '
                f'stroke="{color}" stroke-dasharray="{dash}"/>'
            )
    for i, label in enumerate(lines):
        color = _PALETTE[i % len(_PALETTE)]
        pts = lines[label]
        coords = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in pts)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            'stroke-width="1.5"/>'
        )
        last = pts[-1][1]
        parts.append(
            f'<circle cx="{x(pts[-1][0]):.1f}" cy="{y(last):.1f}" r="2" '
            f'fill="{color}"/>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _legend(lines: Mapping[str, list[tuple[float, float]]]) -> str:
    items = []
    for i, label in enumerate(lines):
        color = _PALETTE[i % len(_PALETTE)]
        last = lines[label][-1][1]
        items.append(
            f'<span class="key"><span class="swatch" '
            f'style="background:{color}"></span>{_esc(label)} = '
            f"{_fmt(last)}</span>"
        )
    return "<div class='legend'>" + " ".join(items) + "</div>"


def _esc(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _line_label(sample: Sample) -> str:
    if not sample.labels:
        return "value"
    return ",".join(f"{k}={v}" for k, v in sample.labels)


_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 16px; color: #222; background: #fff; }
h1 { font-size: 16px; } h2 { font-size: 13px; margin: 18px 0 4px; }
.expr { color: #777; font-size: 11px; margin: 0 0 4px; }
.ax { font-size: 9px; fill: #888; font-family: inherit; }
.legend { font-size: 11px; margin: 2px 0 10px; }
.key { margin-right: 14px; }
.swatch { display: inline-block; width: 9px; height: 9px;
          margin-right: 4px; }
.nodata { color: #999; font-size: 12px; margin: 8px 0 14px; }
table { border-collapse: collapse; font-size: 11px; margin-top: 6px; }
td, th { border: 1px solid #ddd; padding: 2px 8px; text-align: left; }
.firing { color: #c0392b; } .resolved { color: #1e8449; }
.anomaly { color: #d35400; }
"""


def render_dashboard(
    store: TimeSeriesStore,
    panels: Optional[Iterable[Panel]] = None,
    title: str = "repro telemetry",
    slo=None,
    anomalies: Sequence = (),
) -> str:
    """Render one store (federated or not) to self-contained HTML.

    ``panels`` defaults to :data:`SERVICE_PANELS` when the store holds
    service metrics, else one auto-panel per scraped family.  ``slo``
    (an :class:`~repro.obs.slo.SLOEngine`) contributes transition
    annotations; ``anomalies`` is an iterable of
    :class:`~repro.obs.anomaly.AnomalyEvent`.
    """
    if panels is None:
        if "repro_requests_total" in store.families:
            panels = SERVICE_PANELS
        else:
            panels = _auto_panels(store)
    panels = tuple(panels)
    engine = QueryEngine(store)
    times = list(store.scrape_times)

    transitions = list(slo.transitions) if slo is not None else []
    vlines: list[tuple[float, str, str]] = []
    for tr in transitions:
        if tr.to == "firing":
            vlines.append((tr.t, "#c0392b", "4 3"))
        elif tr.frm == "firing":
            vlines.append((tr.t, "#1e8449", "4 3"))
    for event in anomalies:
        vlines.append((event.t, "#d35400", "2 3"))

    out = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8"/>',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class='expr'>{len(store.series())} series, "
        f"{len(times)} scrapes"
        + (
            f", t = {_fmt(times[0])}s .. {_fmt(times[-1])}s"
            if times
            else ""
        )
        + "</p>",
    ]

    rendered = 0
    for panel in panels:
        out.append(f"<h2>{_esc(panel.title)}</h2>")
        out.append(f"<p class='expr'>{_esc(panel.expr)}</p>")
        lines: dict[str, list[tuple[float, float]]] = {}
        try:
            ast = engine.compile(panel.expr)
            for t in times:
                result = engine.query_ast(ast, at=t)
                if isinstance(result, float):
                    result = [Sample((), result)]
                for sample in result:
                    lines.setdefault(_line_label(sample), []).append(
                        (t, sample.value)
                    )
        except QueryError as exc:
            out.append(f"<p class='nodata'>query error: {_esc(str(exc))}</p>")
            continue
        lines = {k: lines[k] for k in sorted(lines)}
        if not lines or not times:
            out.append("<p class='nodata'>no data</p>")
            continue
        out.append(_svg_chart(times, lines, vlines, panel.unit))
        out.append(_legend(lines))
        rendered += 1

    annotations = bool(transitions) or bool(anomalies)
    if annotations:
        out.append("<h2>Annotations</h2>")
        out.append("<table><tr><th>t (s)</th><th>kind</th><th>detail</th></tr>")
        rows = []
        for tr in transitions:
            cls = "firing" if tr.to == "firing" else "resolved"
            rows.append(
                (
                    tr.t,
                    f"<tr class='{cls}'><td>{_fmt(tr.t)}</td>"
                    f"<td>slo {_esc(tr.frm)} &rarr; {_esc(tr.to)}</td>"
                    f"<td>{_esc(tr.rule)} (value {_fmt(tr.value)})</td></tr>",
                )
            )
        for event in anomalies:
            lbl = ",".join(
                f"{k}={v}" for k, v in sorted(event.labels.items())
            )
            rows.append(
                (
                    event.t,
                    f"<tr class='anomaly'><td>{_fmt(event.t)}</td>"
                    f"<td>anomaly {_esc(event.kind)}</td>"
                    f"<td>{_esc(event.series)}{{{_esc(lbl)}}} = "
                    f"{_fmt(event.value)} outside "
                    f"[{_fmt(event.lower)}, {_fmt(event.upper)}]</td></tr>",
                )
            )
        for _, row in sorted(rows, key=lambda r: r[0]):
            out.append(row)
        out.append("</table>")

    out.append(
        f"<p class='expr'>{rendered}/{len(panels)} panels rendered"
        + (", annotations listed" if annotations else "")
        + "</p>"
    )
    out.append("</body></html>")
    return "\n".join(out) + "\n"
