"""Event buses: one ingestion point, ledgers and tracer as consumers.

Before this layer existed the accounting was split across two
unconnected ledgers — :class:`~repro.core.metrics.MetricsLedger` for
tasks and :class:`~repro.service.telemetry.ServiceTelemetry` for
requests — each fed by direct hook calls from the scheduler and the
broker.  The buses invert that: instrumented code emits each semantic
event *once*, and the bus fans it out to every consumer — the ledger
(which keeps its public hook API and produces bit-identical figures)
and, when tracing is on, the span tracer (counter tracks for loads and
queue depths, instants for admission outcomes).

Both buses duck-type the hook surface of the ledger they wrap, so the
scheduler and broker call the same ``on_*`` methods they always did —
handing them a bare ledger (as every existing test does) still works,
because a ledger *is* a valid sink for its own hook API.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.tracer import NULL_TRACER

__all__ = ["RunBus", "ServiceBus"]


class RunBus:
    """Fan-out for one hybrid batch's task-level events.

    Exposes the :class:`~repro.core.metrics.MetricsLedger` hook API; the
    scheduler and runner call it exactly as they would the ledger.  Load
    changes additionally feed a per-device counter track so Perfetto
    shows each GPU's queue occupancy as a filled series.
    """

    __slots__ = ("ledger", "tracer", "device_tracks")

    def __init__(self, ledger, tracer=None, device_tracks: Sequence[int] = ()) -> None:
        self.ledger = ledger
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.device_tracks = tuple(device_tracks)

    # -- MetricsLedger hook surface ------------------------------------
    def on_load_change(self, device: int, old: int, new: int, now: float) -> None:
        self.ledger.on_load_change(device, old, new, now)
        t = self.tracer
        if t.enabled and device < len(self.device_tracks):
            t.counter(self.device_tracks[device], "load", new)

    def on_cpu_task(self) -> None:
        self.ledger.on_cpu_task()

    def on_admission_revoked(self, device: int) -> None:
        self.ledger.on_admission_revoked(device)
        t = self.tracer
        if t.enabled and device < len(self.device_tracks):
            t.instant(self.device_tracks[device], "admission.revoked", cat="sched")

    def on_task_timing(self, wait_s: float, service_s: float) -> None:
        self.ledger.on_task_timing(wait_s, service_s)

    def on_steal(self, victim: int, thief: int) -> None:
        self.ledger.on_steal(victim, thief)
        t = self.tracer
        if t.enabled and thief < len(self.device_tracks):
            t.instant(
                self.device_tracks[thief],
                "steal",
                cat="sched",
                args={"victim": victim},
            )

    def on_prediction(self, predicted_s: float, measured_s: float) -> None:
        self.ledger.on_prediction(predicted_s, measured_s)

    def on_task_event(self, event) -> None:
        self.ledger.on_task_event(event)


class ServiceBus:
    """Fan-out for request-level events on one broker.

    Exposes the :class:`~repro.service.telemetry.ServiceTelemetry` hook
    API; arrivals, rejections, and retries mirror to instants on the
    lane tracks, queue depth to a counter track.
    """

    __slots__ = ("telemetry", "tracer", "queue_track", "lane_tracks")

    def __init__(
        self, telemetry, tracer=None, queue_track: int = 0, lane_tracks=None
    ) -> None:
        self.telemetry = telemetry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.queue_track = queue_track
        self.lane_tracks = dict(lane_tracks or {})

    def _lane_track(self, lane: str) -> int:
        return self.lane_tracks.get(lane, self.queue_track)

    # -- ServiceTelemetry hook surface ---------------------------------
    def on_arrival(self, lane: str) -> None:
        self.telemetry.on_arrival(lane)

    def on_rejection(self, lane: str) -> None:
        self.telemetry.on_rejection(lane)
        t = self.tracer
        if t.enabled:
            t.instant(self._lane_track(lane), "rejected", cat="admission")

    def on_retry(self, lane: str) -> None:
        self.telemetry.on_retry(lane)
        t = self.tracer
        if t.enabled:
            t.instant(self._lane_track(lane), "retry", cat="admission")

    def on_completion(
        self,
        lane: str,
        latency_s: float,
        *,
        cached: bool,
        coalesced: bool,
        lattice: bool = False,
        trace_id: int = 0,
    ) -> None:
        self.telemetry.on_completion(
            lane,
            latency_s,
            cached=cached,
            coalesced=coalesced,
            lattice=lattice,
            trace_id=trace_id,
        )

    def on_queue_depth(self, depth: int, now: float) -> None:
        self.telemetry.on_queue_depth(depth, now)
        t = self.tracer
        if t.enabled:
            t.counter(self.queue_track, "queue_depth", depth)

    def on_megabatch(self, widths: Sequence[int]) -> None:
        self.telemetry.on_megabatch(list(widths))
        t = self.tracer
        if t.enabled:
            t.instant(
                self.queue_track,
                "megabatch.assembled",
                cat="batch",
                args={"groups": len(widths), "widths": list(widths)},
            )

    def on_window_wait(self) -> None:
        self.telemetry.on_window_wait()
        t = self.tracer
        if t.enabled:
            t.instant(self.queue_track, "batch.window_wait", cat="batch")

    def on_batch(self, result, n_requests: int) -> None:
        self.telemetry.on_batch(result, n_requests)

    def on_anomaly(self, event) -> None:
        """An :class:`~repro.obs.anomaly.AnomalyEvent` from the detector."""
        self.telemetry.on_anomaly(event)
        t = self.tracer
        if t.enabled:
            t.instant(
                self.queue_track,
                "anomaly",
                cat="anomaly",
                args=event.as_dict(),
            )

    def finalize(self, now: float) -> None:
        self.telemetry.finalize(now)
