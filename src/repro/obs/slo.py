"""Declarative SLO rules evaluated over metrics snapshots on the sim clock.

The metrics registry (PR 3) is write-only: nothing watches it.  This
module closes that loop with a tiny Prometheus-alerting-flavoured rule
engine:

- a :class:`Rule` names a metric family, an optional label selector, a
  comparison, and a threshold — the rule *breaches* whenever
  ``value <op> threshold`` holds for the sampled value;
- :class:`SLOEngine.sample` evaluates every rule against one
  :class:`~repro.obs.prom.MetricsRegistry` snapshot at one virtual
  time; callers decide the cadence (the service broker samples at each
  batch completion, tests drive the clock by hand);
- a breach must persist ``for_s`` virtual seconds before the rule
  *fires* (``inactive -> pending -> firing``), and the first
  non-breaching sample after firing *resolves* it — the same hysteresis
  a Prometheus ``for:`` clause provides;
- ``quantile`` targets a histogram family's q-quantile (linear
  interpolation within cumulative buckets — no exposition-text
  re-parsing), and ``rate_window_s`` turns a counter into a *burn
  rate*: the increase per virtual second over the trailing window, the
  standard error-budget alerting shape.

Since the continuous-telemetry PR the engine is wired onto the
time-series store and query engine rather than hand-rolled deltas:
every :meth:`SLOEngine.sample` scrapes the snapshot into an internal
:class:`~repro.obs.tsdb.TimeSeriesStore` and evaluates each rule as a
compiled query — ``metric{labels}``, ``histogram_quantile(q, ...)``,
or ``rate(metric{labels}[w])`` — over real windows.  The query
engine's rate and quantile estimators are exact matches for the
historical semantics (see :mod:`repro.obs.query`), so transition
sequences are reproduced bit for bit; the engine's store doubles as a
free telemetry trail for postmortems (:attr:`SLOEngine.store`).

The no-op path is free: an engine with no rules returns from
:meth:`~SLOEngine.sample` before touching the registry, and the broker
only builds snapshots when an engine with rules is attached — a run
without SLOs is bit-identical to one with an empty engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.obs.prom import Counter, Histogram, MetricsRegistry
from repro.obs.query import FuncCall, Matcher, Number, QueryEngine, Selector
from repro.obs.tsdb import TimeSeriesStore

__all__ = ["Rule", "RuleState", "Transition", "SLOEngine"]

_OPS = {
    ">": lambda v, t: v > t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    "<=": lambda v, t: v <= t,
}


@dataclass(frozen=True)
class Rule:
    """One alert rule: *breaches* whenever ``value <op> threshold``.

    Attributes
    ----------
    name:
        Stable identifier; transitions and reports key on it.
    metric:
        Metric family name in the registry (e.g.
        ``repro_request_latency_seconds``).
    op, threshold:
        The breach comparison, e.g. ``op=">"``, ``threshold=2.0``
        breaches while the value exceeds 2.
    labels:
        Label selector for multi-series metrics (must name the metric's
        full label set, like every accessor in :mod:`repro.obs.prom`).
    for_s:
        Virtual seconds a breach must persist before the rule fires
        (0 = fire on the first breaching sample).
    quantile:
        When set, the metric must be a histogram and the compared value
        is its q-quantile (0 <= q <= 1).
    rate_window_s:
        When set, the metric must be a counter and the compared value is
        its increase per virtual second over the trailing window (the
        burn rate).  Needs at least two samples inside the window.
    """

    name: str
    metric: str
    op: str
    threshold: float
    labels: Mapping[str, str] = field(default_factory=dict)
    for_s: float = 0.0
    quantile: Optional[float] = None
    rate_window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown op {self.op!r}; expected one of {tuple(_OPS)}")
        if self.for_s < 0.0:
            raise ValueError("for_s must be non-negative")
        if self.quantile is not None and not 0.0 <= self.quantile <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.rate_window_s is not None and self.rate_window_s <= 0.0:
            raise ValueError("rate_window_s must be positive")
        if self.quantile is not None and self.rate_window_s is not None:
            raise ValueError("a rule is either a quantile or a burn rate, not both")

    def breaches(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> str:
        target = self.metric
        if self.quantile is not None:
            target = f"quantile({self.quantile:g}, {target})"
        if self.rate_window_s is not None:
            target = f"rate({target}[{self.rate_window_s:g}s])"
        if self.labels:
            sel = ",".join(f'{k}="{v}"' for k, v in sorted(self.labels.items()))
            target += "{" + sel + "}"
        return f"{target} {self.op} {self.threshold:g} for {self.for_s:g}s"


#: Rule lifecycle states.
class RuleState:
    INACTIVE = "inactive"
    PENDING = "pending"
    FIRING = "firing"


@dataclass(frozen=True)
class Transition:
    """One state change of one rule, stamped with virtual time."""

    t: float
    rule: str
    frm: str
    to: str
    value: float


@dataclass
class _State:
    state: str = RuleState.INACTIVE
    breach_since: Optional[float] = None
    last_value: float = 0.0
    last_sampled: Optional[float] = None


class SLOEngine:
    """Evaluates rules against registry snapshots; tracks transitions.

    Snapshots are scraped into :attr:`store` and rules evaluate as
    compiled queries over it, so windowed rules (``for:`` hysteresis,
    burn rates) see real history instead of per-rule deltas.
    """

    def __init__(
        self,
        rules: tuple[Rule, ...] | list[Rule] = (),
        store_capacity: int = 1024,
    ) -> None:
        self.rules: list[Rule] = []
        self._states: dict[str, _State] = {}
        self.transitions: list[Transition] = []
        self._listeners: list = []
        #: Every snapshot ever sampled, as queryable time series.
        self.store = TimeSeriesStore(capacity=store_capacity)
        self._engine = QueryEngine(self.store)
        self._rule_asts: dict[str, object] = {}
        for rule in rules:
            self.add(rule)

    def on_transition(self, listener) -> None:
        """Register a callback invoked with each :class:`Transition`.

        Called after the rule's state has advanced, so a listener reading
        :meth:`state` or :meth:`report` sees the post-transition engine —
        the hook the flight recorder arms to dump postmortem bundles on
        ``* -> firing``.
        """
        self._listeners.append(listener)

    def add(self, rule: Rule) -> Rule:
        if rule.name in self._states:
            raise ValueError(f"rule {rule.name!r} already registered")
        self.rules.append(rule)
        self._states[rule.name] = _State()
        return rule

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def sample(self, registry: MetricsRegistry, now: float) -> None:
        """Evaluate every rule against one snapshot at virtual ``now``.

        The snapshot is scraped into :attr:`store` first, then each rule
        evaluates as a query at ``now`` — the newest point of every
        series is exactly the value the snapshot holds, so plain and
        quantile rules read current state while windowed rules see the
        full scraped history.
        """
        if not self.rules:  # the zero-overhead no-op path
            return
        self.store.scrape(registry, now)
        for rule in self.rules:
            state = self._states[rule.name]
            value = self._value(rule, registry, now)
            state.last_value = value
            state.last_sampled = now
            self._advance(rule, state, value, now)

    def _rule_ast(self, rule: Rule):
        """Compile a rule to a query AST (built once, evaluated per sample)."""
        ast = self._rule_asts.get(rule.name)
        if ast is not None:
            return ast
        matchers = tuple(
            Matcher(k, "=", str(v)) for k, v in sorted(rule.labels.items())
        )
        if rule.quantile is not None:
            ast = FuncCall(
                "histogram_quantile",
                (
                    Number(rule.quantile),
                    Selector(rule.metric + "_bucket", matchers),
                ),
            )
        elif rule.rate_window_s is not None:
            ast = FuncCall(
                "rate",
                (Selector(rule.metric, matchers, rule.rate_window_s),),
            )
        else:
            ast = Selector(rule.metric, matchers)
        self._rule_asts[rule.name] = ast
        return ast

    def _value(self, rule: Rule, registry: MetricsRegistry, now: float) -> float:
        # Validate against the live registry first so missing metrics,
        # wrong metric kinds, and incomplete label selectors raise the
        # same KeyError/TypeError/ValueError they always did, regardless
        # of what past scrapes happen to hold.
        metric = registry.get(rule.metric)
        if rule.quantile is not None and not isinstance(metric, Histogram):
            raise TypeError(
                f"rule {rule.name!r}: quantile target {rule.metric!r} "
                "is not a histogram"
            )
        if rule.rate_window_s is not None and not isinstance(metric, Counter):
            raise TypeError(
                f"rule {rule.name!r}: burn-rate target {rule.metric!r} "
                "is not a counter"
            )
        metric._key(dict(rule.labels))  # full-label-set check
        result = self._engine.query_ast(self._rule_ast(rule), at=now)
        if isinstance(result, float):
            return result
        if not result:
            # No scraped series for this label set yet: the registry
            # accessors' defaults (unset counter/gauge -> 0, empty
            # histogram quantile -> 0).
            return 0.0
        if len(result) > 1:
            raise ValueError(
                f"rule {rule.name!r}: selector matched {len(result)} series"
            )
        return result[0].value

    def _advance(self, rule: Rule, state: _State, value: float, now: float) -> None:
        breached = rule.breaches(value)
        if breached:
            if state.state == RuleState.INACTIVE:
                state.breach_since = now
                self._transition(rule, state, RuleState.PENDING, now, value)
            if (
                state.state == RuleState.PENDING
                and now - state.breach_since >= rule.for_s
            ):
                self._transition(rule, state, RuleState.FIRING, now, value)
        else:
            if state.state != RuleState.INACTIVE:
                self._transition(rule, state, RuleState.INACTIVE, now, value)
            state.breach_since = None

    def _transition(
        self, rule: Rule, state: _State, to: str, now: float, value: float
    ) -> None:
        tr = Transition(now, rule.name, state.state, to, value)
        self.transitions.append(tr)
        state.state = to
        for listener in self._listeners:
            listener(tr)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, name: str) -> str:
        return self._states[name].state

    def firing(self) -> list[str]:
        """Names of the rules currently firing."""
        return [r.name for r in self.rules if self._states[r.name].state == RuleState.FIRING]

    def resolved(self) -> list[Transition]:
        """Every firing -> inactive transition observed so far."""
        return [
            tr
            for tr in self.transitions
            if tr.frm == RuleState.FIRING and tr.to == RuleState.INACTIVE
        ]

    def report(self) -> str:
        """Text report: one row per rule, then the transition log."""
        if not self.rules:
            return "(no SLO rules registered)"
        lines = [f"{'rule':<26} {'state':<9} {'last value':>12}  objective"]
        for rule in self.rules:
            st = self._states[rule.name]
            last = f"{st.last_value:.4g}" if st.last_sampled is not None else "-"
            lines.append(
                f"{rule.name:<26} {st.state:<9} {last:>12}  {rule.describe()}"
            )
        if self.transitions:
            lines.append("")
            lines.append("transitions (virtual time):")
            for tr in self.transitions:
                lines.append(
                    f"  t={tr.t:>9.3f}  {tr.rule:<26} {tr.frm} -> {tr.to} "
                    f"(value {tr.value:.4g})"
                )
        return "\n".join(lines)
