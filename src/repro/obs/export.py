"""Trace exporters: Chrome trace-event JSON, schema check, terminal Gantt.

The Chrome format (loadable in ``chrome://tracing`` and Perfetto) maps
our tracks onto (pid, tid) pairs: one *process* per track group (the
service, each hybrid node, the device fleet), one *thread* per lane /
rank / device, with ``M``-phase metadata events naming both.  Virtual
seconds become microsecond timestamps, the unit the format expects.

:func:`validate_chrome_trace` is the schema check the golden-file test
and CI lean on; it is intentionally independent of the writer (it
inspects plain dicts) so it also audits hand-loaded traces.
"""

from __future__ import annotations

import json
from typing import Union

from repro.obs.tracer import EventTracer

__all__ = [
    "to_chrome",
    "write_chrome_trace",
    "validate_chrome_trace",
    "render_gantt",
    "render_summary",
]

_US = 1.0e6  # seconds -> microseconds


def to_chrome(tracer: EventTracer) -> list[dict]:
    """Render the recorded events as Chrome trace-event dicts.

    Events are sorted by (ts, -dur) so nested complete events on one
    track arrive outermost-first, the order stack-based viewers expect.
    """
    # pid per distinct process name (1-based), tid per track within it.
    pids: dict[str, int] = {}
    tids: dict[int, tuple[int, int]] = {}
    meta: list[dict] = []
    for handle, track in enumerate(tracer.tracks):
        pid = pids.get(track.process)
        if pid is None:
            pid = len(pids) + 1
            pids[track.process] = pid
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track.process},
                }
            )
        tid = sum(1 for t in tids.values() if t[0] == pid) + 1
        tids[handle] = (pid, tid)
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track.thread},
            }
        )

    # Anchor per span id: where (pid, tid, ts) a flow arrow can attach.
    # "X" spans anchor at their start; async lifetimes at their "b".
    anchors: dict[int, tuple[int, int, float]] = {}
    for ev in tracer.events:
        if ev.id is not None and ev.ph in ("X", "b") and ev.id not in anchors:
            pid, tid = tids.get(ev.track, (0, 0))
            anchors[ev.id] = (pid, tid, ev.ts * _US)

    rows: list[dict] = []
    flow_seq = 0
    for ev in sorted(tracer.events, key=lambda e: (e.ts, -e.dur)):
        pid, tid = tids.get(ev.track, (0, 0))
        row: dict = {
            "name": ev.name,
            "cat": ev.cat or "default",
            "ph": ev.ph,
            "pid": pid,
            "tid": tid,
            "ts": ev.ts * _US,
        }
        if ev.ph == "X":
            row["dur"] = ev.dur * _US
        if ev.ph in ("b", "e"):
            row["id"] = ev.id
        if ev.ph == "i":
            row["s"] = "t"  # thread-scoped instant
        if ev.args:
            row["args"] = ev.args
        elif ev.ph == "C":
            row["args"] = {"value": 0}
        rows.append(row)
        # Parent link -> one Perfetto flow arrow (step "s" at the parent
        # anchor, terminus "f" at this event's start, bound by id).
        src = anchors.get(ev.parent) if ev.parent else None
        if src is not None:
            flow_seq += 1
            s_pid, s_tid, s_ts = src
            common = {"name": "link", "cat": "flow", "id": flow_seq}
            rows.append({"ph": "s", "pid": s_pid, "tid": s_tid, "ts": s_ts, **common})
            rows.append(
                {"ph": "f", "bp": "e", "pid": pid, "tid": tid, "ts": ev.ts * _US, **common}
            )
    rows.sort(key=lambda r: (r["ts"], -r.get("dur", 0.0)))
    return meta + rows


def write_chrome_trace(path: str, tracer: EventTracer) -> int:
    """Write the trace as JSON object format; returns the event count."""
    events = to_chrome(tracer)
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)


def validate_chrome_trace(trace: Union[dict, list]) -> list[str]:
    """Schema-check a Chrome trace; returns a list of violations.

    Checks: required keys per phase, non-negative timestamps, ``X``
    events with non-negative durations that nest or disjoint cleanly per
    (pid, tid) track, async ``b``/``e`` events matched one-to-one by
    (cat, id), and flow ``s``/``f`` events paired one-to-one by (cat, id).
    """
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    problems: list[str] = []
    open_async: dict[tuple, int] = {}
    flows: dict[tuple, list[int]] = {}
    complete_by_track: dict[tuple, list[tuple[float, float]]] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None or "name" not in ev or "pid" not in ev or "tid" not in ev:
            problems.append(f"event {i}: missing one of ph/name/pid/tid")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} ({ev['name']}): bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i} ({ev['name']}): bad dur {dur!r}")
            else:
                complete_by_track.setdefault(
                    (ev["pid"], ev["tid"]), []
                ).append((ts, ts + dur))
        elif ph in ("b", "e"):
            key = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                problems.append(f"event {i} ({ev['name']}): async event without id")
            elif ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    problems.append(
                        f"event {i} ({ev['name']}): 'e' with no open 'b' for {key}"
                    )
                else:
                    open_async[key] -= 1
        elif ph in ("s", "f"):
            if ev.get("id") is None:
                problems.append(f"event {i} ({ev['name']}): flow event without id")
            else:
                counts = flows.setdefault((ev.get("cat"), ev.get("id")), [0, 0])
                counts[0 if ph == "s" else 1] += 1
        elif ph not in ("i", "C"):
            problems.append(f"event {i} ({ev['name']}): unknown phase {ph!r}")
    for key, n in open_async.items():
        if n:
            problems.append(f"{n} unmatched async begin event(s) for {key}")
    for key, (n_s, n_f) in flows.items():
        if n_s != 1 or n_f != 1:
            problems.append(
                f"flow {key}: expected one 's' and one 'f', got {n_s} and {n_f}"
            )
    # Per-track X intervals must nest or be disjoint (never cross).
    for track, spans in complete_by_track.items():
        spans.sort(key=lambda p: (p[0], -p[1]))
        stack: list[float] = []
        for start, end in spans:
            while stack and stack[-1] <= start + 1e-9:
                stack.pop()
            if stack and end > stack[-1] + 1e-6:
                problems.append(
                    f"track {track}: span [{start}, {end}] crosses an "
                    f"enclosing span ending at {stack[-1]}"
                )
            stack.append(end)
    return problems


# ----------------------------------------------------------------------
# Terminal rendering
# ----------------------------------------------------------------------
def render_gantt(tracer: EventTracer, width: int = 72) -> str:
    """ASCII Gantt: one row per track, spans as filled cells."""
    spans = [e for e in tracer.events if e.ph == "X"]
    if not spans:
        return "(no spans recorded)"
    t_max = max(e.ts + e.dur for e in spans)
    if t_max <= 0.0:
        return "(zero-length trace)"
    labels = [f"{t.process}/{t.thread}" for t in tracer.tracks]
    pad = max(len(s) for s in labels) if labels else 0
    lines = [f"{'track'.ljust(pad)} | 0 {'-' * (width - 10)} {t_max:.2f}s"]
    for handle, label in enumerate(labels):
        row = [" "] * width
        for ev in spans:
            if ev.track != handle:
                continue
            a = int(ev.ts / t_max * (width - 1))
            b = max(a, int((ev.ts + ev.dur) / t_max * (width - 1)))
            for x in range(a, b + 1):
                row[x] = "#" if row[x] == " " else "="
        lines.append(f"{label.ljust(pad)} | {''.join(row)}")
    return "\n".join(lines)


def render_summary(tracer: EventTracer) -> str:
    """Per-category span totals: count, busy seconds, mean span."""
    agg: dict[str, tuple[int, float]] = {}
    for ev in tracer.events:
        if ev.ph != "X":
            continue
        n, busy = agg.get(ev.cat or ev.name, (0, 0.0))
        agg[ev.cat or ev.name] = (n + 1, busy + ev.dur)
    if not agg:
        return "(no spans recorded)"
    lines = [f"{'category':<16} {'spans':>8} {'busy (s)':>12} {'mean (ms)':>12}"]
    for cat in sorted(agg):
        n, busy = agg[cat]
        lines.append(f"{cat:<16} {n:>8} {busy:>12.4f} {busy / n * 1e3:>12.4f}")
    return "\n".join(lines)
