"""Online anomaly detection over scraped series: EWMA + MAD bands.

Each monitored series gets a robust control band maintained online:

- *center* — an exponentially-weighted moving average (EWMA) of the
  observed signal;
- *scale* — 1.4826 x the median absolute deviation (MAD) over a sliding
  window (the normal-consistency factor makes MAD comparable to a
  standard deviation), floored both absolutely and relative to the
  center so a perfectly steady series never alarms on float dust;
- a point outside ``center +- k * scale`` after the warmup emits an
  :class:`AnomalyEvent`.

Counters (including histogram ``_sum``/``_count`` series) are observed
as *per-scrape deltas* — the raw monotone value would always drift out
of any band — while gauges are observed raw.  Histogram ``_bucket``
series are skipped: quantile behaviour is better watched through the
query engine and SLO rules.

Events flow onto the existing bus (``ServiceBus.on_anomaly``) and can
arm the :class:`~repro.obs.flight.FlightRecorder`, so a utilization
collapse or latency spike dumps a postmortem bundle with the trailing
series window included.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional

from repro.obs.tsdb import TimeSeriesStore

__all__ = ["AnomalyDetector", "AnomalyEvent"]


@dataclass(frozen=True)
class AnomalyEvent:
    """One out-of-band observation on one series."""

    t: float
    series: str
    labels: Mapping[str, str]
    value: float
    center: float
    lower: float
    upper: float
    kind: str  # "spike" (above band) or "drop" (below band)

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "series": self.series,
            "labels": dict(sorted(self.labels.items())),
            "value": self.value,
            "center": self.center,
            "lower": self.lower,
            "upper": self.upper,
            "kind": self.kind,
        }

    def describe(self) -> str:
        lbl = ",".join(f'{k}="{v}"' for k, v in sorted(self.labels.items()))
        return (
            f"{self.kind} on {self.series}{{{lbl}}} at t={self.t:.3f}: "
            f"{self.value:g} outside [{self.lower:g}, {self.upper:g}]"
        )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class _SeriesState:
    window: deque = field(default_factory=lambda: deque(maxlen=64))
    ewma: Optional[float] = None
    seen: int = 0
    prev_raw: Optional[float] = None  # counters: last raw value
    cursor: int = 0  # total points consumed (including evicted)


class AnomalyDetector:
    """Per-series robust baselines over a :class:`TimeSeriesStore`.

    :meth:`scan` consumes only points appended since the previous scan
    (eviction-aware cursors), so calling it after every scrape costs
    O(new points).  Defaults are tuned so the seeded steady service
    trace produces zero false positives (gated by the
    ``telemetry_pipeline`` bench case) while genuine latency spikes and
    utilization collapses on bursty traces still alarm.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        k: float = 6.0,
        warmup: int = 16,
        window: int = 48,
        min_scale_abs: float = 1e-9,
        min_scale_frac: float = 0.25,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if k <= 0.0 or warmup < 2 or window < 4:
            raise ValueError("need k > 0, warmup >= 2, window >= 4")
        self.alpha = alpha
        self.k = k
        self.warmup = warmup
        self.window = window
        self.min_scale_abs = min_scale_abs
        self.min_scale_frac = min_scale_frac
        self.events: List[AnomalyEvent] = []
        self._states: dict[tuple, _SeriesState] = {}
        self._listeners: list[Callable[[AnomalyEvent], None]] = []
        self.points_seen = 0

    def on_anomaly(self, listener: Callable[[AnomalyEvent], None]) -> None:
        """Register a callback fired for every emitted event."""
        self._listeners.append(listener)

    def scan(self, store: TimeSeriesStore) -> list[AnomalyEvent]:
        """Process points appended since the last scan; return new events."""
        new_events: list[AnomalyEvent] = []
        for series in store.series():
            if series.name.endswith("_bucket"):
                continue
            state = self._states.get(series.key)
            if state is None:
                state = _SeriesState(
                    window=deque(maxlen=self.window)
                )
                self._states[series.key] = state
            points = series.points()
            start = state.cursor - series.evicted
            if start < 0:
                # The ring outran us; resynchronize without alarming on
                # the gap (deltas across unseen points are meaningless).
                state.prev_raw = None
                start = 0
            is_counter = series.kind in ("counter", "histogram")
            for t, raw in points[start:]:
                self.points_seen += 1
                if is_counter:
                    if state.prev_raw is None:
                        state.prev_raw = raw
                        continue
                    x = raw - state.prev_raw
                    state.prev_raw = raw
                else:
                    x = raw
                event = self._observe(state, series, t, x)
                if event is not None:
                    new_events.append(event)
            state.cursor = series.evicted + len(points)
        self.events.extend(new_events)
        for event in new_events:
            for listener in self._listeners:
                listener(event)
        return new_events

    def _observe(self, state, series, t: float, x: float):
        event = None
        if state.seen >= self.warmup and state.ewma is not None:
            center = state.ewma
            window_median = _median(list(state.window))
            mad = _median([abs(v - window_median) for v in state.window])
            scale = 1.4826 * mad
            floor = max(self.min_scale_abs, self.min_scale_frac * abs(center))
            band = self.k * max(scale, floor)
            lower, upper = center - band, center + band
            if x > upper or x < lower:
                event = AnomalyEvent(
                    t=t,
                    series=series.name,
                    labels=dict(series.labels),
                    value=x,
                    center=center,
                    lower=lower,
                    upper=upper,
                    kind="spike" if x > upper else "drop",
                )
        # The baseline absorbs the point either way: a real regime shift
        # should alarm once and adapt, not alarm forever.
        state.window.append(x)
        state.ewma = (
            x
            if state.ewma is None
            else (1.0 - self.alpha) * state.ewma + self.alpha * x
        )
        state.seen += 1
        return event
