"""Span-based tracing on the shared virtual clock.

The tracer is the substrate every layer of the stack reports into: the
service broker (request admission, queueing, batch dispatch), the hybrid
runner (per-task spans with placement attributes), and the simulated
GPUs (ingress / compute / egress sub-spans).  Timestamps are *virtual*
seconds read from the same :class:`~repro.cluster.simclock.SimClock`
every process runs on, so a trace is exactly as deterministic as the
run it records — no wall-clock ambiguity, no sampling jitter.

Two implementations share one duck-typed API:

- :class:`NullTracer` (module singleton :data:`NULL_TRACER`) — every
  method is a no-op and ``enabled`` is ``False``; instrumented hot paths
  guard their argument construction with ``if tracer.enabled`` so a run
  without tracing pays one attribute read per site.
- :class:`EventTracer` — records :class:`TraceEvent` rows in memory.
  Export lives in :mod:`repro.obs.export` (Chrome trace-event JSON for
  Perfetto, terminal Gantt) and :mod:`repro.obs.prom` (Prometheus text
  exposition derived from the same stream).

Event vocabulary (a deliberate subset of the Chrome trace-event model):

- *complete* span — a ``[start, now]`` interval on a track ("X");
- *async* span   — begin/end pair matched by id, for request lifetimes
  that overlap freely on one lane track ("b"/"e");
- *instant*      — a point event (cache hit, placement decision) ("i");
- *counter*      — a sampled series (queue depth, device load) ("C").

Causal links: any event may carry an ``id`` (a span identity from
:meth:`EventTracer.new_id`, one shared monotone space per tracer) and a
``parent`` (the id of the span that *caused* it).  The chain request →
megabatch group → task → kernel sub-span makes every device interval
reachable from exactly one request root; the exporter renders each link
as a Perfetto flow arrow and :mod:`repro.obs.attribution` folds measured
child costs back onto the requests.

A *track* is one horizontal lane of the rendered timeline, named by a
``(process, thread)`` pair — e.g. ``("svc0", "rank3")`` or
``("service", "lane.interactive")`` — and interned to an integer handle
so hot-path emission never hashes strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TraceEvent", "NullTracer", "EventTracer", "NULL_TRACER", "WallClock"]


@dataclass
class TraceEvent:
    """One recorded event; ``ts``/``dur`` are virtual seconds."""

    ph: str  # "X" | "b" | "e" | "i" | "C"
    name: str
    cat: str
    track: int
    ts: float
    dur: float = 0.0
    id: Optional[int] = None
    args: Optional[dict] = None
    parent: Optional[int] = None  # id of the causing span, if any


class NullTracer:
    """The do-nothing tracer: tracing off, hot path unperturbed."""

    enabled = False

    def bind(self, clock) -> "NullTracer":
        return self

    def track(self, process: str, thread: str) -> int:
        return 0

    def new_id(self) -> int:
        return 0

    def complete(self, track, name, start, cat="", args=None, id=None, parent=None) -> None:
        pass

    def span(self, track, name, start, end, cat="", args=None, id=None, parent=None) -> None:
        pass

    def instant(self, track, name, cat="", args=None, parent=None) -> None:
        pass

    def async_begin(self, track, name, id, cat="", args=None, parent=None) -> None:
        pass

    def async_end(self, track, name, id, cat="", args=None) -> None:
        pass

    def counter(self, track, name, value) -> None:
        pass


#: Shared no-op instance — stateless, so one is enough for the process.
NULL_TRACER = NullTracer()


class WallClock:
    """Wall-time stand-in for a SimClock (CLI paths with no simulation).

    ``now`` is seconds since construction, so wall traces start at t = 0
    like virtual ones.
    """

    def __init__(self) -> None:
        import time

        self._t0 = time.perf_counter()
        self._time = time.perf_counter

    @property
    def now(self) -> float:
        return self._time() - self._t0


@dataclass
class _Track:
    process: str
    thread: str


class EventTracer:
    """In-memory recording tracer on a (virtual or wall) clock."""

    enabled = True

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self.events: list[TraceEvent] = []
        self.tracks: list[_Track] = []
        self._track_ids: dict[tuple[str, str], int] = {}
        self._next_id = 0

    def bind(self, clock) -> "EventTracer":
        """Late-bind the clock (for runs that build their own SimClock)."""
        self._clock = clock
        return self

    @property
    def bound(self) -> bool:
        return self._clock is not None

    @property
    def now(self) -> float:
        if self._clock is None:
            raise RuntimeError("tracer has no clock; call bind(clock) first")
        return self._clock.now

    # ------------------------------------------------------------------
    # Tracks
    # ------------------------------------------------------------------
    def track(self, process: str, thread: str) -> int:
        """Intern a ``(process, thread)`` pair to a track handle."""
        key = (process, thread)
        tid = self._track_ids.get(key)
        if tid is None:
            tid = len(self.tracks)
            self.tracks.append(_Track(process, thread))
            self._track_ids[key] = tid
        return tid

    def new_id(self) -> int:
        """Allocate a fresh span id (one monotone space per tracer)."""
        self._next_id += 1
        return self._next_id

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def complete(self, track, name, start, cat="", args=None, id=None, parent=None) -> None:
        """Close a span opened at virtual time ``start`` on ``track``."""
        now = self.now
        self.events.append(
            TraceEvent("X", name, cat, track, start, now - start, id, args, parent)
        )

    def span(self, track, name, start, end, cat="", args=None, id=None, parent=None) -> None:
        """Record a span with an explicit ``[start, end]`` interval."""
        self.events.append(
            TraceEvent("X", name, cat, track, start, end - start, id, args, parent)
        )

    def instant(self, track, name, cat="", args=None, parent=None) -> None:
        self.events.append(
            TraceEvent("i", name, cat, track, self.now, 0.0, None, args, parent)
        )

    def async_begin(self, track, name, id, cat="", args=None, parent=None) -> None:
        self.events.append(
            TraceEvent("b", name, cat, track, self.now, 0.0, id, args, parent)
        )

    def async_end(self, track, name, id, cat="", args=None) -> None:
        self.events.append(TraceEvent("e", name, cat, track, self.now, 0.0, id, args))

    def counter(self, track, name, value) -> None:
        """Sample a counter series (rendered as a filled track)."""
        self.events.append(
            TraceEvent("C", name, "", track, self.now, 0.0, None, {"value": value})
        )
