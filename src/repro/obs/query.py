"""A PromQL-subset query engine over the time-series store.

Grammar (recursive descent, no dependencies)::

    expr     := term (('+' | '-') term)*
    term     := factor (('*' | '/') factor)*
    factor   := NUMBER
              | FUNC '(' expr (',' expr)* ')'
              | selector
              | '(' expr ')'
    selector := NAME ('{' matcher (',' matcher)* '}')? ('[' DURATION ']')?
    matcher  := LABEL ('=' | '!=' | '=~') STRING
    DURATION := NUMBER ('ms' | 's' | 'm' | 'h')?      # bare number = seconds

Functions: ``rate``, ``increase``, ``avg_over_time``, ``max_over_time``,
``min_over_time``, ``sum_over_time``, ``count_over_time``,
``histogram_quantile``.

Semantics follow the store's scrape model rather than strict PromQL:

- An instant selector evaluates each matching series to its newest
  point at or before the evaluation time (no staleness cutoff — the
  store only holds real scrapes).
- ``rate(m[w])`` divides the increase over the window by the *actual*
  span between the newest point and the window's base point (the newest
  point at or before ``t - w``, else the oldest retained) — no
  extrapolation.  This is exactly the windowed-delta semantics the SLO
  engine's burn-rate rules historically used, which is what lets the
  engine replace them bit for bit.
- ``histogram_quantile(q, m_bucket{...})`` groups cumulative ``le``
  buckets by their remaining labels and applies the same
  skip-empty-buckets linear interpolation as
  :meth:`repro.obs.prom.Histogram.quantile`, so quantiles computed from
  scrapes match the registry's own estimator exactly.
- Binary operators join vectors on identical label sets; division by
  zero yields 0.0 (deterministic dashboards beat NaN propagation).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from repro.obs.tsdb import Series, TimeSeriesStore

__all__ = [
    "QueryEngine",
    "QueryError",
    "Sample",
    "parse_query",
]


class QueryError(ValueError):
    """Raised for syntax errors and invalid evaluations."""


@dataclass(frozen=True)
class Sample:
    """One element of an instant vector: a label set and its value."""

    labels: tuple[tuple[str, str], ...]
    value: float

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"Sample({{{lbl}}} {self.value!r})"


Result = Union[float, list[Sample]]


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Number:
    value: float


@dataclass(frozen=True)
class Matcher:
    label: str
    op: str  # '=', '!=', '=~'
    value: str

    def matches(self, labels: Mapping[str, str]) -> bool:
        actual = labels.get(self.label, "")
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        return _regex(self.value).fullmatch(actual) is not None


@dataclass(frozen=True)
class Selector:
    name: str
    matchers: tuple[Matcher, ...] = ()
    window_s: Optional[float] = None


@dataclass(frozen=True)
class FuncCall:
    fn: str
    args: tuple


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: object
    rhs: object


_REGEX_CACHE: dict[str, "re.Pattern[str]"] = {}


def _regex(pattern: str) -> "re.Pattern[str]":
    compiled = _REGEX_CACHE.get(pattern)
    if compiled is None:
        try:
            compiled = re.compile(pattern)
        except re.error as exc:
            raise QueryError(f"bad regex {pattern!r}: {exc}") from None
        _REGEX_CACHE[pattern] = compiled
    return compiled


RANGE_FUNCS = {
    "rate",
    "increase",
    "avg_over_time",
    "max_over_time",
    "min_over_time",
    "sum_over_time",
    "count_over_time",
}
FUNCS = RANGE_FUNCS | {"histogram_quantile"}


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op>=~|!=|[=+\-*/(){}\[\],])
    """,
    re.VERBOSE,
)

_ESCAPES = {"\\": "\\", '"': '"', "n": "\n", "t": "\t"}


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            out.append(_ESCAPES.get(body[i + 1], body[i + 1]))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QueryError(f"bad character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind != "ws":
            tokens.append((kind, m.group()))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        kind, got = self.next()
        if got != value:
            raise QueryError(
                f"expected {value!r}, got {got or 'end of input'!r} "
                f"in {self.text!r}"
            )

    # expr := term (('+'|'-') term)*
    def expr(self):
        node = self.term()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            node = BinOp(op, node, self.term())
        return node

    def term(self):
        node = self.factor()
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            node = BinOp(op, node, self.factor())
        return node

    def factor(self):
        kind, value = self.peek()
        if value == "(":
            self.next()
            node = self.expr()
            self.expect(")")
            return node
        if kind == "number":
            self.next()
            return Number(float(value))
        if kind == "name":
            if value in FUNCS and self.tokens[self.pos + 1][1] == "(":
                return self.func_call()
            return self.selector()
        raise QueryError(
            f"unexpected {value or 'end of input'!r} in {self.text!r}"
        )

    def func_call(self):
        fn = self.next()[1]
        self.expect("(")
        args = [self.expr()]
        while self.peek()[1] == ",":
            self.next()
            args.append(self.expr())
        self.expect(")")
        return FuncCall(fn, tuple(args))

    def selector(self):
        name = self.next()[1]
        matchers: list[Matcher] = []
        if self.peek()[1] == "{":
            self.next()
            while self.peek()[1] != "}":
                lkind, label = self.next()
                if lkind != "name":
                    raise QueryError(f"expected label name, got {label!r}")
                okind, op = self.next()
                if op not in ("=", "!=", "=~"):
                    raise QueryError(f"expected label operator, got {op!r}")
                skind, raw = self.next()
                if skind != "string":
                    raise QueryError(
                        f"expected quoted label value, got {raw!r}"
                    )
                matchers.append(Matcher(label, op, _unquote(raw)))
                if self.peek()[1] == ",":
                    self.next()
            self.expect("}")
        window = None
        if self.peek()[1] == "[":
            self.next()
            window = self.duration()
            self.expect("]")
        return Selector(name, tuple(matchers), window)

    def duration(self) -> float:
        kind, value = self.next()
        if kind != "number":
            raise QueryError(f"expected duration, got {value!r}")
        seconds = float(value)
        nkind, unit = self.peek()
        if nkind == "name" and unit in ("ms", "s", "m", "h"):
            self.next()
            seconds *= {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}[unit]
        return seconds

    def parse(self):
        node = self.expr()
        kind, value = self.peek()
        if kind != "eof":
            raise QueryError(f"trailing {value!r} in {self.text!r}")
        return node


def parse_query(text: str):
    """Parse ``text`` into an AST (cached by :class:`QueryEngine`)."""
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _series_key(series: Series) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(series.labels.items()))


def _select(store: TimeSeriesStore, sel: Selector) -> list[Series]:
    return [
        s
        for s in store.series(sel.name)
        if all(m.matches(s.labels) for m in sel.matchers)
    ]


def _histogram_quantile(q: float, buckets: list[Sample]) -> list[Sample]:
    """The registry's own estimator, re-run over scraped buckets.

    Cumulative ``le`` buckets are grouped by their remaining labels;
    per-bucket counts are recovered by differencing, then interpolated
    with the exact algorithm of
    :meth:`repro.obs.prom.Histogram.quantile` — skip empty buckets,
    linear within the first bucket crossing ``q * total``, clamp to the
    last finite bound — so SLO quantile rules evaluated here reproduce
    registry-side values bit for bit.
    """
    groups: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
    for sample in buckets:
        labels = sample.label_dict()
        le = labels.pop("le", None)
        if le is None:
            raise QueryError(
                "histogram_quantile needs _bucket series with le labels"
            )
        bound = float("inf") if le in ("+Inf", "inf", "Inf") else float(le)
        key = tuple(sorted(labels.items()))
        groups.setdefault(key, []).append((bound, sample.value))
    out: list[Sample] = []
    for key in sorted(groups):
        pairs = sorted(groups[key])
        bounds = [b for b, _ in pairs if b != float("inf")]
        cumulative = [c for _, c in pairs]
        total = cumulative[-1]
        counts = [
            cumulative[i] - (cumulative[i - 1] if i else 0.0)
            for i in range(len(cumulative))
        ]
        if total == 0:
            out.append(Sample(key, 0.0))
            continue
        target = q * total
        cum = 0.0
        lower = 0.0
        value = bounds[-1] if bounds else 0.0
        for bound, n in zip(bounds, counts):
            if n and cum + n >= target:
                fraction = (target - cum) / n
                value = lower + (bound - lower) * fraction
                break
            cum += n
            lower = bound
        out.append(Sample(key, value))
    return out


def _combine(op: str, a: float, b: float) -> float:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0.0:
        return 0.0
    return a / b


class QueryEngine:
    """Evaluate parsed expressions against one store."""

    def __init__(self, store: TimeSeriesStore) -> None:
        self.store = store
        self._asts: dict[str, object] = {}

    def compile(self, expr: str):
        ast = self._asts.get(expr)
        if ast is None:
            ast = parse_query(expr)
            self._asts[expr] = ast
        return ast

    def query(self, expr: str, at: Optional[float] = None) -> Result:
        """Evaluate ``expr`` at time ``at`` (default: newest scrape)."""
        return self.query_ast(self.compile(expr), at=at)

    def query_ast(self, ast, at: Optional[float] = None) -> Result:
        if at is None:
            at = self.store.last_scrape
            if at is None:
                return []
        return self._eval(ast, at)

    # ------------------------------------------------------------------
    def _eval(self, node, at: float) -> Result:
        if isinstance(node, Number):
            return node.value
        if isinstance(node, Selector):
            if node.window_s is not None:
                raise QueryError(
                    f"range selector {node.name}[...] needs a range function"
                )
            out = []
            for series in _select(self.store, node):
                point = series.latest_at(at)
                if point is not None:
                    out.append(Sample(_series_key(series), point[1]))
            return out
        if isinstance(node, FuncCall):
            return self._eval_func(node, at)
        if isinstance(node, BinOp):
            return self._eval_binop(node, at)
        raise QueryError(f"cannot evaluate {node!r}")

    def _eval_func(self, node: FuncCall, at: float) -> Result:
        if node.fn == "histogram_quantile":
            if len(node.args) != 2:
                raise QueryError("histogram_quantile takes (q, vector)")
            q = self._eval(node.args[0], at)
            if not isinstance(q, float):
                raise QueryError("histogram_quantile: q must be a scalar")
            vec = self._eval(node.args[1], at)
            if isinstance(vec, float):
                raise QueryError("histogram_quantile: second arg not a vector")
            return _histogram_quantile(q, vec)
        # range functions
        if len(node.args) != 1 or not isinstance(node.args[0], Selector):
            raise QueryError(f"{node.fn} takes one range selector argument")
        sel = node.args[0]
        if sel.window_s is None:
            raise QueryError(f"{node.fn} needs a [window], e.g. {sel.name}[30s]")
        out: list[Sample] = []
        for series in _select(self.store, sel):
            value = self._range_value(node.fn, series, at, sel.window_s)
            if value is not None:
                out.append(Sample(_series_key(series), value))
        return out

    @staticmethod
    def _range_value(
        fn: str, series: Series, at: float, window_s: float
    ) -> Optional[float]:
        if fn in ("rate", "increase"):
            latest = series.latest_at(at)
            if latest is None:
                return None
            base = series.base_at(at, window_s)
            assert base is not None  # latest exists, so a base does too
            if fn == "increase":
                return latest[1] - base[1]
            if latest[0] <= base[0]:
                return 0.0
            return (latest[1] - base[1]) / (latest[0] - base[0])
        points = series.window(at - window_s, at)
        if not points:
            return None
        values = [v for _, v in points]
        if fn == "avg_over_time":
            return sum(values) / len(values)
        if fn == "max_over_time":
            return max(values)
        if fn == "min_over_time":
            return min(values)
        if fn == "sum_over_time":
            return sum(values)
        if fn == "count_over_time":
            return float(len(values))
        raise QueryError(f"unknown function {fn!r}")

    def _eval_binop(self, node: BinOp, at: float) -> Result:
        lhs = self._eval(node.lhs, at)
        rhs = self._eval(node.rhs, at)
        if isinstance(lhs, float) and isinstance(rhs, float):
            return _combine(node.op, lhs, rhs)
        if isinstance(lhs, float):
            assert isinstance(rhs, list)
            return [
                Sample(s.labels, _combine(node.op, lhs, s.value)) for s in rhs
            ]
        if isinstance(rhs, float):
            return [
                Sample(s.labels, _combine(node.op, s.value, rhs)) for s in lhs
            ]
        right = {s.labels: s.value for s in rhs}
        out = []
        for s in lhs:
            other = right.get(s.labels)
            if other is not None:
                out.append(Sample(s.labels, _combine(node.op, s.value, other)))
        return out


def format_result(result: Result, unit: str = "") -> str:
    """Render a query result as an aligned plain-text table."""
    if isinstance(result, float):
        return f"{result:g}{(' ' + unit) if unit else ''}"
    if not result:
        return "(empty vector)"
    lines = []
    for sample in sorted(result, key=lambda s: s.labels):
        lbl = ",".join(f'{k}="{v}"' for k, v in sample.labels)
        lines.append(f"{{{lbl}}}  {sample.value:g}")
    return "\n".join(lines)
