"""Prometheus-style metrics: registry, text exposition, minimal parser.

Counters, gauges, and histograms in the Prometheus exposition text
format (the ``# HELP`` / ``# TYPE`` / sample-line layout scraped by a
real Prometheus).  No client library is required — the renderer and the
parser are both in-repo, so CI can assert round-trips without extra
dependencies.

:func:`service_registry` derives the full serving-stack metric set from
one :class:`~repro.service.broker.SpectrumBroker` (telemetry, cache,
coalescer, folded hybrid ledgers): lane latency histograms, cache hit
ratio, device load residency, evals saved by pruning, queue depth.
The registry is a *derived consumer* — it reads the same ledgers the
tracer's event stream feeds, so the two exports can never disagree.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_exposition",
    "service_registry",
    "run_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Latency buckets (virtual seconds) for the lane histograms.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Exposition-format escaping: ``\\`` -> ``\\\\``, ``"`` -> ``\\"``,
    newline -> ``\\n`` (the three escapes the Prometheus text format
    defines for label values)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep it verbatim, like Prometheus
                out.append(ch + nxt)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got "
                f"{tuple(labels)}"
            )
        return tuple(str(labels[k]) for k in self.labelnames)

    def exemplar_suffix(self, name: str, labels: dict) -> str:
        """OpenMetrics exemplar annotation for one sample line ('' = none)."""
        return ""


class Counter(_Metric):
    """Monotone accumulator."""

    kind = "counter"

    def __init__(self, name, help, labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        """Current value for one label set (0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        for key, value in sorted(self._values.items()):
            yield self.name, dict(zip(self.labelnames, key)), value


class Gauge(_Metric):
    """Point-in-time value."""

    kind = "gauge"

    def __init__(self, name, help, labelnames=()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = float(value)

    def value(self, **labels) -> float:
        """Current value for one label set (0 if never set)."""
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        for key, value in sorted(self._values.items()):
            yield self.name, dict(zip(self.labelnames, key)), value


class Histogram(_Metric):
    """Cumulative-bucket histogram (`_bucket`/`_sum`/`_count` samples)."""

    kind = "histogram"

    def __init__(self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        self._counts: dict[tuple, list[int]] = {}
        self._sums: dict[tuple, float] = {}
        #: label key -> bucket index -> (exemplar labels, exemplar value).
        self._exemplars: dict[tuple, dict[int, tuple[dict, float]]] = {}

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def observe(self, value: float, exemplar: Optional[dict] = None, **labels) -> None:
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.bounds) + 1))
        counts[self._bucket_index(value)] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        if exemplar:
            self.annotate(value, exemplar, **labels)

    def annotate(self, value: float, exemplar: dict, **labels) -> None:
        """Attach an exemplar to the bucket ``value`` falls in.

        Does not change any count — the observation itself must have been
        (or be) recorded separately.  The most recent exemplar per bucket
        wins, matching OpenMetrics's one-exemplar-per-bucket-line rule.
        """
        key = self._key(labels)
        self._exemplars.setdefault(key, {})[self._bucket_index(value)] = (
            dict(exemplar),
            float(value),
        )

    def count(self, **labels) -> int:
        """Observations recorded for one label set."""
        return sum(self._counts.get(self._key(labels), ()))

    def quantile(self, q: float, **labels) -> float:
        """The q-quantile by linear interpolation within cumulative buckets.

        The estimator Prometheus's ``histogram_quantile`` uses: find the
        bucket the target rank lands in and interpolate linearly between
        its bounds (the first bucket's lower bound is 0).  Observations
        in the ``+Inf`` bucket clamp to the largest finite bound.  SLO
        rules targeting p95/p99 latency read this directly off the
        registry — no exposition-text round trip.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        counts = self._counts.get(self._key(labels))
        if counts is None:
            return 0.0
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        cum = 0
        lower = 0.0
        for bound, n in zip(self.bounds, counts):
            if n and cum + n >= target:
                fraction = (target - cum) / n
                return lower + (bound - lower) * fraction
            cum += n
            lower = bound
        return self.bounds[-1]

    def samples(self) -> Iterable[tuple[str, dict, float]]:
        for key in sorted(self._counts):
            labels = dict(zip(self.labelnames, key))
            counts = self._counts[key]
            cum = 0
            for bound, n in zip(self.bounds, counts):
                cum += n
                yield self.name + "_bucket", {**labels, "le": _fmt(bound)}, cum
            cum += counts[-1]
            yield self.name + "_bucket", {**labels, "le": "+Inf"}, cum
            yield self.name + "_sum", labels, self._sums[key]
            yield self.name + "_count", labels, cum

    def exemplar_suffix(self, name: str, labels: dict) -> str:
        if name != self.name + "_bucket" or not self._exemplars:
            return ""
        per = self._exemplars.get(tuple(str(labels[k]) for k in self.labelnames))
        if not per:
            return ""
        le = labels.get("le", "")
        if le == "+Inf":
            idx = len(self.bounds)
        else:
            idx = next(
                (i for i, b in enumerate(self.bounds) if _fmt(b) == le), -1
            )
            if idx < 0:
                return ""
        ex = per.get(idx)
        if ex is None:
            return ""
        ex_labels, ex_value = ex
        return f" # {_label_str(ex_labels)} {_fmt(ex_value)}"


class MetricsRegistry:
    """Ordered collection of metrics with one text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> _Metric:
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> _Metric:
        """Look a metric up by family name (KeyError if absent)."""
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r}; registered: {sorted(self._metrics)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def metrics(self) -> list[_Metric]:
        """Every registered metric, registration-ordered."""
        return list(self._metrics.values())

    def merge(self, other: "MetricsRegistry", extra_labels=None) -> "MetricsRegistry":
        """Fold ``other``'s samples into this registry (federation).

        Families are unified by name: a family ``other`` has that this
        registry lacks is created; one both have must agree on kind,
        label-name set, and (for histograms) bucket bounds, or the merge
        raises ``ValueError`` — help text is reconciled by keeping this
        registry's.  ``extra_labels`` (e.g. ``{"node": "0"}``) are added
        as constant labels to every merged sample, the Prometheus
        federation shape; a merged label set that already exists on the
        target family is a collision and raises rather than silently
        summing two nodes' counters.  Returns ``self`` for chaining.
        """
        extra = {str(k): str(v) for k, v in dict(extra_labels or {}).items()}
        for theirs in other._metrics.values():
            if any(k in theirs.labelnames for k in extra):
                raise ValueError(
                    f"{theirs.name}: extra labels {sorted(extra)} collide "
                    f"with family labels {theirs.labelnames}"
                )
            merged_names = tuple(theirs.labelnames) + tuple(sorted(extra))
            mine = self._metrics.get(theirs.name)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(
                        theirs.name, theirs.help, merged_names, theirs.bounds
                    )
                elif isinstance(theirs, Counter):
                    mine = Counter(theirs.name, theirs.help, merged_names)
                else:
                    mine = Gauge(theirs.name, theirs.help, merged_names)
                self.register(mine)
            else:
                if mine.kind != theirs.kind:
                    raise ValueError(
                        f"{theirs.name}: cannot merge {theirs.kind} into "
                        f"{mine.kind}"
                    )
                if set(mine.labelnames) != set(merged_names):
                    raise ValueError(
                        f"{theirs.name}: label sets differ "
                        f"({mine.labelnames} vs {merged_names})"
                    )
                if isinstance(mine, Histogram) and mine.bounds != theirs.bounds:
                    raise ValueError(
                        f"{theirs.name}: bucket bounds differ"
                    )
            if isinstance(theirs, Histogram):
                for key, counts in theirs._counts.items():
                    labels = dict(zip(theirs.labelnames, key), **extra)
                    target = mine._key(labels)
                    if target in mine._counts:
                        raise ValueError(
                            f"{theirs.name}{labels}: duplicate label set"
                        )
                    mine._counts[target] = list(counts)
                    mine._sums[target] = theirs._sums[key]
                    if key in theirs._exemplars:
                        mine._exemplars[target] = {
                            idx: (dict(ex[0]), ex[1])
                            for idx, ex in theirs._exemplars[key].items()
                        }
            else:
                for key, value in theirs._values.items():
                    labels = dict(zip(theirs.labelnames, key), **extra)
                    target = mine._key(labels)
                    if target in mine._values:
                        raise ValueError(
                            f"{theirs.name}{labels}: duplicate label set"
                        )
                    mine._values[target] = value
        return self

    def value(self, name: str, **labels) -> float:
        """Shortcut: current value of a counter or gauge sample."""
        metric = self.get(name)
        if not hasattr(metric, "value"):
            raise TypeError(f"metric {name!r} ({metric.kind}) has no scalar value")
        return metric.value(**labels)

    def counter(self, name, help, labelnames=()) -> Counter:
        return self.register(Counter(name, help, labelnames))

    def gauge(self, name, help, labelnames=()) -> Gauge:
        return self.register(Gauge(name, help, labelnames))

    def histogram(self, name, help, labelnames=(), buckets=DEFAULT_BUCKETS) -> Histogram:
        return self.register(Histogram(name, help, labelnames, buckets))

    def render(self) -> str:
        """The Prometheus text exposition format, one family per metric."""
        lines: list[str] = []
        for metric in self._metrics.values():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, labels, value in metric.samples():
                lines.append(
                    f"{name}{_label_str(labels)} {_fmt(value)}"
                    + metric.exemplar_suffix(name, labels)
                )
        return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Minimal exposition-format parser: family name -> [(labels, value)].

    Sample names like ``x_bucket``/``x_sum``/``x_count`` are grouped
    under their own keys; ``# TYPE``/``# HELP`` lines register the
    family (so an empty family still appears).  Raises ``ValueError`` on
    malformed lines — the CI step uses this as a validity check.
    """
    families: dict[str, list[tuple[dict, float]]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("TYPE", "HELP"):
                families.setdefault(parts[2], [])
                continue
            raise ValueError(f"line {lineno}: malformed comment {line!r}")
        name, labels, value = _parse_sample(line, lineno)
        families.setdefault(name, []).append(
            (labels, math.inf if value == "+Inf" else float(value))
        )
    return families


_SAMPLE_NAME_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_sample(line: str, lineno: int) -> tuple[str, dict[str, str], str]:
    """Split one sample line into (name, labels, value text).

    A hand-rolled scanner rather than one regex because label *values*
    may contain ``,``, ``}``, and escaped quotes — the adversarial cases
    the round-trip test covers.
    """
    m = _SAMPLE_NAME_RE.match(line)
    if not m:
        raise ValueError(f"line {lineno}: malformed sample {line!r}")
    name = m.group(1)
    rest = line[m.end():]
    labels: dict[str, str] = {}
    if rest.startswith("{"):
        pos = 1
        while True:
            if pos < len(rest) and rest[pos] == "}":
                pos += 1
                break
            lm = _LABEL_RE.match(rest, pos)
            if not lm:
                raise ValueError(
                    f"line {lineno}: malformed label {rest[pos:]!r}"
                )
            labels[lm.group(1)] = _unescape_label_value(lm.group(2))
            pos = lm.end()
            if pos < len(rest) and rest[pos] == ",":
                pos += 1
            elif pos < len(rest) and rest[pos] == "}":
                pos += 1
                break
            else:
                raise ValueError(
                    f"line {lineno}: malformed label block {rest!r}"
                )
        rest = rest[pos:]
    # Tolerate an OpenMetrics exemplar annotation (` # {...} value`) —
    # the renderer attaches them to histogram bucket lines.
    rest = rest.split(" # ", 1)[0]
    value = rest.strip()
    if not value or any(c.isspace() for c in value.strip()):
        raise ValueError(f"line {lineno}: malformed sample {line!r}")
    if not rest[:1].isspace():
        raise ValueError(f"line {lineno}: malformed sample {line!r}")
    return name, labels, value


# ----------------------------------------------------------------------
# Derivations from the repo's ledgers
# ----------------------------------------------------------------------
def _plan_cache_metrics(reg: MetricsRegistry) -> None:
    """Export the process-global plan cache into ``reg``.

    The cache (:data:`repro.physics.plan.PLAN_CACHE`) is shared by the
    model layer and the service cost model, so its counters describe the
    whole process, not one broker.
    """
    from repro.physics.plan import PLAN_CACHE

    stats = PLAN_CACHE.stats
    lookups = reg.counter(
        "repro_plan_cache_lookups_total",
        "Compiled-plan cache lookups by result",
        ("result",),
    )
    lookups.inc(stats.hits, result="hit")
    lookups.inc(stats.misses, result="miss")
    reg.counter(
        "repro_plan_compilations_total", "Spectrum plans compiled"
    ).inc(stats.compilations)
    reg.counter(
        "repro_plan_cache_evictions_total", "Compiled plans evicted"
    ).inc(stats.evictions)
    reg.gauge(
        "repro_plan_cache_hit_ratio", "Plan-cache hits / lookups"
    ).set(stats.hit_rate)
    reg.gauge(
        "repro_plan_cache_entries", "Compiled plans resident in the cache"
    ).set(len(PLAN_CACHE))


def _spectrum_cache_metrics(reg: MetricsRegistry, broker) -> None:
    """Export the broker's spectrum cache under ``repro_spectrum_cache_*``.

    Mirrors the ``repro_plan_cache_*`` family shape so dashboards treat
    the two caches uniformly.  (The legacy ``repro_cache_*`` names stay
    exported for compatibility.)
    """
    stats = broker.cache.stats
    lookups = reg.counter(
        "repro_spectrum_cache_lookups_total",
        "Spectrum cache lookups by result",
        ("result",),
    )
    lookups.inc(stats.hits, result="hit")
    lookups.inc(stats.misses, result="miss")
    reg.counter(
        "repro_spectrum_cache_insertions_total", "Spectra inserted"
    ).inc(stats.insertions)
    churn = reg.counter(
        "repro_spectrum_cache_removals_total",
        "Spectrum cache removals by cause",
        ("cause",),
    )
    churn.inc(stats.evictions, cause="evicted")
    churn.inc(stats.expirations, cause="expired")
    reg.counter(
        "repro_spectrum_cache_oversize_rejections_total",
        "Spectra refused for exceeding the byte budget",
    ).inc(stats.oversize_rejections)
    reg.gauge(
        "repro_spectrum_cache_hit_ratio", "Spectrum-cache hits / lookups"
    ).set(stats.hit_ratio())
    reg.gauge(
        "repro_spectrum_cache_entries", "Spectra resident in the cache"
    ).set(len(broker.cache))
    reg.gauge(
        "repro_spectrum_cache_bytes", "Bytes resident in the cache"
    ).set(broker.cache.bytes_stored)


def _lattice_metrics(reg: MetricsRegistry, store) -> None:
    """Export one broker's approximate-serving store.

    ``store`` may be ``None`` (no positive-accuracy request seen yet) —
    the families still render, at zero, so scrapers and CI assertions
    see a stable schema.
    """
    from repro.approx import LatticeStats

    stats = store.stats if store is not None else LatticeStats()
    requests = reg.counter(
        "repro_approx_lattice_requests_total",
        "Lattice lookups by result",
        ("result",),
    )
    requests.inc(stats.hits, result="hit")
    requests.inc(stats.misses, result="miss")
    requests.inc(stats.fallbacks, result="fallback")
    reg.counter(
        "repro_approx_lattice_refinements_total",
        "Lattice intervals bisected on demand",
    ).inc(stats.refinements)
    reg.counter(
        "repro_approx_lattice_builds_total", "Family lattices built"
    ).inc(stats.builds)
    reg.counter(
        "repro_approx_lattice_invalidations_total",
        "Family lattices dropped on fingerprint change",
    ).inc(stats.invalidations)
    reg.counter(
        "repro_approx_lattice_evictions_total",
        "Family lattices evicted by the byte budget",
    ).inc(stats.evictions)
    reg.counter(
        "repro_approx_lattice_node_evals_total",
        "Exact spectra evaluated for lattice nodes and certificates",
    ).inc(stats.node_evals)
    reg.gauge(
        "repro_approx_lattice_hit_ratio", "Lattice hits / lookups"
    ).set(stats.hit_ratio())
    reg.gauge(
        "repro_approx_lattice_families", "Family lattices resident"
    ).set(len(store) if store is not None else 0)
    reg.gauge(
        "repro_approx_lattice_nodes", "Lattice nodes resident (all families)"
    ).set(store.n_nodes if store is not None else 0)
    reg.gauge(
        "repro_approx_lattice_bytes", "Bytes resident across family lattices"
    ).set(store.bytes_stored if store is not None else 0)


#: Width buckets of the megabatch histogram — powers of two up to the
#: widest fused launch a service config can reasonably ask for.
BATCH_WIDTH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _batch_metrics(reg: MetricsRegistry, tel) -> None:
    """Export continuous-batching counters under ``repro_batch_*``.

    The families render even when batching never engaged (legacy
    dispatch, or ``batch_window_s=None``) — counters at zero, the
    histogram empty — so scrapers and the CI smoke step always see the
    schema.
    """
    widths = reg.histogram(
        "repro_batch_width",
        "Temperatures fused per megabatch group",
        buckets=BATCH_WIDTH_BUCKETS,
    )
    for w in tel.megabatch_widths:
        widths.observe(float(w))
    reg.counter(
        "repro_batch_groups_total", "Megabatch groups dispatched"
    ).inc(len(tel.megabatch_widths))
    reg.counter(
        "repro_batch_temperatures_total",
        "Temperatures dispatched through megabatch groups",
    ).inc(tel.batched_temperatures)
    reg.counter(
        "repro_batch_coalesced_requests_total",
        "Requests that shared a fused launch with at least one other",
    ).inc(tel.batch_coalesced_requests)
    reg.counter(
        "repro_batch_window_waits_total",
        "Admission-window waits taken by service workers",
    ).inc(tel.batch_window_waits)


def _cost_metrics(reg: MetricsRegistry, broker) -> None:
    """Export the causal-attribution ledger under ``repro_request_cost_*``.

    The families render even when tracing is off (no attribution rides
    the broker) — zeroed samples per component, conservation at its
    vacuous 1.0 — so scrapers and the CI smoke step always see the
    schema.  With tracing on, the counters carry the fair-share
    attributed virtual seconds and the gauges describe the online cost
    model (:class:`repro.obs.attribution.CostModel`).
    """
    from repro.obs.attribution import COMPONENTS, TICKS_PER_S

    cost = reg.counter(
        "repro_request_cost_seconds_total",
        "Attributed virtual seconds by lane and cost component",
        ("lane", "component"),
    )
    unattributed = reg.counter(
        "repro_request_cost_unattributed_seconds_total",
        "Measured span seconds with no causal chain to a request",
        ("component",),
    )
    conservation = reg.gauge(
        "repro_request_cost_conservation_ratio",
        "min over components of attributed/measured cost (1.0 = exact)",
    )
    model_keys = reg.gauge(
        "repro_request_cost_model_keys",
        "Distinct (ion, method, width-bucket) cost-model keys",
    )
    model_obs = reg.counter(
        "repro_request_cost_model_observations_total",
        "Measured task costs folded into the online cost model",
    )
    model_err = reg.gauge(
        "repro_request_cost_model_mean_abs_rel_error",
        "Running mean |predicted - measured| / measured of the cost model",
    )
    for lane in sorted(broker.telemetry.lanes):
        for comp in COMPONENTS:
            cost.inc(0.0, lane=lane, component=comp)
    for comp in COMPONENTS:
        unattributed.inc(0.0, component=comp)
    result = broker.cost_report() if hasattr(broker, "cost_report") else None
    if result is None:
        conservation.set(1.0)
        return
    for entry in result.entries:
        lane = entry.lane or "unknown"
        for comp, ticks in entry.ticks.items():
            cost.inc(ticks / TICKS_PER_S, lane=lane, component=comp)
    for comp in COMPONENTS:
        unattributed.inc(
            result.unattributed_ticks.get(comp, 0) / TICKS_PER_S, component=comp
        )
    conservation.set(result.conservation)
    model = getattr(broker, "cost_model", None)
    if model is not None:
        model_keys.set(model.n_keys)
        model_obs.inc(model.n_observations)
        model_err.set(model.mean_abs_rel_error)


#: Relative-error buckets for the predicted-vs-measured histogram: the
#: EWMA cost model converges to a few percent, so the resolution sits
#: there, with a long tail for cold-start mispredictions.
SCHED_ERROR_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5)


def _sched_metrics(
    reg: MetricsRegistry,
    n_devices: int,
    steals,
    donations,
    prediction_errors,
    mean_loads,
    imbalance: float,
) -> None:
    """Export the predictive-scheduling families under ``repro_sched_*``.

    Zeroed-schema convention: the families are always emitted — all-zero
    counters, an empty histogram, a 0.0 imbalance — when the run used a
    non-predictive scheduler, so scrapers and the CI validation step see
    a stable exposition either way.
    """
    steal_c = reg.counter(
        "repro_sched_steals_total",
        "Tasks each device pulled from another device's queue",
        ("device",),
    )
    donation_c = reg.counter(
        "repro_sched_donations_total",
        "Tasks pulled away from each device's queue",
        ("device",),
    )
    err_h = reg.histogram(
        "repro_sched_prediction_error",
        "Relative |predicted - measured| / measured task cost",
        buckets=SCHED_ERROR_BUCKETS,
    )
    load_g = reg.gauge(
        "repro_sched_mean_device_load",
        "Time-weighted mean queue load per device",
        ("device",),
    )
    for d in range(max(1, n_devices)):
        steal_c.inc(float(steals[d]) if d < len(steals) else 0.0, device=d)
        donation_c.inc(
            float(donations[d]) if d < len(donations) else 0.0, device=d
        )
        load_g.set(
            float(mean_loads[d]) if d < len(mean_loads) else 0.0, device=d
        )
    for err in prediction_errors:
        err_h.observe(float(err))
    reg.gauge(
        "repro_sched_load_imbalance",
        "Spread (max - min) of time-weighted mean device loads",
    ).set(float(imbalance))


def service_registry(broker) -> MetricsRegistry:
    """Derive the serving-stack metric set from one broker's ledgers."""
    reg = MetricsRegistry()
    tel = broker.telemetry

    arrivals = reg.counter(
        "repro_requests_total", "Requests by lane and outcome", ("lane", "outcome")
    )
    latency = reg.histogram(
        "repro_request_latency_seconds",
        "Completion latency by lane (virtual seconds)",
        ("lane",),
    )
    for lane, stats in tel.lanes.items():
        arrivals.inc(stats.cache_hits, lane=lane, outcome="cache_hit")
        arrivals.inc(stats.lattice_hits, lane=lane, outcome="lattice_hit")
        arrivals.inc(stats.coalesced, lane=lane, outcome="coalesced")
        arrivals.inc(stats.computed, lane=lane, outcome="computed")
        arrivals.inc(stats.rejections, lane=lane, outcome="rejected")
        arrivals.inc(stats.retries, lane=lane, outcome="retried")
        for sample in stats.latency_samples():
            latency.observe(sample, lane=lane)
        # Trace-id exemplars: the most recent traced completions annotate
        # the buckets their latencies fell in, linking the histogram back
        # to the causal trace (OpenMetrics-style).
        for latency_s, trace_id in getattr(stats, "latency_exemplars", ()):
            latency.annotate(latency_s, {"trace_id": f"{trace_id:x}"}, lane=lane)

    cache = broker.cache.stats
    lookups = reg.counter(
        "repro_cache_lookups_total", "Cache lookups by result", ("result",)
    )
    lookups.inc(cache.hits, result="hit")
    lookups.inc(cache.misses, result="miss")
    reg.gauge("repro_cache_hit_ratio", "Cache hits / lookups").set(cache.hit_ratio())
    reg.gauge("repro_cache_entries", "Entries resident in the cache").set(
        len(broker.cache)
    )
    reg.gauge("repro_cache_bytes", "Bytes resident in the cache").set(
        broker.cache.bytes_stored
    )
    churn = reg.counter(
        "repro_cache_churn_total", "Cache removals by cause", ("cause",)
    )
    churn.inc(cache.evictions, cause="evicted")
    churn.inc(cache.expirations, cause="expired")

    reg.counter(
        "repro_coalesced_joins_total", "Requests attached to an in-flight leader"
    ).inc(broker.coalescer.coalesced)

    _plan_cache_metrics(reg)
    _spectrum_cache_metrics(reg, broker)
    _lattice_metrics(reg, getattr(broker, "lattice_store", None))

    reg.gauge("repro_queue_depth", "Admission depth at snapshot time").set(
        broker.queue_depth
    )
    reg.gauge("repro_queue_depth_mean", "Time-weighted mean admission depth").set(
        tel.mean_queue_depth()
    )
    reg.gauge("repro_queue_depth_max", "Peak admission depth").set(tel.max_depth)

    tasks = reg.counter(
        "repro_tasks_total", "Hybrid tasks by placement", ("placement",)
    )
    tasks.inc(tel.gpu_tasks, placement="gpu")
    tasks.inc(tel.cpu_tasks, placement="cpu")
    reg.counter("repro_batches_total", "Hybrid batches dispatched").inc(
        len(tel.batch_sizes)
    )
    reg.counter(
        "repro_evals_saved_total",
        "Integrand evaluations pruned by active windows",
    ).inc(tel.evals_saved)

    _batch_metrics(reg, tel)
    _cost_metrics(reg, broker)

    residency = reg.gauge(
        "repro_device_load_residency_seconds",
        "Virtual seconds each device load level was held (all batches)",
        ("device", "load"),
    )
    if tel.load_residency is not None:
        for d in range(tel.load_residency.shape[0]):
            for load in range(tel.load_residency.shape[1]):
                residency.set(
                    float(tel.load_residency[d, load]), device=d, load=load
                )
    _sched_metrics(
        reg,
        tel.load_residency.shape[0] if tel.load_residency is not None else 1,
        tel.sched_steals,
        tel.sched_donations,
        tel.sched_prediction_errors,
        tel.sched_mean_loads(),
        tel.sched_imbalance(),
    )
    reg.gauge("repro_virtual_time_seconds", "Virtual end time of the run").set(
        tel.end_time
    )
    return reg


def run_registry(result, wall_s: Optional[float] = None) -> MetricsRegistry:
    """Derive a registry from one hybrid :class:`RunResult` ledger."""
    reg = MetricsRegistry()
    m = result.metrics
    reg.gauge("repro_makespan_seconds", "Virtual makespan of the run").set(
        result.makespan_s
    )
    tasks = reg.counter(
        "repro_tasks_total", "Tasks by placement", ("placement",)
    )
    tasks.inc(int(m.gpu_tasks.sum()), placement="gpu")
    tasks.inc(m.cpu_tasks, placement="cpu")
    reg.gauge("repro_gpu_task_ratio", "Fraction of tasks served by GPUs").set(
        m.gpu_task_ratio()
    )
    reg.counter(
        "repro_evals_saved_total",
        "Integrand evaluations pruned by active windows",
    ).inc(m.evals_saved)
    residency = reg.gauge(
        "repro_device_load_residency_seconds",
        "Virtual seconds each device load level was held",
        ("device", "load"),
    )
    for d in range(m.n_devices):
        for load in range(m.max_queue_length + 1):
            residency.set(float(m.load_residency[d, load]), device=d, load=load)
    _sched_metrics(
        reg,
        m.n_devices,
        m.steals,
        m.donations,
        m.prediction_errors(),
        [m.mean_device_load(d) for d in range(m.n_devices)],
        m.load_imbalance(),
    )
    if wall_s is not None:
        reg.gauge("repro_wall_seconds", "Host wall-clock time of the run").set(wall_s)
    return reg
