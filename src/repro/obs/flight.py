"""SLO-triggered flight recorder: postmortem bundles from a live run.

When an SLO rule enters ``firing`` mid-run, the interesting evidence —
the trailing trace window, the per-request cost ledger, the cost model's
current beliefs — is exactly what a postmortem needs and exactly what is
gone by the time anyone looks.  :class:`FlightRecorder` arms the
:meth:`~repro.obs.slo.SLOEngine.on_transition` hook and dumps a bundle
directory the moment a rule fires:

- ``trace.json`` — Chrome trace-event JSON of the trailing window
  (``window_s`` virtual seconds before the firing instant), flow arrows
  included, loadable in Perfetto;
- ``cost_ledger.json`` — the :class:`~repro.obs.attribution.AttributionResult`
  snapshot (per-request fair-share costs, conservation ratio);
- ``cost_model.json`` — the serialized online cost model;
- ``series.json`` — the trailing window of the broker's scraped time
  series (when a :class:`~repro.obs.tsdb.TimeSeriesStore` is attached),
  the exact delta-encoded store format ``repro query`` reads;
- ``slo_report.txt`` — the engine's rule table and transition log;
- ``manifest.json`` — what fired, when, and what the bundle holds.

:meth:`arm_anomalies` additionally subscribes the recorder to an
:class:`~repro.obs.anomaly.AnomalyDetector`, so an out-of-band series
(a latency spike, a utilization collapse) dumps a bundle even when no
SLO rule is registered for it.

Bundles are bounded (``limit``) so a flapping rule cannot fill a disk;
:meth:`dump` can also be called directly for an on-demand snapshot.
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace
from typing import Optional

from repro.obs.export import to_chrome
from repro.obs.slo import RuleState, Transition

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Dumps postmortem bundles when SLO rules start firing.

    Bind it to a broker (for the tracer, cost ledger, and cost model)
    and :meth:`arm` it on the run's SLO engine.  Each
    ``pending -> firing`` transition writes one bundle directory under
    ``out_dir``; the paths land in :attr:`bundles`.
    """

    def __init__(
        self,
        broker,
        out_dir: str,
        window_s: float = 10.0,
        limit: int = 8,
    ) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self.broker = broker
        self.out_dir = out_dir
        self.window_s = window_s
        self.limit = limit
        self.bundles: list[str] = []
        self._engine = None

    def arm(self, engine) -> "FlightRecorder":
        """Subscribe to the engine's transitions; returns self."""
        engine.on_transition(self._on_transition)
        self._engine = engine
        return self

    def arm_anomalies(self, detector) -> "FlightRecorder":
        """Subscribe to a detector's anomaly events; returns self."""
        detector.on_anomaly(self._on_anomaly)
        return self

    def _on_transition(self, tr: Transition) -> None:
        if tr.to == RuleState.FIRING and len(self.bundles) < self.limit:
            self.dump(reason=tr)

    def _on_anomaly(self, event) -> None:
        if len(self.bundles) < self.limit:
            self.dump(reason=event)

    # ------------------------------------------------------------------
    def _trailing_events(self, now: float) -> list:
        """Events overlapping the trailing window.

        An async ``e`` inside the window keeps its ``b`` even when that
        begin predates the window — otherwise the cut would fabricate
        end-without-begin pairs.  Requests still open at the firing
        instant appear as unmatched ``b`` events: that is the honest
        shape of an in-flight request, and usually the evidence the
        postmortem is for.
        """
        tracer = self.broker.tracer
        events = getattr(tracer, "events", None)
        if not events:
            return []
        horizon = now - self.window_s
        ended_in_window = {
            (ev.cat, ev.id)
            for ev in events
            if ev.ph == "e" and ev.ts + ev.dur >= horizon
        }
        return [
            ev
            for ev in events
            if ev.ts + ev.dur >= horizon
            or (ev.ph == "b" and (ev.cat, ev.id) in ended_in_window)
        ]

    def dump(self, reason=None) -> str:
        """Write one bundle now; returns its directory path.

        ``reason`` is either an SLO :class:`~repro.obs.slo.Transition`
        or an :class:`~repro.obs.anomaly.AnomalyEvent` (or None for an
        on-demand snapshot).
        """
        now = self.broker.clock.now
        name = f"postmortem-{len(self.bundles):03d}"
        if isinstance(reason, Transition):
            name += f"-{reason.rule}"
        elif reason is not None:
            name += f"-{reason.series}"
        path = os.path.join(self.out_dir, name)
        os.makedirs(path, exist_ok=True)
        files: list[str] = []

        tracer = self.broker.tracer
        trailing = self._trailing_events(now)
        n_events = 0
        if trailing:
            window = SimpleNamespace(tracks=tracer.tracks, events=trailing)
            rows = to_chrome(window)
            with open(os.path.join(path, "trace.json"), "w") as fh:
                json.dump({"traceEvents": rows, "displayTimeUnit": "ms"}, fh)
            files.append("trace.json")
            n_events = len(rows)

        result = (
            self.broker.cost_report()
            if hasattr(self.broker, "cost_report")
            else None
        )
        if result is not None:
            with open(os.path.join(path, "cost_ledger.json"), "w") as fh:
                json.dump(result.as_dict(), fh, indent=1)
            files.append("cost_ledger.json")

        model = getattr(self.broker, "cost_model", None)
        if model is not None:
            with open(os.path.join(path, "cost_model.json"), "w") as fh:
                json.dump(model.to_dict(), fh, indent=1)
            files.append("cost_model.json")

        n_points = 0
        tsdb = getattr(self.broker, "tsdb", None)
        if tsdb is not None and tsdb.enabled and len(tsdb):
            doc = tsdb.to_dict(since=now - self.window_s)
            if doc["series"]:
                with open(os.path.join(path, "series.json"), "w") as fh:
                    json.dump(doc, fh)
                files.append("series.json")
                n_points = sum(len(s["t"]) for s in doc["series"])

        if self._engine is not None:
            with open(os.path.join(path, "slo_report.txt"), "w") as fh:
                fh.write(self._engine.report() + "\n")
            files.append("slo_report.txt")

        if reason is None:
            reason_doc = None
        elif isinstance(reason, Transition):
            reason_doc = {
                "rule": reason.rule,
                "from": reason.frm,
                "to": reason.to,
                "value": reason.value,
                "t": reason.t,
            }
        else:
            reason_doc = reason.as_dict()

        manifest = {
            "virtual_time_s": now,
            "window_s": self.window_s,
            "files": files,
            "trace_events": n_events,
            "series_points": n_points,
            "reason": reason_doc,
        }
        with open(os.path.join(path, "manifest.json"), "w") as fh:
            json.dump(manifest, fh, indent=1)
        self.bundles.append(path)
        return path
