"""An in-process time-series store: continuous telemetry over sim time.

The metrics registry (:mod:`repro.obs.prom`) is a *snapshot*: it can say
what a counter is, not how it got there.  This module closes that gap
with a dependency-free, bounded store that *scrapes* a registry on the
shared sim clock at a configurable cadence:

- each sample a registry renders becomes one point in a per-series ring
  buffer keyed by ``(sample name, label set)``, so history is bounded
  per series no matter how long a run is;
- scrape times ride whatever clock the caller owns — the service broker
  scrapes at batch completions, the hybrid runner at batch boundaries
  (plus a cadence process), CLI one-shots fall back to wall clock;
- the disabled path is free: :data:`NULL_TSDB` mirrors the
  :data:`~repro.obs.tracer.NULL_TRACER` pattern — one ``enabled``
  attribute read per guard site, nothing else;
- the JSON round trip is *exact*: timestamps and values are
  delta-encoded as XOR deltas of their IEEE-754 bit patterns (the
  Gorilla trick), so repeated or slowly-moving values compress to
  streams of zeros while ``from_dict(to_dict(s))`` reproduces every
  float bit for bit.

The query engine (:mod:`repro.obs.query`), anomaly detector
(:mod:`repro.obs.anomaly`), and dashboard renderer
(:mod:`repro.obs.dash`) are all consumers of this store.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Mapping, Optional

__all__ = [
    "NULL_TSDB",
    "NullTimeSeriesStore",
    "Series",
    "TimeSeriesStore",
    "federate_stores",
]

TSDB_SCHEMA = "repro.tsdb/v1"


# ----------------------------------------------------------------------
# Exact delta encoding (IEEE-754 bit-pattern XOR)
# ----------------------------------------------------------------------
def _bits(value: float) -> int:
    return struct.unpack(">Q", struct.pack(">d", float(value)))[0]


def _unbits(bits: int) -> float:
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def encode_floats(values: Iterable[float]) -> list[int]:
    """XOR-delta encode a float sequence losslessly.

    The first element is the raw 64-bit pattern; each subsequent element
    is the XOR against its predecessor's pattern — 0 for repeats, small
    for slow drifts — so the JSON stays compact without ever rounding.
    """
    out: list[int] = []
    prev = 0
    for value in values:
        bits = _bits(value)
        out.append(bits if not out else bits ^ prev)
        prev = bits
    return out


def decode_floats(encoded: Iterable[int]) -> list[float]:
    """Invert :func:`encode_floats` exactly."""
    out: list[float] = []
    prev = 0
    for delta in encoded:
        bits = delta if not out else delta ^ prev
        out.append(_unbits(bits))
        prev = bits
    return out


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One bounded series: ``(name, labels)`` plus a ring of points.

    ``kind`` records the originating metric family's type (``counter`` /
    ``gauge`` / ``histogram``) so consumers know whether to difference
    (counters) or read raw (gauges).  ``evicted`` counts points dropped
    by the ring so cursor-based consumers (the anomaly detector) can
    skip exactly the points they already saw.
    """

    __slots__ = ("name", "labels", "kind", "capacity", "_ts", "_vs", "evicted")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        kind: str = "gauge",
        capacity: int = 512,
    ) -> None:
        if capacity < 2:
            raise ValueError("series capacity must be >= 2")
        self.name = name
        self.labels = {str(k): str(v) for k, v in labels.items()}
        self.kind = kind
        self.capacity = capacity
        self._ts: list[float] = []
        self._vs: list[float] = []
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._ts)

    @property
    def key(self) -> tuple:
        return (self.name, _label_key(self.labels))

    def append(self, t: float, value: float) -> None:
        """Add one point; same-timestamp appends overwrite in place.

        Overwriting keeps "the value at t" well-defined when two events
        land on the same virtual instant (two batches completing
        simultaneously): the later write is the registry's newer state.
        """
        if self._ts and self._ts[-1] == t:
            self._vs[-1] = float(value)
            return
        if self._ts and t < self._ts[-1]:
            raise ValueError(
                f"series {self.name}: non-monotonic append "
                f"({t} after {self._ts[-1]})"
            )
        self._ts.append(float(t))
        self._vs.append(float(value))
        if len(self._ts) > self.capacity:
            drop = len(self._ts) - self.capacity
            del self._ts[:drop]
            del self._vs[:drop]
            self.evicted += drop

    def points(self) -> list[tuple[float, float]]:
        """Every retained point, oldest first."""
        return list(zip(self._ts, self._vs))

    def times(self) -> list[float]:
        return list(self._ts)

    def values(self) -> list[float]:
        return list(self._vs)

    def latest_at(self, t: float) -> Optional[tuple[float, float]]:
        """The newest point with timestamp <= ``t`` (None if none)."""
        idx = self._index_at(t)
        if idx < 0:
            return None
        return self._ts[idx], self._vs[idx]

    def base_at(self, t: float, window_s: float) -> Optional[tuple[float, float]]:
        """The reference point a trailing-window rate measures against.

        The newest point with timestamp <= ``t - window_s``; when the
        window reaches past the retained history, the oldest point not
        after ``t`` — exactly the head the SLO engine's legacy burn-rate
        history kept after pruning.
        """
        last = self._index_at(t)
        if last < 0:
            return None
        horizon = t - window_s
        base = self._index_at(horizon)
        if base < 0:
            base = 0  # oldest retained point
        base = min(base, last)
        return self._ts[base], self._vs[base]

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Points with ``start < t <= end`` (the PromQL range shape)."""
        import bisect

        lo = bisect.bisect_right(self._ts, start)
        hi = bisect.bisect_right(self._ts, end)
        return list(zip(self._ts[lo:hi], self._vs[lo:hi]))

    def _index_at(self, t: float) -> int:
        import bisect

        return bisect.bisect_right(self._ts, t) - 1

    def to_dict(self, since: Optional[float] = None) -> dict:
        ts, vs = self._ts, self._vs
        if since is not None:
            import bisect

            lo = bisect.bisect_left(ts, since)
            ts, vs = ts[lo:], vs[lo:]
        return {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "kind": self.kind,
            "t": encode_floats(ts),
            "v": encode_floats(vs),
            "evicted": self.evicted,
        }

    @classmethod
    def from_dict(cls, doc: dict, capacity: int = 512) -> "Series":
        s = cls(doc["name"], doc.get("labels", {}), doc.get("kind", "gauge"),
                capacity=max(capacity, len(doc["t"]), 2))
        s._ts = decode_floats(doc["t"])
        s._vs = decode_floats(doc["v"])
        s.evicted = int(doc.get("evicted", 0))
        return s


class TimeSeriesStore:
    """Bounded ring-buffer store scraping registries into series.

    One store owns many :class:`Series`; :meth:`scrape` walks every
    sample a registry renders and appends one point per series at the
    scrape time.  ``cadence_s`` throttles :meth:`due`/:meth:`maybe_scrape`
    so hot paths (the broker's per-batch hook) only build registry
    snapshots when a scrape is actually owed; ``cadence_s=0`` scrapes on
    every opportunity.
    """

    enabled = True

    def __init__(self, capacity: int = 512, cadence_s: float = 0.0) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if cadence_s < 0.0:
            raise ValueError("cadence_s must be non-negative")
        self.capacity = capacity
        self.cadence_s = cadence_s
        self._series: dict[tuple, Series] = {}
        self.families: dict[str, str] = {}  # family name -> metric kind
        self.scrape_times: list[float] = []
        self.last_scrape: Optional[float] = None
        self.n_scrapes = 0
        self.n_samples = 0

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------------
    # Scraping
    # ------------------------------------------------------------------
    def due(self, now: float) -> bool:
        """Whether a scrape is owed at ``now`` under the cadence."""
        if self.last_scrape is None:
            return True
        if now == self.last_scrape:
            return False
        return now - self.last_scrape >= self.cadence_s

    def scrape(self, registry, now: float) -> int:
        """Scrape every sample of ``registry`` at time ``now``.

        Returns the number of samples appended.  Re-scraping the same
        timestamp overwrites in place (see :meth:`Series.append`), so
        the store never holds two points at one instant.
        """
        appended = 0
        for metric in registry.metrics():
            kind = metric.kind
            for name, labels, value in metric.samples():
                self.families.setdefault(name, kind)
                key = (name, _label_key(labels))
                series = self._series.get(key)
                if series is None:
                    series = Series(name, labels, kind, capacity=self.capacity)
                    self._series[key] = series
                series.append(now, value)
                appended += 1
        if not self.scrape_times or self.scrape_times[-1] != now:
            self.scrape_times.append(now)
            if len(self.scrape_times) > self.capacity:
                del self.scrape_times[: len(self.scrape_times) - self.capacity]
        self.last_scrape = now
        self.n_scrapes += 1
        self.n_samples += appended
        return appended

    def maybe_scrape(self, registry_fn: Callable[[], object], now: float) -> bool:
        """Scrape only when due; ``registry_fn`` is called lazily.

        The laziness is the point: building a registry snapshot is the
        expensive part, and off-cadence calls must not pay for it.
        """
        if not self.due(now):
            return False
        self.scrape(registry_fn(), now)
        return True

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def series(self, name: Optional[str] = None) -> list[Series]:
        """Every series (optionally restricted to one sample name)."""
        out = [
            s
            for s in self._series.values()
            if name is None or s.name == name
        ]
        out.sort(key=lambda s: s.key)
        return out

    def get(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Series:
        key = (name, _label_key(labels or {}))
        try:
            return self._series[key]
        except KeyError:
            raise KeyError(
                f"no series {name}{dict(labels or {})}; "
                f"{len(self._series)} series stored"
            ) from None

    def add_series(self, series: Series) -> Series:
        """Adopt a pre-built series (federation; duplicate keys collide)."""
        if series.key in self._series:
            raise ValueError(
                f"series {series.name}{series.labels} already stored"
            )
        self._series[series.key] = series
        self.families.setdefault(series.name, series.kind)
        return series

    # ------------------------------------------------------------------
    # Exact JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self, since: Optional[float] = None) -> dict:
        """JSON-serializable snapshot (optionally only points >= since)."""
        series = [
            s.to_dict(since=since)
            for s in self.series()
        ]
        if since is not None:
            series = [doc for doc in series if doc["t"]]
        times = self.scrape_times
        if since is not None:
            times = [t for t in times if t >= since]
        return {
            "schema": TSDB_SCHEMA,
            "capacity": self.capacity,
            "cadence_s": self.cadence_s,
            "scrape_times": encode_floats(times),
            "families": dict(sorted(self.families.items())),
            "series": series,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TimeSeriesStore":
        if doc.get("schema") != TSDB_SCHEMA:
            raise ValueError(
                f"expected schema {TSDB_SCHEMA!r}, got {doc.get('schema')!r}"
            )
        store = cls(
            capacity=int(doc.get("capacity", 512)),
            cadence_s=float(doc.get("cadence_s", 0.0)),
        )
        store.families = dict(doc.get("families", {}))
        store.scrape_times = decode_floats(doc.get("scrape_times", []))
        if store.scrape_times:
            store.last_scrape = store.scrape_times[-1]
            store.n_scrapes = len(store.scrape_times)
        for sdoc in doc.get("series", []):
            series = Series.from_dict(sdoc, capacity=store.capacity)
            store._series[series.key] = series
            store.n_samples += len(series)
        return store


class NullTimeSeriesStore:
    """The zero-overhead disabled store (mirror of ``NULL_TRACER``).

    Every hot-path guard reduces to one ``enabled`` attribute read; the
    methods exist so accidental unguarded calls stay harmless no-ops.
    """

    enabled = False
    cadence_s = 0.0
    scrape_times: list[float] = []
    families: dict[str, str] = {}

    def due(self, now: float) -> bool:
        return False

    def scrape(self, registry, now: float) -> int:
        return 0

    def maybe_scrape(self, registry_fn, now: float) -> bool:
        return False

    def series(self, name=None) -> list:
        return []

    def __len__(self) -> int:
        return 0


NULL_TSDB = NullTimeSeriesStore()


def federate_stores(
    stores: Mapping[str, TimeSeriesStore], label: str = "node"
) -> TimeSeriesStore:
    """Merge per-node stores under a constant ``label`` (federation).

    Every series of every member store reappears in the merged store
    with ``label=<member name>`` added — the Prometheus federation
    shape, so one dashboard renders a whole simulated cluster.  Member
    stores are not modified; scrape times become the sorted union.
    """
    if not stores:
        raise ValueError("need at least one store to federate")
    merged = TimeSeriesStore(
        capacity=max(s.capacity for s in stores.values()),
        cadence_s=min(s.cadence_s for s in stores.values()),
    )
    times: set[float] = set()
    for name in sorted(stores, key=str):
        store = stores[name]
        times.update(store.scrape_times)
        for series in store.series():
            if label in series.labels:
                raise ValueError(
                    f"series {series.name}{series.labels} already carries "
                    f"the federation label {label!r}"
                )
            clone = Series(
                series.name,
                {**series.labels, label: str(name)},
                series.kind,
                capacity=merged.capacity,
            )
            clone._ts = series.times()
            clone._vs = series.values()
            clone.evicted = series.evicted
            merged.add_series(clone)
    merged.scrape_times = sorted(times)
    if merged.scrape_times:
        merged.last_scrape = merged.scrape_times[-1]
        merged.n_scrapes = len(merged.scrape_times)
    merged.n_samples = sum(len(s) for s in merged.series())
    return merged
