"""Fair-share causal cost attribution and the online task cost model.

Since megabatching, one fused device launch serves many requests at
once, so "where did this request's latency go?" has no per-span answer —
the compute is shared.  This module closes the loop the span links in
:mod:`repro.obs.tracer` open: every gpusim sub-span (h2d+launch /
compute / d2h), queue-wait span, and CPU-fallback task span is reachable
through ``parent`` edges from exactly one request root (request →
megabatch group → task → kernel interval), and :class:`Attribution`
folds each measured interval *back* onto the member requests of the
group that caused it.

The split is deterministic fair share: width-proportional across the
group's members, corrected by each member's marginal work (its
temperature's active (level, bin) pair count when window pruning is on —
see :func:`repro.service.requests.group_member_weights`).  Costs are
accounted in integer picosecond ticks split by largest remainder, so the
attributed shares of every span sum to its measured duration *exactly* —
conservation holds at zero tolerance, and, because the inputs are
virtual-time spans and plain integer arithmetic, the ledger is
bit-identical across execution backends.

Cache hits, lattice hits, and coalesced followers appear in the ledger
as zero-cost attributed outcomes (a follower links to its leader, whose
entry carries the group share).

:class:`CostModel` is the forward-looking half: an EWMA per
(ion, method, window-width-bucket) of measured device service time,
seeded from the calibrated device prior and the process-wide
:data:`~repro.quadrature.batch.KERNEL_COUNTERS` pruning ledger, updated
online from attributed spans, queryable for predicted task cost, and
serializable — the substrate a measured-cost scheduler plugs into.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Attribution",
    "AttributionResult",
    "CostEntry",
    "CostModel",
    "kernel_root_map",
    "render_cost_report",
]

#: Cost components a request's ledger entry is split into.
COMPONENTS = ("compute", "transfer", "wait")

#: Integer accounting resolution: picoseconds per virtual second.  Small
#: enough that no simulated interval rounds to zero, large enough that
#: run-wide tick sums stay far below 2**53 (exact in float64 and JSON).
TICKS_PER_S = 10**12

_CAT_COMPONENT = {"compute": "compute", "ingress": "transfer", "egress": "transfer", "wait": "wait"}

_GROUP_LABEL_SUFFIX = re.compile(r"x\d+$")


def _ticks(seconds: float) -> int:
    return int(round(seconds * TICKS_PER_S))


def _split_ticks(total: int, weights: list[float]) -> list[int]:
    """Largest-remainder split of ``total`` ticks by ``weights``.

    Returns non-negative integers summing to ``total`` exactly; ties on
    the remainder break by member index, so the split is a pure function
    of (total, weights) — deterministic across platforms and backends.
    """
    n = len(weights)
    if n == 1:
        return [total]
    wsum = sum(weights)
    raw = [total * (w / wsum) for w in weights]
    base = [int(x) for x in raw]
    rem = total - sum(base)
    order = sorted(range(n), key=lambda i: (-(raw[i] - base[i]), i))
    k = 0
    while rem > 0:
        base[order[k % n]] += 1
        rem -= 1
        k += 1
    while rem < 0:  # float-noise guard: raw summed a hair above total
        idx = max(range(n), key=lambda i: (base[i], -i))
        base[idx] -= 1
        rem += 1
    return base


def ion_from_label(label: str) -> str:
    """Ion name carried by a kernel label (``req3/O+7``, ``grp0/Fe+13x4``)."""
    seg = label.split("/", 1)[-1]
    return _GROUP_LABEL_SUFFIX.sub("", seg)


def width_bucket(evals: int) -> int:
    """Power-of-two work bucket of a kernel's priced evaluation count."""
    return max(0, int(evals).bit_length())


@dataclass
class CostEntry:
    """Attributed cost ledger of one request."""

    trace_id: int
    key: str = ""
    lane: str = ""
    outcome: str = ""  # queued | cache_hit | lattice_hit | coalesced
    #: Leader request id a coalesced follower rode on (0 otherwise).
    leader: int = 0
    #: Megabatch group span ids this request's work ran in.
    groups: list[int] = field(default_factory=list)
    #: Attributed cost per component, integer picosecond ticks.
    ticks: dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in COMPONENTS}
    )

    @property
    def compute_s(self) -> float:
        return self.ticks["compute"] / TICKS_PER_S

    @property
    def transfer_s(self) -> float:
        return self.ticks["transfer"] / TICKS_PER_S

    @property
    def wait_s(self) -> float:
        return self.ticks["wait"] / TICKS_PER_S

    @property
    def total_s(self) -> float:
        return sum(self.ticks.values()) / TICKS_PER_S

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "key": self.key,
            "lane": self.lane,
            "outcome": self.outcome,
            "leader": self.leader,
            "groups": list(self.groups),
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "wait_s": self.wait_s,
            "total_s": self.total_s,
        }


@dataclass
class AttributionResult:
    """One consistent snapshot of the attribution ledger."""

    entries: list[CostEntry]
    #: Resolved measured span ticks per component.
    measured_ticks: dict[str, int]
    #: Attributed ticks per component (sums of the entry shares).
    attributed_ticks: dict[str, int]
    #: Measured spans with no causal chain to a request (standalone
    #: hybrid runs, spans still pending resolution) — never silently
    #: folded into the conserving totals.
    unattributed_ticks: dict[str, int]

    @property
    def measured_s(self) -> dict[str, float]:
        return {c: t / TICKS_PER_S for c, t in self.measured_ticks.items()}

    @property
    def attributed_s(self) -> dict[str, float]:
        return {c: t / TICKS_PER_S for c, t in self.attributed_ticks.items()}

    @property
    def unattributed_s(self) -> dict[str, float]:
        return {c: t / TICKS_PER_S for c, t in self.unattributed_ticks.items()}

    @property
    def conservation(self) -> float:
        """min over components of attributed/measured (1.0 = exact).

        Both sides are integer tick sums, so equality — and a ratio of
        exactly 1.0 — is decidable at zero tolerance.
        """
        worst = 1.0
        for comp in COMPONENTS:
            measured = self.measured_ticks[comp]
            if measured == 0:
                continue
            worst = min(worst, self.attributed_ticks[comp] / measured)
        return worst

    def as_dict(self) -> dict:
        return {
            "entries": [e.as_dict() for e in self.entries],
            "measured_s": self.measured_s,
            "attributed_s": self.attributed_s,
            "unattributed_s": self.unattributed_s,
            "conservation": self.conservation,
        }


@dataclass
class TaskObservation:
    """One task's measured device cost, ready for the cost model."""

    ion: str
    method: str
    evals: int
    service_s: float


@dataclass
class _Group:
    members: list[int]
    weights: list[float]
    method: str


@dataclass
class _TaskState:
    group: int = 0  # group span id once the task span arrives
    parts: dict[str, int] = field(default_factory=dict)  # cat -> ticks
    label: str = ""
    evals: int = 0
    cpu: bool = False
    observed: bool = False


class Attribution:
    """Incremental fair-share attribution over one tracer's event stream.

    Bind it to the run's :class:`~repro.obs.tracer.EventTracer` and call
    :meth:`ingest` whenever new events have landed (the broker does so at
    every batch completion); :meth:`result` snapshots the ledger at any
    point.  Events arrive out of causal order — kernel sub-spans close
    before their task span, task spans before their group span — so
    measured spans wait in a pending set until their chain resolves.
    """

    def __init__(self, tracer) -> None:
        self._tracer = tracer
        self._cursor = 0
        self._entries: dict[int, CostEntry] = {}
        self._groups: dict[int, _Group] = {}
        self._tasks: dict[int, _TaskState] = {}
        self._pending: list = []  # measured TraceEvents awaiting their chain
        self._measured: dict[str, int] = {c: 0 for c in COMPONENTS}
        self._attributed: dict[str, int] = {c: 0 for c in COMPONENTS}
        self._orphaned: dict[str, int] = {c: 0 for c in COMPONENTS}
        self._observations: list[TaskObservation] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _lane_of(self, track: int) -> str:
        tracks = getattr(self._tracer, "tracks", [])
        if 0 <= track < len(tracks):
            thread = tracks[track].thread
            if thread.startswith("lane."):
                return thread[len("lane."):]
        return ""

    def ingest(self) -> int:
        """Process events recorded since the last call; returns how many."""
        events = self._tracer.events
        new = events[self._cursor:]
        self._cursor = len(events)
        for ev in new:
            if ev.ph == "b" and ev.cat == "request" and ev.id is not None:
                args = ev.args or {}
                entry = self._entries.get(ev.id)
                if entry is None:
                    entry = CostEntry(trace_id=ev.id)
                    self._entries[ev.id] = entry
                entry.key = args.get("key", entry.key)
                entry.lane = self._lane_of(ev.track) or entry.lane
                entry.outcome = args.get("outcome", entry.outcome)
                if ev.parent:
                    entry.leader = ev.parent
            elif ev.ph == "X" and ev.cat == "group" and ev.id is not None:
                args = ev.args or {}
                self._groups[ev.id] = _Group(
                    members=[int(m) for m in args.get("members", [])],
                    weights=[float(w) for w in args.get("weights", [])],
                    method=args.get("method", ""),
                )
            elif ev.ph == "X" and ev.cat == "task" and ev.id is not None:
                state = self._tasks.setdefault(ev.id, _TaskState())
                state.group = ev.parent or 0
                state.label = ev.name
                if (ev.args or {}).get("placement") == "cpu":
                    state.cpu = True
                    self._pending.append(ev)
            elif ev.ph == "X" and ev.cat in _CAT_COMPONENT:
                self._pending.append(ev)
        self._resolve()
        return len(new)

    def _resolve(self) -> None:
        """Attribute every pending span whose causal chain is complete."""
        still_pending = []
        for ev in self._pending:
            task_id = ev.id if ev.cat == "task" else ev.parent
            if not task_id:
                # No causal edge at all: a standalone run's span.  It can
                # never resolve — book it as unattributed and move on.
                self._orphaned[self._component_of(ev)] += _ticks(ev.dur)
                continue
            state = self._tasks.get(task_id)
            group = self._groups.get(state.group) if state and state.group else None
            if group is None:
                still_pending.append(ev)
                continue
            self._attribute(ev, task_id, state, group)
        self._pending = still_pending
        self._emit_observations()

    @staticmethod
    def _component_of(ev) -> str:
        if ev.cat == "task":
            return "compute"  # CPU fallback: the span *is* the compute
        return _CAT_COMPONENT[ev.cat]

    def _attribute(self, ev, task_id: int, state: _TaskState, group: _Group) -> None:
        comp = self._component_of(ev)
        total = _ticks(ev.dur)
        self._measured[comp] += total
        members = group.members or [0]
        weights = group.weights if len(group.weights) == len(members) else [1.0] * len(members)
        shares = _split_ticks(total, weights)
        for member, share in zip(members, shares):
            entry = self._entries.get(member)
            if entry is None:
                entry = CostEntry(trace_id=member)
                self._entries[member] = entry
            entry.ticks[comp] += share
            self._attributed[comp] += share
            if state.group and state.group not in entry.groups:
                entry.groups.append(state.group)
        # Book the measured part for the cost model's task observation.
        if ev.cat in ("ingress", "compute", "egress"):
            state.parts[ev.cat] = state.parts.get(ev.cat, 0) + total
            if ev.cat == "compute":
                args = ev.args or {}
                state.evals = int(args.get("evals", state.evals))
                state.label = args.get("label", state.label)
        elif ev.cat == "task" and state.cpu:
            state.parts["cpu"] = state.parts.get("cpu", 0) + total

    def _emit_observations(self) -> None:
        for tid, state in self._tasks.items():
            if state.observed or not state.group:
                continue
            group = self._groups.get(state.group)
            if group is None:
                continue
            # A GPU task is complete once its egress span landed; the CPU
            # fallback never reaches the device, so it stays out of the
            # device cost model.
            if "egress" not in state.parts or "compute" not in state.parts:
                continue
            state.observed = True
            service = sum(
                state.parts.get(p, 0) for p in ("ingress", "compute", "egress")
            )
            self._observations.append(
                TaskObservation(
                    ion=ion_from_label(state.label),
                    method=group.method,
                    evals=state.evals,
                    service_s=service / TICKS_PER_S,
                )
            )

    def drain_observations(self) -> list[TaskObservation]:
        """New completed-task observations since the last drain."""
        out = self._observations
        self._observations = []
        return out

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def result(self) -> AttributionResult:
        """Snapshot the ledger (pending spans count as unattributed)."""
        unattributed = dict(self._orphaned)
        for ev in self._pending:
            unattributed[self._component_of(ev)] += _ticks(ev.dur)
        entries = [self._entries[k] for k in sorted(self._entries)]
        return AttributionResult(
            entries=entries,
            measured_ticks=dict(self._measured),
            attributed_ticks=dict(self._attributed),
            unattributed_ticks=unattributed,
        )


# ----------------------------------------------------------------------
# Online cost model
# ----------------------------------------------------------------------
class CostModel:
    """EWMA of measured device service time per (ion, method, width).

    The *width* axis buckets the kernel's priced evaluation count by
    powers of two, so one key covers one (ion, quadrature rule,
    active-window width) regime — exactly the workload signature a
    measured-cost scheduler prices.  Unseen keys fall back to the
    analytic prior (per-task overhead + evals at the calibrated rate);
    every observation then pulls its key toward the measured truth with
    exponential forgetting.

    Prediction quality is tracked online: each :meth:`observe` first
    predicts, then updates, and the running mean absolute relative error
    is exported (and gated by the ``cost_attribution`` bench case).
    """

    def __init__(
        self,
        alpha: float = 0.25,
        prior_overhead_s: float = 0.0,
        prior_eval_rate: float = 2.16e9,
        seeded_from: Optional[dict] = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if prior_eval_rate <= 0.0:
            raise ValueError("prior_eval_rate must be positive")
        self.alpha = alpha
        self.prior_overhead_s = prior_overhead_s
        self.prior_eval_rate = prior_eval_rate
        self.seeded_from = dict(seeded_from or {})
        self._table: dict[tuple[str, str, int], dict] = {}
        self._err_sum = 0.0
        self._err_n = 0

    @classmethod
    def seeded_from_counters(
        cls, spec, counters=None, alpha: float = 0.25
    ) -> "CostModel":
        """Seed the prior from a device spec and the kernel-savings ledger.

        ``spec`` is a :class:`~repro.gpusim.device.DeviceSpec`; the prior
        per-task overhead is its context switch + launch + two PCIe
        latencies, and the prior throughput its calibrated ``eval_rate``.
        ``counters`` defaults to the process-wide
        :data:`~repro.quadrature.batch.KERNEL_COUNTERS`; its snapshot is
        recorded as the model's seed provenance — the pruning ledger
        documents that priced ``evals`` already exclude window-elided
        work, which is why the prior rate applies to them unscaled.
        """
        if counters is None:
            from repro.quadrature.batch import KERNEL_COUNTERS

            counters = KERNEL_COUNTERS
        overhead = (
            spec.context_switch_s + spec.kernel_launch_s + 2.0 * spec.pcie_latency_s
        )
        return cls(
            alpha=alpha,
            prior_overhead_s=overhead,
            prior_eval_rate=spec.eval_rate,
            seeded_from=counters.snapshot(),
        )

    # ------------------------------------------------------------------
    def _key(self, ion: str, method: str, evals: int) -> tuple[str, str, int]:
        return (ion, method, width_bucket(evals))

    def seed(self, ion: str, method: str, evals: int, cost_s: float) -> None:
        """Install an analytic starting point for an unseen key."""
        key = self._key(ion, method, evals)
        if key not in self._table:
            self._table[key] = {"mean_s": float(cost_s), "count": 0}

    def predict(self, ion: str, method: str, evals: int) -> float:
        """Predicted device service time of one task, in seconds."""
        row = self._table.get(self._key(ion, method, evals))
        if row is not None:
            return row["mean_s"]
        return self.prior_overhead_s + evals / self.prior_eval_rate

    def observe(self, ion: str, method: str, evals: int, measured_s: float) -> None:
        """Fold one measured task cost into its key's EWMA."""
        if measured_s > 0.0:
            predicted = self.predict(ion, method, evals)
            self._err_sum += abs(predicted - measured_s) / measured_s
            self._err_n += 1
        key = self._key(ion, method, evals)
        row = self._table.get(key)
        if row is None or row["count"] == 0:
            self._table[key] = {"mean_s": float(measured_s), "count": 1}
            return
        row["mean_s"] += self.alpha * (measured_s - row["mean_s"])
        row["count"] += 1

    def ingest(self, observations: list[TaskObservation]) -> None:
        for obs in observations:
            self.observe(obs.ion, obs.method, obs.evals, obs.service_s)

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return len(self._table)

    @property
    def n_observations(self) -> int:
        return self._err_n

    @property
    def mean_abs_rel_error(self) -> float:
        """Running mean |predicted - measured| / measured before updates."""
        return self._err_sum / self._err_n if self._err_n else 0.0

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "prior_overhead_s": self.prior_overhead_s,
            "prior_eval_rate": self.prior_eval_rate,
            "seeded_from": dict(self.seeded_from),
            "error": {"sum": self._err_sum, "n": self._err_n},
            "keys": [
                {
                    "ion": ion,
                    "method": method,
                    "bucket": bucket,
                    "mean_s": row["mean_s"],
                    "count": row["count"],
                }
                for (ion, method, bucket), row in sorted(self._table.items())
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CostModel":
        model = cls(
            alpha=doc["alpha"],
            prior_overhead_s=doc["prior_overhead_s"],
            prior_eval_rate=doc["prior_eval_rate"],
            seeded_from=doc.get("seeded_from"),
        )
        err = doc.get("error", {})
        model._err_sum = float(err.get("sum", 0.0))
        model._err_n = int(err.get("n", 0))
        for row in doc.get("keys", []):
            model._table[(row["ion"], row["method"], int(row["bucket"]))] = {
                "mean_s": float(row["mean_s"]),
                "count": int(row["count"]),
            }
        return model


# ----------------------------------------------------------------------
# Reachability + rendering helpers
# ----------------------------------------------------------------------
def kernel_root_map(tracer) -> list[tuple[int, Optional[int]]]:
    """(event index, request root id) of every gpusim kernel sub-span.

    Walks the ``parent`` edges from each ingress/compute/egress span up
    to its request root; ``None`` marks a span with no reachable root.
    The acceptance check "every kernel interval reachable from exactly
    one request" is ``all(root is not None for _, root in ...)`` —
    uniqueness is structural (each event has at most one parent edge).
    """
    request_ids = set()
    parent_of: dict[int, int] = {}
    for ev in tracer.events:
        if ev.ph == "b" and ev.cat == "request" and ev.id is not None:
            request_ids.add(ev.id)
        if ev.id is not None and ev.parent:
            parent_of.setdefault(ev.id, ev.parent)
    out: list[tuple[int, Optional[int]]] = []
    for i, ev in enumerate(tracer.events):
        if ev.ph != "X" or ev.cat not in ("ingress", "compute", "egress"):
            continue
        node = ev.parent
        seen = set()
        while node and node not in request_ids and node not in seen:
            seen.add(node)
            node = parent_of.get(node)
        out.append((i, node if node in request_ids else None))
    return out


def render_cost_report(
    result: AttributionResult, model: Optional[CostModel] = None, top: int = 10
) -> str:
    """Terminal view of the per-request cost ledger."""
    lines = ["per-request attributed cost (fair-share over fused groups)"]
    lines.append(
        f"{'trace':>6} {'lane':<12} {'outcome':<12} {'compute (ms)':>13} "
        f"{'transfer (ms)':>14} {'wait (ms)':>10} {'total (ms)':>11}"
    )
    ranked = sorted(result.entries, key=lambda e: (-sum(e.ticks.values()), e.trace_id))
    for entry in ranked[:top]:
        lines.append(
            f"{entry.trace_id:>6} {entry.lane or '-':<12} {entry.outcome or '-':<12} "
            f"{entry.compute_s * 1e3:>13.4f} {entry.transfer_s * 1e3:>14.4f} "
            f"{entry.wait_s * 1e3:>10.4f} {entry.total_s * 1e3:>11.4f}"
        )
    if len(ranked) > top:
        lines.append(f"... {len(ranked) - top} more entries")
    measured = result.measured_s
    unattributed = result.unattributed_s
    lines.append(
        "measured: "
        + "  ".join(f"{c}={measured[c] * 1e3:.4f}ms" for c in COMPONENTS)
        + f"  conservation={result.conservation:.6f}"
    )
    if any(unattributed.values()):
        lines.append(
            "unattributed: "
            + "  ".join(f"{c}={unattributed[c] * 1e3:.4f}ms" for c in COMPONENTS)
        )
    if model is not None:
        lines.append(
            f"cost model: {model.n_keys} keys, {model.n_observations} observations, "
            f"mean |rel err|={model.mean_abs_rel_error:.4f}"
        )
    return "\n".join(lines)
