"""Unified observability: spans, event buses, trace and metric exports.

One substrate for the whole stack — broker -> runner -> device — on the
shared virtual clock:

- :mod:`repro.obs.tracer` — the span tracer (:class:`EventTracer`) and
  its zero-cost stand-in (:data:`NULL_TRACER`);
- :mod:`repro.obs.bus` — fan-out buses that keep the metrics ledgers
  derived consumers of the same event stream;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  a schema validator, and terminal Gantt/summary renderers;
- :mod:`repro.obs.prom` — Prometheus-style registry, text exposition,
  and a minimal parser for CI round-trips;
- :mod:`repro.obs.profile` — hierarchical cost attribution over span
  streams: self-vs-total tables, device utilization, critical paths,
  and collapsed-stack flamegraph export;
- :mod:`repro.obs.slo` — declarative SLO rules evaluated over registry
  snapshots on the sim clock, with ``for:`` hysteresis and burn rates;
- :mod:`repro.obs.attribution` — request-scoped causal cost attribution
  (fair-share split of fused-group spans back to member requests, exact
  conservation) and the online EWMA :class:`CostModel`;
- :mod:`repro.obs.flight` — the SLO/anomaly-triggered flight recorder
  dumping postmortem bundles (trailing trace window + scraped series +
  cost ledger);
- :mod:`repro.obs.tsdb` — the in-process ring-buffer time-series store
  scraping registries on the sim clock (:data:`NULL_TSDB` when off);
- :mod:`repro.obs.query` — the PromQL-subset query engine over the
  store (``rate``, ``increase``, ``histogram_quantile``, matchers,
  binary ops);
- :mod:`repro.obs.anomaly` — online EWMA+MAD control bands per series
  emitting :class:`AnomalyEvent` onto the bus;
- :mod:`repro.obs.dash` — deterministic self-contained HTML dashboards
  (inline SVG) with SLO/anomaly annotations and store federation.
"""

from repro.obs.anomaly import AnomalyDetector, AnomalyEvent

from repro.obs.attribution import (
    Attribution,
    AttributionResult,
    CostEntry,
    CostModel,
    kernel_root_map,
    render_cost_report,
)
from repro.obs.bus import RunBus, ServiceBus
from repro.obs.dash import Panel, SERVICE_PANELS, federate, render_dashboard
from repro.obs.flight import FlightRecorder
from repro.obs.export import (
    render_gantt,
    render_summary,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import (
    Profile,
    render_profile,
    to_collapsed,
    write_collapsed,
)
from repro.obs.prom import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    run_registry,
    service_registry,
)
from repro.obs.query import QueryEngine, QueryError, Sample, parse_query
from repro.obs.slo import Rule, RuleState, SLOEngine, Transition
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer, WallClock
from repro.obs.tsdb import (
    NULL_TSDB,
    NullTimeSeriesStore,
    Series,
    TimeSeriesStore,
)

__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "Attribution",
    "AttributionResult",
    "CostEntry",
    "CostModel",
    "Counter",
    "EventTracer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NULL_TSDB",
    "NullTimeSeriesStore",
    "NullTracer",
    "Panel",
    "Profile",
    "QueryEngine",
    "QueryError",
    "Rule",
    "RuleState",
    "RunBus",
    "SERVICE_PANELS",
    "SLOEngine",
    "Sample",
    "Series",
    "ServiceBus",
    "TimeSeriesStore",
    "Transition",
    "WallClock",
    "federate",
    "kernel_root_map",
    "parse_query",
    "render_dashboard",
    "parse_exposition",
    "render_cost_report",
    "render_gantt",
    "render_profile",
    "render_summary",
    "run_registry",
    "service_registry",
    "to_chrome",
    "to_collapsed",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_collapsed",
]
