"""Unified observability: spans, event buses, trace and metric exports.

One substrate for the whole stack — broker -> runner -> device — on the
shared virtual clock:

- :mod:`repro.obs.tracer` — the span tracer (:class:`EventTracer`) and
  its zero-cost stand-in (:data:`NULL_TRACER`);
- :mod:`repro.obs.bus` — fan-out buses that keep the metrics ledgers
  derived consumers of the same event stream;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  a schema validator, and terminal Gantt/summary renderers;
- :mod:`repro.obs.prom` — Prometheus-style registry, text exposition,
  and a minimal parser for CI round-trips;
- :mod:`repro.obs.profile` — hierarchical cost attribution over span
  streams: self-vs-total tables, device utilization, critical paths,
  and collapsed-stack flamegraph export;
- :mod:`repro.obs.slo` — declarative SLO rules evaluated over registry
  snapshots on the sim clock, with ``for:`` hysteresis and burn rates;
- :mod:`repro.obs.attribution` — request-scoped causal cost attribution
  (fair-share split of fused-group spans back to member requests, exact
  conservation) and the online EWMA :class:`CostModel`;
- :mod:`repro.obs.flight` — the SLO-triggered flight recorder dumping
  postmortem bundles (trailing trace window + cost ledger).
"""

from repro.obs.attribution import (
    Attribution,
    AttributionResult,
    CostEntry,
    CostModel,
    kernel_root_map,
    render_cost_report,
)
from repro.obs.bus import RunBus, ServiceBus
from repro.obs.flight import FlightRecorder
from repro.obs.export import (
    render_gantt,
    render_summary,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import (
    Profile,
    render_profile,
    to_collapsed,
    write_collapsed,
)
from repro.obs.prom import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    run_registry,
    service_registry,
)
from repro.obs.slo import Rule, RuleState, SLOEngine, Transition
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer, WallClock

__all__ = [
    "Attribution",
    "AttributionResult",
    "CostEntry",
    "CostModel",
    "Counter",
    "EventTracer",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Profile",
    "Rule",
    "RuleState",
    "RunBus",
    "SLOEngine",
    "ServiceBus",
    "Transition",
    "WallClock",
    "kernel_root_map",
    "parse_exposition",
    "render_cost_report",
    "render_gantt",
    "render_profile",
    "render_summary",
    "run_registry",
    "service_registry",
    "to_chrome",
    "to_collapsed",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_collapsed",
]
