"""Unified observability: spans, event buses, trace and metric exports.

One substrate for the whole stack — broker -> runner -> device — on the
shared virtual clock:

- :mod:`repro.obs.tracer` — the span tracer (:class:`EventTracer`) and
  its zero-cost stand-in (:data:`NULL_TRACER`);
- :mod:`repro.obs.bus` — fan-out buses that keep the metrics ledgers
  derived consumers of the same event stream;
- :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto-loadable),
  a schema validator, and terminal Gantt/summary renderers;
- :mod:`repro.obs.prom` — Prometheus-style registry, text exposition,
  and a minimal parser for CI round-trips.
"""

from repro.obs.bus import RunBus, ServiceBus
from repro.obs.export import (
    render_gantt,
    render_summary,
    to_chrome,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.prom import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    run_registry,
    service_registry,
)
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer, WallClock

__all__ = [
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RunBus",
    "ServiceBus",
    "WallClock",
    "parse_exposition",
    "render_gantt",
    "render_summary",
    "run_registry",
    "service_registry",
    "to_chrome",
    "validate_chrome_trace",
    "write_chrome_trace",
]
