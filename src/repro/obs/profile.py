"""Span profiler: hierarchical cost attribution from a recorded trace.

PR 3 made every layer of the stack *emit* spans; this module turns one
:class:`~repro.obs.tracer.EventTracer` recording into answers:

- **Per-track trees** — complete ("X") spans on one track nest or are
  disjoint (the exporter's validator enforces it), so each track is an
  interval forest.  A node's *total* time is its span duration; its
  *self* time is total minus the durations of its direct children.  Per
  track, the self times over the whole forest sum exactly to the track's
  busy time (the union of its root spans) — the invariant the profiler
  test asserts on the golden serve trace.
- **Top-down category table** — the logical hierarchy (dispatch → batch
  → task → wait/ingress/compute/egress) spans *different* tracks of one
  process scope, so the tree above cannot express it.  The profiler
  re-parents spans across tracks by time containment, walking category
  ranks (:data:`CATEGORY_RANK`) and picking the smallest containing
  candidate; aggregated per category path, totals and self times are
  exact regardless of which individual parent an ambiguous child landed
  on, because every child is attributed exactly once.
- **Device utilization and idle gaps** — for each device track (spans
  carrying kernel-phase categories), busy time as a fraction of the
  trace window plus the maximal idle intervals.
- **Critical path** — from the end of a batch span, repeatedly step to
  the in-scope span whose completion enabled the current point in time
  (latest end at or before the cursor), until the batch start is
  reached.  The returned chain is the sequence of spans that bound the
  batch's makespan: shortening anything off it cannot shorten the batch.
- **Collapsed-stack export** — ``;``-joined frame lines with integer
  self-time values (microseconds), the Brendan Gregg / FlameGraph
  format that speedscope imports directly.

Everything here is pure post-processing of recorded events: the hot
path is never touched, and a given trace always profiles identically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.tracer import EventTracer, TraceEvent

__all__ = [
    "SpanNode",
    "TrackProfile",
    "DeviceUsage",
    "Profile",
    "render_profile",
    "to_collapsed",
    "write_collapsed",
]

#: Rank of each category in the logical span hierarchy (lower = closer
#: to the root).  Categories missing from the map are roots of their
#: own (e.g. the CLI's standalone ``apec.compute`` span).
CATEGORY_RANK = {
    "dispatch": 0,
    "batch": 1,
    "task": 2,
    "wait": 3,
    "ingress": 3,
    "compute": 3,
    "egress": 3,
}

_EPS = 1e-9
_DEVICE_THREAD = re.compile(r"^gpu\d+$")


@dataclass
class SpanNode:
    """One complete span in a per-track interval tree."""

    event: TraceEvent
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def cat(self) -> str:
        return self.event.cat

    @property
    def start(self) -> float:
        return self.event.ts

    @property
    def end(self) -> float:
        return self.event.ts + self.event.dur

    @property
    def total_s(self) -> float:
        return self.event.dur

    @property
    def self_s(self) -> float:
        return self.event.dur - sum(c.event.dur for c in self.children)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TrackProfile:
    """One track's interval forest plus its busy-time roll-up."""

    process: str
    thread: str
    roots: list[SpanNode]

    @property
    def label(self) -> str:
        return f"{self.process}/{self.thread}"

    @property
    def total_s(self) -> float:
        """Busy time: the union of the root spans (roots are disjoint)."""
        return sum(r.total_s for r in self.roots)

    def nodes(self):
        for root in self.roots:
            yield from root.walk()

    def self_by_category(self) -> dict[str, float]:
        agg: dict[str, float] = {}
        for node in self.nodes():
            key = node.cat or node.name
            agg[key] = agg.get(key, 0.0) + node.self_s
        return agg


@dataclass
class DeviceUsage:
    """Busy/idle accounting of one device track over the trace window."""

    track: str
    window_s: float
    busy_s: float
    gaps: list[tuple[float, float]]

    @property
    def utilization(self) -> float:
        return self.busy_s / self.window_s if self.window_s > 0.0 else 0.0

    @property
    def idle_s(self) -> float:
        return sum(b - a for a, b in self.gaps)

    @property
    def largest_gap_s(self) -> float:
        return max((b - a for a, b in self.gaps), default=0.0)


def _union_within(
    intervals, lo: float, hi: float
) -> float:
    """Total length of the union of ``intervals`` clipped to [lo, hi]."""
    total = 0.0
    cursor = lo
    for a, b in sorted(intervals):
        a, b = max(a, cursor), min(b, hi)
        if b > a:
            total += b - a
            cursor = b
    return total


def _build_forest(spans: list[TraceEvent]) -> list[SpanNode]:
    """Nest one track's complete spans (sorted outermost-first)."""
    roots: list[SpanNode] = []
    stack: list[SpanNode] = []
    for ev in sorted(spans, key=lambda e: (e.ts, -e.dur)):
        node = SpanNode(ev)
        while stack and node.start >= stack[-1].end - _EPS:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


class Profile:
    """Post-hoc cost attribution over one recorded trace."""

    def __init__(self, tracks: list[TrackProfile]) -> None:
        self.tracks = tracks

    @classmethod
    def from_tracer(cls, tracer: EventTracer) -> "Profile":
        by_track: dict[int, list[TraceEvent]] = {}
        for ev in tracer.events:
            if ev.ph == "X":
                by_track.setdefault(ev.track, []).append(ev)
        tracks = [
            TrackProfile(t.process, t.thread, _build_forest(by_track.get(h, [])))
            for h, t in enumerate(tracer.tracks)
        ]
        return cls(tracks)

    # ------------------------------------------------------------------
    # Trace extent
    # ------------------------------------------------------------------
    def _all_nodes(self):
        for track in self.tracks:
            for node in track.nodes():
                yield track, node

    @property
    def window(self) -> tuple[float, float]:
        """[earliest span start, latest span end] across all tracks."""
        lo, hi = None, None
        for _track, node in self._all_nodes():
            lo = node.start if lo is None else min(lo, node.start)
            hi = node.end if hi is None else max(hi, node.end)
        if lo is None:
            return (0.0, 0.0)
        return (lo, hi)

    # ------------------------------------------------------------------
    # Category roll-ups
    # ------------------------------------------------------------------
    def category_table(self) -> list[tuple[str, int, float, float]]:
        """(category, spans, total_s, self_s) rows, descending total."""
        agg: dict[str, list[float]] = {}
        for _track, node in self._all_nodes():
            key = node.cat or node.name
            row = agg.setdefault(key, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += node.total_s
            row[2] += node.self_s
        return sorted(
            ((k, int(n), t, s) for k, (n, t, s) in agg.items()),
            key=lambda r: -r[2],
        )

    def top_down(self) -> list[tuple[str, int, float, float]]:
        """Logical top-down table: (category path, spans, total_s, self_s).

        Spans are re-parented *across tracks* within one process scope by
        time containment through :data:`CATEGORY_RANK` (a task span's
        parent is the smallest batch span containing it, a kernel-phase
        span's parent the smallest containing task span, and so on).
        Children outside any ranked parent root their own path.

        Children of one parent run *concurrently* (tasks of a batch
        spread across rank tracks), so a parent's self time is its
        duration minus the **union** of its children's intervals — the
        wall time during which no child was active — never the plain
        sum, which can exceed the parent.  Totals sum raw span
        durations (CPU-seconds-like), so a deeper row legitimately
        exceeds its parent's wall time under parallelism.
        """
        by_scope: dict[str, list[SpanNode]] = {}
        for track, node in self._all_nodes():
            by_scope.setdefault(track.process, []).append(node)

        agg: dict[str, list[float]] = {}
        for nodes in by_scope.values():
            ranked: dict[int, list[SpanNode]] = {}
            for node in nodes:
                rank = CATEGORY_RANK.get(node.cat)
                if rank is not None:
                    ranked.setdefault(rank, []).append(node)
            paths: dict[int, str] = {}
            child_spans: dict[int, list[tuple[float, float]]] = {}
            for rank in sorted(ranked):
                for node in ranked[rank]:
                    parent = self._containing(ranked, rank, node)
                    if parent is None:
                        path = node.cat
                    else:
                        path = paths[id(parent)] + ";" + node.cat
                        child_spans.setdefault(id(parent), []).append(
                            (node.start, node.end)
                        )
                    paths[id(node)] = path
            for rank in sorted(ranked):
                for node in ranked[rank]:
                    row = agg.setdefault(paths[id(node)], [0, 0.0, 0.0])
                    row[0] += 1
                    row[1] += node.total_s
                    covered = _union_within(
                        child_spans.get(id(node), ()), node.start, node.end
                    )
                    row[2] += node.total_s - covered
        return sorted(
            ((k, int(n), t, s) for k, (n, t, s) in agg.items()),
            key=lambda r: (r[0].count(";"), r[0]),
        )

    @staticmethod
    def _containing(
        ranked: dict[int, list[SpanNode]], rank: int, node: SpanNode
    ) -> Optional[SpanNode]:
        """Smallest higher-rank span containing ``node``'s interval."""
        best: Optional[SpanNode] = None
        for parent_rank in range(rank - 1, -1, -1):
            for cand in ranked.get(parent_rank, ()):
                if (
                    cand.start - _EPS <= node.start
                    and node.end <= cand.end + _EPS
                    and (best is None or cand.total_s < best.total_s)
                ):
                    best = cand
            if best is not None:
                return best
        return best

    # ------------------------------------------------------------------
    # Device utilization
    # ------------------------------------------------------------------
    def device_usage(self) -> list[DeviceUsage]:
        """Busy fraction and idle gaps for every device track."""
        lo, hi = self.window
        out: list[DeviceUsage] = []
        for track in self.tracks:
            if not _DEVICE_THREAD.match(track.thread):
                continue
            intervals = sorted((r.start, r.end) for r in track.roots)
            merged: list[list[float]] = []
            for a, b in intervals:
                if merged and a <= merged[-1][1] + _EPS:
                    merged[-1][1] = max(merged[-1][1], b)
                else:
                    merged.append([a, b])
            busy = sum(b - a for a, b in merged)
            gaps: list[tuple[float, float]] = []
            cursor = lo
            for a, b in merged:
                if a > cursor + _EPS:
                    gaps.append((cursor, a))
                cursor = max(cursor, b)
            if hi > cursor + _EPS:
                gaps.append((cursor, hi))
            out.append(DeviceUsage(track.label, hi - lo, busy, gaps))
        return out

    # ------------------------------------------------------------------
    # Critical path
    # ------------------------------------------------------------------
    def batches(self) -> list[SpanNode]:
        """Every batch span in the trace, longest first."""
        found = [n for _t, n in self._all_nodes() if n.cat == "batch"]
        return sorted(found, key=lambda n: -n.total_s)

    def critical_path(
        self, batch: Optional[SpanNode] = None
    ) -> list[tuple[str, SpanNode]]:
        """The chain of spans bounding one batch's makespan.

        Walks backwards from the batch's end: at each cursor, the next
        element is the span (within the batch's process scope and
        interval, at a deeper category rank) with the latest end at or
        before the cursor; the cursor then jumps to that span's start.
        Returns ``(track_label, node)`` segments in forward time order —
        an idle hole (no span ends in ``(t, cursor]``) steps to the
        latest span *overlapping* the cursor instead, so the path always
        makes progress toward the batch start.
        """
        if batch is None:
            candidates = self.batches()
            if not candidates:
                return []
            batch = candidates[0]
        scope = None
        for track in self.tracks:
            for node in track.nodes():
                if node is batch:
                    scope = track.process
        batch_rank = CATEGORY_RANK.get("batch", 1)
        pool: list[tuple[str, SpanNode]] = []
        for track in self.tracks:
            if track.process != scope:
                continue
            for node in track.nodes():
                rank = CATEGORY_RANK.get(node.cat)
                if rank is None or rank <= batch_rank:
                    continue
                if (
                    node.start >= batch.start - _EPS
                    and node.end <= batch.end + _EPS
                ):
                    pool.append((track.label, node))
        path: list[tuple[str, SpanNode]] = []
        cursor = batch.end
        used: set[int] = set()
        while cursor > batch.start + _EPS:
            ending = [
                (label, n)
                for label, n in pool
                if id(n) not in used and n.end <= cursor + _EPS and n.start < cursor - _EPS
            ]
            if ending:
                label, node = max(ending, key=lambda ln: (ln[1].end, ln[1].total_s))
            else:
                overlapping = [
                    (label, n)
                    for label, n in pool
                    if id(n) not in used and n.start < cursor - _EPS and n.end > cursor
                ]
                if not overlapping:
                    break
                label, node = max(
                    overlapping, key=lambda ln: (ln[1].start, ln[1].total_s)
                )
            path.append((label, node))
            used.add(id(node))
            cursor = node.start
        path.reverse()
        return path


# ----------------------------------------------------------------------
# Rendering and flamegraph export
# ----------------------------------------------------------------------
def render_profile(profile: Profile, max_path_rows: int = 12) -> str:
    """The terminal report: top-down table, tracks, devices, critical path."""
    lo, hi = profile.window
    if hi <= lo:
        return "(no spans recorded)"
    lines = [f"trace window: [{lo:.3f}, {hi:.3f}] s  ({hi - lo:.3f} s)"]

    lines.append("")
    lines.append(f"{'category path':<36} {'spans':>7} {'total (s)':>11} {'self (s)':>11}")
    for path, n, total, self_s in profile.top_down():
        indent = "  " * path.count(";")
        name = indent + path.rsplit(";", 1)[-1]
        lines.append(f"{name:<36} {n:>7} {total:>11.4f} {self_s:>11.4f}")

    track_rows = [
        (t.label, t.total_s, len(list(t.nodes())))
        for t in profile.tracks
        if t.roots
    ]
    if track_rows:
        lines.append("")
        lines.append(f"{'track':<28} {'busy (s)':>11} {'spans':>7}")
        for label, busy, n in sorted(track_rows, key=lambda r: -r[1]):
            lines.append(f"{label:<28} {busy:>11.4f} {n:>7}")

    devices = profile.device_usage()
    if devices:
        lines.append("")
        lines.append(
            f"{'device':<28} {'util':>7} {'busy (s)':>11} "
            f"{'idle (s)':>11} {'gaps':>5} {'max gap (s)':>12}"
        )
        for d in devices:
            lines.append(
                f"{d.track:<28} {d.utilization:>6.1%} {d.busy_s:>11.4f} "
                f"{d.idle_s:>11.4f} {len(d.gaps):>5} {d.largest_gap_s:>12.4f}"
            )

    path = profile.critical_path()
    if path:
        batch = profile.batches()[0]
        covered = sum(n.total_s for _l, n in path)
        lines.append("")
        lines.append(
            f"critical path of batch '{batch.name}' "
            f"({batch.total_s:.4f} s, {len(path)} segment(s), "
            f"{covered / batch.total_s:.0%} covered):"
        )
        for label, node in path[:max_path_rows]:
            lines.append(
                f"  [{node.start:>9.3f} -> {node.end:>9.3f}] "
                f"{node.cat:<8} {node.name:<24} on {label}"
            )
        if len(path) > max_path_rows:
            lines.append(f"  ... {len(path) - max_path_rows} more segment(s)")
    return "\n".join(lines)


def to_collapsed(tracer: EventTracer) -> list[str]:
    """Collapsed-stack lines (``frame;frame;... value``), self-time in µs.

    The Brendan Gregg / FlameGraph format: one line per unique stack,
    frames joined by ``;``, an integer weight at the end.  speedscope
    imports it directly.  Frames are ``process``, ``thread``, then the
    span names down the per-track tree; weights are self times rounded
    to whole microseconds (zero-weight stacks are dropped).
    """
    profile = Profile.from_tracer(tracer)
    weights: dict[str, int] = {}

    def visit(node: SpanNode, frames: list[str]) -> None:
        frames = frames + [node.name.replace(";", ":")]
        weight = int(round(node.self_s * 1e6))
        if weight > 0:
            stack = ";".join(frames)
            weights[stack] = weights.get(stack, 0) + weight
        for child in node.children:
            visit(child, frames)

    for track in profile.tracks:
        base = [track.process.replace(";", ":"), track.thread.replace(";", ":")]
        for root in track.roots:
            visit(root, base)
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def write_collapsed(path: str, tracer: EventTracer) -> int:
    """Write the collapsed-stack export; returns the line count."""
    lines = to_collapsed(tracer)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)
