"""The unified benchmark harness: measure -> attribute -> gate.

``benchmarks/`` reproduces the paper's figures as pytest files emitting
human-readable tables; this module is the *machine-readable* companion:
a declared suite of seeded cases whose results land in one
schema-validated ``BENCH_PERF.json``, plus a comparator that diffs two
such files and fails on regressions beyond per-metric tolerances — the
perf trajectory of the repo itself, enforceable in CI.

Determinism contract: every number under a case's ``"sim"`` key derives
from the virtual clock (makespans, virtual throughput, utilization,
hit rates, pruning ledgers) and is **bit-identical across runs** of the
same seed and mode — the comparator gates on those.  ``"wall_s"`` and
the optional per-case ``"wall_metrics"`` dict (e.g. measured parallel
speedups) are host wall-clock quantities, recorded for trend plots but
never gated (CI machines are noisy; the simulated metrics are the
repo's actual claims).

The schema is hand-rolled (:func:`validate_bench`) so CI needs no
third-party JSON-Schema package.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "SCHEMA_ID",
    "DEFAULT_TOLERANCES",
    "Tolerance",
    "Regression",
    "CASES",
    "run_suite",
    "validate_bench",
    "compare_bench",
    "render_bench",
    "load_bench",
    "write_bench",
]

SCHEMA_ID = "repro.bench.perf/v1"


# ----------------------------------------------------------------------
# Suite cases
# ----------------------------------------------------------------------
def _case_rrc_spectrum(quick: bool, seed: int) -> dict:
    """Physics-grade RRC spectrum (wall) + the equivalent hybrid batch (sim)."""
    from repro.bench.workloads import small_real_database, small_real_grid
    from repro.core.hybrid import HybridConfig, HybridRunner
    from repro.physics.apec import GridPoint, SerialAPEC
    from repro.service.requests import SpectrumRequest, compile_tasks

    db = small_real_database()
    grid = small_real_grid(n_bins=120 if quick else 400)
    apec = SerialAPEC(db, grid, method="simpson-batch", components=("rrc",))
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    apec.compute(point)  # warm caches off the clock
    t0 = time.perf_counter()
    spec = apec.compute(point)
    wall_s = time.perf_counter() - t0

    request = SpectrumRequest(temperature_k=1.0e7, z_max=8, n_bins=grid.n_bins)
    tasks = compile_tasks(request, db)
    runner = HybridRunner(HybridConfig(n_gpus=1, max_queue_length=8))
    result = runner.run(tasks)
    return {
        "wall_s": wall_s,
        "sim": {
            "makespan_s": result.makespan_s,
            "tasks_per_s": result.n_tasks / result.makespan_s,
            "gpu_task_ratio": result.metrics.gpu_task_ratio(),
            "peak_flux": float(spec.values.max() / max(spec.values.sum(), 1e-300)),
        },
    }


def _case_pruned_kernels(quick: bool, seed: int) -> dict:
    """Active-window pruning: wall speedup + the simulated device ledger."""
    import numpy as np

    from repro.bench.workloads import small_real_database, small_real_grid
    from repro.constants import K_B_KEV
    from repro.gpusim.device import TESLA_C2075
    from repro.gpusim.kernel import KernelSpec
    from repro.physics.apec import GridPoint, ion_emissivity_batched
    from repro.physics.windows import level_windows

    pieces = 64
    tail_tol = 1.0e-9
    db = small_real_database()
    grid = small_real_grid(n_bins=200)
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    ions = [ion for ion in db.ions if db.n_levels(ion) > 0]
    if quick:
        ions = ions[:: max(1, len(ions) // 8)][:8]
    kt = K_B_KEV * point.temperature_k

    def spectrum(tt: float) -> np.ndarray:
        out = np.zeros(grid.n_bins)
        for ion in ions:
            out += ion_emissivity_batched(
                db, ion, point, grid, pieces=pieces, tail_tol=tt
            )
        return out

    def specs(tt: float) -> list[KernelSpec]:
        out = []
        for ion in ions:
            n_levels = db.n_levels(ion)
            n_active = None
            if tt > 0.0:
                win = level_windows(db.levels(ion).energy_kev, grid, kt, tt)
                n_active = win.n_active
            out.append(
                KernelSpec.for_ion_task(
                    n_levels=n_levels,
                    n_bins=grid.n_bins,
                    evals_per_integral=pieces + 1,
                    label=ion.name,
                    n_active=n_active,
                )
            )
        return out

    spectrum(tail_tol)  # warm
    t0 = time.perf_counter()
    spectrum(tail_tol)
    wall_s = time.perf_counter() - t0

    base = specs(0.0)
    pruned = specs(tail_tol)
    base_device = sum(TESLA_C2075.service_time(s) for s in base)
    device = sum(TESLA_C2075.service_time(s) for s in pruned)
    return {
        "wall_s": wall_s,
        "sim": {
            "device_time_s": device,
            "device_speedup": base_device / device,
            "evals_saved": float(sum(s.evals_saved for s in pruned)),
        },
    }


def _case_service_throughput(
    quick: bool,
    seed: int,
    flamegraph: Optional[str] = None,
    dash: Optional[str] = None,
) -> dict:
    """A traffic trace through the full service stack, profiled."""
    import numpy as np

    from repro.obs.profile import Profile, write_collapsed
    from repro.obs.tracer import EventTracer
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    trace = generate_trace(
        TrafficSpec(
            n_requests=60 if quick else 200,
            seed=seed,
            n_distinct=16 if quick else 32,
        )
    )
    tsdb = detector = None
    if dash:
        from repro.obs.anomaly import AnomalyDetector
        from repro.obs.tsdb import TimeSeriesStore

        tsdb = TimeSeriesStore(cadence_s=0.5)
        detector = AnomalyDetector()
    tracer = EventTracer()
    t0 = time.perf_counter()
    broker, _tickets = run_trace(
        trace,
        ServiceConfig(n_service_workers=2),
        tracer=tracer,
        tsdb=tsdb,
        anomaly=detector,
    )
    wall_s = time.perf_counter() - t0
    if dash:
        from repro.obs.dash import render_dashboard

        with open(dash, "w") as fh:
            fh.write(
                render_dashboard(
                    tsdb,
                    title="bench service_throughput",
                    anomalies=detector.events,
                )
            )

    report = broker.report()
    virtual_s = report["virtual_time_s"]
    tasks = report["gpu_tasks"] + report["cpu_tasks"]
    latencies = [
        s for lane in broker.telemetry.lanes.values() for s in lane.latencies_s
    ]
    p95 = float(np.percentile(np.asarray(latencies), 95.0)) if latencies else 0.0
    devices = Profile.from_tracer(tracer).device_usage()
    util = (
        sum(d.utilization for d in devices) / len(devices) if devices else 0.0
    )
    if flamegraph:
        write_collapsed(flamegraph, tracer)
    return {
        "wall_s": wall_s,
        "sim": {
            "virtual_time_s": virtual_s,
            "tasks_per_s": tasks / virtual_s if virtual_s > 0 else 0.0,
            "cache_hit_rate": report["cache"]["hit_ratio"],
            "p95_latency_s": p95,
            "device_utilization": util,
        },
    }


def _case_continuous_batching(quick: bool, seed: int) -> dict:
    """Continuous cross-request megabatching under bursty survey traffic.

    Three runs feed the gates.  A bursty, tight-tolerance trace
    (clusters of 32 arrivals over a 96-point uniform population — the
    shape batch assembly feeds on) is played twice: **batched**
    (admission window + width-32 megabatch groups) and **unbatched**
    (same trace, batching off), and every per-request spectrum must
    match bit for bit — ``bit_identical`` gates at 1.0 with zero slack.
    The headline ratios are measured against the unbatched service
    baseline: the case re-runs :func:`_case_service_throughput`
    in-process and divides by its figures, so
    ``utilization_vs_unbatched`` (must stay >= 3) and
    ``p95_vs_unbatched`` (must stay <= 0.5) are pinned to the same
    numbers the suite already publishes.  The same-trace ratios are
    reported alongside, ungated — a strictly harder comparison, since
    saturating the unbatched broker raises its utilization too.
    """
    import numpy as np

    from repro.obs.profile import Profile
    from repro.obs.tracer import EventTracer
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    trace = generate_trace(
        TrafficSpec(
            n_requests=128,
            seed=seed,
            mean_interarrival_s=0.01,
            burst=32,
            pattern="uniform",
            n_distinct=96,
            n_bins=128,
            tolerance=1.0e-9,
        )
    )

    def play(cfg: ServiceConfig):
        tracer = EventTracer()
        broker, tickets = run_trace(trace, cfg, tracer=tracer)
        lat = [
            s for lane in broker.telemetry.lanes.values() for s in lane.latencies_s
        ]
        p95 = float(np.percentile(np.asarray(lat), 95.0)) if lat else 0.0
        devices = Profile.from_tracer(tracer).device_usage()
        util = (
            sum(d.utilization for d in devices) / len(devices) if devices else 0.0
        )
        return broker, tickets, util, p95

    t0 = time.perf_counter()
    batched, b_tickets, b_util, b_p95 = play(
        ServiceConfig(
            n_service_workers=2,
            queue_capacity=96,
            batch_max=32,
            batch_width_max=32,
            batch_window_s=0.05,
        )
    )
    _, u_tickets, u_util, u_p95 = play(
        ServiceConfig(n_service_workers=2, queue_capacity=96)
    )
    wall_s = time.perf_counter() - t0

    identical = len(b_tickets) == len(u_tickets) and all(
        b is not None
        and u is not None
        and np.array_equal(b.result, u.result)
        for b, u in zip(b_tickets, u_tickets)
    )
    ref = _case_service_throughput(quick, seed)["sim"]
    tel = batched.telemetry
    widths = list(tel.megabatch_widths)
    return {
        "wall_s": wall_s,
        "sim": {
            "device_utilization": b_util,
            "p95_latency_s": b_p95,
            "utilization_vs_unbatched": b_util / ref["device_utilization"],
            "p95_vs_unbatched": b_p95 / ref["p95_latency_s"],
            "bit_identical": 1.0 if identical else 0.0,
            "batch_width_mean": float(np.mean(widths)) if widths else 0.0,
            "batch_width_max": float(max(widths)) if widths else 0.0,
            "batched_temperatures": float(tel.batched_temperatures),
            "same_trace_utilization_ratio": b_util / u_util if u_util else 0.0,
            "same_trace_p95_ratio": b_p95 / u_p95 if u_p95 else 0.0,
        },
    }


def _case_fused_megabatch(quick: bool, seed: int) -> dict:
    """Megabatch fusion: pass-count ledger (sim) + wall speedups (ungated).

    The gated metric is ``fused_pass_ratio`` — per-ion kernel launches
    divided by fused megabatch passes over a temperature sweep, a pure
    counting argument independent of the host.  The wall-clock speedups
    (fused vs per-ion, process backend vs serial) land under
    ``wall_metrics``: recorded for trend plots, never gated.
    ``parallel_speedup`` is bounded above by ``cpu_count`` (recorded
    alongside it) — on a single-CPU host it can only show the process
    backend's overhead, never a gain.
    """
    import os

    import numpy as np

    from repro.bench.workloads import small_real_database, small_real_grid
    from repro.physics.apec import GridPoint, SerialAPEC

    db = small_real_database()
    grid = small_real_grid(n_bins=120 if quick else 400)
    temps = (8.0e6, 1.0e7, 1.25e7) if quick else (
        6.0e6, 8.0e6, 1.0e7, 1.2e7, 1.5e7, 2.0e7
    )
    points = [GridPoint(temperature_k=t, ne_cm3=1.0) for t in temps]
    tail_tol = 1.0e-9

    def model(**kw) -> SerialAPEC:
        return SerialAPEC(
            db, grid, method="simpson-batch", components=("rrc",),
            tail_tol=tail_tol, **kw,
        )

    def sweep(apec: SerialAPEC) -> list[np.ndarray]:
        return [apec.compute(p).values for p in points]

    def timed(apec: SerialAPEC) -> tuple[list[np.ndarray], float]:
        sweep(apec)  # warm caches (plans, pools, windows) off the clock
        t0 = time.perf_counter()
        out = sweep(apec)
        return out, time.perf_counter() - t0

    legacy = model()
    fused = model(fused=True, shards=1)
    spectra_legacy, wall_legacy = timed(legacy)
    spectra_fused, wall_fused = timed(fused)
    fused_passes = 0
    for p in points:
        fused.compute(p)
        fused_passes += fused.last_plan_stats["n_passes"]
    per_ion_launches = sum(
        1 for ion in db.ions if db.n_levels(ion) > 0
    ) * len(points)
    rel_err = max(
        float(np.max(np.abs(f - l)) / max(float(np.max(np.abs(l))), 1e-300))
        for f, l in zip(spectra_fused, spectra_legacy)
    )
    with model(backend="process", jobs=2, shards=4) as par:
        _, wall_process = timed(par)
    return {
        "wall_s": wall_legacy + wall_fused + wall_process,
        "sim": {
            "fused_pass_ratio": per_ion_launches / fused_passes,
            "fused_passes": float(fused_passes),
            "fused_max_rel_err": rel_err,
        },
        "wall_metrics": {
            "fused_speedup": wall_legacy / wall_fused,
            "parallel_speedup": wall_legacy / wall_process,
            "cpu_count": float(os.cpu_count() or 1),
        },
    }


def _case_approx_serving(quick: bool, seed: int) -> dict:
    """Correlated walk traffic through the lattice tier, accuracy-checked.

    Gated: ``lattice_hit_rate`` (the approximate tier must absorb the
    bulk of a correlated trace whose temperatures never repeat exactly)
    and ``within_budget`` — every lattice-served spectrum is re-verified
    against exact recomputation, so this metric is an accuracy *claim*
    (1.0 = all within the declared budget), not a perf number.
    """
    from repro.approx import RequestEvaluator, peak_rel_error
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    budget = 1.0e-3
    trace = generate_trace(
        TrafficSpec(
            n_requests=60 if quick else 200,
            seed=seed,
            pattern="walk",
            accuracy=budget,
        )
    )
    t0 = time.perf_counter()
    broker, tickets = run_trace(trace, ServiceConfig(n_service_workers=2))
    wall_s = time.perf_counter() - t0

    evaluator = RequestEvaluator(broker.db)
    served = [t for t in tickets if t is not None and t.lattice]
    max_err = 0.0
    in_budget = 0
    for ticket in served:
        exact = evaluator.exact_fn(ticket.request)(ticket.request.temperature_k)
        err = peak_rel_error(ticket.result, exact)
        max_err = max(max_err, err)
        if err <= ticket.request.accuracy:
            in_budget += 1
    report = broker.report()
    completions = report["completions"]
    return {
        "wall_s": wall_s,
        "sim": {
            "lattice_hit_rate": (
                len(served) / completions if completions else 0.0
            ),
            "within_budget": (in_budget / len(served)) if served else 0.0,
            "lattice_max_rel_err": max_err,
            "lattice_node_evals": float(report["lattice"]["node_evals"]),
        },
    }


def _case_cost_attribution(quick: bool, seed: int) -> dict:
    """Causal cost attribution over a batched trace, gated exactly.

    A bursty megabatched run is traced end to end and the attribution
    ledger audited: ``conservation`` (attributed / measured span ticks,
    min over components) and ``kernel_rooted_fraction`` (gpusim kernel
    spans reachable from a request root through parent edges) are exact
    claims gated at **zero tolerance** — the integer-tick largest-
    remainder split makes both decidable bit-for-bit.  The online cost
    model's mean absolute relative prediction error is gated loosely
    (it is deterministic, but intentional model changes may move it).
    """
    from repro.obs.attribution import kernel_root_map
    from repro.obs.tracer import EventTracer
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    trace = generate_trace(
        TrafficSpec(
            n_requests=48 if quick else 160,
            seed=seed,
            mean_interarrival_s=0.02,
            burst=8,
            pattern="uniform",
            n_distinct=24,
        )
    )
    tracer = EventTracer()
    t0 = time.perf_counter()
    broker, _tickets = run_trace(
        trace,
        ServiceConfig(
            n_service_workers=2,
            queue_capacity=64,
            batch_max=16,
            batch_width_max=16,
            batch_window_s=0.05,
        ),
        tracer=tracer,
    )
    wall_s = time.perf_counter() - t0
    result = broker.cost_report()
    roots = kernel_root_map(tracer)
    rooted = sum(1 for _, root in roots if root is not None)
    attributed = sum(1 for e in result.entries if sum(e.ticks.values()) > 0)
    model = broker.cost_model
    return {
        "wall_s": wall_s,
        "sim": {
            "conservation": result.conservation,
            "kernel_rooted_fraction": rooted / len(roots) if roots else 0.0,
            "attributed_requests": float(attributed),
            "cost_model_rel_err": model.mean_abs_rel_error,
            "cost_model_keys": float(model.n_keys),
            "cost_model_observations": float(model.n_observations),
        },
    }


def _case_nei(quick: bool, seed: int) -> dict:
    """The Table II NEI workload: hybrid makespan vs the MPI baseline."""
    from repro.core.calibration import CostModel
    from repro.core.hybrid import HybridConfig, HybridRunner
    from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks

    spec = NEIWorkloadSpec(n_grid_points=2_400 if quick else 24_000)
    tasks = build_nei_tasks(spec)
    cost = CostModel(point_overhead_s=0.0)
    t0 = time.perf_counter()
    mpi = HybridRunner(
        HybridConfig(n_gpus=0, max_queue_length=8, cost=cost)
    ).run_mpi_only(tasks)
    hybrid = HybridRunner(
        HybridConfig(n_gpus=2, max_queue_length=8, cost=cost)
    ).run(tasks)
    wall_s = time.perf_counter() - t0
    return {
        "wall_s": wall_s,
        "sim": {
            "makespan_s": hybrid.makespan_s,
            "speedup_vs_mpi": mpi.makespan_s / hybrid.makespan_s,
            "gpu_task_ratio": hybrid.metrics.gpu_task_ratio(),
        },
    }


def _case_telemetry_pipeline(quick: bool, seed: int) -> dict:
    """Continuous telemetry: scrape determinism + anomaly hygiene.

    Two gates, both zero-tolerance.  ``scrape_determinism`` plays one
    bursty trace through the service with a scraping
    :class:`~repro.obs.tsdb.TimeSeriesStore` under every payload backend
    (serial / thread / process) and requires the serialized stores —
    delta-encoded timestamps and values included — to be byte-identical:
    telemetry rides the virtual clock, so the host's thread scheduling
    must never leak into a scrape.  ``anomaly_false_positives`` runs the
    online EWMA+MAD detector over a seeded steady trace and must stay at
    exactly zero — control bands that cry wolf on steady traffic are
    worse than none.  The bursty trace's anomaly count is reported
    ungated (it is allowed, not required, to fire).
    """
    import json

    from repro.obs.anomaly import AnomalyDetector
    from repro.obs.tsdb import TimeSeriesStore
    from repro.service.broker import ServiceConfig, run_trace
    from repro.service.loadgen import TrafficSpec, generate_trace

    n = 48 if quick else 128

    def play(trace, backend: str, detector=None) -> TimeSeriesStore:
        store = TimeSeriesStore(cadence_s=0.25)
        run_trace(
            trace,
            ServiceConfig(n_service_workers=2, backend=backend),
            tsdb=store,
            anomaly=detector,
        )
        return store

    bursty = generate_trace(
        TrafficSpec(
            n_requests=n,
            seed=seed,
            mean_interarrival_s=0.02,
            burst=8,
            pattern="uniform",
            n_distinct=12,
        )
    )
    steady = generate_trace(
        TrafficSpec(
            n_requests=n,
            seed=seed,
            mean_interarrival_s=0.05,
            n_distinct=4,
        )
    )

    t0 = time.perf_counter()
    docs = [
        json.dumps(play(bursty, backend).to_dict(), sort_keys=True)
        for backend in ("serial", "thread", "process")
    ]
    steady_detector = AnomalyDetector()
    play(steady, "serial", detector=steady_detector)
    bursty_detector = AnomalyDetector()
    bursty_store = play(bursty, "serial", detector=bursty_detector)
    wall_s = time.perf_counter() - t0

    return {
        "wall_s": wall_s,
        "sim": {
            "scrape_determinism": 1.0 if len(set(docs)) == 1 else 0.0,
            "anomaly_false_positives": float(len(steady_detector.events)),
            "n_series": float(len(bursty_store)),
            "n_scrapes": float(bursty_store.n_scrapes),
            "bursty_anomalies": float(len(bursty_detector.events)),
        },
    }


def _case_predictive_scheduling(quick: bool, seed: int) -> dict:
    """Measured-cost placement + work stealing vs the depth baseline.

    A skewed heavy-tail task list — each grid point carries one
    Pareto-sized expensive low-efficiency ion among cheap ones, the mix
    Algorithm 1's "tasks of equal size" assumption breaks on — runs
    through the depth scheduler and the predictive scheduler.  The
    predictive run uses a warmed cost model (one prior run's measured
    spans, the persisted-model serving setup): queue *depth* balances
    task counts and so splits the Pareto weights badly; predicted
    *seconds* balance the actual load, and stealing migrates stranded
    queue tails.  Gates: ``makespan_vs_depth`` holds the predictive win
    (lower is better), ``steals`` stays positive (the stealing path is
    exercised, not vestigial), and ``bit_identical`` is exact at zero
    tolerance — the scheduler prices placement but must never change an
    answer.  ``makespan_vs_oracle`` (predictive makespan over the
    perfect-balance lower bound, summed measured device seconds over
    ``n_gpus``) is reported ungated.
    """
    import numpy as np

    from repro.core.calibration import CostModel
    from repro.core.hybrid import HybridConfig, HybridRunner
    from repro.core.task import Task, TaskKind
    from repro.gpusim.device import TESLA_C2075
    from repro.gpusim.kernel import KernelSpec
    from repro.obs.attribution import CostModel as SpanCostModel

    n_points = 24
    tasks_per_point = 4
    n_bins = 300 if quick else 600
    rng = np.random.default_rng(seed)
    heavy_levels = np.minimum(
        400, (20.0 * (1.0 + rng.pareto(1.0, size=n_points))).astype(int)
    )
    tasks = []
    tid = 0
    for p in range(n_points):
        for i in range(tasks_per_point):
            heavy = i == tasks_per_point - 1
            n_levels = int(heavy_levels[p]) if heavy else 4
            label = f"pt{p}/Heavy{n_levels}" if heavy else f"pt{p}/Light+{i % 2}"
            arr = np.full(16, float(tid % 11) + 0.25)
            kern = KernelSpec.for_ion_task(
                n_levels=n_levels,
                n_bins=n_bins,
                evals_per_integral=129,
                label=label,
                efficiency=0.08 if heavy else 1.0,
                execute=(lambda a=arr: a),
            )
            tasks.append(
                Task(
                    task_id=tid,
                    kind=TaskKind.ION,
                    kernel=kern,
                    point_index=p,
                    n_levels=n_levels,
                    cpu_execute=(lambda a=arr: a),
                    label=label,
                    method="simpson",
                )
            )
            tid += 1

    # The host-cost model is zeroed down to make the run device-bound:
    # the default per-point overhead swamps device time and would hide
    # any placement difference.
    host = CostModel(
        point_overhead_s=0.0,
        prep_fixed_s=1.0e-4,
        prep_per_level_s=1.0e-6,
        submit_overhead_s=1.0e-4,
    )
    base = dict(
        n_workers=12,
        n_gpus=3,
        max_queue_length=8,
        cost=host,
        stagger_s=0.001,
    )
    t0 = time.perf_counter()
    depth = HybridRunner(HybridConfig(scheduler_kind="shared", **base)).run(tasks)
    model = SpanCostModel.seeded_from_counters(TESLA_C2075)
    HybridRunner(
        HybridConfig(scheduler_kind="predictive", **base), span_cost_model=model
    ).run(tasks)
    pred = HybridRunner(
        HybridConfig(scheduler_kind="predictive", **base), span_cost_model=model
    ).run(tasks)
    wall_s = time.perf_counter() - t0

    identical = set(depth.spectra) == set(pred.spectra) and all(
        np.array_equal(depth.spectra[p], pred.spectra[p]) for p in depth.spectra
    )
    device_time_s = sum(m for _, m in pred.metrics.predictions)
    oracle_s = device_time_s / base["n_gpus"]
    errors = pred.metrics.prediction_errors()
    return {
        "wall_s": wall_s,
        "sim": {
            "makespan_s": pred.makespan_s,
            "makespan_vs_depth": pred.makespan_s / depth.makespan_s,
            "makespan_vs_oracle": pred.makespan_s / oracle_s,
            "steals": float(pred.metrics.total_steals),
            "bit_identical": 1.0 if identical else 0.0,
            "cost_model_rel_err": float(np.mean(errors)) if errors else 0.0,
            "load_imbalance": pred.metrics.load_imbalance(),
        },
    }


#: The declared suite, execution-ordered.  ``service_throughput`` is the
#: flamegraph and dashboard source (it is the only case with a span
#: trace).
CASES: dict[str, Callable] = {
    "rrc_spectrum": _case_rrc_spectrum,
    "pruned_kernels": _case_pruned_kernels,
    "fused_megabatch": _case_fused_megabatch,
    "service_throughput": _case_service_throughput,
    "continuous_batching": _case_continuous_batching,
    "approx_serving": _case_approx_serving,
    "cost_attribution": _case_cost_attribution,
    "telemetry_pipeline": _case_telemetry_pipeline,
    "predictive_scheduling": _case_predictive_scheduling,
    "nei": _case_nei,
}


def run_suite(
    quick: bool = False,
    seed: int = 7,
    cases: Optional[list[str]] = None,
    flamegraph: Optional[str] = None,
    dash: Optional[str] = None,
) -> dict:
    """Run the declared cases; returns the ``BENCH_PERF.json`` document."""
    names = list(CASES) if cases is None else list(cases)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise ValueError(f"unknown case(s) {unknown}; expected from {list(CASES)}")
    out_cases: dict[str, dict] = {}
    for name in names:
        fn = CASES[name]
        if name == "service_throughput":
            out_cases[name] = fn(quick, seed, flamegraph=flamegraph, dash=dash)
        else:
            out_cases[name] = fn(quick, seed)
    return {
        "schema": SCHEMA_ID,
        "created_unix": time.time(),
        "quick": quick,
        "seed": seed,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "cases": out_cases,
    }


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def validate_bench(doc: object) -> list[str]:
    """Validate one document against the ``repro.bench.perf/v1`` schema.

    Returns a list of human-readable problems; an empty list means the
    document is valid.  Hand-rolled so CI needs no jsonschema package.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(
            f"schema: expected {SCHEMA_ID!r}, got {doc.get('schema')!r}"
        )
    for key, kind in (
        ("created_unix", (int, float)),
        ("quick", bool),
        ("seed", int),
        ("host", dict),
        ("cases", dict),
    ):
        if key not in doc:
            errors.append(f"missing required key {key!r}")
        elif not isinstance(doc[key], kind):
            errors.append(f"{key}: expected {kind}, got {type(doc[key]).__name__}")
    cases = doc.get("cases")
    if not isinstance(cases, dict):
        return errors
    if not cases:
        errors.append("cases: must contain at least one case")
    for name, case in cases.items():
        where = f"cases[{name!r}]"
        if not isinstance(case, dict):
            errors.append(f"{where}: expected object")
            continue
        wall = case.get("wall_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            errors.append(f"{where}.wall_s: expected non-negative number")
        sim = case.get("sim")
        if not isinstance(sim, dict) or not sim:
            errors.append(f"{where}.sim: expected non-empty object")
            continue
        for metric, value in sim.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(
                    f"{where}.sim[{metric!r}]: expected number, "
                    f"got {type(value).__name__}"
                )
        wall_metrics = case.get("wall_metrics")
        if wall_metrics is not None:
            if not isinstance(wall_metrics, dict):
                errors.append(f"{where}.wall_metrics: expected object")
                continue
            for metric, value in wall_metrics.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    errors.append(
                        f"{where}.wall_metrics[{metric!r}]: expected number, "
                        f"got {type(value).__name__}"
                    )
    return errors


# ----------------------------------------------------------------------
# Comparison / regression gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Tolerance:
    """Per-metric gate: relative slack and which direction is a regression.

    ``direction="lower"`` means lower values are better (times): the gate
    trips when ``new > old * (1 + rel)``.  ``"higher"`` means higher is
    better (throughput, ratios): trips when ``new < old * (1 - rel)``.
    """

    rel: float
    direction: str  # "lower" | "higher"

    def __post_init__(self) -> None:
        if self.rel < 0.0:
            raise ValueError("tolerance must be non-negative")
        if self.direction not in ("lower", "higher"):
            raise ValueError("direction must be 'lower' or 'higher'")

    def regressed(self, old: float, new: float) -> bool:
        if self.direction == "lower":
            return new > old * (1.0 + self.rel) + 1e-12
        return new < old * (1.0 - self.rel) - 1e-12


#: Documented defaults (see docs/ARCHITECTURE.md §10).  Simulated metrics
#: are deterministic, so the slack only absorbs intentional algorithm
#: changes small enough not to matter; unlisted metrics are reported but
#: never gated (``wall_s`` intentionally has no entry).
DEFAULT_TOLERANCES: dict[str, Tolerance] = {
    "makespan_s": Tolerance(0.02, "lower"),
    "device_time_s": Tolerance(0.02, "lower"),
    "virtual_time_s": Tolerance(0.02, "lower"),
    "p95_latency_s": Tolerance(0.05, "lower"),
    "tasks_per_s": Tolerance(0.02, "higher"),
    "device_speedup": Tolerance(0.02, "higher"),
    "speedup_vs_mpi": Tolerance(0.02, "higher"),
    "gpu_task_ratio": Tolerance(0.05, "higher"),
    "device_utilization": Tolerance(0.05, "higher"),
    "cache_hit_rate": Tolerance(0.02, "higher"),
    "evals_saved": Tolerance(0.02, "higher"),
    "fused_pass_ratio": Tolerance(0.02, "higher"),
    "lattice_hit_rate": Tolerance(0.02, "higher"),
    "within_budget": Tolerance(0.0, "higher"),
    "utilization_vs_unbatched": Tolerance(0.05, "higher"),
    "p95_vs_unbatched": Tolerance(0.05, "lower"),
    "bit_identical": Tolerance(0.0, "higher"),
    "conservation": Tolerance(0.0, "higher"),
    "kernel_rooted_fraction": Tolerance(0.0, "higher"),
    "cost_model_rel_err": Tolerance(0.25, "lower"),
    "scrape_determinism": Tolerance(0.0, "higher"),
    "anomaly_false_positives": Tolerance(0.0, "lower"),
    "makespan_vs_depth": Tolerance(0.02, "lower"),
    "steals": Tolerance(0.0, "higher"),
}


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved the wrong way beyond tolerance."""

    case: str
    metric: str
    old: float
    new: float
    tolerance: Tolerance

    def describe(self) -> str:
        arrow = "rose" if self.new > self.old else "fell"
        rel = abs(self.new / self.old - 1.0) if self.old else float("inf")
        return (
            f"{self.case}.{self.metric}: {arrow} {self.old:.6g} -> "
            f"{self.new:.6g} ({rel:+.1%} vs {self.tolerance.rel:.0%} "
            f"tolerance, {self.tolerance.direction} is better)"
        )


def compare_bench(
    old: dict,
    new: dict,
    tolerances: Optional[dict[str, Tolerance]] = None,
) -> tuple[list[Regression], list[str]]:
    """Diff two bench documents; returns (regressions, report lines).

    Cases or metrics present on only one side are reported as notes but
    never gate — adding a case must not fail the comparison that
    introduces it.
    """
    tol = DEFAULT_TOLERANCES if tolerances is None else tolerances
    regressions: list[Regression] = []
    lines: list[str] = []
    old_cases = old.get("cases", {})
    new_cases = new.get("cases", {})
    if old.get("quick") != new.get("quick"):
        lines.append(
            "note: comparing quick and full runs — simulated workloads differ"
        )
    for name in sorted(set(old_cases) | set(new_cases)):
        if name not in old_cases:
            lines.append(f"note: case {name!r} is new (no baseline)")
            continue
        if name not in new_cases:
            lines.append(f"note: case {name!r} dropped from the suite")
            continue
        old_sim = old_cases[name].get("sim", {})
        new_sim = new_cases[name].get("sim", {})
        for metric in sorted(set(old_sim) | set(new_sim)):
            if metric not in old_sim or metric not in new_sim:
                lines.append(f"note: {name}.{metric} present on one side only")
                continue
            a, b = float(old_sim[metric]), float(new_sim[metric])
            gate = tol.get(metric)
            if gate is None:
                lines.append(f"  {name}.{metric}: {a:.6g} -> {b:.6g} (ungated)")
                continue
            if gate.regressed(a, b):
                reg = Regression(name, metric, a, b, gate)
                regressions.append(reg)
                lines.append("REGRESSION " + reg.describe())
            else:
                delta = (b / a - 1.0) if a else 0.0
                lines.append(
                    f"  {name}.{metric}: {a:.6g} -> {b:.6g} ({delta:+.2%}, ok)"
                )
    return regressions, lines


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_bench(doc: dict) -> str:
    """Human-readable table of one bench document."""
    from repro.bench.reporting import format_table

    rows = []
    for name, case in doc.get("cases", {}).items():
        for metric, value in case.get("sim", {}).items():
            rows.append([name, metric, f"{value:.6g}", "sim"])
        for metric, value in (case.get("wall_metrics") or {}).items():
            rows.append([name, metric, f"{value:.6g}", "wall"])
        rows.append([name, "wall_s", f"{case.get('wall_s', 0.0):.4f}", "wall"])
    mode = "quick" if doc.get("quick") else "full"
    return format_table(
        ["case", "metric", "value", "clock"],
        rows,
        title=f"repro bench — {mode} mode, seed {doc.get('seed')}",
    )


def load_bench(path: str) -> dict:
    """Read + schema-validate one document; raises ValueError on problems."""
    with open(path) as fh:
        doc = json.load(fh)
    errors = validate_bench(doc)
    if errors:
        raise ValueError(
            f"{path} failed schema validation:\n  " + "\n  ".join(errors)
        )
    return doc


def write_bench(path: str, doc: dict) -> None:
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
