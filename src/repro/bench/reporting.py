"""Formatting helpers: print the same rows/series the paper reports."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "paper_vs_measured"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain fixed-width table (the benches print these into the log)."""
    cols = len(headers)
    for row in rows:
        if len(row) != cols:
            raise ValueError(f"row {row!r} does not match {cols} headers")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(cols)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str, series: Mapping[str, Mapping[object, float]], title: str = ""
) -> str:
    """Figure-style output: one column per named series over shared x."""
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[object] = [x]
        for name in series:
            val = series[name].get(x)
            row.append(f"{val:.2f}" if val is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def paper_vs_measured(
    label: str,
    paper: Mapping[object, float],
    measured: Mapping[object, float],
    unit: str = "",
) -> str:
    """Side-by-side comparison with the paper's published numbers."""
    rows = []
    for key in paper:
        p = paper[key]
        m = measured.get(key)
        if m is None:
            rows.append([key, f"{p:g}", "-", "-"])
        else:
            ratio = m / p if p else float("inf")
            rows.append([key, f"{p:g}", f"{m:.2f}", f"{ratio:.2f}x"])
    suffix = f" ({unit})" if unit else ""
    return format_table(
        ["x", f"paper{suffix}", f"measured{suffix}", "measured/paper"],
        rows,
        title=label,
    )
