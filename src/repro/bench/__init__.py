"""Shared harness utilities for the ``benchmarks/`` directory."""

from repro.bench.workloads import (
    paper_workload,
    paper_level_workload,
    romberg_workload,
    small_real_grid,
    small_real_database,
)
from repro.bench.reporting import format_table, format_series, paper_vs_measured

__all__ = [
    "paper_workload",
    "paper_level_workload",
    "romberg_workload",
    "small_real_grid",
    "small_real_database",
    "format_table",
    "format_series",
    "paper_vs_measured",
]
