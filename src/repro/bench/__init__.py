"""Shared harness utilities for the ``benchmarks/`` directory."""

from repro.bench.workloads import (
    paper_workload,
    paper_level_workload,
    romberg_workload,
    small_real_grid,
    small_real_database,
)
from repro.bench.reporting import format_table, format_series, paper_vs_measured
from repro.bench.harness import (
    CASES,
    DEFAULT_TOLERANCES,
    SCHEMA_ID,
    compare_bench,
    load_bench,
    render_bench,
    run_suite,
    validate_bench,
    write_bench,
)

__all__ = [
    "CASES",
    "DEFAULT_TOLERANCES",
    "SCHEMA_ID",
    "compare_bench",
    "load_bench",
    "render_bench",
    "run_suite",
    "validate_bench",
    "write_bench",
    "paper_workload",
    "paper_level_workload",
    "romberg_workload",
    "small_real_grid",
    "small_real_database",
    "format_table",
    "format_series",
    "paper_vs_measured",
]
