"""Canonical workloads used by the benchmark harness.

Each experiment in the paper's evaluation section maps to one of these
builders; keeping them here (rather than inline in each bench file) makes
the table/figure scripts short and guarantees the same workload is used
wherever the paper reuses it.
"""

from __future__ import annotations

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.task import Task
from repro.physics.spectrum import EnergyGrid

__all__ = [
    "paper_workload",
    "paper_level_workload",
    "romberg_workload",
    "small_real_grid",
    "small_real_database",
]


def paper_workload(n_points: int = 24) -> list[Task]:
    """The paper's main test: n grid points x 496 Ion tasks, Simpson-64.

    Per-point integral count lands at ~2e8, matching Fig. 1's caption.
    """
    return build_tasks(WorkloadSpec(n_points=n_points))


def paper_level_workload(n_points: int = 24) -> list[Task]:
    """The fine-grained comparison: one task per energy level."""
    return build_tasks(
        WorkloadSpec(n_points=n_points, granularity=Granularity.LEVEL)
    )


def romberg_workload(k: int, n_points: int = 24) -> list[Task]:
    """The Fig. 6 / Table I workload: Romberg with 2^k cost scaling.

    ``bins_per_level`` is halved relative to the Simpson workload so the
    k = 7 task cost matches the Simpson-64 task cost — Table I's
    "computation amount/task" column starts from that common baseline and
    doubles per k step.
    """
    return build_tasks(
        WorkloadSpec(n_points=n_points, method="romberg", k=k, bins_per_level=25_000)
    )


def small_real_grid(n_bins: int = 400) -> EnergyGrid:
    """Fig. 7's wavelength window (10-45 Angstrom) at test resolution."""
    return EnergyGrid.from_wavelength(10.0, 45.0, n_bins)


def small_real_database() -> AtomicDatabase:
    """A database small enough for real-numerics accuracy runs."""
    return AtomicDatabase(AtomicConfig(n_max=6, z_max=14))
