"""Command-line interface: run the paper's experiments from a shell.

    python -m repro quickstart
    python -m repro fig3
    python -m repro fig4 --gpus 1 2
    python -m repro fig5
    python -m repro table1
    python -m repro table2
    python -m repro autotune --gpus 1
    python -m repro spectrum --temperature 1e7 --bins 120
    python -m repro nei-solve --element 8 --temperature 1e6
    python -m repro fit --temperature 1.05e7
    python -m repro serve --trace zipf --requests 200 --seed 7
    python -m repro serve --dash dash.html --tsdb-out tsdb.json --slo
    python -m repro query 'rate(repro_requests_total[2s])' --tsdb tsdb.json
    python -m repro submit --temperature 1e7 --repeat 2
    python -m repro bench --quick
    python -m repro bench --compare BENCH_BASELINE.json BENCH_PERF.json

Each subcommand prints the same tables the corresponding benchmark
produces; the benchmarks remain the canonical reproduction (they assert
shapes), the CLI is for interactive exploration.  ``serve`` and
``submit`` exercise the service layer (broker + cache + coalescer) on
top of the hybrid runner.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.reporting import format_series, format_table
from repro.core.autotune import autotune_queue_length, probe_prefix
from repro.core.calibration import CostModel
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid GPU spectral calculation (ICPP 2015) — experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("quickstart", help="headline run: baselines + 3-GPU hybrid")
    p.add_argument("--gpus", type=int, default=3)
    p.add_argument("--maxlen", type=int, default=12)

    p = sub.add_parser("fig3", help="speedup vs #GPUs, Ion vs Level granularity")
    p.add_argument("--points", type=int, default=24)

    p = sub.add_parser("fig4", help="total time vs maximum queue length")
    p.add_argument("--gpus", type=int, nargs="+", default=[1, 2, 3, 4])
    p.add_argument(
        "--maxlens", type=int, nargs="+", default=[2, 4, 6, 8, 10, 12, 14]
    )

    p = sub.add_parser("fig5", help="GPU task ratio vs maximum queue length")
    p.add_argument("--gpus", type=int, nargs="+", default=[1, 2])

    p = sub.add_parser("table1", help="task distribution vs Romberg complexity")
    p.add_argument("--ks", type=int, nargs="+", default=[7, 9, 11, 13])

    p = sub.add_parser("table2", help="NEI speedups vs 24-core MPI")

    p = sub.add_parser("nei-solve", help="evolve one element's NEI state")
    p.add_argument("--element", type=int, default=8)
    p.add_argument("--temperature", type=float, default=1.0e6)
    p.add_argument("--t-initial", type=float, default=1.0e4)
    p.add_argument("--density", type=float, default=1.0e10)

    p = sub.add_parser("fit", help="fit a mock observation's temperature")
    p.add_argument("--temperature", type=float, default=1.05e7)
    p.add_argument("--bins", type=int, default=100)
    p.add_argument("--seed", type=int, default=2015)

    p = sub.add_parser("autotune", help="automatic maximum-queue-length search")
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--tasks-per-point", type=int, default=60)

    p = sub.add_parser("spectrum", help="compute a real RRC spectrum")
    p.add_argument("--temperature", type=float, default=1.0e7)
    p.add_argument("--density", type=float, default=1.0)
    p.add_argument("--bins", type=int, default=60)
    p.add_argument("--components", nargs="+", default=["rrc"],
                   choices=["rrc", "lines", "brems"])
    p.add_argument("--tail-tol", type=float, default=0.0,
                   help="relative tail tolerance for active-window "
                        "pruning (0 = off, exact)")
    p.add_argument("--accuracy", type=float, default=0.0,
                   help="serve from a plan-backed log-T lattice with "
                        "this certified relative-error budget (rrc "
                        "component only; 0 = exact path)")
    p.add_argument("--fused", action="store_true",
                   help="execute the RRC component as cached megabatch "
                        "plans (all ions of a shard in one launch)")
    _add_backend_flags(p)
    p.add_argument("--shards", type=int, default=8,
                   help="work shards of the ion set (backend-independent; "
                        "1 = maximal fusion)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable output (one JSON object)")
    _add_obs_flags(p)

    p = sub.add_parser("serve", help="play a traffic trace through the service")
    p.add_argument("--pattern", default="zipf",
                   choices=["zipf", "uniform", "walk"],
                   help="traffic popularity pattern ('walk' = correlated "
                        "log-T random walk, no exact repeats)")
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--rate", type=float, default=20.0,
                   help="mean arrival rate (requests per virtual second)")
    p.add_argument("--distinct", type=int, default=32,
                   help="distinct grid points in the request population")
    p.add_argument("--zipf-s", type=float, default=1.1)
    p.add_argument("--walk-sigma", type=float, default=0.05,
                   help="log-T random-walk step in dex (--pattern walk)")
    p.add_argument("--accuracy", type=float, default=0.0,
                   help="per-request relative accuracy budget; > 0 lets "
                        "the lattice tier serve interpolated spectra "
                        "within it (0 = exact only)")
    p.add_argument("--workers", type=int, default=2,
                   help="service workers (one hybrid node each)")
    p.add_argument("--queue-capacity", type=int, default=32)
    p.add_argument("--batch-max", type=int, default=4)
    p.add_argument("--batch-window", type=float, default=None,
                   help="continuous-batching admission window in virtual "
                        "seconds: a worker finding a short backlog waits "
                        "this long for more compatible requests before "
                        "dispatching one fused megabatch (default: off, "
                        "one request per dispatch)")
    p.add_argument("--batch-width", type=int, default=16,
                   help="max temperatures fused into one megabatch group")
    p.add_argument("--burst", type=int, default=1,
                   help="arrivals per cluster: >1 lands requests in "
                        "simultaneous bursts at the same long-run rate")
    p.add_argument("--gpus", type=int, default=1, help="GPUs per worker node")
    p.add_argument("--tail", type=float, default=0.0,
                   help="heavy-tail work mix: fraction of requests whose "
                        "z_max is inflated by a Pareto factor (0 = off; "
                        "legacy traces replay bit for bit)")
    _add_sched_flags(p)
    p.add_argument("--cache-entries", type=int, default=256)
    p.add_argument("--cache-mb", type=float, default=32.0)
    p.add_argument("--ttl", type=float, default=3600.0,
                   help="cache TTL in virtual seconds")
    p.add_argument("--tail-tol", type=float, default=0.0,
                   help="relative tail tolerance for active-window "
                        "pruning on every request (0 = off)")
    p.add_argument("--latency-reservoir", type=int, default=None,
                   help="cap per-lane latency samples at this reservoir "
                        "size (default: keep every sample)")
    _add_backend_flags(p)
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)
    p.add_argument("--gantt", action="store_true",
                   help="render an ASCII Gantt of the trace after the run")
    p.add_argument("--slo", action="store_true",
                   help="evaluate default SLO rules (p95 latency, queue "
                        "depth) during the run and print the report")
    p.add_argument("--slo-p95", type=float, default=2.0,
                   help="interactive-lane p95 latency objective in "
                        "virtual seconds (with --slo)")
    p.add_argument("--slo-depth", type=float, default=None,
                   help="queue-depth objective (default: 80%% of "
                        "--queue-capacity; with --slo)")
    p.add_argument("--postmortem", metavar="DIR", default=None,
                   help="arm an SLO-triggered flight recorder: each rule "
                        "entering 'firing' dumps a postmortem bundle "
                        "(trailing trace window + cost ledger) into DIR "
                        "(enables tracing and the default SLO rules)")
    p.add_argument("--postmortem-window", type=float, default=10.0,
                   help="trailing trace window of each postmortem "
                        "bundle, virtual seconds")

    p = sub.add_parser(
        "bench", help="seeded perf suite -> schema-validated BENCH_PERF.json"
    )
    p.add_argument("--quick", action="store_true",
                   help="small workloads (the CI perf-gate mode)")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default="BENCH_PERF.json",
                   help="output path (default: ./BENCH_PERF.json)")
    p.add_argument("--cases", nargs="+", default=None,
                   help="subset of cases to run (default: all)")
    p.add_argument("--flamegraph", metavar="PATH", default=None,
                   help="write a collapsed-stack flamegraph of the "
                        "service case (speedscope-importable)")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="after running, compare against this baseline "
                        "and exit nonzero on regressions")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                   help="compare two existing BENCH_PERF.json files "
                        "(no benchmarks run); exit nonzero on regressions")
    p.add_argument("--json", action="store_true",
                   help="print the result document instead of the table")
    p.add_argument("--dash", metavar="PATH", default=None,
                   help="write an HTML dashboard of the service case's "
                        "scraped time series")

    p = sub.add_parser(
        "query", help="evaluate a PromQL-subset expression over a saved store"
    )
    p.add_argument("expr",
                   help="expression, e.g. "
                        "'rate(repro_requests_total{outcome=\"computed\"}[2s])' "
                        "or 'histogram_quantile(0.95, "
                        "repro_request_latency_seconds_bucket)'")
    p.add_argument("--tsdb", metavar="PATH", required=True,
                   help="time-series store JSON written by --tsdb-out "
                        "(or a flight-recorder series.json)")
    p.add_argument("--at", type=float, default=None,
                   help="evaluation instant in store time "
                        "(default: the last scrape)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable result (labels + values)")

    p = sub.add_parser("submit", help="one-shot request through broker+cache")
    p.add_argument("--temperature", type=float, default=1.0e7)
    p.add_argument("--density", type=float, default=1.0)
    p.add_argument("--z-max", type=int, default=8)
    p.add_argument("--bins", type=int, default=64)
    p.add_argument("--rule", default="simpson", choices=["simpson", "romberg"])
    p.add_argument("--tolerance", type=float, default=1.0e-6)
    p.add_argument("--tail-tol", type=float, default=0.0,
                   help="relative tail tolerance for active-window "
                        "pruning (0 = off; enters the cache key)")
    p.add_argument("--accuracy", type=float, default=0.0,
                   help="relative accuracy budget; > 0 allows lattice-"
                        "interpolated answers within it (enters the "
                        "cache key)")
    p.add_argument("--lane", default="interactive",
                   choices=["interactive", "survey"])
    p.add_argument("--repeat", type=int, default=2,
                   help="submissions of the identical request; the second "
                        "and later ones demonstrate the cache")
    _add_sched_flags(p)
    p.add_argument("--json", action="store_true")
    _add_obs_flags(p)

    return parser


def _add_sched_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scheduler", choices=["depth", "predictive"],
                   default="depth",
                   help="hybrid placement policy: 'depth' = Algorithm 1 "
                        "queue-depth scan; 'predictive' = measured-cost "
                        "placement with work stealing")
    p.add_argument("--cost-model", metavar="PATH", default=None,
                   help="JSON cost-model state: loaded before the run "
                        "when the file exists, saved (updated) after it — "
                        "predictions warm-start across runs")


def _add_backend_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=["serial", "thread", "process"],
                   default="serial",
                   help="wall-clock execution backend for payload "
                        "evaluation (default: serial)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker count for --backend thread/process "
                        "(default: one per CPU)")


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome trace-event JSON (Perfetto-loadable)")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write Prometheus text-format metrics")
    p.add_argument("--profile", action="store_true",
                   help="print hierarchical cost attribution (top-down "
                        "table, device utilization, critical path)")
    p.add_argument("--flamegraph", metavar="PATH", default=None,
                   help="write a collapsed-stack flamegraph "
                        "(FlameGraph/speedscope-importable)")
    p.add_argument("--cost-report", action="store_true",
                   help="print the per-request attributed cost ledger "
                        "(fair-share over fused groups; enables tracing)")
    p.add_argument("--dash", metavar="PATH", default=None,
                   help="write a self-contained HTML dashboard of the "
                        "scraped time series (enables telemetry scraping "
                        "and anomaly detection)")
    p.add_argument("--tsdb-out", metavar="PATH", default=None,
                   help="write the scraped time-series store as delta-"
                        "encoded JSON ('repro query' reads it back)")
    p.add_argument("--scrape-cadence", type=float, default=0.5,
                   help="telemetry scrape cadence in virtual seconds "
                        "(wall-clock seconds for 'spectrum'; default 0.5)")


def _load_cost_model(args: argparse.Namespace):
    """The (possibly persisted) cost model a run should start from.

    Returns ``None`` when no ``--cost-model`` path is given (the broker
    seeds its own when needed).  A missing file is not an error — the
    first run creates it on save.
    """
    import os

    path = getattr(args, "cost_model", None)
    if not path or not os.path.exists(path):
        return None
    import json

    from repro.obs.attribution import CostModel

    with open(path) as fh:
        return CostModel.from_dict(json.load(fh))


def _save_cost_model(args: argparse.Namespace, model) -> None:
    """Persist the run's updated cost model back to ``--cost-model``."""
    path = getattr(args, "cost_model", None)
    if not path or model is None:
        return
    import json

    with open(path, "w") as fh:
        json.dump(model.to_dict(), fh)
    print(f"wrote cost model to {path}", file=sys.stderr)


def _sched_kind(args: argparse.Namespace) -> str:
    """The HybridConfig scheduler_kind for a --scheduler flag value."""
    return "predictive" if getattr(args, "scheduler", "depth") == "predictive" else "shared"


def _make_tsdb(args: argparse.Namespace):
    """Build the (store, detector) pair when ``--dash``/``--tsdb-out`` ask.

    Returns ``(None, None)`` when neither flag is set, keeping the run on
    the :data:`~repro.obs.tsdb.NULL_TSDB` zero-overhead path.
    """
    if not (getattr(args, "dash", None) or getattr(args, "tsdb_out", None)):
        return None, None
    if args.scrape_cadence <= 0.0:
        raise SystemExit("--scrape-cadence must be positive")
    from repro.obs import AnomalyDetector, TimeSeriesStore

    return TimeSeriesStore(cadence_s=args.scrape_cadence), AnomalyDetector()


def _emit_tsdb(
    args: argparse.Namespace,
    store,
    detector=None,
    slo=None,
    title: str = "repro telemetry",
) -> None:
    """Honour ``--tsdb-out`` / ``--dash`` for one scraped store."""
    if store is None:
        return
    if getattr(args, "tsdb_out", None):
        import json

        with open(args.tsdb_out, "w") as fh:
            json.dump(store.to_dict(), fh)
        print(
            f"wrote {store.n_scrapes} scrape(s), {len(store)} series "
            f"to {args.tsdb_out}",
            file=sys.stderr,
        )
    if getattr(args, "dash", None):
        from repro.obs import render_dashboard

        anomalies = detector.events if detector is not None else ()
        with open(args.dash, "w") as fh:
            fh.write(
                render_dashboard(store, title=title, slo=slo, anomalies=anomalies)
            )
        extra = f", {len(anomalies)} anomaly event(s)" if anomalies else ""
        print(f"wrote dashboard to {args.dash}{extra}", file=sys.stderr)


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.obs import QueryEngine, QueryError, TimeSeriesStore
    from repro.obs.query import format_result

    with open(args.tsdb) as fh:
        store = TimeSeriesStore.from_dict(json.load(fh))
    try:
        result = QueryEngine(store).query(args.expr, at=args.at)
    except QueryError as exc:
        print(f"query error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        at = args.at if args.at is not None else store.last_scrape
        if isinstance(result, float):
            doc = {"expr": args.expr, "at": at, "scalar": result}
        else:
            doc = {
                "expr": args.expr,
                "at": at,
                "samples": [
                    {"labels": s.label_dict(), "value": s.value} for s in result
                ],
            }
        print(json.dumps(doc))
        return 0
    print(format_result(result))
    return 0


def _emit_cost_report(args: argparse.Namespace, broker=None, tracer=None) -> None:
    """Honour ``--cost-report`` for one run.

    With a broker the report comes from its attribution ledger and cost
    model; a bare tracer (the standalone ``spectrum`` path) gets a fresh
    ledger over its events — honest about unattributed spans.
    """
    if not getattr(args, "cost_report", False):
        return
    from repro.obs import Attribution, render_cost_report

    if broker is not None:
        result = broker.cost_report()
        if result is not None:
            print(render_cost_report(result, broker.cost_model))
            return
        tracer = getattr(broker, "tracer", None)
    if tracer is None or not getattr(tracer, "enabled", False):
        print("(--cost-report needs tracing)", file=sys.stderr)
        return
    ledger = Attribution(tracer)
    ledger.ingest()
    print(render_cost_report(ledger.result()))


def _emit_profile(args: argparse.Namespace, tracer) -> None:
    """Honour ``--profile`` / ``--flamegraph`` for one recorded tracer."""
    if tracer is None:
        return
    if getattr(args, "profile", False):
        from repro.obs import Profile, render_profile

        print(render_profile(Profile.from_tracer(tracer)))
    if getattr(args, "flamegraph", None):
        from repro.obs import write_collapsed

        n = write_collapsed(args.flamegraph, tracer)
        print(
            f"wrote {n} collapsed stack(s) to {args.flamegraph}",
            file=sys.stderr,
        )


def _cmd_quickstart(args: argparse.Namespace) -> int:
    tasks = build_tasks(WorkloadSpec())
    runner = HybridRunner(
        HybridConfig(n_gpus=args.gpus, max_queue_length=args.maxlen)
    )
    serial = runner.serial_time(tasks)
    mpi = runner.run_mpi_only(tasks)
    hybrid = runner.run(tasks)
    print(
        format_table(
            ["configuration", "time (s)", "speedup vs serial"],
            [
                ["serial APEC", f"{serial:.0f}", "1.0x"],
                ["24-core MPI", f"{mpi.makespan_s:.0f}", f"{serial / mpi.makespan_s:.1f}x"],
                [
                    f"hybrid {args.gpus} GPU(s), maxlen {args.maxlen}",
                    f"{hybrid.makespan_s:.0f}",
                    f"{serial / hybrid.makespan_s:.1f}x",
                ],
            ],
            title="Hybrid spectral calculation (24 points x 496 ions)",
        )
    )
    print(
        f"\nGPU task share {hybrid.metrics.gpu_task_ratio():.1%}, "
        f"per-GPU tasks {[int(c) for c in hybrid.metrics.gpu_tasks]}"
    )
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    ion = build_tasks(WorkloadSpec(n_points=args.points))
    level = build_tasks(
        WorkloadSpec(n_points=args.points, granularity=Granularity.LEVEL)
    )
    serial = HybridRunner().serial_time(ion)
    series: dict[str, dict[int, float]] = {"Ion": {}, "Level": {}}
    for g in (1, 2, 3, 4):
        cfg = HybridConfig(n_gpus=g, max_queue_length=12)
        series["Ion"][g] = serial / HybridRunner(cfg).run(ion).makespan_s
        series["Level"][g] = serial / HybridRunner(cfg).run(level).makespan_s
    print(format_series("#GPUs", series, title="Fig. 3 — speedup over serial"))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    tasks = build_tasks(WorkloadSpec())
    series: dict[str, dict[int, float]] = {}
    for g in args.gpus:
        series[f"{g} GPU(s)"] = {
            m: HybridRunner(
                HybridConfig(n_gpus=g, max_queue_length=m)
            ).run(tasks).makespan_s
            for m in args.maxlens
        }
    print(format_series("maxlen", series, title="Fig. 4 — total time (s)"))
    return 0


def _cmd_table2(_args: argparse.Namespace) -> int:
    from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks

    cost = CostModel(point_overhead_s=0.0)
    tasks = build_nei_tasks(NEIWorkloadSpec())
    mpi = HybridRunner(
        HybridConfig(n_gpus=0, max_queue_length=8, cost=cost)
    ).run_mpi_only(tasks)
    rows = []
    for g in (1, 2, 3, 4):
        res = HybridRunner(
            HybridConfig(n_gpus=g, max_queue_length=8, cost=cost)
        ).run(tasks)
        rows.append(
            [g, f"{res.makespan_s:.0f}", f"{mpi.makespan_s / res.makespan_s:.1f}x"]
        )
    print(
        format_table(
            ["#GPUs", "time (s)", "speedup vs MPI"],
            rows,
            title=f"Table II — NEI (MPI baseline {mpi.makespan_s:.0f} s)",
        )
    )
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    tasks = build_tasks(WorkloadSpec())
    cfg = HybridConfig(n_gpus=args.gpus, max_queue_length=2)
    probe, probe_cfg = probe_prefix(tasks, cfg, tasks_per_point=args.tasks_per_point)
    best, times = autotune_queue_length(
        probe_cfg, probe, candidates=(2, 4, 6, 8, 10, 12, 14, 16)
    )
    rows = [
        [m, f"{t:.1f}", "<- chosen" if m == best else ""]
        for m, t in times.items()
    ]
    print(
        format_table(
            ["maxlen", "probe time (s)", ""],
            rows,
            title=f"Queue-length auto-tuning ({args.gpus} GPU(s))",
        )
    )
    return 0


def _cmd_spectrum(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.atomic.database import AtomicConfig, AtomicDatabase
    from repro.physics.apec import GridPoint, SerialAPEC
    from repro.physics.spectrum import EnergyGrid

    db = AtomicDatabase(AtomicConfig(n_max=6, z_max=14))
    grid = EnergyGrid.from_wavelength(10.0, 45.0, args.bins)
    if args.accuracy > 0.0:
        return _spectrum_via_lattice(args, db, grid)
    tsdb, anomaly = _make_tsdb(args)
    tracer = None
    if (
        args.trace
        or args.metrics
        or args.profile
        or args.flamegraph
        or args.cost_report
        or tsdb is not None
    ):
        from repro.obs import EventTracer, WallClock

        tracer = EventTracer(WallClock())
    registry = None
    if args.metrics or tsdb is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        wall_gauge = registry.gauge(
            "repro_wall_seconds", "Host wall-clock compute time"
        )
        registry.gauge("repro_spectrum_bins", "Energy bins computed").set(
            args.bins
        )
        peak_gauge = registry.gauge(
            "repro_spectrum_peak_flux", "Peak normalized flux"
        )
    apec = SerialAPEC(
        db,
        grid,
        method="simpson-batch",
        components=tuple(args.components),
        tail_tol=args.tail_tol,
        fused=args.fused,
        backend=args.backend,
        jobs=args.jobs,
        shards=args.shards,
    )
    t0 = tracer.now if tracer is not None else 0.0
    if tsdb is not None:
        tsdb.scrape(registry, t0)  # wall-clock baseline sample
    with apec:
        spec = apec.compute(
            GridPoint(temperature_k=args.temperature, ne_cm3=args.density)
        ).normalized()
    if tracer is not None:
        tracer.complete(
            tracer.track("spectrum", "apec"),
            "apec.compute",
            t0,
            cat="compute",
            args={
                "temperature_k": args.temperature,
                "n_bins": args.bins,
                "components": "+".join(args.components),
            },
        )
        wall_s = tracer.now - t0
        if args.trace:
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace, tracer)
            print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
        if registry is not None:
            from repro.obs.prom import _plan_cache_metrics

            wall_gauge.set(wall_s)
            peak_gauge.set(float(spec.values.max()))
            _plan_cache_metrics(registry)
            if args.metrics:
                with open(args.metrics, "w") as fh:
                    fh.write(registry.render())
                print(
                    f"wrote Prometheus metrics to {args.metrics}",
                    file=sys.stderr,
                )
            if tsdb is not None:
                tsdb.scrape(registry, tracer.now)  # closing wall-clock sample
                if anomaly is not None:
                    anomaly.scan(tsdb)
        _emit_profile(args, tracer)
        _emit_cost_report(args, tracer=tracer)
        _emit_tsdb(
            args,
            tsdb,
            anomaly,
            title=f"repro spectrum — T={args.temperature:.2e} K",
        )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "temperature_k": args.temperature,
                    "ne_cm3": args.density,
                    "components": list(args.components),
                    "n_bins": args.bins,
                    "wavelength_a": [float(w) for w in grid.wavelength_centers],
                    "flux": [float(v) for v in spec.values],
                }
            )
        )
        return 0
    rows = [
        [f"{wl:.2f}", f"{v:.4f}", "#" * int(round(v * 40))]
        for wl, v in zip(grid.wavelength_centers, spec.values)
    ]
    step = max(1, len(rows) // 30)
    print(
        format_table(
            ["wavelength (A)", "flux", ""],
            rows[::step],
            title=(
                f"Normalized spectrum, T={args.temperature:.2e} K, "
                f"components={'+'.join(args.components)}"
            ),
        )
    )
    return 0


def _spectrum_via_lattice(args: argparse.Namespace, db, grid) -> int:
    """``spectrum --accuracy E``: interpolate from a plan-backed lattice.

    Builds a log-T lattice around the requested temperature through the
    shared plan cache, refines the containing interval until its
    certificate fits the budget, and serves the interpolated spectrum —
    or recomputes exactly when the certificate cannot be met.
    """
    from repro.approx import LatticeSpec, SpectrumLattice, plan_exact_fn

    exact_fn = plan_exact_fn(db, grid, tail_tol=args.tail_tol, ne_cm3=args.density)
    spec_ = LatticeSpec(
        t_min_k=args.temperature / 8.0,
        t_max_k=args.temperature * 8.0,
        n_nodes=9,
        method="cubic",
    )
    tsdb, anomaly = _make_tsdb(args)
    registry = None
    if tsdb is not None:
        from repro.obs import MetricsRegistry, WallClock

        wall = WallClock()
        registry = MetricsRegistry()
        nodes_gauge = registry.gauge("repro_lattice_nodes", "Lattice nodes held")
        evals_gauge = registry.gauge(
            "repro_lattice_node_evals", "Exact node evaluations so far"
        )
        bound_gauge = registry.gauge(
            "repro_lattice_error_bound",
            "Certified relative error bound at the target",
        )

    def _scrape_lattice(lat, interval) -> None:
        if tsdb is None:
            return
        nodes_gauge.set(lat.n_nodes)
        evals_gauge.set(lat.node_evals)
        err = lat.certified_error(interval) if interval is not None else 0.0
        bound_gauge.set(err if err != float("inf") else 0.0)
        tsdb.scrape(registry, wall.now)

    lat = SpectrumLattice(spec_, exact_fn)
    interval = lat.locate(args.temperature)
    _scrape_lattice(lat, interval)
    refinements = 0
    while (
        interval is not None
        and lat.certified_error(interval) > args.accuracy
        and refinements < 8
        and lat.n_nodes < spec_.max_nodes
    ):
        lat.refine(interval)
        interval = lat.locate(args.temperature)
        refinements += 1
        _scrape_lattice(lat, interval)
    bound = lat.certified_error(interval) if interval is not None else float("inf")
    if bound <= args.accuracy:
        values = lat.interpolate(args.temperature)
        source = "lattice"
    else:
        values = exact_fn(args.temperature)
        source = "exact-fallback"
        bound = 0.0
    peak = float(values.max())
    flux = values / peak if peak > 0.0 else values
    if tsdb is not None and anomaly is not None:
        anomaly.scan(tsdb)
    _emit_tsdb(
        args,
        tsdb,
        anomaly,
        title=f"repro spectrum (lattice) — T={args.temperature:.2e} K",
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "temperature_k": args.temperature,
                    "ne_cm3": args.density,
                    "accuracy": args.accuracy,
                    "source": source,
                    "error_bound": bound,
                    "refinements": refinements,
                    "lattice_nodes": lat.n_nodes,
                    "node_evals": lat.node_evals,
                    "n_bins": args.bins,
                    "wavelength_a": [float(w) for w in grid.wavelength_centers],
                    "flux": [float(v) for v in flux],
                }
            )
        )
        return 0
    print(
        format_table(
            ["quantity", "value"],
            [
                ["accuracy budget", f"{args.accuracy:.2e}"],
                ["served from", source],
                ["certified error bound", f"{bound:.2e}"],
                ["lattice nodes / refinements", f"{lat.n_nodes} / {refinements}"],
                ["exact node evaluations", lat.node_evals],
            ],
            title=f"Approximate spectrum, T={args.temperature:.2e} K (rrc)",
        )
    )
    rows = [
        [f"{wl:.2f}", f"{v:.4f}", "#" * int(round(v * 40))]
        for wl, v in zip(grid.wavelength_centers, flux)
    ]
    step = max(1, len(rows) // 30)
    print()
    print(
        format_table(
            ["wavelength (A)", "flux", ""],
            rows[::step],
            title="Normalized lattice-served spectrum",
        )
    )
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    tasks = build_tasks(WorkloadSpec())
    series: dict[str, dict[int, float]] = {}
    for g in args.gpus:
        series[f"{g} GPU(s) %"] = {
            m: HybridRunner(
                HybridConfig(n_gpus=g, max_queue_length=m)
            ).run(tasks).metrics.gpu_task_ratio() * 100.0
            for m in (2, 4, 6, 8, 10, 12, 14)
        }
    print(format_series("maxlen", series, title="Fig. 5 — tasks on GPUs (%)"))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.workloads import romberg_workload

    rows = []
    for k in args.ks:
        tasks = romberg_workload(k)
        res = HybridRunner(HybridConfig(n_gpus=2, max_queue_length=6)).run(tasks)
        m = res.metrics
        rows.append(
            [
                f"2^{k}",
                int(m.gpu_tasks.sum()),
                f"{m.gpu_task_ratio() * 100:.2f}%",
                f"{m.load_at_least_ratio(3, 0) * 100:.2f}%",
            ]
        )
    print(
        format_table(
            ["amount/task", "tasks on GPU", "ratio", "load>=3"],
            rows,
            title="Table I — task distribution (2 GPUs, maxlen 6)",
        )
    )
    return 0


def _cmd_nei_solve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
    from repro.nei.odes import NEISystem
    from repro.nei.solvers import AutoSwitchSolver

    z = args.element
    sys_ = NEISystem(z=z, ne_cm3=args.density, temperature_k=args.temperature)
    y0 = equilibrium_state(z, args.t_initial)
    tau = relaxation_time_scale(z, args.temperature, args.density)
    res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
        sys_.rhs, sys_.jacobian, y0, (0.0, 3.0 * tau)
    )
    st = res.stats
    print(
        f"Z={z}: {args.t_initial:.1e} K -> {args.temperature:.1e} K at "
        f"n_e={args.density:.1e}; tau={tau:.3g} s"
    )
    print(
        f"solver: {st.n_steps} steps ({st.nonstiff_steps} Adams / "
        f"{st.stiff_steps} BDF), {st.n_switches} switches"
    )
    rows = [
        [f"+{c}", f"{y0[c]:.4f}", f"{res.y_final[c]:.4f}"]
        for c in range(z + 1)
        if y0[c] > 1e-4 or res.y_final[c] > 1e-4
    ]
    print(format_table(["charge", "initial", "final"], rows, title="ion fractions"))
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.atomic.database import AtomicConfig, AtomicDatabase
    from repro.physics.apec import GridPoint, SerialAPEC
    from repro.physics.fitting import (
        InstrumentResponse,
        fit_temperature,
        mock_observation,
    )
    from repro.physics.spectrum import EnergyGrid

    db = AtomicDatabase(AtomicConfig.tiny())
    grid = EnergyGrid.from_wavelength(10.0, 45.0, args.bins)
    apec = SerialAPEC(db, grid, method="simpson-batch")
    response = InstrumentResponse(grid, fwhm_kev=0.015)
    truth = apec.compute(GridPoint(temperature_k=args.temperature, ne_cm3=1.0))
    exposure = 1e6 / max(response.apply(truth.values).max(), 1e-300)
    observed = mock_observation(
        truth, response, exposure, rng=np.random.default_rng(args.seed)
    )
    result = fit_temperature(
        apec, observed, response, exposure, t_bounds=(2e6, 6e7)
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ["true temperature", f"{args.temperature:.4e} K"],
                ["fitted temperature", f"{result.temperature_k:.4e} K"],
                ["relative error", f"{result.temperature_k / args.temperature - 1:+.2%}"],
                ["chi^2 / channels", f"{result.chi2:.1f} / {args.bins}"],
                ["model evaluations", result.n_model_evals],
            ],
            title="Temperature fit",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, TrafficSpec, generate_trace, run_trace
    from repro.service.broker import _default_hybrid

    from dataclasses import replace

    trace = generate_trace(
        TrafficSpec(
            n_requests=args.requests,
            seed=args.seed,
            mean_interarrival_s=1.0 / args.rate,
            burst=args.burst,
            pattern=args.pattern,
            zipf_s=args.zipf_s,
            walk_sigma_dex=args.walk_sigma,
            n_distinct=args.distinct,
            tail_tol=args.tail_tol,
            accuracy=args.accuracy,
            tail=args.tail,
            # Inflated requests must stay servable by the broker's DB.
            tail_z_max=ServiceConfig().db_z_max,
        )
    )
    config = ServiceConfig(
        queue_capacity=args.queue_capacity,
        n_service_workers=args.workers,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window,
        batch_width_max=args.batch_width,
        cache_max_entries=args.cache_entries,
        cache_max_bytes=int(args.cache_mb * (1 << 20)),
        cache_ttl_s=args.ttl,
        hybrid=replace(
            _default_hybrid(),
            n_gpus=args.gpus,
            scheduler_kind=_sched_kind(args),
        ),
        latency_reservoir=args.latency_reservoir,
        backend=args.backend,
        jobs=args.jobs,
    )
    tracer = None
    if (
        args.trace
        or args.gantt
        or args.profile
        or args.flamegraph
        or args.cost_report
        or args.postmortem
    ):
        from repro.obs import EventTracer

        tracer = EventTracer()
    slo = None
    if args.slo or args.postmortem:
        from repro.obs import Rule, SLOEngine

        depth = (
            args.slo_depth
            if args.slo_depth is not None
            else 0.8 * args.queue_capacity
        )
        slo = SLOEngine(
            (
                Rule(
                    name="interactive-p95",
                    metric="repro_request_latency_seconds",
                    labels={"lane": "interactive"},
                    op=">",
                    threshold=args.slo_p95,
                    quantile=0.95,
                    for_s=0.5,
                ),
                Rule(
                    name="queue-depth",
                    metric="repro_queue_depth",
                    op=">",
                    threshold=depth,
                ),
            )
        )
    tsdb, anomaly = _make_tsdb(args)
    broker, _tickets = run_trace(
        trace,
        config,
        tracer=tracer,
        slo=slo,
        flight_dir=args.postmortem,
        flight_window_s=args.postmortem_window,
        tsdb=tsdb,
        anomaly=anomaly,
        cost_model=_load_cost_model(args),
    )
    _save_cost_model(args, broker.cost_model)
    if args.postmortem and broker.flight is not None and broker.flight.bundles:
        for bundle in broker.flight.bundles:
            print(f"wrote postmortem bundle {bundle}", file=sys.stderr)
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, tracer)
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        from repro.obs import service_registry

        with open(args.metrics, "w") as fh:
            fh.write(service_registry(broker).render())
        print(f"wrote Prometheus metrics to {args.metrics}", file=sys.stderr)
    if args.gantt:
        from repro.obs import render_gantt, render_summary

        print(render_gantt(tracer))
        print(render_summary(tracer))
    _emit_profile(args, tracer)
    _emit_cost_report(args, broker=broker)
    _emit_tsdb(
        args,
        tsdb,
        anomaly,
        slo=slo,
        title=(
            f"repro serve — {args.requests} requests, {args.pattern} trace, "
            f"seed {args.seed}"
        ),
    )
    if slo is not None:
        print(slo.report())
        print()
    report = broker.report()
    if args.json:
        import json

        print(json.dumps(report))
        return 0
    cache = report["cache"]
    lattice = report["lattice"]
    print(
        format_table(
            ["quantity", "value"],
            [
                ["requests issued", report["arrivals"]],
                ["requests completed", report["completions"]],
                ["requests lost", report["lost"]],
                ["rejections (backpressure)", report["rejections"]],
                ["retries", report["retries"]],
                ["coalesced joins", report["coalescer"]["coalesced"]],
                ["megabatch groups", report["megabatch_groups"]],
                ["megabatch width (mean)",
                 f"{report['batch_width_mean']:.1f}"],
                ["cache hit ratio", f"{cache['hit_ratio']:.1%}"],
                ["lattice hit ratio", f"{lattice['hit_ratio']:.1%}"],
                ["virtual time (s)", f"{report['virtual_time_s']:.2f}"],
            ],
            title=(
                f"Service run — {args.requests} requests, {args.pattern} trace, "
                f"seed {args.seed}"
            ),
        )
    )
    rows = []
    for lane, s in report["lanes"].items():
        rows.append(
            [
                lane,
                s["arrivals"],
                s["cache_hits"],
                s["lattice_hits"],
                s["coalesced"],
                s["computed"],
                s["rejections"],
                f"{s['latency_mean_s']:.3f}",
                f"{s['latency_p95_s']:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["lane", "reqs", "cache", "lattice", "coalesced", "computed",
             "rejected", "mean lat (s)", "p95 lat (s)"],
            rows,
            title="Per-lane outcomes (virtual seconds)",
        )
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ["cache entries / bytes", f"{cache['entries']} / {cache['bytes_stored']}"],
                ["cache evictions / expirations",
                 f"{cache['evictions']} / {cache['expirations']}"],
                ["lattice hits / misses / fallbacks",
                 f"{lattice['hits']} / {lattice['misses']} / {lattice['fallbacks']}"],
                ["lattice families / nodes / bytes",
                 f"{lattice['families']} / {lattice['nodes']} / "
                 f"{lattice['bytes_stored']}"],
                ["lattice refinements / node evals",
                 f"{lattice['refinements']} / {lattice['node_evals']}"],
                ["mean / max queue depth",
                 f"{report['queue_depth_mean']:.2f} / {report['queue_depth_max']}"],
                ["hybrid batches (mean size)",
                 f"{report['batches']} ({report['batch_size_mean']:.1f})"],
                ["tasks on GPU", f"{report['gpu_task_ratio']:.1%}"],
                ["work steals (predictive)", report["sched_steals"]],
                ["cost prediction error (mean)",
                 f"{report['sched_prediction_error_mean']:.1%}"],
            ],
            title="Cache, queue, and dispatch",
        )
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.cluster.simclock import SimClock
    from repro.service import ServiceConfig, SpectrumBroker, SpectrumRequest

    if args.repeat < 1:
        raise SystemExit("--repeat must be >= 1")
    request = SpectrumRequest(
        temperature_k=args.temperature,
        ne_cm3=args.density,
        z_max=args.z_max,
        n_bins=args.bins,
        rule=args.rule,
        tolerance=args.tolerance,
        tail_tol=args.tail_tol,
        accuracy=args.accuracy,
    )
    clock = SimClock()
    tracer = None
    if args.trace or args.profile or args.flamegraph or args.cost_report:
        from repro.obs import EventTracer

        tracer = EventTracer(clock)
    tsdb, anomaly = _make_tsdb(args)
    from dataclasses import replace

    from repro.service.broker import _default_hybrid

    broker = SpectrumBroker(
        clock,
        ServiceConfig(
            hybrid=replace(_default_hybrid(), scheduler_kind=_sched_kind(args))
        ),
        tracer=tracer,
        tsdb=tsdb,
        anomaly=anomaly,
        cost_model=_load_cost_model(args),
    )
    broker.start()
    outcomes = []
    for _ in range(args.repeat):
        ticket = broker.submit(request, lane=args.lane)
        clock.run()  # drain this submission to completion
        outcomes.append(
            {
                "cached": ticket.cached,
                "lattice": ticket.lattice,
                "error_bound": ticket.error_bound,
                "latency_s": ticket.latency_s,
                "peak_flux": float(ticket.result.max()),
                "total_flux": float(ticket.result.sum()),
            }
        )
    broker.bus.finalize(clock.now)
    _save_cost_model(args, broker.cost_model)
    if tsdb is not None:
        tsdb.scrape(broker.registry(), clock.now)  # closing boundary scrape
        if anomaly is not None:
            for event in anomaly.scan(tsdb):
                broker.bus.on_anomaly(event)
    if args.trace:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace, tracer)
        print(f"wrote Chrome trace to {args.trace}", file=sys.stderr)
    if args.metrics:
        from repro.obs import service_registry

        with open(args.metrics, "w") as fh:
            fh.write(service_registry(broker).render())
        print(f"wrote Prometheus metrics to {args.metrics}", file=sys.stderr)
    _emit_profile(args, tracer)
    _emit_cost_report(args, broker=broker)
    _emit_tsdb(
        args,
        tsdb,
        anomaly,
        title=f"repro submit — {args.repeat}x {args.lane}",
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "request": request.canonical(),
                    "key": request.key,
                    "submissions": outcomes,
                }
            )
        )
        return 0
    rows = [
        [
            i + 1,
            str(o["cached"]).lower(),
            str(o["lattice"]).lower(),
            f"{o['error_bound']:.2e}" if o["lattice"] else "-",
            f"{o['latency_s']:.3f}",
            f"{o['peak_flux']:.4g}",
        ]
        for i, o in enumerate(outcomes)
    ]
    print(
        format_table(
            ["submission", "cached", "lattice", "err bound", "latency (s)",
             "peak flux"],
            rows,
            title=f"submit {request.canonical()}  (key {request.key[:12]})",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench.harness import (
        compare_bench,
        load_bench,
        render_bench,
        run_suite,
        validate_bench,
        write_bench,
    )

    if args.compare is not None:
        old = load_bench(args.compare[0])
        new = load_bench(args.compare[1])
        regressions, lines = compare_bench(old, new)
        print("\n".join(lines))
        if regressions:
            print(
                f"\n{len(regressions)} regression(s) beyond tolerance",
                file=sys.stderr,
            )
            return 1
        print("\nno regressions beyond tolerance")
        return 0

    doc = run_suite(
        quick=args.quick,
        seed=args.seed,
        cases=args.cases,
        flamegraph=args.flamegraph,
        dash=args.dash,
    )
    errors = validate_bench(doc)
    if errors:  # a suite bug, not a perf regression — fail loudly
        print("schema validation failed:\n  " + "\n  ".join(errors), file=sys.stderr)
        return 2
    write_bench(args.out, doc)
    if args.json:
        print(json.dumps(doc, sort_keys=True))
    else:
        print(render_bench(doc))
    print(f"wrote {args.out}", file=sys.stderr)
    if args.flamegraph:
        print(f"wrote flamegraph to {args.flamegraph}", file=sys.stderr)
    if args.dash:
        print(f"wrote dashboard to {args.dash}", file=sys.stderr)

    if args.baseline is not None:
        baseline = load_bench(args.baseline)
        regressions, lines = compare_bench(baseline, doc)
        print()
        print("\n".join(lines))
        if regressions:
            print(
                f"\n{len(regressions)} regression(s) beyond tolerance "
                f"vs {args.baseline}",
                file=sys.stderr,
            )
            return 1
        print(f"\nno regressions beyond tolerance vs {args.baseline}")
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "autotune": _cmd_autotune,
    "spectrum": _cmd_spectrum,
    "nei-solve": _cmd_nei_solve,
    "fit": _cmd_fit,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "bench": _cmd_bench,
    "query": _cmd_query,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
