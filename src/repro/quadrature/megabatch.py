"""Fused multi-ion megabatch kernels: one ragged batch per grid point.

The per-ion window kernels in :mod:`repro.quadrature.batch` already pack
*all levels of one ion* into a single vectorized pass, but a grid point
still issues one launch per ion (~496 for the full database).  The paper's
granularity lesson — pack many tiny integrals into one launch so fixed
overhead amortizes (Algorithm 2) — applies one more time: concatenate the
CSR active windows of *every* ion of the grid point into one ragged
``(row, bin)`` batch, where a "row" now indexes a flat structure-of-arrays
of level parameters spanning the whole database.  One vectorized integrand
pass per memory-bounded chunk and one ``bincount`` scatter replace the
per-ion launch loop with a handful of passes.

The integrand calling convention is unchanged (``f(rows, x)`` with global
flat row indices), so the same closure machinery drives both layers.  The
megabatch drivers additionally return execution statistics —
``n_passes`` (vectorized launches), ``n_pairs`` (evaluated pairs) and the
zero-width elision savings — which the plan layer
(:mod:`repro.physics.plan`) and the bench harness surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.quadrature.batch import (
    WindowIntegrand,
    _chunks,
    _flatten_windows,
    _romberg_reduce,
    _window_bounds,
    simpson_weights,
    unit_fractions,
)
from repro.quadrature.simpson import DEFAULT_PIECES, _check_pieces

__all__ = [
    "MegabatchResult",
    "megabatch_simpson_windows",
    "megabatch_romberg_windows",
    "megabatch_gauss_windows",
]


@dataclass(frozen=True)
class MegabatchResult:
    """Per-bin totals plus execution statistics of one megabatch launch.

    Attributes
    ----------
    values:
        ``n_bins`` scatter-added window integrals (same numbers the
        per-ion kernels would produce, summed over all rows).
    n_passes:
        Vectorized integrand passes issued (chunks of the ragged batch).
    n_pairs:
        (row, bin) pairs actually evaluated after zero-width elision.
    n_pairs_skipped:
        Pairs elided because ``lower_clip`` clamping collapsed them.
    evals_saved:
        Integrand evaluations avoided by the elision
        (``n_pairs_skipped * points_per_pair``).
    """

    values: np.ndarray
    n_passes: int
    n_pairs: int
    n_pairs_skipped: int
    evals_saved: int


def _run_megabatch(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None,
    n_pts: int,
    make_x: Callable[[np.ndarray, np.ndarray], np.ndarray],
    reduce: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
) -> MegabatchResult:
    """Shared driver: flatten, elide, evaluate in chunks, scatter-add."""
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least 2 entries")
    n_bins = edges.size - 1
    rows, bins = _flatten_windows(first, cutoff)
    out = np.zeros(n_bins, dtype=np.float64)
    if rows.size == 0:
        return MegabatchResult(out, 0, 0, 0, 0)
    lo, hi = _window_bounds(edges, bins, rows, lower_clip)
    n_skipped = 0
    if lower_clip is not None:
        keep = hi > lo
        n_skipped = keep.size - int(np.count_nonzero(keep))
        if n_skipped:
            rows, bins, lo, hi = rows[keep], bins[keep], lo[keep], hi[keep]
            if rows.size == 0:
                return MegabatchResult(out, 0, 0, n_skipped, n_skipped * n_pts)
    n_passes = 0
    for sl in _chunks(rows.size, n_pts):
        x = make_x(lo[sl], hi[sl])
        y = np.asarray(f(rows[sl], x), dtype=np.float64)
        if y.shape != x.shape:
            raise ValueError(
                f"integrand returned shape {y.shape}, expected {x.shape}"
            )
        vals = reduce(y, lo[sl], hi[sl])
        out += np.bincount(bins[sl], weights=vals, minlength=n_bins)
        n_passes += 1
    return MegabatchResult(
        values=out,
        n_passes=n_passes,
        n_pairs=int(rows.size),
        n_pairs_skipped=n_skipped,
        evals_saved=n_skipped * n_pts,
    )


def _affine_x(n_pts: int) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    frac = unit_fractions(n_pts)

    def make_x(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return lo[:, None] + (hi - lo)[:, None] * frac[None, :]

    return make_x


def megabatch_simpson_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    pieces: int = DEFAULT_PIECES,
) -> MegabatchResult:
    """Composite Simpson over the fused windows of many ions at once.

    Same calling convention as
    :func:`repro.quadrature.batch.batch_simpson_windows`, but ``first`` /
    ``cutoff`` / ``lower_clip`` span the concatenated levels of a whole
    ion set and the result carries launch statistics.  The per-pair
    quadrature math is identical, so values match the per-ion kernel to
    summation-order rounding (exactly, when all pairs fit one chunk).
    """
    _check_pieces(pieces)
    w = simpson_weights(pieces)

    def reduce(y: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return (hi - lo) / pieces * (y @ w)

    return _run_megabatch(
        f, edges, first, cutoff, lower_clip, pieces + 1,
        _affine_x(pieces + 1), reduce,
    )


def megabatch_romberg_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    k: int = 7,
) -> MegabatchResult:
    """Romberg (``k`` dichotomy levels) over fused windows; see
    :func:`megabatch_simpson_windows`."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n_pts = 2**k + 1

    def reduce(y: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return _romberg_reduce(y, hi - lo, k)

    return _run_megabatch(
        f, edges, first, cutoff, lower_clip, n_pts, _affine_x(n_pts), reduce
    )


def megabatch_gauss_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    n: int = 8,
) -> MegabatchResult:
    """n-point Gauss-Legendre over fused windows; see
    :func:`megabatch_simpson_windows`.

    Gauss nodes are not affine images of ``linspace(0, 1)``, so this
    variant carries its own (center, half-width) node mapping — the same
    formulation as :func:`repro.quadrature.batch.batch_gauss_windows`.
    """
    from repro.quadrature.gauss_legendre import gauss_legendre_nodes

    nodes, weights = gauss_legendre_nodes(n)

    def make_x(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        half = 0.5 * (hi - lo)
        center = 0.5 * (hi + lo)
        return center[:, None] + half[:, None] * nodes[None, :]

    def reduce(y: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return 0.5 * (hi - lo) * (y @ weights)

    return _run_megabatch(
        f, edges, first, cutoff, lower_clip, n, make_x, reduce
    )
