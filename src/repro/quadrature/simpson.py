"""Composite Simpson rule — the paper's default GPU integration method.

Algorithm 2 of the paper assigns each GPU thread several integral regions
and applies "the classical Simpson method" inside each region.  The serial
form here is the reference implementation that the batched kernel in
:mod:`repro.quadrature.batch` must agree with bit-for-bit (same evaluation
points, same summation order per bin).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.quadrature.result import IntegrationResult

__all__ = ["simpson", "simpson_panels", "DEFAULT_PIECES"]

#: The paper: "the Simpson algorithm can provide enough accuracy just by
#: dividing the integral range into 64 equal pieces".
DEFAULT_PIECES: int = 64


def simpson(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    pieces: int = DEFAULT_PIECES,
) -> IntegrationResult:
    """Integrate ``f`` over ``[a, b]`` with the composite Simpson rule.

    Parameters
    ----------
    f:
        Vectorized integrand: accepts a 1-D array of abscissae and returns
        the values at those points.
    a, b:
        Integration limits; ``b`` may be below ``a`` (the sign flips).
    pieces:
        Number of equal subintervals; must be a positive even integer
        because Simpson panels pair subintervals.

    Returns
    -------
    IntegrationResult
        ``abserr`` is a cheap estimate from comparing against the
        half-resolution rule (Richardson difference / 15).
    """
    _check_pieces(pieces)
    if a == b:
        return IntegrationResult(value=0.0, abserr=0.0, neval=0)

    x = np.linspace(a, b, pieces + 1)
    y = np.asarray(f(x), dtype=np.float64)
    if y.shape != x.shape:
        raise ValueError(
            f"integrand returned shape {y.shape}, expected {x.shape}"
        )
    h = (b - a) / pieces
    fine = _simpson_sum(y, h)
    # Half-resolution estimate reuses every other sample; the classical
    # error model says err(fine) ~ |fine - coarse| / 15 for smooth f.
    coarse = _simpson_sum(y[::2], 2.0 * h)
    abserr = abs(fine - coarse) / 15.0
    return IntegrationResult(value=fine, abserr=abserr, neval=x.size)


def simpson_panels(y: np.ndarray, h: float) -> float:
    """Simpson sum of pre-evaluated samples ``y`` with uniform spacing ``h``.

    ``y`` must hold an odd number of samples (an even number of panels).
    """
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("y must be one-dimensional")
    if y.size < 3 or y.size % 2 == 0:
        raise ValueError(
            f"need an odd number >= 3 of samples, got {y.size}"
        )
    return _simpson_sum(y, h)


def _simpson_sum(y: np.ndarray, h: float) -> float:
    """Raw composite Simpson weighted sum: h/3 * (1,4,2,4,...,4,1) . y."""
    return (h / 3.0) * (
        y[0]
        + y[-1]
        + 4.0 * float(np.sum(y[1:-1:2]))
        + 2.0 * float(np.sum(y[2:-1:2]))
    )


def _check_pieces(pieces: int) -> None:
    if not isinstance(pieces, (int, np.integer)):
        raise TypeError(f"pieces must be an integer, got {type(pieces)!r}")
    if pieces < 2 or pieces % 2 != 0:
        raise ValueError(f"pieces must be a positive even integer, got {pieces}")
