"""Classical recursive adaptive Simpson quadrature.

The textbook adaptive scheme (Kuncir/Lyness): bisect any panel whose
Richardson-estimated error exceeds its tolerance share, with the
15-point-rule correction term.  It completes the integrator family — the
paper's CPU fallback is QAGS, but adaptive Simpson is the common
lightweight alternative and serves as an independent cross-check of both
QAGS and the fixed-rule kernels in the test suite.

Iterative implementation (explicit stack): recursion depth on nasty
integrands would otherwise be bounded by the Python interpreter, not by
the algorithm.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.quadrature.result import IntegrationResult

__all__ = ["adaptive_simpson"]


def _simpson_1(f_vals: tuple[float, float, float], h: float) -> float:
    fa, fm, fb = f_vals
    return h / 6.0 * (fa + 4.0 * fm + fb)


def adaptive_simpson(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    tol: float = 1.0e-10,
    max_depth: int = 40,
    max_panels: int = 100_000,
) -> IntegrationResult:
    """Adaptively integrate ``f`` over ``[a, b]`` to absolute tolerance.

    Returns a non-converged result (never an exception) when the depth or
    panel budget runs out before the tolerance is met.
    """
    if tol <= 0.0:
        raise ValueError("tolerance must be positive")
    if a == b:
        return IntegrationResult(value=0.0, abserr=0.0, neval=0)
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0

    def feval(x: float) -> float:
        return float(np.asarray(f(np.array([x])), dtype=np.float64)[0])

    neval = 3
    fa, fm, fb = feval(a), feval(0.5 * (a + b)), feval(b)
    whole = _simpson_1((fa, fm, fb), b - a)

    # Stack entries: (a, b, fa, fm, fb, S(a,b), tol, depth).
    stack = [(a, b, fa, fm, fb, whole, tol, 0)]
    total = 0.0
    err_total = 0.0
    converged = True
    panels = 0

    while stack:
        xa, xb, ya, ym, yb, s_whole, panel_tol, depth = stack.pop()
        panels += 1
        if panels > max_panels:
            converged = False
            total += s_whole
            err_total += panel_tol
            # Flush the remaining panels with their coarse estimates.
            for (ra, rb, rya, rym, ryb, rs, rtol, _d) in stack:
                total += rs
                err_total += rtol
            break
        xm = 0.5 * (xa + xb)
        xlm = 0.5 * (xa + xm)
        xrm = 0.5 * (xm + xb)
        ylm, yrm = feval(xlm), feval(xrm)
        neval += 2
        s_left = _simpson_1((ya, ylm, ym), xm - xa)
        s_right = _simpson_1((ym, yrm, yb), xb - xm)
        delta = s_left + s_right - s_whole
        if abs(delta) <= 15.0 * panel_tol or depth >= max_depth:
            if depth >= max_depth and abs(delta) > 15.0 * panel_tol:
                converged = False
            # Richardson correction: S2 + delta/15 has one order more.
            total += s_left + s_right + delta / 15.0
            err_total += abs(delta) / 15.0
        else:
            half_tol = 0.5 * panel_tol
            stack.append((xa, xm, ya, ylm, ym, s_left, half_tol, depth + 1))
            stack.append((xm, xb, ym, yrm, yb, s_right, half_tol, depth + 1))

    return IntegrationResult(
        value=sign * total,
        abserr=err_total,
        neval=neval,
        converged=converged,
        subdivisions=panels,
    )
