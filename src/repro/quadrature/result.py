"""Result and error types shared by all integrators."""

from __future__ import annotations

from dataclasses import dataclass, field


class QuadratureError(RuntimeError):
    """Raised when an integrator cannot reach the requested tolerance."""


@dataclass(frozen=True)
class IntegrationResult:
    """Outcome of a one-dimensional definite integral.

    Attributes
    ----------
    value:
        The integral estimate.
    abserr:
        Estimated absolute error of ``value``.
    neval:
        Number of integrand evaluations performed.
    converged:
        Whether the requested tolerance was met.
    subdivisions:
        Number of subintervals used (adaptive integrators only).
    extrapolated:
        Whether the value came from series extrapolation rather than the
        plain interval sum (QAGS only).
    """

    value: float
    abserr: float
    neval: int
    converged: bool = True
    subdivisions: int = 1
    extrapolated: bool = False

    def require_converged(self) -> float:
        """Return ``value`` or raise :class:`QuadratureError`."""
        if not self.converged:
            raise QuadratureError(
                f"integral did not converge: value={self.value!r} "
                f"abserr={self.abserr!r} after {self.neval} evaluations"
            )
        return self.value


@dataclass
class ErrorBudget:
    """Mutable tolerance bookkeeping for adaptive integrators.

    QUADPACK accepts both an absolute (``epsabs``) and a relative
    (``epsrel``) tolerance and stops when either is met; this mirrors that
    convention.
    """

    epsabs: float = 1.0e-10
    epsrel: float = 1.0e-8
    floor: float = field(default=1.0e-300, repr=False)

    def __post_init__(self) -> None:
        if self.epsabs < 0.0 or self.epsrel < 0.0:
            raise ValueError("tolerances must be non-negative")
        if self.epsabs == 0.0 and self.epsrel == 0.0:
            raise ValueError("at least one of epsabs/epsrel must be positive")

    def target(self, value: float) -> float:
        """The error target for a current integral estimate ``value``."""
        return max(self.epsabs, self.epsrel * abs(value), self.floor)

    def satisfied(self, value: float, abserr: float) -> bool:
        return abserr <= self.target(value)
