"""Gauss–Kronrod 10–21 point pair (QUADPACK's ``dqk21`` kernel).

The embedded 10-point Gauss rule shares every other node with the 21-point
Kronrod rule, so one set of integrand evaluations yields both an estimate
and an error indicator — the building block of the QAGS adaptive scheme in
:mod:`repro.quadrature.qags`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["GK21_NODES", "GK21_WEIGHTS", "G10_WEIGHTS", "gauss_kronrod_21"]

# Positive-half abscissae of the 21-point Kronrod rule (QUADPACK dqk21).
_XGK_HALF = np.array(
    [
        0.995657163025808080735527280689003,
        0.973906528517171720077964012084452,
        0.930157491355708226001207180059508,
        0.865063366688984510732096688423493,
        0.780817726586416897063717578345042,
        0.679409568299024406234327365114874,
        0.562757134668604683339000099272694,
        0.433395394129247190799265943165784,
        0.294392862701460198131126603103866,
        0.148874338981631210884826001129720,
        0.000000000000000000000000000000000,
    ]
)

_WGK_HALF = np.array(
    [
        0.011694638867371874278064396062192,
        0.032558162307964727478818972459390,
        0.054755896574351996031381300244580,
        0.075039674810919952767043140916190,
        0.093125454583697605535065465083366,
        0.109387158802297641899210590325805,
        0.123491976262065851077958109831074,
        0.134709217311473325928054001771707,
        0.142775938577060080797094273138717,
        0.147739104901338491374841515972068,
        0.149445554002916905664936468389821,
    ]
)

_WG_HALF = np.array(
    [
        0.066671344308688137593568809893332,
        0.149451349150580593145776339657697,
        0.219086362515982043995534934228163,
        0.269266719309996355091226921569469,
        0.295524224714752870173892994651338,
    ]
)


#: Full 21 Kronrod nodes on [-1, 1], ascending.
GK21_NODES: np.ndarray = np.concatenate([-_XGK_HALF[:-1], _XGK_HALF[::-1]])

#: Kronrod weights aligned with :data:`GK21_NODES`.
GK21_WEIGHTS: np.ndarray = np.concatenate([_WGK_HALF[:-1], _WGK_HALF[::-1]])

#: 10-point Gauss weights aligned with the odd-indexed Kronrod nodes
#: (GK21_NODES[1::2] are exactly the Gauss abscissae).
G10_WEIGHTS: np.ndarray = np.concatenate([_WG_HALF, _WG_HALF[::-1]])

for _arr in (GK21_NODES, GK21_WEIGHTS, G10_WEIGHTS):
    _arr.setflags(write=False)


def gauss_kronrod_21(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
) -> tuple[float, float, float]:
    """Apply the GK 10–21 pair to ``f`` on ``[a, b]``.

    Returns
    -------
    (kronrod, abserr, resabs):
        The 21-point Kronrod estimate, the QUADPACK-style error estimate,
        and the integral of ``|f|`` (used by callers for roundoff
        diagnostics).

    The error estimate follows QUADPACK: with ``resasc`` the integral of
    ``|f - mean|``, the raw difference ``|K21 - G10|`` is sharpened by
    ``min(1, (200*diff/resasc)**1.5)``.
    """
    half = 0.5 * (b - a)
    center = 0.5 * (a + b)
    x = center + half * GK21_NODES
    y = np.asarray(f(x), dtype=np.float64)
    if y.shape != x.shape:
        raise ValueError(f"integrand returned shape {y.shape}, expected {x.shape}")

    kronrod = half * float(GK21_WEIGHTS @ y)
    gauss = half * float(G10_WEIGHTS @ y[1::2])
    resabs = abs(half) * float(GK21_WEIGHTS @ np.abs(y))

    mean = kronrod / (b - a) if b != a else 0.0
    resasc = abs(half) * float(GK21_WEIGHTS @ np.abs(y - mean))

    diff = abs(kronrod - gauss)
    if resasc != 0.0 and diff != 0.0:
        abserr = resasc * min(1.0, (200.0 * diff / resasc) ** 1.5)
    else:
        abserr = diff
    # Guard against claiming better than machine precision.
    eps_floor = 50.0 * np.finfo(np.float64).eps * resabs
    if abserr < eps_floor:
        abserr = eps_floor
    return kronrod, abserr, resabs
