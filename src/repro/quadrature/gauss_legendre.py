"""Fixed-order Gauss-Legendre rules, scalar and batched.

A third GPU-kernel candidate besides Simpson and Romberg: for the same
evaluation count an n-point Gauss rule is exact to degree 2n-1 (Simpson
with n points only to ~3), so it reaches the RRC accuracy target with
fewer evaluations per bin — at the price of nodes that cannot be reused
between refinement levels.  The pluggable-integrator design of the
paper's implementation ("different numerical integration algorithms can
be connected to the main program on demand") is what this module
exercises.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

import numpy as np

from repro.quadrature.result import IntegrationResult

__all__ = ["gauss_legendre_nodes", "gauss_legendre", "batch_gauss_legendre"]


@lru_cache(maxsize=64)
def gauss_legendre_nodes(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Nodes and weights of the n-point Gauss-Legendre rule on [-1, 1]."""
    if n < 1:
        raise ValueError("need at least one node")
    x, w = np.polynomial.legendre.leggauss(n)
    x.setflags(write=False)
    w.setflags(write=False)
    return x, w


def gauss_legendre(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    n: int = 8,
) -> IntegrationResult:
    """Integrate ``f`` over ``[a, b]`` with the n-point Gauss rule.

    The error estimate compares against the (n//2)-point rule — crude but
    honest for smooth integrands (the fixed-rule analogue of the
    Gauss-Kronrod difference).
    """
    if a == b:
        return IntegrationResult(value=0.0, abserr=0.0, neval=0)
    x, w = gauss_legendre_nodes(n)
    half = 0.5 * (b - a)
    center = 0.5 * (a + b)
    y = np.asarray(f(center + half * x), dtype=np.float64)
    if y.shape != x.shape:
        raise ValueError(f"integrand returned shape {y.shape}, expected {x.shape}")
    value = half * float(w @ y)
    neval = n
    if n >= 2:
        x2, w2 = gauss_legendre_nodes(max(1, n // 2))
        y2 = np.asarray(f(center + half * x2), dtype=np.float64)
        coarse = half * float(w2 @ y2)
        neval += x2.size
        abserr = abs(value - coarse)
    else:
        abserr = abs(value)
    return IntegrationResult(value=value, abserr=abserr, neval=neval)


def batch_gauss_legendre(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    n: int = 8,
) -> np.ndarray:
    """n-point Gauss-Legendre integrals over many bins at once."""
    lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
    hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError("lower/upper bounds must be matching 1-D arrays")
    x, w = gauss_legendre_nodes(n)
    half = 0.5 * (hi - lo)
    center = 0.5 * (hi + lo)
    grid = center[:, None] + half[:, None] * x[None, :]
    y = np.asarray(f(grid), dtype=np.float64)
    if y.shape != grid.shape:
        raise ValueError(f"integrand returned shape {y.shape}, expected {grid.shape}")
    return half * (y @ w)
