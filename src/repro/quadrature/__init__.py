"""Numerical integration substrate.

The paper's CPU path uses QUADPACK's QAGS routine as the accurate serial
integrator, while the GPU path runs composite Simpson (default) or Romberg
kernels over many energy bins at once.  This package provides all of them,
implemented from scratch:

- :mod:`repro.quadrature.simpson` — composite Simpson rule (Algorithm 2's
  per-region method).
- :mod:`repro.quadrature.romberg` — Romberg integration with the dichotomy
  recurrence of Eq. (3).
- :mod:`repro.quadrature.gauss_kronrod` — Gauss–Kronrod 10–21 point pair.
- :mod:`repro.quadrature.qags` — adaptive quadrature with interval bisection
  and Wynn epsilon-algorithm extrapolation (the QAGS role).
- :mod:`repro.quadrature.batch` — vectorized batch integrators: the "GPU
  kernels" that evaluate tens of thousands of bins in one call.
"""

from repro.quadrature.result import IntegrationResult, QuadratureError
from repro.quadrature.simpson import simpson, simpson_panels
from repro.quadrature.romberg import romberg, romberg_table
from repro.quadrature.gauss_kronrod import gauss_kronrod_21, GK21_NODES
from repro.quadrature.qags import qags
from repro.quadrature.batch import (
    batch_simpson,
    batch_simpson_edges,
    batch_romberg,
    batch_trapezoid,
)
from repro.quadrature.gauss_legendre import (
    gauss_legendre,
    batch_gauss_legendre,
    gauss_legendre_nodes,
)
from repro.quadrature.adaptive_simpson import adaptive_simpson

__all__ = [
    "IntegrationResult",
    "QuadratureError",
    "simpson",
    "simpson_panels",
    "romberg",
    "romberg_table",
    "gauss_kronrod_21",
    "GK21_NODES",
    "qags",
    "batch_simpson",
    "batch_simpson_edges",
    "batch_romberg",
    "batch_trapezoid",
    "gauss_legendre",
    "batch_gauss_legendre",
    "gauss_legendre_nodes",
    "adaptive_simpson",
]
