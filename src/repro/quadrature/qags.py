"""Adaptive quadrature with extrapolation — the QAGS role.

This is the accurate *serial CPU* integrator of the paper: when every GPU
queue is at full load, Algorithm 1 falls back to ``CPU-Integr`` which calls
"the traditional QAGS routine serially".  The implementation follows the
QUADPACK design: globally adaptive bisection driven by Gauss–Kronrod 10–21
error estimates, plus Wynn's epsilon algorithm to extrapolate the sequence
of global estimates when plain bisection converges slowly.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.quadrature.gauss_kronrod import gauss_kronrod_21
from repro.quadrature.result import ErrorBudget, IntegrationResult

__all__ = ["qags", "wynn_epsilon"]


def wynn_epsilon(seq: np.ndarray) -> tuple[float, float]:
    """Wynn epsilon-algorithm extrapolation of a convergent sequence.

    Returns ``(limit, err)`` where ``err`` is the magnitude of the last
    correction — the standard heuristic error of the epsilon table.  The
    sequence must have at least three terms.
    """
    s = np.asarray(seq, dtype=np.float64)
    if s.size < 3:
        raise ValueError("need at least 3 terms for epsilon extrapolation")
    # Two rolling columns of the epsilon table: prev = eps_{k-1}, cur = eps_k.
    prev = np.zeros(s.size + 1)  # epsilon_{-1} column (all zeros)
    cur = s.copy()  # epsilon_0 column
    best = float(cur[-1])
    best_err = abs(float(cur[-1] - cur[-2]))
    last_even = best
    for k in range(1, s.size):
        diffs = cur[1:] - cur[:-1]
        if np.all(diffs == 0.0):
            # Sequence already converged exactly at column k-1.
            return float(cur[-1]), 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            nxt = prev[1 : cur.size] + 1.0 / diffs
        if not np.all(np.isfinite(nxt)):
            break
        prev, cur = cur, nxt
        if k % 2 == 0:
            # Even columns eps_{2m} approximate the limit; odd columns are
            # auxiliary (they hold reciprocal differences).
            cand = float(cur[-1])
            err = abs(cand - last_even)
            last_even = cand
            if err <= best_err:
                best, best_err = cand, err
        if cur.size < 2:
            break
    return best, best_err


def qags(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    epsabs: float = 1.0e-10,
    epsrel: float = 1.0e-8,
    limit: int = 200,
) -> IntegrationResult:
    """Adaptively integrate ``f`` over the finite interval ``[a, b]``.

    Parameters
    ----------
    f:
        Vectorized integrand.
    epsabs, epsrel:
        Absolute / relative tolerance; convergence when either is met.
    limit:
        Maximum number of subintervals.

    Notes
    -----
    The result never silently degrades: ``converged`` is False when the
    subdivision limit was hit before reaching tolerance, and callers that
    need a hard guarantee use :meth:`IntegrationResult.require_converged`.
    """
    budget = ErrorBudget(epsabs=epsabs, epsrel=epsrel)
    if a == b:
        return IntegrationResult(value=0.0, abserr=0.0, neval=0)
    sign = 1.0
    if b < a:
        a, b = b, a
        sign = -1.0

    value, err, _ = gauss_kronrod_21(f, a, b)
    neval = 21
    if budget.satisfied(value, err):
        return IntegrationResult(
            value=sign * value, abserr=err, neval=neval, subdivisions=1
        )

    # Max-heap of intervals keyed by -error (heapq is a min-heap).  The
    # tie-break counter keeps comparisons away from float payloads.
    counter = 0
    heap: list[tuple[float, int, float, float, float, float]] = [
        (-err, counter, a, b, value, err)
    ]
    total_value, total_err = value, err
    history = [total_value]
    extrapolated = False

    for _ in range(limit - 1):
        if budget.satisfied(total_value, total_err):
            break
        neg_err, _, lo, hi, v_old, e_old = heapq.heappop(heap)
        mid = 0.5 * (lo + hi)
        v1, e1, _ = gauss_kronrod_21(f, lo, mid)
        v2, e2, _ = gauss_kronrod_21(f, mid, hi)
        neval += 42
        counter += 1
        heapq.heappush(heap, (-e1, counter, lo, mid, v1, e1))
        counter += 1
        heapq.heappush(heap, (-e2, counter, mid, hi, v2, e2))
        total_value += (v1 + v2) - v_old
        total_err += (e1 + e2) - e_old
        # Re-derive the error sum periodically; the incremental update can
        # drift after many cancellations.
        if counter % 64 == 0:
            total_err = sum(item[5] for item in heap)
        history.append(total_value)

    converged = budget.satisfied(total_value, total_err)
    value_out, err_out = total_value, total_err

    if not converged and len(history) >= 3:
        # QAGS-style rescue: extrapolate the sequence of global estimates.
        limit_est, eps_err = wynn_epsilon(np.array(history[-min(len(history), 12) :]))
        if eps_err < total_err:
            value_out, err_out = limit_est, max(eps_err, 0.0)
            extrapolated = True
            converged = budget.satisfied(value_out, err_out)

    return IntegrationResult(
        value=sign * value_out,
        abserr=err_out,
        neval=neval,
        converged=converged,
        subdivisions=len(heap),
        extrapolated=extrapolated,
    )
