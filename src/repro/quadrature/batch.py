"""Vectorized batch integrators — the "GPU kernels" of the reproduction.

Algorithm 2 of the paper evaluates the RRC integrand for *every energy bin
of every level of one ion* inside a single CUDA kernel, accumulating the
per-bin emission array ``emi`` on the device before one result transfer
back to the host.  Without CUDA hardware, the numerically equivalent
formulation is a NumPy batch evaluation: one integrand call over a
``(n_bins, n_points)`` abscissa grid followed by a weighted reduction along
the points axis.  The simulated device in :mod:`repro.gpusim` wraps these
functions and charges launch/transfer/compute time to the event clock; the
*numbers* produced here are the real spectra used by the accuracy
experiments (Fig. 7 / Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.quadrature.simpson import DEFAULT_PIECES, _check_pieces

__all__ = [
    "batch_simpson",
    "batch_simpson_edges",
    "batch_simpson_windows",
    "batch_romberg",
    "batch_romberg_windows",
    "batch_gauss_windows",
    "batch_trapezoid",
    "simpson_weights",
    "unit_fractions",
    "KERNEL_COUNTERS",
    "WindowKernelCounters",
]

#: Cap on the scratch grid size (in float64 elements) for one chunk of a
#: batched evaluation; larger batches are processed in slices so host
#: memory stays bounded regardless of workload size.
MAX_GRID_ELEMENTS: int = 8_000_000


@lru_cache(maxsize=64)
def simpson_weights(pieces: int) -> np.ndarray:
    """Composite Simpson weight vector (1, 4, 2, 4, ..., 2, 4, 1) / 3.

    Cached (the hot loops request the same ``pieces`` on every call);
    the returned array is read-only — copy before mutating.
    """
    _check_pieces(pieces)
    w = np.empty(pieces + 1, dtype=np.float64)
    w[0] = w[-1] = 1.0
    w[1:-1:2] = 4.0
    w[2:-1:2] = 2.0
    w /= 3.0
    w.setflags(write=False)
    return w


@lru_cache(maxsize=64)
def unit_fractions(n_points: int) -> np.ndarray:
    """``linspace(0, 1, n_points)`` — the cached unit node vector.

    Every fixed-node batch rule places its abscissae at
    ``lo + width * unit_fractions(n_points)``; caching the vector keeps
    the hot loops allocation-free.  Read-only — copy before mutating.
    """
    if n_points < 2:
        raise ValueError(f"need at least 2 nodes, got {n_points}")
    frac = np.linspace(0.0, 1.0, n_points)
    frac.setflags(write=False)
    return frac


@lru_cache(maxsize=64)
def _trapezoid_weights(panels: int) -> np.ndarray:
    w = np.full(panels + 1, 1.0)
    w[0] = w[-1] = 0.5
    w.setflags(write=False)
    return w


def _as_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
    hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(
            f"lower/upper bounds must be matching 1-D arrays, got {lo.shape} "
            f"and {hi.shape}"
        )
    return lo, hi


def _chunks(n_bins: int, n_points: int) -> list[slice]:
    rows_per_chunk = max(1, MAX_GRID_ELEMENTS // max(1, n_points))
    return [
        slice(start, min(start + rows_per_chunk, n_bins))
        for start in range(0, n_bins, rows_per_chunk)
    ]


def batch_simpson(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    pieces: int = DEFAULT_PIECES,
) -> np.ndarray:
    """Composite-Simpson integrals of ``f`` over many intervals at once.

    Parameters
    ----------
    f:
        Vectorized integrand; receives an array of any shape and must
        return values of the same shape (standard NumPy ufunc semantics).
    lo, hi:
        1-D arrays of per-bin lower/upper limits (``n_bins`` entries each).
    pieces:
        Even number of Simpson panels per bin (paper default: 64).

    Returns
    -------
    numpy.ndarray
        ``n_bins`` integral values, identical (to rounding) to looping
        :func:`repro.quadrature.simpson.simpson` over the bins.
    """
    lo, hi = _as_bounds(lo, hi)
    _check_pieces(pieces)
    out = np.empty(lo.size, dtype=np.float64)
    w = simpson_weights(pieces)
    frac = unit_fractions(pieces + 1)
    for sl in _chunks(lo.size, pieces + 1):
        width = hi[sl] - lo[sl]
        x = lo[sl][:, None] + width[:, None] * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        if y.shape != x.shape:
            raise ValueError(
                f"integrand returned shape {y.shape}, expected {x.shape}"
            )
        out[sl] = width / pieces * (y @ w)
    return out


def batch_simpson_edges(
    f: Callable[[np.ndarray], np.ndarray],
    edges: np.ndarray,
    pieces: int = DEFAULT_PIECES,
) -> np.ndarray:
    """Like :func:`batch_simpson` but for contiguous bins given by edges.

    ``edges`` has ``n_bins + 1`` ascending entries; bin *i* spans
    ``[edges[i], edges[i+1]]`` — the natural layout for spectral energy
    grids (Eq. 2 integrates over each bin of the output spectrum).
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least 2 entries")
    if np.any(np.diff(edges) <= 0.0):
        raise ValueError("edges must be strictly ascending")
    return batch_simpson(f, edges[:-1], edges[1:], pieces=pieces)


def batch_trapezoid(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    panels: int = 64,
) -> np.ndarray:
    """Composite trapezoid integrals over many intervals (baseline kernel)."""
    lo, hi = _as_bounds(lo, hi)
    if panels < 1:
        raise ValueError(f"panels must be >= 1, got {panels}")
    out = np.empty(lo.size, dtype=np.float64)
    frac = unit_fractions(panels + 1)
    w = _trapezoid_weights(panels)
    for sl in _chunks(lo.size, panels + 1):
        width = hi[sl] - lo[sl]
        x = lo[sl][:, None] + width[:, None] * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        out[sl] = width / panels * (y @ w)
    return out


def batch_romberg(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    k: int = 7,
) -> np.ndarray:
    """Romberg integrals (``k`` dichotomy levels, Eq. 3) over many bins.

    Evaluation cost per bin is ``2**k + 1`` integrand samples, matching the
    paper's statement that single-task computation grows exponentially with
    ``k``; Fig. 6 / Table I sweep ``k`` in {7, 9, 11, 13}.
    """
    lo, hi = _as_bounds(lo, hi)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n_pts = 2**k + 1
    out = np.empty(lo.size, dtype=np.float64)
    frac = unit_fractions(n_pts)
    for sl in _chunks(lo.size, n_pts):
        width_col = (hi[sl] - lo[sl])[:, None]
        x = lo[sl][:, None] + width_col * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        out[sl] = _romberg_reduce(y, hi[sl] - lo[sl], k)
    return out


# ----------------------------------------------------------------------
# Active-window (CSR) kernels
# ----------------------------------------------------------------------
# Each "row" is one level of an ion; row r touches only the bins
# first[r] <= b < cutoff[r] of a shared energy grid.  The flattened
# (row, bin) pairs of *all* rows form one ragged batch that is evaluated
# in a single vectorized pass and scatter-added into the per-bin output
# spectrum — the software analogue of a CUDA kernel whose thread blocks
# cover only the active tiles of the (levels x bins) iteration space.

WindowIntegrand = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class WindowKernelCounters:
    """Process-global savings ledger of the CSR window kernels.

    ``lower_clip`` clamping can collapse a (row, bin) pair to zero width
    (the bin lies entirely below its row's recombination edge).  Such a
    pair contributes exactly 0.0, so the kernels elide it before the
    integrand pass; the elisions are booked here so callers (the bench
    harness, the service cost model) can surface them as extra
    ``evals_saved`` on top of window pruning.
    """

    zero_width_pairs: int = 0
    evals_saved: int = 0
    #: Worker-pool lifecycle of the parallel backends: pools spun up vs
    #: ``map`` calls served by an already-warm pool (booked by
    #: :mod:`repro.parallel.executor`; lives here so one process-global
    #: ledger covers every kernel-side savings counter).
    pool_creates: int = 0
    pool_reuses: int = 0
    #: Chunked-map IPC ledger of the process backend: chunks submitted
    #: across the pool boundary vs items they carried.  ``map_items -
    #: map_chunks`` is the number of per-item round trips the chunked
    #: submission elided.
    map_chunks: int = 0
    map_items: int = 0

    def book(self, n_pairs: int, n_pts: int) -> None:
        self.zero_width_pairs += n_pairs
        self.evals_saved += n_pairs * n_pts

    def book_pool(self, *, reused: bool) -> None:
        if reused:
            self.pool_reuses += 1
        else:
            self.pool_creates += 1

    def book_map(self, n_chunks: int, n_items: int) -> None:
        self.map_chunks += n_chunks
        self.map_items += n_items

    def reset(self) -> None:
        self.zero_width_pairs = 0
        self.evals_saved = 0
        self.pool_creates = 0
        self.pool_reuses = 0
        self.map_chunks = 0
        self.map_items = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "zero_width_pairs": self.zero_width_pairs,
            "evals_saved": self.evals_saved,
            "pool_creates": self.pool_creates,
            "pool_reuses": self.pool_reuses,
            "map_chunks": self.map_chunks,
            "map_items": self.map_items,
        }


#: Shared ledger instance used by every window kernel in this process.
KERNEL_COUNTERS = WindowKernelCounters()


def _skip_zero_width(
    rows: np.ndarray,
    bins: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    n_pts: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Drop clamped-empty pairs (``hi == lo``) before evaluation.

    Bit-identical to evaluating them: a zero-width pair's quadrature
    value is exactly 0.0 for every rule (``h = 0`` scales the weighted
    sum), so removing it from the scatter changes no output bit while
    saving ``n_pts`` integrand evaluations per pair.
    """
    keep = hi > lo
    n_skip = keep.size - int(np.count_nonzero(keep))
    if n_skip == 0:
        return rows, bins, lo, hi
    KERNEL_COUNTERS.book(n_skip, n_pts)
    return rows[keep], bins[keep], lo[keep], hi[keep]


def _flatten_windows(
    first: np.ndarray, cutoff: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """CSR expansion: per-pair (row index, bin index) arrays.

    ``first``/``cutoff`` are per-row half-open bin ranges; the result
    enumerates every active (row, bin) pair in row-major order.
    """
    first = np.asarray(first, dtype=np.int64)
    cutoff = np.asarray(cutoff, dtype=np.int64)
    if first.shape != cutoff.shape or first.ndim != 1:
        raise ValueError("first/cutoff must be matching 1-D arrays")
    counts = cutoff - first
    if np.any(counts < 0):
        raise ValueError("cutoff must be >= first for every row")
    rows = np.repeat(np.arange(first.size, dtype=np.int64), counts)
    # Within each row the bin index counts up from `first`; subtracting
    # each pair's offset-within-row start from a global arange yields the
    # concatenated ranges without a Python loop.
    starts = np.cumsum(counts) - counts
    bins = (
        np.arange(int(counts.sum()), dtype=np.int64)
        - np.repeat(starts, counts)
        + np.repeat(first, counts)
    )
    return rows, bins


def _window_bounds(
    edges: np.ndarray,
    bins: np.ndarray,
    rows: np.ndarray,
    lower_clip: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair integration bounds, clipping bin floors at the row edge."""
    lo = edges[bins]
    hi = edges[bins + 1]
    if lower_clip is not None:
        lower_clip = np.asarray(lower_clip, dtype=np.float64)
        lo = np.maximum(lo, lower_clip[rows])
        hi = np.maximum(hi, lo)
    return lo, hi


def _scatter_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None,
    n_pts: int,
    reduce: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
) -> np.ndarray:
    """Shared driver: flatten, evaluate in chunks, reduce, scatter-add."""
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least 2 entries")
    n_bins = edges.size - 1
    rows, bins = _flatten_windows(first, cutoff)
    out = np.zeros(n_bins, dtype=np.float64)
    if rows.size == 0:
        return out
    lo, hi = _window_bounds(edges, bins, rows, lower_clip)
    if lower_clip is not None:
        rows, bins, lo, hi = _skip_zero_width(rows, bins, lo, hi, n_pts)
        if rows.size == 0:
            return out
    frac = unit_fractions(n_pts)
    for sl in _chunks(rows.size, n_pts):
        width = hi[sl] - lo[sl]
        x = lo[sl][:, None] + width[:, None] * frac[None, :]
        y = np.asarray(f(rows[sl], x), dtype=np.float64)
        if y.shape != x.shape:
            raise ValueError(
                f"integrand returned shape {y.shape}, expected {x.shape}"
            )
        vals = reduce(y, lo[sl], hi[sl])
        out += np.bincount(bins[sl], weights=vals, minlength=n_bins)
    return out


def batch_simpson_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    pieces: int = DEFAULT_PIECES,
) -> np.ndarray:
    """Simpson integrals over the active windows of many rows at once.

    Parameters
    ----------
    f:
        Ragged-batch integrand ``f(rows, x)``: ``rows`` carries the row
        (level) index of each flattened pair, ``x`` the abscissae of that
        pair's bin; must return values of ``x``'s shape.
    edges:
        Shared grid edges (``n_bins + 1`` ascending entries).
    first, cutoff:
        Per-row half-open active bin ranges (e.g. from
        :func:`repro.physics.windows.level_windows`).
    lower_clip:
        Optional per-row lower bound (the recombination edge); a bin
        whose floor lies below its row's clip is integrated from the
        clip upward, matching the unpruned kernels.

    Returns
    -------
    numpy.ndarray
        Per-bin totals: every row's window integrals scatter-added into
        one ``n_bins`` spectrum.
    """
    _check_pieces(pieces)

    def reduce(y: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        w = simpson_weights(pieces)
        return (hi - lo) / pieces * (y @ w)

    return _scatter_windows(
        f, edges, first, cutoff, lower_clip, pieces + 1, reduce
    )


def batch_romberg_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    k: int = 7,
) -> np.ndarray:
    """Romberg (``k`` dichotomy levels) over active windows; see
    :func:`batch_simpson_windows` for the calling convention."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")

    def reduce(y: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return _romberg_reduce(y, hi - lo, k)

    return _scatter_windows(f, edges, first, cutoff, lower_clip, 2**k + 1, reduce)


def batch_gauss_windows(
    f: WindowIntegrand,
    edges: np.ndarray,
    first: np.ndarray,
    cutoff: np.ndarray,
    lower_clip: np.ndarray | None = None,
    n: int = 8,
) -> np.ndarray:
    """n-point Gauss-Legendre over active windows; see
    :func:`batch_simpson_windows` for the calling convention.

    Gauss nodes are not affine images of ``linspace(0, 1)``, so this
    variant carries its own node mapping instead of ``_scatter_windows``.
    """
    from repro.quadrature.gauss_legendre import gauss_legendre_nodes

    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least 2 entries")
    n_bins = edges.size - 1
    rows, bins = _flatten_windows(first, cutoff)
    out = np.zeros(n_bins, dtype=np.float64)
    if rows.size == 0:
        return out
    lo, hi = _window_bounds(edges, bins, rows, lower_clip)
    if lower_clip is not None:
        rows, bins, lo, hi = _skip_zero_width(rows, bins, lo, hi, n)
        if rows.size == 0:
            return out
    nodes, weights = gauss_legendre_nodes(n)
    for sl in _chunks(rows.size, n):
        half = 0.5 * (hi[sl] - lo[sl])
        center = 0.5 * (hi[sl] + lo[sl])
        x = center[:, None] + half[:, None] * nodes[None, :]
        y = np.asarray(f(rows[sl], x), dtype=np.float64)
        if y.shape != x.shape:
            raise ValueError(
                f"integrand returned shape {y.shape}, expected {x.shape}"
            )
        vals = half * (y @ weights)
        out += np.bincount(bins[sl], weights=vals, minlength=n_bins)
    return out


def _romberg_reduce(y: np.ndarray, width: np.ndarray, k: int) -> np.ndarray:
    """Romberg tableau over rows of samples: ladder + Richardson (Eq. 3)."""
    # Trapezoid ladder, coarsest to finest, all bins at once.
    ladder = np.empty((k + 1, width.size), dtype=np.float64)
    for level in range(k + 1):
        step = 2 ** (k - level)
        samples = y[:, ::step]
        h = width / (2**level)
        ladder[level] = h * (
            0.5 * (samples[:, 0] + samples[:, -1]) + samples[:, 1:-1].sum(axis=1)
        )
    # Richardson extrapolation down the tableau (Eq. 3).
    table = ladder
    for m in range(1, k + 1):
        factor = 4.0**m
        table = (factor * table[1:] - table[:-1]) / (factor - 1.0)
    return table[0]
