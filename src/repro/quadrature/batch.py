"""Vectorized batch integrators — the "GPU kernels" of the reproduction.

Algorithm 2 of the paper evaluates the RRC integrand for *every energy bin
of every level of one ion* inside a single CUDA kernel, accumulating the
per-bin emission array ``emi`` on the device before one result transfer
back to the host.  Without CUDA hardware, the numerically equivalent
formulation is a NumPy batch evaluation: one integrand call over a
``(n_bins, n_points)`` abscissa grid followed by a weighted reduction along
the points axis.  The simulated device in :mod:`repro.gpusim` wraps these
functions and charges launch/transfer/compute time to the event clock; the
*numbers* produced here are the real spectra used by the accuracy
experiments (Fig. 7 / Fig. 8).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.quadrature.simpson import DEFAULT_PIECES, _check_pieces

__all__ = [
    "batch_simpson",
    "batch_simpson_edges",
    "batch_romberg",
    "batch_trapezoid",
    "simpson_weights",
]

#: Cap on the scratch grid size (in float64 elements) for one chunk of a
#: batched evaluation; larger batches are processed in slices so host
#: memory stays bounded regardless of workload size.
MAX_GRID_ELEMENTS: int = 8_000_000


def simpson_weights(pieces: int) -> np.ndarray:
    """Composite Simpson weight vector (1, 4, 2, 4, ..., 2, 4, 1) / 3."""
    _check_pieces(pieces)
    w = np.empty(pieces + 1, dtype=np.float64)
    w[0] = w[-1] = 1.0
    w[1:-1:2] = 4.0
    w[2:-1:2] = 2.0
    return w / 3.0


def _as_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    lo = np.atleast_1d(np.asarray(lo, dtype=np.float64))
    hi = np.atleast_1d(np.asarray(hi, dtype=np.float64))
    if lo.shape != hi.shape or lo.ndim != 1:
        raise ValueError(
            f"lower/upper bounds must be matching 1-D arrays, got {lo.shape} "
            f"and {hi.shape}"
        )
    return lo, hi


def _chunks(n_bins: int, n_points: int) -> list[slice]:
    rows_per_chunk = max(1, MAX_GRID_ELEMENTS // max(1, n_points))
    return [
        slice(start, min(start + rows_per_chunk, n_bins))
        for start in range(0, n_bins, rows_per_chunk)
    ]


def batch_simpson(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    pieces: int = DEFAULT_PIECES,
) -> np.ndarray:
    """Composite-Simpson integrals of ``f`` over many intervals at once.

    Parameters
    ----------
    f:
        Vectorized integrand; receives an array of any shape and must
        return values of the same shape (standard NumPy ufunc semantics).
    lo, hi:
        1-D arrays of per-bin lower/upper limits (``n_bins`` entries each).
    pieces:
        Even number of Simpson panels per bin (paper default: 64).

    Returns
    -------
    numpy.ndarray
        ``n_bins`` integral values, identical (to rounding) to looping
        :func:`repro.quadrature.simpson.simpson` over the bins.
    """
    lo, hi = _as_bounds(lo, hi)
    _check_pieces(pieces)
    out = np.empty(lo.size, dtype=np.float64)
    w = simpson_weights(pieces)
    frac = np.linspace(0.0, 1.0, pieces + 1)
    for sl in _chunks(lo.size, pieces + 1):
        width = (hi[sl] - lo[sl])[:, None]
        x = lo[sl][:, None] + width * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        if y.shape != x.shape:
            raise ValueError(
                f"integrand returned shape {y.shape}, expected {x.shape}"
            )
        h = (hi[sl] - lo[sl]) / pieces
        out[sl] = h * (y @ w)
    return out


def batch_simpson_edges(
    f: Callable[[np.ndarray], np.ndarray],
    edges: np.ndarray,
    pieces: int = DEFAULT_PIECES,
) -> np.ndarray:
    """Like :func:`batch_simpson` but for contiguous bins given by edges.

    ``edges`` has ``n_bins + 1`` ascending entries; bin *i* spans
    ``[edges[i], edges[i+1]]`` — the natural layout for spectral energy
    grids (Eq. 2 integrates over each bin of the output spectrum).
    """
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array with at least 2 entries")
    if np.any(np.diff(edges) <= 0.0):
        raise ValueError("edges must be strictly ascending")
    return batch_simpson(f, edges[:-1], edges[1:], pieces=pieces)


def batch_trapezoid(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    panels: int = 64,
) -> np.ndarray:
    """Composite trapezoid integrals over many intervals (baseline kernel)."""
    lo, hi = _as_bounds(lo, hi)
    if panels < 1:
        raise ValueError(f"panels must be >= 1, got {panels}")
    out = np.empty(lo.size, dtype=np.float64)
    frac = np.linspace(0.0, 1.0, panels + 1)
    w = np.full(panels + 1, 1.0)
    w[0] = w[-1] = 0.5
    for sl in _chunks(lo.size, panels + 1):
        width = (hi[sl] - lo[sl])[:, None]
        x = lo[sl][:, None] + width * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        h = (hi[sl] - lo[sl]) / panels
        out[sl] = h * (y @ w)
    return out


def batch_romberg(
    f: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    k: int = 7,
) -> np.ndarray:
    """Romberg integrals (``k`` dichotomy levels, Eq. 3) over many bins.

    Evaluation cost per bin is ``2**k + 1`` integrand samples, matching the
    paper's statement that single-task computation grows exponentially with
    ``k``; Fig. 6 / Table I sweep ``k`` in {7, 9, 11, 13}.
    """
    lo, hi = _as_bounds(lo, hi)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n_pts = 2**k + 1
    out = np.empty(lo.size, dtype=np.float64)
    frac = np.linspace(0.0, 1.0, n_pts)
    for sl in _chunks(lo.size, n_pts):
        width_col = (hi[sl] - lo[sl])[:, None]
        x = lo[sl][:, None] + width_col * frac[None, :]
        y = np.asarray(f(x), dtype=np.float64)
        width = hi[sl] - lo[sl]
        # Trapezoid ladder, coarsest to finest, all bins at once.
        ladder = np.empty((k + 1, width.size), dtype=np.float64)
        for level in range(k + 1):
            step = 2 ** (k - level)
            samples = y[:, ::step]
            h = width / (2**level)
            ladder[level] = h * (
                0.5 * (samples[:, 0] + samples[:, -1]) + samples[:, 1:-1].sum(axis=1)
            )
        # Richardson extrapolation down the tableau (Eq. 3).
        table = ladder
        for m in range(1, k + 1):
            factor = 4.0**m
            table = (factor * table[1:] - table[:-1]) / (factor - 1.0)
        out[sl] = table[0]
    return out
