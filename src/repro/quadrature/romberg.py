"""Romberg integration with the dichotomy recurrence of Eq. (3).

The paper's higher-accuracy GPU kernel uses Romberg integration, where the
parameter ``k`` — "the times of dichotomy" — controls both accuracy and the
computational amount of a single task (cost grows as 2^k).  Equation (3):

    T_m^(k) = 4^m / (4^m - 1) * T_{m-1}^(k+1)  -  1 / (4^m - 1) * T_{m-1}^(k)

i.e. ordinary Richardson extrapolation of the trapezoid ladder.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.quadrature.result import IntegrationResult

__all__ = ["romberg", "romberg_table", "trapezoid_ladder"]


def trapezoid_ladder(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    k: int,
) -> np.ndarray:
    """Trapezoid estimates T^(0)..T^(k) with 1, 2, 4, ..., 2^k panels.

    Each refinement halves the step and reuses all previous samples, so the
    total evaluation count is 2^k + 1.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    width = b - a
    fa, fb = _eval_pair(f, a, b)
    ladder = np.empty(k + 1, dtype=np.float64)
    ladder[0] = 0.5 * width * (fa + fb)
    for level in range(1, k + 1):
        n_new = 2 ** (level - 1)
        h = width / (2**level)
        # Midpoints of the previous level's panels.
        mids = a + h * (2.0 * np.arange(n_new) + 1.0)
        fm = np.asarray(f(mids), dtype=np.float64)
        ladder[level] = 0.5 * ladder[level - 1] + h * float(np.sum(fm))
    return ladder


def romberg_table(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    k: int,
) -> np.ndarray:
    """Full Romberg tableau ``R`` with ``R[i, m] = T_m^(i-m)`` as in Eq. (3).

    Returns a lower-triangular ``(k+1, k+1)`` array: column 0 is the
    trapezoid ladder, and ``R[k, k]`` is the most-extrapolated value.
    """
    ladder = trapezoid_ladder(f, a, b, k)
    table = np.zeros((k + 1, k + 1), dtype=np.float64)
    table[:, 0] = ladder
    for m in range(1, k + 1):
        factor = 4.0**m
        table[m:, m] = (factor * table[m:, m - 1] - table[m - 1 : -1, m - 1]) / (
            factor - 1.0
        )
    return table


def romberg(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    k: int = 7,
) -> IntegrationResult:
    """Romberg-integrate ``f`` over ``[a, b]`` with ``k`` dichotomy levels.

    The paper sweeps ``k`` in {7, 9, 11, 13} to scale single-task cost; the
    evaluation count is 2^k + 1.
    """
    if a == b:
        return IntegrationResult(value=0.0, abserr=0.0, neval=0)
    table = romberg_table(f, a, b, k)
    value = float(table[k, k])
    if k == 0:
        abserr = abs(value)
    else:
        abserr = abs(table[k, k] - table[k, k - 1])
    return IntegrationResult(value=value, abserr=abserr, neval=2**k + 1)


def _eval_pair(
    f: Callable[[np.ndarray], np.ndarray], a: float, b: float
) -> tuple[float, float]:
    ends = np.asarray(f(np.array([a, b], dtype=np.float64)), dtype=np.float64)
    if ends.shape != (2,):
        raise ValueError("integrand must be vectorized (array in, array out)")
    return float(ends[0]), float(ends[1])
