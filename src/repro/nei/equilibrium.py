"""Equilibrium start states and relaxation diagnostics.

NEI evolutions start from some ionization state — commonly the CIE
equilibrium at a pre-shock temperature — and relax toward the equilibrium
of the *current* temperature.  The equilibrium vector is the null space of
the NEI rate matrix (A f = 0 with sum f = 1), which must agree with the
detailed-balance construction used by the spectral side; tests pin the
two against each other.
"""

from __future__ import annotations

import numpy as np

from repro.nei.odes import nei_matrix
from repro.physics.ionbalance import cie_fractions

__all__ = ["equilibrium_state", "relaxation_time_scale"]


def equilibrium_state(
    z: int, temperature_k: float, ne_cm3: float = 1.0, via: str = "balance"
) -> np.ndarray:
    """Equilibrium ion fractions of element ``z`` at temperature T.

    ``via='balance'`` uses the detailed-balance ladder (fast, shared with
    the spectral code); ``via='nullspace'`` solves A f = 0 directly from
    the NEI matrix — the two agree because the NEI matrix is built from
    the same rates.
    """
    if via == "balance":
        return cie_fractions(z, temperature_k)
    if via == "nullspace":
        a = nei_matrix(z, temperature_k, ne_cm3)
        # Solve A f = 0 with the normalization sum(f) = 1 as an augmented
        # least-squares system.  Rates span many decades, so rows are
        # equilibrated first; a raw SVD null vector would be unreliable
        # when frozen charge states contribute near-zero singular values.
        row_scale = np.abs(a).max(axis=1)
        row_scale[row_scale == 0.0] = 1.0
        a_scaled = a / row_scale[:, None]
        aug = np.vstack([a_scaled, np.ones((1, a.shape[0]))])
        rhs = np.zeros(a.shape[0] + 1)
        rhs[-1] = 1.0
        f, *_ = np.linalg.lstsq(aug, rhs, rcond=None)
        f = np.clip(f, 0.0, None)
        total = f.sum()
        if total <= 0.0:
            raise RuntimeError(
                f"degenerate null space for Z={z} at T={temperature_k}"
            )
        return f / total
    raise ValueError(f"unknown method {via!r}")


def relaxation_time_scale(z: int, temperature_k: float, ne_cm3: float) -> float:
    """Slowest *dynamically relevant* relaxation time, in seconds.

    1 / min|Re lambda| over eigenvalues within twelve decades of the
    fastest one.  The cutoff matters: charge states that are effectively
    frozen at the given temperature contribute eigenvalues arbitrarily
    close to zero (beyond the exact conservation zero), which would
    otherwise report astronomically long — and physically meaningless —
    relaxation times.
    """
    a = nei_matrix(z, temperature_k, ne_cm3)
    eigs = np.linalg.eigvals(a)
    re = np.abs(eigs.real)
    fastest = re.max() if re.size else 0.0
    if fastest <= 0.0:
        return np.inf
    nz = re[re > 1e-12 * fastest]
    return float(1.0 / nz.min())
