"""The hybrid NEI workload (Table II).

The paper's adaptability test: one million grid points, 1000 timesteps
each, "every ten time-dependent calculations are packed into one task for
reducing the frequency of data copy between host and device", maximum
queue length 8, 24 MPI ranks, 1-4 GPUs; speedups are quoted against the
pure-MPI 24-core run.

Cost mapping: the work unit of an NEI task is one *timestep of one grid
point* (a dozen element systems advanced once).  On the GPU a fixed-step
implicit kernel spends ``gpu_units_per_step`` evaluation units per step;
the CPU's adaptive LSODA-style solver spends ``cpu_units_per_step``.  The
defaults put one 10-point task at ~30 ms of GPU service and ~2 s of CPU
time — the same ~65x device advantage as the spectral tasks, which is
what Table II's near-linear GPU scaling requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec

__all__ = ["NEIWorkloadSpec", "build_nei_tasks", "attach_real_execution"]


@dataclass(frozen=True)
class NEIWorkloadSpec:
    """Scale and cost parameters of one NEI run.

    ``n_grid_points`` defaults to a bench-friendly 24,000 (the paper's
    10^6 scales every makespan by ~42x without changing any speedup —
    the quantities Table II reports are ratios).
    """

    n_grid_points: int = 24_000
    timesteps: int = 1000
    points_per_task: int = 10  # the paper's packing
    n_elements: int = 12  # "about a dozen of ODE groups" per point
    gpu_units_per_step: int = 12500
    cpu_units_per_step: int = 3600
    #: Host-side prep of one NEI task expressed in equivalent "levels"
    #: (reuses the spectral prep pricing; one pack of ten points needs
    #: roughly one ion-task's worth of marshalling).
    prep_levels: int = 8

    def __post_init__(self) -> None:
        if self.n_grid_points < 1 or self.timesteps < 1:
            raise ValueError("workload must be non-empty")
        if self.points_per_task < 1:
            raise ValueError("points_per_task must be >= 1")
        if self.n_grid_points % self.points_per_task != 0:
            raise ValueError(
                "n_grid_points must be a multiple of points_per_task"
            )

    @property
    def n_tasks(self) -> int:
        return self.n_grid_points // self.points_per_task

    @property
    def steps_per_task(self) -> int:
        return self.points_per_task * self.timesteps


def build_nei_tasks(
    spec: NEIWorkloadSpec,
    n_partitions: int = 24,
    gpu_execute_factory: Optional[Callable[[int], Callable[[], object]]] = None,
    cpu_execute_factory: Optional[Callable[[int], Callable[[], object]]] = None,
) -> list[Task]:
    """Materialize the NEI task list.

    Tasks are spread over ``n_partitions`` pseudo-points so the hybrid
    runner's equal-subspace partition gives every rank the same share
    (the NEI parameter space has no 24-point structure to reuse).
    """
    tasks: list[Task] = []
    n_tasks = spec.n_tasks
    for tid in range(n_tasks):
        gpu_exec = gpu_execute_factory(tid) if gpu_execute_factory else None
        cpu_exec = cpu_execute_factory(tid) if cpu_execute_factory else None
        tasks.append(
            Task(
                task_id=tid,
                kind=TaskKind.NEI_CHUNK,
                kernel=KernelSpec(
                    n_integrals=spec.steps_per_task,
                    evals_per_integral=spec.gpu_units_per_step,
                    bytes_in=spec.points_per_task * spec.n_elements * 16 * 8,
                    bytes_out=spec.points_per_task * spec.n_elements * 16 * 8,
                    execute=gpu_exec,
                    label=f"nei{tid}",
                ),
                point_index=tid % n_partitions,
                n_levels=spec.prep_levels,
                cpu_evals_per_integral=spec.cpu_units_per_step,
                cpu_execute=cpu_exec,
                label=f"nei{tid}",
            )
        )
    return tasks


def attach_real_execution(
    tasks: list[Task],
    spec: NEIWorkloadSpec,
    z: int = 8,
    ne_cm3: float = 1.0e10,
    t_initial_k: float = 1.0e4,
    t_final_k: float = 1.0e6,
    dt_s: float | None = None,
) -> dict[int, "object"]:
    """Attach real NEI numerics to an existing task list, in place.

    The GPU path advances each task's pack of grid points with the
    fixed-step :class:`~repro.nei.propagator.EigenPropagator` (the shape a
    CUDA kernel wants: one decomposition, many states, fixed steps); the
    CPU fallback runs the adaptive
    :class:`~repro.nei.solvers.AutoSwitchSolver` per point.  Both paths
    return the pack's final ion-fraction states as an array of shape
    ``(points_per_task, z + 1)``, so the hybrid runner's result
    accumulation can be checked against the matrix-exponential reference.

    Returns a context dict (system, propagator, y0, dt) for tests.
    """
    from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
    from repro.nei.odes import NEISystem
    from repro.nei.propagator import EigenPropagator
    from repro.nei.solvers import AutoSwitchSolver

    import numpy as np

    system = NEISystem(z=z, ne_cm3=ne_cm3, temperature_k=t_final_k)
    y0 = equilibrium_state(z, t_initial_k)
    tau = relaxation_time_scale(z, t_final_k, ne_cm3)
    if dt_s is None:
        dt_s = 2.0 * tau / spec.timesteps
    propagator = EigenPropagator.build(system)

    def gpu_execute(task_id: int):
        def run() -> np.ndarray:
            states = np.tile(y0, (spec.points_per_task, 1))
            traj = propagator.propagate_many(states, dt_s, spec.timesteps)
            return traj[-1]

        return run

    def cpu_execute(task_id: int):
        def run() -> np.ndarray:
            solver = AutoSwitchSolver(rtol=1e-8, atol=1e-12)
            res = solver.solve(
                system.rhs, system.jacobian, y0,
                (0.0, dt_s * spec.timesteps), save_every=10**9,
            )
            return np.tile(res.y_final, (spec.points_per_task, 1))

        return run

    from dataclasses import replace as dc_replace

    for task in tasks:
        task.kernel = dc_replace(task.kernel, execute=gpu_execute(task.task_id))
        task.cpu_execute = cpu_execute(task.task_id)
    return {
        "system": system,
        "propagator": propagator,
        "y0": y0,
        "dt_s": dt_s,
        "tau": tau,
    }
