"""Eigendecomposition propagator for constant-condition NEI.

For fixed (T, n_e) the NEI system y' = A y has the closed-form solution
y(t) = V exp(D t) V^-1 y0.  Diagonalizing once amortizes over arbitrarily
many evaluation times and initial states — exactly the access pattern of
a GPU NEI kernel evolving ten packed grid points with shared conditions.
This is the fast exact path; the time-stepping solvers in
:mod:`repro.nei.solvers` remain necessary the moment T varies along the
track.

Numerical care: rate matrices are defective-adjacent when charge states
freeze out (near-repeated eigenvalues), so the propagator validates its
own reconstruction error at build time and refuses silently inaccurate
decompositions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nei.odes import NEISystem

__all__ = ["EigenPropagator"]


@dataclass
class EigenPropagator:
    """Precomputed spectral decomposition of one NEI rate matrix."""

    eigenvalues: np.ndarray  # complex, shape (dim,)
    modes: np.ndarray  # V, shape (dim, dim)
    modes_inv: np.ndarray  # V^-1
    reconstruction_error: float

    @classmethod
    def build(cls, system: NEISystem, max_condition: float = 1.0e12) -> "EigenPropagator":
        """Diagonalize the system's (constant) rate matrix.

        Raises ``ValueError`` when the eigenbasis is too ill-conditioned
        to trust (near-defective matrix) — callers should fall back to a
        time stepper in that case.
        """
        if system.temperature_profile is not None:
            raise ValueError(
                "eigen propagation requires constant conditions; this "
                "system has a temperature profile"
            )
        a = system.matrix()
        eigenvalues, modes = np.linalg.eig(a)
        cond = np.linalg.cond(modes)
        if not np.isfinite(cond) or cond > max_condition:
            raise ValueError(
                f"eigenbasis condition number {cond:.2e} exceeds "
                f"{max_condition:.0e}; matrix is near-defective"
            )
        modes_inv = np.linalg.inv(modes)
        recon = float(
            np.abs(modes @ np.diag(eigenvalues) @ modes_inv - a).max()
        )
        scale = max(float(np.abs(a).max()), 1e-300)
        if recon > 1e-8 * scale:
            raise ValueError(
                f"eigendecomposition reconstruction error {recon:.2e} "
                "too large"
            )
        return cls(
            eigenvalues=eigenvalues,
            modes=modes,
            modes_inv=modes_inv,
            reconstruction_error=recon,
        )

    @property
    def dim(self) -> int:
        return int(self.eigenvalues.size)

    def propagate(self, y0: np.ndarray, times: np.ndarray) -> np.ndarray:
        """y(t) for every t in ``times``; shape (len(times), dim)."""
        y0 = np.asarray(y0, dtype=np.float64)
        if y0.shape != (self.dim,):
            raise ValueError(f"state must have shape ({self.dim},)")
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        coeffs = self.modes_inv @ y0  # modal amplitudes
        # exp(lambda_i t_j): (n_times, dim)
        phases = np.exp(np.outer(times, self.eigenvalues))
        out = (phases * coeffs[None, :]) @ self.modes.T
        return np.real(out)

    def propagate_many(
        self, states: np.ndarray, dt: float, n_steps: int
    ) -> np.ndarray:
        """Advance a batch of states by ``n_steps`` equal steps of ``dt``.

        The GPU-kernel access pattern: shape (n_states, dim) in, a
        trajectory (n_steps + 1, n_states, dim) out, all from one matrix
        power via modal phases.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2 or states.shape[1] != self.dim:
            raise ValueError(f"states must have shape (n, {self.dim})")
        coeffs = states @ self.modes_inv.T  # (n_states, dim) modal
        step_phase = np.exp(self.eigenvalues * dt)  # (dim,)
        out = np.empty((n_steps + 1, states.shape[0], self.dim))
        current = coeffs.astype(complex)
        out[0] = states
        for step in range(1, n_steps + 1):
            current = current * step_phase[None, :]
            out[step] = np.real(current @ self.modes.T)
        return out
