"""Non-Equilibrium Ionization — the paper's adaptability study (Table II).

Eq. (4) is, per element, a stiff tridiagonal linear ODE system in the ion
number densities, with coefficients set by the temperature/density history
of the tracer.  This package provides:

- :mod:`repro.nei.odes` — the NEI system (matrix, RHS, Jacobian, exact
  matrix-exponential reference for constant conditions);
- :mod:`repro.nei.solvers` — an LSODA-style solver: Adams-Bashforth-
  Moulton for non-stiff stretches, BDF with Newton for stiff ones,
  automatic switching between them;
- :mod:`repro.nei.equilibrium` — CIE start states and relaxation checks;
- :mod:`repro.nei.runner` — the hybrid NEI workload: ten evolutions
  packed per task (the paper's packing), priced for the event simulation
  and optionally executing real solves.
"""

from repro.nei.odes import NEISystem, nei_matrix
from repro.nei.solvers import (
    AutoSwitchSolver,
    ODESolveResult,
    SolverStats,
    backward_euler,
    exact_linear_solution,
)
from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks

__all__ = [
    "NEISystem",
    "nei_matrix",
    "AutoSwitchSolver",
    "ODESolveResult",
    "SolverStats",
    "backward_euler",
    "exact_linear_solution",
    "equilibrium_state",
    "relaxation_time_scale",
    "NEIWorkloadSpec",
    "build_nei_tasks",
]
