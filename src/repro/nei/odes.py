"""The NEI ODE system of Eq. (4).

For one element Z the ion fractions n_i (charge i = 0..Z) obey

    dn_i/dt = N_e [ n_{i+1} alpha_{i+1} + n_{i-1} S_{i-1}
                    - n_i (alpha_i + S_i) ]

with alpha_i the recombination rate of charge i (i -> i-1, alpha_0 = 0)
and S_i the ionization rate (i -> i+1, S_Z = 0).  For fixed temperature
and density this is a *linear* constant-coefficient system y' = A y whose
columns sum to zero (particle conservation), so an exact solution exists
via the matrix exponential — the reference our LSODA-style solver is
validated against.

Stiffness: rate coefficients span many decades across a charge ladder, so
eigenvalues of A do too; that spread (not the system size) is what makes
NEI expensive, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.atomic.rates import ionization_rate, recombination_rate

__all__ = ["nei_matrix", "NEISystem"]


def nei_matrix(z: int, temperature_k: float, ne_cm3: float) -> np.ndarray:
    """The (Z+1)x(Z+1) rate matrix A of y' = A y at fixed conditions."""
    if z < 1:
        raise ValueError("z must be >= 1")
    if temperature_k <= 0.0 or ne_cm3 < 0.0:
        raise ValueError("need positive temperature, non-negative density")
    t = np.array([temperature_k])
    s = np.zeros(z + 1)  # S_i: ionization out of charge i (S_Z = 0)
    a = np.zeros(z + 1)  # alpha_i: recombination out of charge i (alpha_0 = 0)
    for i in range(z):
        s[i] = float(ionization_rate(z, i, t)[0])
    for i in range(1, z + 1):
        a[i] = float(recombination_rate(z, i, t)[0])

    mat = np.zeros((z + 1, z + 1))
    for i in range(z + 1):
        mat[i, i] = -(a[i] + s[i])
        if i + 1 <= z:
            mat[i, i + 1] = a[i + 1]
        if i - 1 >= 0:
            mat[i, i - 1] = s[i - 1]
    return ne_cm3 * mat


@dataclass
class NEISystem:
    """One element's NEI evolution problem.

    ``temperature_profile`` (optional) makes the coefficients time
    dependent — the system stays linear in y, but A = A(T(t)) must be
    re-evaluated, which is the paper's point (2): "alpha and S ... need to
    be computed in real time".
    """

    z: int
    ne_cm3: float
    temperature_k: float
    temperature_profile: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        self._cached_t: Optional[float] = None
        self._cached_matrix: Optional[np.ndarray] = None
        self.n_matrix_builds = 0

    @property
    def dim(self) -> int:
        return self.z + 1

    def temperature_at(self, t: float) -> float:
        if self.temperature_profile is None:
            return self.temperature_k
        temp = float(self.temperature_profile(t))
        if temp <= 0.0:
            raise ValueError(f"temperature profile returned {temp} at t={t}")
        return temp

    def matrix(self, t: float = 0.0) -> np.ndarray:
        """A(t); cached per distinct evaluation time/temperature."""
        temp = self.temperature_at(t)
        if self._cached_t != temp:
            self._cached_matrix = nei_matrix(self.z, temp, self.ne_cm3)
            self._cached_t = temp
            self.n_matrix_builds += 1
        assert self._cached_matrix is not None
        return self._cached_matrix

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        """dy/dt = A(t) y."""
        return self.matrix(t) @ y

    def jacobian(self, t: float, y: np.ndarray) -> np.ndarray:
        """The Jacobian is A itself (the system is linear in y)."""
        return self.matrix(t)

    def conservation_defect(self, y: np.ndarray) -> float:
        """|sum(y) - 1| for a fraction vector (should stay ~0)."""
        return abs(float(np.sum(y)) - 1.0)

    def stiffness_ratio(self, t: float = 0.0) -> float:
        """max|Re lambda| / min|Re lambda| over nonzero eigenvalues."""
        eigs = np.linalg.eigvals(self.matrix(t))
        re = np.abs(eigs.real)
        nz = re[re > 1e-30]
        if nz.size < 2:
            return 1.0
        return float(nz.max() / nz.min())
