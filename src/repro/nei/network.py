"""General first-order reaction networks — the paper's future work.

The conclusion: "Our ongoing work will be focused on ... enhancing the
adaptability of the approach to other more complex astrophysical
applications such as solving ionization equations and nucleosynthesis
reactive network."  The NEI system of Eq. (4) is a *chain* (tridiagonal);
nucleosynthesis-style networks are sparse but not banded.  This module
generalizes the substrate:

- :class:`ReactionNetwork`: species + first-order channels
  (``source -> product`` at rate k), assembled into the generator matrix
  of y' = A y with exact per-column conservation;
- :func:`alpha_chain_network`: a synthetic alpha-capture-like chain with
  branches and back-channels (photodisintegration), producing the sparse,
  stiff structure of real nucleosynthesis networks;
- the same solvers (:mod:`repro.nei.solvers`) apply unchanged — which is
  precisely the adaptability claim under test in the network benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Reaction", "ReactionNetwork", "alpha_chain_network"]


@dataclass(frozen=True)
class Reaction:
    """One first-order channel: ``source -> product`` at rate ``rate``."""

    source: str
    product: str
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise ValueError("rates must be non-negative")
        if self.source == self.product:
            raise ValueError("self-loops are not reactions")


@dataclass
class ReactionNetwork:
    """A set of species coupled by first-order reactions."""

    species: list[str]
    reactions: list[Reaction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(self.species)) != len(self.species):
            raise ValueError("duplicate species names")
        self._index = {name: i for i, name in enumerate(self.species)}
        for r in self.reactions:
            self._check(r)

    def _check(self, r: Reaction) -> None:
        for name in (r.source, r.product):
            if name not in self._index:
                raise ValueError(f"unknown species {name!r}")

    @property
    def dim(self) -> int:
        return len(self.species)

    def add(self, source: str, product: str, rate: float) -> None:
        r = Reaction(source, product, rate)
        self._check(r)
        self.reactions.append(r)

    def matrix(self) -> np.ndarray:
        """The generator A of y' = A y; columns sum to zero exactly."""
        a = np.zeros((self.dim, self.dim))
        for r in self.reactions:
            i, j = self._index[r.product], self._index[r.source]
            a[i, j] += r.rate
            a[j, j] -= r.rate
        return a

    def rhs(self, t: float, y: np.ndarray) -> np.ndarray:
        return self.matrix() @ y

    def jacobian(self, t: float, y: np.ndarray) -> np.ndarray:
        return self.matrix()

    def stiffness_ratio(self) -> float:
        eigs = np.linalg.eigvals(self.matrix())
        re = np.abs(eigs.real)
        fastest = re.max() if re.size else 0.0
        if fastest <= 0.0:
            return 1.0
        nz = re[re > 1e-12 * fastest]
        return float(fastest / nz.min()) if nz.size else 1.0

    def sparsity(self) -> float:
        """Fraction of zero off-diagonal entries in the generator."""
        a = self.matrix()
        off = a[~np.eye(self.dim, dtype=bool)]
        return float(np.mean(off == 0.0))


def alpha_chain_network(
    n_stages: int = 13,
    base_rate: float = 1.0,
    rate_decades: float = 6.0,
    back_fraction: float = 0.01,
    branch_every: int = 3,
) -> ReactionNetwork:
    """A synthetic alpha-chain-like network (He -> C -> O -> ... -> Ni).

    Forward capture rates fall geometrically over ``rate_decades`` decades
    (heavier targets capture more slowly at fixed conditions) — the rate
    spread that makes real networks stiff; every ``branch_every``-th stage
    gets a side isotope with a slow leak back to the main chain, breaking
    the banded structure; ``back_fraction`` adds photodisintegration-like
    reverse channels.  Deterministic in its arguments.
    """
    if n_stages < 2:
        raise ValueError("need at least two stages")
    species = [f"S{i}" for i in range(n_stages)]
    branches = [f"S{i}b" for i in range(0, n_stages, branch_every) if i > 0]
    net = ReactionNetwork(species=species + branches)

    rates = base_rate * 10.0 ** (
        -rate_decades * np.arange(n_stages - 1) / max(1, n_stages - 2)
    )
    for i in range(n_stages - 1):
        net.add(f"S{i}", f"S{i + 1}", float(rates[i]))
        if back_fraction > 0.0:
            net.add(f"S{i + 1}", f"S{i}", float(rates[i] * back_fraction))
    for name in branches:
        main = name[:-1]
        stage = int(main[1:])
        k = float(rates[min(stage, n_stages - 2)])
        net.add(main, name, 0.3 * k)  # capture into the side isotope
        net.add(name, main, 0.05 * k)  # slow decay back
    return net
