"""An LSODA-style ODE solver: Adams <-> BDF with automatic switching.

The paper's NEI solver builds on LSODA; its defining feature is automatic
method switching between a non-stiff predictor-corrector (Adams) and a
stiff implicit method (BDF) driven by a stiffness heuristic.  This module
implements that structure from scratch:

- non-stiff mode: Adams-Bashforth 2 predictor + trapezoidal (AM2)
  corrector, local error from the predictor-corrector difference;
- stiff mode: BDF2 (backward Euler on the first step after a restart)
  with a modified-Newton solve; for the linear NEI systems Newton
  converges in one iteration per step;
- switching: the non-stiff stability bound is h <~ 2 / rho(J).  When the
  error-controlled step is persistently pinned at the stability bound,
  the problem is stiff there and we switch to BDF; when the BDF step
  grows well past the accuracy-limited Adams step we switch back.

Exactness reference: for constant-coefficient linear systems,
:func:`exact_linear_solution` evaluates expm(A t) y0 via the (scaled &
squared) Pade approximation in scipy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.linalg

__all__ = [
    "SolverStats",
    "ODESolveResult",
    "backward_euler",
    "AutoSwitchSolver",
    "exact_linear_solution",
]

RHS = Callable[[float, np.ndarray], np.ndarray]
JAC = Callable[[float, np.ndarray], np.ndarray]


@dataclass
class SolverStats:
    """Work counters (the LSODA-style diagnostics)."""

    n_steps: int = 0
    n_rhs: int = 0
    n_jac: int = 0
    n_lu: int = 0
    n_rejected: int = 0
    n_switches: int = 0
    stiff_steps: int = 0
    nonstiff_steps: int = 0


@dataclass
class ODESolveResult:
    """Trajectory plus diagnostics."""

    t: np.ndarray
    y: np.ndarray  # shape (len(t), dim)
    stats: SolverStats
    success: bool = True
    message: str = ""

    @property
    def y_final(self) -> np.ndarray:
        return self.y[-1]


def exact_linear_solution(
    a: np.ndarray, y0: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """y(t) = expm(A t) y0 for constant A; shape (len(times), dim)."""
    a = np.asarray(a, dtype=np.float64)
    y0 = np.asarray(y0, dtype=np.float64)
    out = np.empty((len(times), y0.size))
    for i, t in enumerate(times):
        out[i] = scipy.linalg.expm(a * float(t)) @ y0
    return out


def backward_euler(
    rhs: RHS,
    jac: JAC,
    y0: np.ndarray,
    t_span: tuple[float, float],
    n_steps: int,
) -> ODESolveResult:
    """Fixed-step backward Euler — the simple robust stiff baseline.

    This is also the method the *GPU* NEI kernel uses in the reproduction
    (fixed step, fixed work per step — the shape a CUDA kernel wants),
    with the LSODA-style solver as the CPU reference.
    """
    if n_steps < 1:
        raise ValueError("need at least one step")
    t0, t1 = t_span
    h = (t1 - t0) / n_steps
    stats = SolverStats()
    dim = len(y0)
    eye = np.eye(dim)
    ts = np.linspace(t0, t1, n_steps + 1)
    ys = np.empty((n_steps + 1, dim))
    ys[0] = y0
    y = np.asarray(y0, dtype=np.float64).copy()
    for i in range(n_steps):
        t_next = ts[i + 1]
        a = jac(t_next, y)
        stats.n_jac += 1
        # (I - h A) y_{n+1} = y_n  (exact for linear systems).
        y = np.linalg.solve(eye - h * a, y)
        stats.n_lu += 1
        stats.n_steps += 1
        stats.stiff_steps += 1
        ys[i + 1] = y
    return ODESolveResult(t=ts, y=ys, stats=stats)


class AutoSwitchSolver:
    """Adaptive Adams/BDF solver with automatic stiffness switching."""

    def __init__(
        self,
        rtol: float = 1.0e-6,
        atol: float = 1.0e-12,
        max_steps: int = 100_000,
        stiff_patience: int = 5,
    ) -> None:
        if rtol <= 0.0 or atol <= 0.0:
            raise ValueError("tolerances must be positive")
        self.rtol = rtol
        self.atol = atol
        self.max_steps = max_steps
        self.stiff_patience = stiff_patience

    # ------------------------------------------------------------------
    def solve(
        self,
        rhs: RHS,
        jac: JAC,
        y0: np.ndarray,
        t_span: tuple[float, float],
        save_every: int = 1,
    ) -> ODESolveResult:
        """Integrate from t_span[0] to t_span[1].

        ``save_every`` thins the stored trajectory (1 = keep every step).
        """
        t0, t1 = t_span
        if t1 <= t0:
            raise ValueError("t_span must be increasing")
        stats = SolverStats()
        y = np.asarray(y0, dtype=np.float64).copy()
        t = t0
        dim = y.size
        eye = np.eye(dim)

        ts = [t0]
        ys = [y.copy()]

        stiff = False
        pinned = 0  # consecutive steps pinned at the stability bound
        steps_in_mode = 0  # hysteresis: avoid switch thrash
        window: list[bool] = []  # recent accept/reject outcomes
        attempts = 0
        f_prev = rhs(t, y)
        stats.n_rhs += 1
        h = self._initial_step(rhs, jac, t, y, f_prev, t1 - t0, stats)
        y_prev, f_prev2 = None, None  # history for 2-step methods
        h_last: float | None = None  # last *accepted* step (variable BDF2)

        while (
            t < t1
            and stats.n_steps < self.max_steps
            and attempts < 10 * self.max_steps
        ):
            attempts += 1
            h = min(h, t1 - t)
            if stiff:
                y_new, err, ok = self._bdf_step(
                    rhs, jac, t, y, y_prev, h, h_last, eye, stats
                )
            else:
                y_new, f_new, err, ok = self._adams_step(
                    rhs, t, y, f_prev, f_prev2, h, h_last, stats
                )

            scale = self.atol + self.rtol * np.maximum(np.abs(y), np.abs(y_new))
            err_norm = float(np.sqrt(np.mean((err / scale) ** 2)))

            if err_norm <= 1.0 or not ok:
                # Accept.
                y_prev = y
                y = y_new
                t += h
                h_last = h
                stats.n_steps += 1
                steps_in_mode += 1
                if stiff:
                    stats.stiff_steps += 1
                    f_prev = None
                else:
                    stats.nonstiff_steps += 1
                    f_prev2, f_prev = f_prev, f_new
                if stats.n_steps % save_every == 0 or t >= t1:
                    ts.append(t)
                    ys.append(y.copy())
            else:
                stats.n_rejected += 1

            window.append(err_norm <= 1.0)
            if len(window) > 30:
                window.pop(0)

            # Step-size control (embedded-order 2 -> exponent 1/3) with a
            # safety factor and a deadband: growing h only when the error
            # leaves real headroom prevents the accept/reject hover that a
            # bare 0.9 * err^(-1/3) controller produces.
            factor = 0.8 * err_norm ** (-1.0 / 3.0) if err_norm > 0 else 2.0
            factor = min(2.0, max(0.2, factor))
            if 1.0 <= factor < 1.25:
                factor = 1.0
            h_new = h * factor

            if not stiff:
                h_stab = self._stability_limit(jac, t, y, stats)
                if h_new >= h_stab:
                    pinned += 1
                    h_new = min(h_new, h_stab)
                else:
                    pinned = 0
                # Two stiffness signatures (LSODA watches both): the step
                # pinned at the explicit stability bound, or a persistently
                # high rejection rate — explicit steps keep re-exciting
                # fast modes that an L-stable method would damp.
                thrashing = (
                    len(window) >= 20
                    and steps_in_mode >= 20
                    and sum(window) < 0.6 * len(window)
                )
                if pinned >= self.stiff_patience or thrashing:
                    stiff = True
                    stats.n_switches += 1
                    pinned = 0
                    steps_in_mode = 0
                    window.clear()
                    y_prev = None  # restart BDF from order 1
                    h_last = None
            elif steps_in_mode >= 3 * self.stiff_patience:
                # Switch back only after the BDF phase has settled
                # (hysteresis) and accuracy would hold Adams steps well
                # inside the stability region anyway.
                h_stab = self._stability_limit(jac, t, y, stats)
                if h_new < 0.02 * h_stab:
                    stiff = False
                    stats.n_switches += 1
                    steps_in_mode = 0
                    window.clear()
                    f_prev = rhs(t, y)
                    stats.n_rhs += 1
                    f_prev2 = None
            h = h_new

        success = t >= t1 * (1.0 - 1e-12)
        return ODESolveResult(
            t=np.array(ts),
            y=np.array(ys),
            stats=stats,
            success=success,
            message="" if success else f"max_steps reached at t={t}",
        )

    # ------------------------------------------------------------------
    def _initial_step(self, rhs, jac, t, y, f, span, stats) -> float:
        """Conservative first step from the Jacobian scale."""
        a = jac(t, y)
        stats.n_jac += 1
        rho = float(np.max(np.abs(np.linalg.eigvals(a)))) if a.size else 0.0
        if rho <= 0.0:
            return span * 1e-3
        return min(span * 1e-3, 0.1 / rho)

    def _stability_limit(self, jac, t, y, stats) -> float:
        """Explicit-method stability bound ~2 / rho(J)."""
        a = jac(t, y)
        stats.n_jac += 1
        rho = float(np.max(np.abs(np.linalg.eigvals(a)))) if a.size else 0.0
        if rho <= 0.0:
            return np.inf
        return 2.0 / rho

    def _adams_step(self, rhs, t, y, f_prev, f_prev2, h, h_last, stats):
        """Variable-step AB2 predictor + trapezoid corrector (PECE).

        The predictor must account for the previous step size: with
        r = h / h_last,

            y_pred = y + h [ (1 + r/2) f_n  -  (r/2) f_{n-1} ]

        (the textbook (3/2, -1/2) at r = 1).  Uniform coefficients after a
        step-size change corrupt the predictor at O(h^2); since the error
        estimate is the predictor-corrector difference, the controller
        would then reject perfectly good steps and limit-cycle.
        """
        if f_prev2 is None or h_last is None:
            # First step: forward Euler predictor.
            y_pred = y + h * f_prev
        else:
            r = h / h_last
            y_pred = y + h * ((1.0 + 0.5 * r) * f_prev - 0.5 * r * f_prev2)
        f_pred = rhs(t + h, y_pred)
        stats.n_rhs += 1
        y_corr = y + 0.5 * h * (f_prev + f_pred)
        f_new = rhs(t + h, y_corr)
        stats.n_rhs += 1
        err = (y_corr - y_pred) / 6.0  # Milne-style PC error estimate
        return y_corr, f_new, err, True

    def _bdf_step(self, rhs, jac, t, y, y_prev, h, h_last, eye, stats):
        """BDF1/BDF2 with a direct (one-iteration Newton) solve.

        For the linear NEI system the Newton iteration is exact after one
        solve; for mildly nonlinear systems the step doubles as a single
        modified-Newton iteration, which the error estimate then polices.
        """
        a = jac(t + h, y)
        stats.n_jac += 1
        # BDF1 (backward Euler) — also the error reference.
        y_be = np.linalg.solve(eye - h * a, y)
        stats.n_lu += 1
        if y_prev is None or h_last is None:
            # Order 1 restart: error from step doubling.
            y_half = np.linalg.solve(eye - 0.5 * h * a, y)
            y_be2 = np.linalg.solve(eye - 0.5 * h * a, y_half)
            stats.n_lu += 2
            err = y_be2 - y_be
            return y_be2, err, True
        # Variable-step BDF2 (the last accepted step was h_last, this one
        # is h; the uniform-step coefficients are wrong as soon as the
        # controller changes h and their residual does not vanish as
        # h -> 0):  with r = h / h_last,
        #   y_{n+1} = (1+r)^2/(1+2r) y_n - r^2/(1+2r) y_{n-1}
        #             + h (1+r)/(1+2r) f(t+h, y_{n+1}).
        r = h / h_last
        c0 = (1.0 + r) ** 2 / (1.0 + 2.0 * r)
        c1 = r**2 / (1.0 + 2.0 * r)
        beta = (1.0 + r) / (1.0 + 2.0 * r)
        rhs_vec = c0 * y - c1 * y_prev
        y_bdf2 = np.linalg.solve(eye - beta * h * a, rhs_vec)
        stats.n_lu += 1
        err = (y_bdf2 - y_be) / 3.0
        return y_bdf2, err, True
