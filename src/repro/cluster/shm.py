"""Algorithm 1 on *live* processes and real shared memory.

The event simulation answers the paper's quantitative questions; this
module answers a different one — does the scheduler actually work as a
concurrent program?  It runs N worker processes and one server process
per "GPU" (executing the vectorized batch kernel, the same role the CUDA
device plays), with the load/history arrays in ``multiprocessing``
shared memory and the SCHE-ALLOC scan + increment under a lock (the
paper's atomic ops).

The integrand family is fixed (the Kramers-collapsed RRC form
``scale * exp(-(x - edge) / kt)`` above its edge) because closures do not
pickle; it is the same integrand the spectral code integrates.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.quadrature.batch import batch_simpson
from repro.quadrature.qags import qags

__all__ = ["LiveTask", "LiveRunResult", "LiveHybridRunner", "rrc_like_integrand"]

NO_DEVICE = -1


def rrc_like_integrand(edge: float, kt: float, scale: float):
    """The Kramers-collapsed RRC integrand as a picklable closure factory."""

    def f(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.where(x >= edge, scale * np.exp(-(x - edge) / kt), 0.0)

    return f


@dataclass(frozen=True)
class LiveTask:
    """One live integration task: many bins of one RRC-like integrand."""

    task_id: int
    lo: np.ndarray
    hi: np.ndarray
    edge: float = 0.5
    kt: float = 1.0
    scale: float = 1.0
    pieces: int = 64

    def gpu_compute(self) -> np.ndarray:
        """The device-side computation: one vectorized batch call."""
        f = rrc_like_integrand(self.edge, self.kt, self.scale)
        lo = np.maximum(self.lo, self.edge)
        hi = np.maximum(self.hi, lo)
        return batch_simpson(f, lo, hi, pieces=self.pieces)

    def cpu_compute(self) -> np.ndarray:
        """The fallback: scalar adaptive QAGS per bin (slow on purpose)."""
        f = rrc_like_integrand(self.edge, self.kt, self.scale)
        out = np.zeros(len(self.lo))
        for i, (a, b) in enumerate(zip(self.lo, self.hi)):
            a = max(float(a), self.edge)
            if b <= a:
                continue
            out[i] = qags(f, a, float(b), epsabs=1e-30, epsrel=1e-10).value
        return out


@dataclass
class LiveRunResult:
    """Outcome of one live run."""

    wall_s: float
    gpu_tasks: int
    cpu_tasks: int
    totals: dict[int, float] = field(default_factory=dict)  # task_id -> sum

    @property
    def gpu_ratio(self) -> float:
        total = self.gpu_tasks + self.cpu_tasks
        return self.gpu_tasks / total if total else 0.0


def _sche_alloc(load, history, lock, max_len: int) -> int:
    """SCHE-ALLOC over real shared arrays (scan under the lock)."""
    with lock:
        best, l_min, h_min = 0, load[0], history[0]
        for d in range(1, len(load)):
            if load[d] < l_min or (load[d] == l_min and history[d] < h_min):
                best, l_min, h_min = d, load[d], history[d]
        if l_min >= max_len:
            return NO_DEVICE
        load[best] += 1
        history[best] += 1
        return best


def _sche_free(load, lock, device: int) -> None:
    with lock:
        load[device] -= 1


def _gpu_server(device_idx, task_queue, reply_queues, counters, counter_lock):
    """One simulated device: executes batch kernels FIFO until sentinel."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        worker_rank, task = item
        result = task.gpu_compute()
        with counter_lock:
            counters[0] += 1  # gpu task count
        reply_queues[worker_rank].put((task.task_id, float(result.sum())))


def _worker(
    rank,
    tasks,
    load,
    history,
    lock,
    max_len,
    device_queues,
    reply_queue,
    counters,
    counter_lock,
    results_queue,
):
    """One MPI-rank equivalent: Algorithm 1's per-process loop."""
    totals: dict[int, float] = {}
    for task in tasks:
        device = _sche_alloc(load, history, lock, max_len)
        if device != NO_DEVICE:
            device_queues[device].put((rank, task))
            task_id, total = reply_queue.get()  # synchronous wait
            _sche_free(load, lock, device)
            totals[task_id] = total
        else:
            result = task.cpu_compute()
            with counter_lock:
                counters[1] += 1  # cpu task count
            totals[task.task_id] = float(result.sum())
    results_queue.put(totals)


class LiveHybridRunner:
    """Run LiveTasks through real processes + shared-memory scheduling."""

    def __init__(
        self,
        n_workers: int = 4,
        n_devices: int = 1,
        max_queue_length: int = 4,
    ) -> None:
        if n_workers < 1 or n_devices < 1:
            raise ValueError("need at least one worker and one device")
        if max_queue_length < 1:
            raise ValueError("maximum queue length must be >= 1")
        self.n_workers = n_workers
        self.n_devices = n_devices
        self.max_queue_length = max_queue_length

    def run(self, tasks: list[LiveTask], timeout_s: float = 120.0) -> LiveRunResult:
        """Execute; tasks are dealt round-robin to workers."""
        ctx = mp.get_context("fork" if os.name == "posix" else "spawn")
        load = ctx.Array("q", self.n_devices, lock=False)
        history = ctx.Array("q", self.n_devices, lock=False)
        lock = ctx.Lock()
        counters = ctx.Array("q", 2, lock=False)  # [gpu, cpu]
        counter_lock = ctx.Lock()
        device_queues = [ctx.Queue() for _ in range(self.n_devices)]
        reply_queues = [ctx.Queue() for _ in range(self.n_workers)]
        results_queue = ctx.Queue()

        servers = [
            ctx.Process(
                target=_gpu_server,
                args=(d, device_queues[d], reply_queues, counters, counter_lock),
                daemon=True,
            )
            for d in range(self.n_devices)
        ]
        partitions: list[list[LiveTask]] = [[] for _ in range(self.n_workers)]
        for i, task in enumerate(tasks):
            partitions[i % self.n_workers].append(task)
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    r,
                    partitions[r],
                    load,
                    history,
                    lock,
                    self.max_queue_length,
                    device_queues,
                    reply_queues[r],
                    counters,
                    counter_lock,
                    results_queue,
                ),
                daemon=True,
            )
            for r in range(self.n_workers)
        ]

        t0 = time.perf_counter()
        for p in servers + workers:
            p.start()
        totals: dict[int, float] = {}
        try:
            for _ in range(self.n_workers):
                totals.update(results_queue.get(timeout=timeout_s))
        finally:
            for q in device_queues:
                q.put(None)  # stop sentinels
            deadline = time.time() + 10.0
            for p in servers + workers:
                p.join(timeout=max(0.1, deadline - time.time()))
            for p in servers + workers:
                if p.is_alive():
                    p.terminate()
        wall = time.perf_counter() - t0
        return LiveRunResult(
            wall_s=wall,
            gpu_tasks=int(counters[0]),
            cpu_tasks=int(counters[1]),
            totals=totals,
        )
