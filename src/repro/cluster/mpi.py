"""Miniature message-passing over the event engine.

The paper wraps APEC in MPI: the main program reads inputs, spawns ranks,
scatters sub-spaces of the parameter grid, and gathers results.  This
module provides just those collectives — plus point-to-point send/recv —
with mpi4py-like semantics, implemented on :class:`SimClock` signals so
ranks are ordinary simulation processes.

Message latency is configurable (default zero: intra-node MPI costs are
negligible next to task times; the model exists so the ablation benches
can charge a per-message cost to a client-server scheduler).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.cluster.simclock import Signal, SimClock

__all__ = ["MiniComm"]


@dataclass
class _Mailbox:
    messages: deque = field(default_factory=deque)
    waiting: Optional[Signal] = None


class MiniComm:
    """A communicator over ``size`` simulated ranks.

    The communication methods are generators: ranks must ``yield from``
    them, exactly like blocking MPI calls.
    """

    def __init__(self, clock: SimClock, size: int, latency: float = 0.0) -> None:
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        if latency < 0.0:
            raise ValueError("latency must be non-negative")
        self.clock = clock
        self.size = size
        self.latency = latency
        # mailboxes[dst][src_tagged_key] would allow tags; keep (dst, src).
        self._boxes: dict[tuple[int, int], _Mailbox] = {
            (dst, src): _Mailbox() for dst in range(size) for src in range(size)
        }
        self._barrier_waiting: list[Signal] = []
        self._barrier_count = 0

    def _box(self, dst: int, src: int) -> _Mailbox:
        try:
            return self._boxes[(dst, src)]
        except KeyError:
            raise ValueError(
                f"rank out of range: dst={dst} src={src} size={self.size}"
            ) from None

    def send(self, payload: object, dest: int, source: int) -> Generator:
        """Non-buffered-cost send; completes after the configured latency."""
        box = self._box(dest, source)
        if self.latency:
            yield self.latency
        box.messages.append(payload)
        if box.waiting is not None:
            sig, box.waiting = box.waiting, None
            sig.fire(self.clock)

    def recv(self, source: int, dest: int) -> Generator:
        """Blocking receive from ``source``; returns the payload."""
        box = self._box(dest, source)
        while not box.messages:
            if box.waiting is None:
                box.waiting = self.clock.signal(f"recv{dest}<-{source}")
            yield box.waiting
        return box.messages.popleft()

    def bcast(self, payload: object, root: int, rank: int) -> Generator:
        """Broadcast from ``root``; every rank gets the payload."""
        if rank == root:
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(payload, dst, root)
            return payload
        return (yield from self.recv(root, rank))

    def scatter(self, chunks: Optional[list], root: int, rank: int) -> Generator:
        """Scatter one chunk per rank from ``root``."""
        if rank == root:
            if chunks is None or len(chunks) != self.size:
                raise ValueError(
                    f"root must pass exactly {self.size} chunks"
                )
            for dst in range(self.size):
                if dst != root:
                    yield from self.send(chunks[dst], dst, root)
            return chunks[root]
        return (yield from self.recv(root, rank))

    def gather(self, payload: object, root: int, rank: int) -> Generator:
        """Gather payloads to ``root``; root returns the ordered list."""
        if rank == root:
            out: list = [None] * self.size
            out[root] = payload
            for src in range(self.size):
                if src != root:
                    out[src] = yield from self.recv(src, root)
            return out
        yield from self.send(payload, root, rank)
        return None

    def barrier(self, rank: int) -> Generator:
        """All ranks block until everyone arrives."""
        self._barrier_count += 1
        if self._barrier_count == self.size:
            self._barrier_count = 0
            waiting, self._barrier_waiting = self._barrier_waiting, []
            for sig in waiting:
                sig.fire(self.clock)
            return
        sig = self.clock.signal(f"barrier.rank{rank}")
        self._barrier_waiting.append(sig)
        yield sig
