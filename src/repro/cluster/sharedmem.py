"""The shared-memory segment of Algorithm 1.

The paper's scheduler keeps two integer arrays in POSIX shared memory —
the per-device *load* (active + waiting tasks) and the per-device *history
task count* — which MPI processes attach with ``shmat()`` and mutate with
atomic increments/decrements.

Inside the single-threaded event simulation, atomicity is trivially
guaranteed; the value of modelling it anyway is that the *same scheduler
code* runs unchanged against :class:`SharedArray` here and against a real
``multiprocessing`` shared array in :mod:`repro.cluster.shm` — the API is
the contract.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["SharedArray", "SharedSegment"]


class SharedArray:
    """An int64 array with the atomic operations Algorithm 1 relies on."""

    def __init__(self, size: int, name: str = "") -> None:
        if size < 1:
            raise ValueError("shared array needs at least one slot")
        self.name = name
        self._data = np.zeros(size, dtype=np.int64)

    def __len__(self) -> int:
        return self._data.size

    def __getitem__(self, i: int) -> int:
        return int(self._data[i])

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self._data)

    def snapshot(self) -> np.ndarray:
        """A point-in-time copy (what a racing reader could observe)."""
        return self._data.copy()

    def atomic_add(self, i: int, delta: int) -> int:
        """Atomically add ``delta`` to slot ``i``; returns the new value."""
        self._data[i] += delta
        return int(self._data[i])

    def atomic_cas(self, i: int, expected: int, new: int) -> bool:
        """Compare-and-swap; True when the swap happened."""
        if int(self._data[i]) == expected:
            self._data[i] = new
            return True
        return False

    def store(self, i: int, value: int) -> None:
        self._data[i] = value


class SharedSegment:
    """The full segment: one load array + one history array per node.

    Mirrors the paper's layout: "The shared memory contains two types of
    arrays, one is the load count of task queue on each device, and the
    other is the history task count of each device."

    The predictive tier adds three more arrays to the same segment:

    - ``backlog`` — per-device predicted backlog, in integer picosecond
      ticks (the sum of predicted costs of every admitted-but-unfreed
      task).  Integer ticks make occupy/steal/release exactly
      conserving: the same amount added at admission is moved by a steal
      and removed at release, so a drained device reads exactly zero.
    - ``steals`` — tasks this device pulled from another queue (thief
      counter); ``donations`` — tasks pulled *from* this device.

    Depth-only schedulers never touch them; they stay all-zero.
    """

    def __init__(self, n_devices: int) -> None:
        if n_devices < 0:
            raise ValueError("device count must be non-negative")
        self.n_devices = n_devices
        self.load = SharedArray(max(1, n_devices), name="load")
        self.history = SharedArray(max(1, n_devices), name="history")
        self.backlog = SharedArray(max(1, n_devices), name="backlog")
        self.steals = SharedArray(max(1, n_devices), name="steals")
        self.donations = SharedArray(max(1, n_devices), name="donations")

    def attach(self) -> tuple[SharedArray, SharedArray]:
        """The ``shmat()`` of Algorithm 1: hand out the mapped arrays."""
        return self.load, self.history

    def total_load(self) -> int:
        return sum(self.load) if self.n_devices else 0

    def total_backlog(self) -> int:
        """Summed predicted backlog ticks across devices (0 when drained)."""
        return sum(self.backlog) if self.n_devices else 0

    def total_steals(self) -> int:
        return sum(self.steals) if self.n_devices else 0

    def validate(self, max_queue_length: int) -> None:
        """Invariant check: loads within [0, max], histories monotone >= 0."""
        for d in range(self.n_devices):
            load = self.load[d]
            if load < 0 or load > max_queue_length:
                raise ValueError(
                    f"device {d}: load {load} outside [0, {max_queue_length}]"
                )
            if self.history[d] < 0:
                raise ValueError(f"device {d}: negative history count")
            if self.backlog[d] < 0:
                raise ValueError(f"device {d}: negative predicted backlog")
            if self.steals[d] < 0 or self.donations[d] < 0:
                raise ValueError(f"device {d}: negative steal counter")
        # Steal conservation: every steal has exactly one donation.
        if self.total_steals() != (
            sum(self.donations) if self.n_devices else 0
        ):
            raise ValueError("steal/donation counters out of balance")
