"""Deterministic discrete-event engine with generator processes.

A tiny SimPy-flavoured kernel, just large enough for the hybrid runner:

- :class:`SimClock` owns virtual time and the event heap;
- a *process* is a generator that yields either a float (sleep for that
  many virtual seconds), a :class:`Signal` (block until fired), or another
  :class:`ProcessHandle` (join);
- :class:`Signal` is a one-shot broadcast: every waiter resumes when it
  fires, and waits on an already-fired signal return immediately.

Determinism: events at equal times run in schedule order (a monotone
sequence number breaks ties), so a given workload always produces the
identical trace — the property that makes every figure reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, Optional, Union

__all__ = ["SimClock", "Signal", "Interrupt", "ProcessHandle"]


class Interrupt(Exception):
    """Thrown into a process that is killed while waiting."""


@dataclass
class Signal:
    """One-shot event; processes yield it to block until :meth:`fire`.

    ``payload`` carries an arbitrary result to waiters (e.g. a GPU task's
    output array).
    """

    name: str = ""
    fired: bool = False
    payload: object = None
    _waiters: list["ProcessHandle"] = field(default_factory=list, repr=False)

    def fire(self, clock: "SimClock", payload: object = None) -> None:
        """Fire the signal, waking all waiters at the current time."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        self.fired = True
        self.payload = payload
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            clock._schedule(0.0, proc._step, payload)

    def add_callback(self, clock: "SimClock", fn: Callable[[object], None]) -> None:
        """Run ``fn(payload)`` when the signal fires (or now, if it has)."""
        if self.fired:
            clock._schedule(0.0, lambda _arg: fn(self.payload), None)
        else:
            self._waiters.append(_FnWaiter(fn))


class _FnWaiter:
    """Adapter placing a plain callback in a signal's waiter list."""

    def __init__(self, fn: Callable[[object], None]) -> None:
        self._fn = fn

    def _step(self, payload: object = None) -> None:
        self._fn(payload)


Yieldable = Union[float, int, Signal, "ProcessHandle"]


class ProcessHandle:
    """A running generator process; yield it from another process to join."""

    def __init__(self, clock: "SimClock", gen: Generator, name: str) -> None:
        self._clock = clock
        self._gen = gen
        self.name = name
        self.done = Signal(name=f"{name}.done")
        self.alive = True
        self.result: object = None

    def kill(self) -> None:
        """Interrupt the process; it may catch :class:`Interrupt` to clean up."""
        if not self.alive:
            return
        try:
            self._gen.throw(Interrupt())
        except (StopIteration, Interrupt):
            pass
        self._finish(None)

    def _finish(self, result: object) -> None:
        if self.alive:
            self.alive = False
            self.result = result
            self.done.fire(self._clock, result)

    def _step(self, send_value: object = None) -> None:
        if not self.alive:
            return
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._dispatch(target)

    def _dispatch(self, target: Yieldable) -> None:
        clock = self._clock
        if isinstance(target, (float, int)):
            if target < 0:
                raise ValueError(
                    f"process {self.name!r} yielded negative delay {target}"
                )
            clock._schedule(float(target), self._step, None)
        elif isinstance(target, Signal):
            if target.fired:
                clock._schedule(0.0, self._step, target.payload)
            else:
                target._waiters.append(self)
        elif isinstance(target, ProcessHandle):
            self._dispatch(target.done)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported {target!r}; "
                "yield a delay, a Signal, or a ProcessHandle"
            )


class SimClock:
    """Virtual time plus the deterministic event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, object]] = []
        self._seq = 0
        self._processes: list[ProcessHandle] = []

    def _schedule(self, delay: float, fn: Callable, arg: object) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    def at(self, delay: float, fn: Callable[[], None]) -> None:
        """Run a plain callback ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._schedule(delay, lambda _arg: fn(), None)

    def spawn(self, gen: Generator, name: str = "proc") -> ProcessHandle:
        """Start a generator process immediately (first step at t = now)."""
        handle = ProcessHandle(self, gen, name)
        self._processes.append(handle)
        self._schedule(0.0, handle._step, None)
        return handle

    def signal(self, name: str = "") -> Signal:
        return Signal(name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains (or ``until`` is passed).

        Returns the final virtual time.  Raises ``RuntimeError`` if time
        would move backwards (a corrupted heap — should be impossible, but
        cheap to assert and invaluable when it is not).
        """
        while self._heap:
            t, _seq, fn, arg = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if t < self.now:
                raise RuntimeError(f"causality violation: {t} < {self.now}")
            self.now = t
            fn(arg)
        return self.now

    def run_all(self, procs: Iterable[Generator], names: Optional[list[str]] = None) -> float:
        """Spawn all generators and run to completion; returns makespan."""
        for i, gen in enumerate(procs):
            name = names[i] if names else f"proc{i}"
            self.spawn(gen, name=name)
        return self.run()
