"""Simulated MPI node: event engine, shared memory, message passing.

The paper runs 24 MPI processes on one physical node sharing 1-4 GPUs
through POSIX shared memory.  This package provides the deterministic
stand-ins:

- :mod:`repro.cluster.simclock` — a discrete-event engine with
  generator-based processes (the "MPI ranks" of the simulation);
- :mod:`repro.cluster.sharedmem` — the shared load/history counter arrays
  with atomic operations (the ``shmat`` segment of Algorithm 1);
- :mod:`repro.cluster.mpi` — a miniature message-passing layer (send /
  recv / bcast / scatter / gather) over the event engine;
- :mod:`repro.cluster.shm` — a *real* ``multiprocessing`` shared-memory
  runner demonstrating the same scheduler on live processes.
"""

from repro.cluster.simclock import SimClock, Signal, Interrupt, ProcessHandle
from repro.cluster.sharedmem import SharedSegment, SharedArray
from repro.cluster.mpi import MiniComm

__all__ = [
    "SimClock",
    "Signal",
    "Interrupt",
    "ProcessHandle",
    "SharedSegment",
    "SharedArray",
    "MiniComm",
]
