"""The spectral-computation service layer.

Everything between a client and the hybrid runner: typed requests with a
canonical content address (:mod:`repro.service.requests`), an LRU + TTL
spectrum cache (:mod:`repro.service.cache`), in-flight request
coalescing (:mod:`repro.service.coalesce`), the bounded admission broker
with priority lanes and backpressure (:mod:`repro.service.broker`),
service telemetry ledgers (:mod:`repro.service.telemetry`), and a
deterministic synthetic traffic generator (:mod:`repro.service.loadgen`).

The whole layer runs on the same deterministic :class:`SimClock` the
hybrid runner uses, so a traffic trace plays back identically run after
run — latency percentiles included.
"""

from repro.service.broker import ServiceConfig, SpectrumBroker, Ticket, run_trace
from repro.service.cache import CacheStats, SpectrumCache
from repro.service.coalesce import RequestCoalescer
from repro.service.loadgen import Arrival, TrafficSpec, generate_trace
from repro.service.requests import SpectrumRequest, compile_tasks
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "Arrival",
    "CacheStats",
    "RequestCoalescer",
    "ServiceConfig",
    "ServiceTelemetry",
    "SpectrumBroker",
    "SpectrumCache",
    "SpectrumRequest",
    "Ticket",
    "TrafficSpec",
    "compile_tasks",
    "generate_trace",
    "run_trace",
]
