"""The admission broker: bounded queue, priority lanes, worker pool.

Request lifecycle (the service half of Fig. 2's architecture):

1. :meth:`SpectrumBroker.submit` — cache lookup first (hit: the ticket
   completes immediately), then the coalescer (identical request already
   in flight: attach, no queue slot consumed), then admission into the
   bounded queue (full: reject with a retry-after hint — backpressure
   instead of unbounded buffering).
2. Service workers drain the queue — interactive lane strictly before
   survey — in batches of up to ``batch_max`` unique requests, lower
   each request to Ion tasks, and dispatch the batch through
   :meth:`repro.core.hybrid.HybridRunner.spawn_batch` on the *shared*
   clock (each worker models one hybrid node).
3. On batch completion the per-request spectra are cached, every
   subscriber ticket (leader + coalesced followers) completes, and the
   batch's hybrid ledger folds into the service telemetry.

Everything runs in virtual time on one :class:`SimClock`, so a given
trace and config reproduce the identical report, latencies included.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

import numpy as np

from repro.approx import (
    INTERP_METHODS,
    LatticeSpec,
    LatticeStats,
    LatticeStore,
    RequestEvaluator,
)
from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.cluster.simclock import Signal, SimClock
from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.obs.attribution import Attribution, AttributionResult
from repro.obs.attribution import CostModel as SpanCostModel
from repro.obs.bus import ServiceBus
from repro.obs.tracer import NULL_TRACER
from repro.obs.tsdb import NULL_TSDB
from repro.parallel.executor import BACKENDS, ExecutionBackend, get_backend
from repro.physics.plan import PLAN_CACHE
from repro.service.batching import BatchAssembler, MegabatchGroup
from repro.service.cache import SpectrumCache
from repro.service.coalesce import InFlight, RequestCoalescer
from repro.service.loadgen import Arrival
from repro.service.requests import (
    SpectrumRequest,
    compile_group_tasks,
    compile_tasks,
    family_spectra,
    group_member_weights,
    request_spectrum,
)
from repro.service.telemetry import ServiceTelemetry

__all__ = ["ServiceConfig", "SpectrumBroker", "Ticket", "run_trace"]

LANES = ("interactive", "survey")


def _default_hybrid() -> HybridConfig:
    """One service worker's hybrid node.

    Per-point I/O and ion-balance overhead is amortized by the resident
    service process (the 70 s figure prices a cold batch job), so the
    cost model zeroes it.
    """
    return HybridConfig(
        n_workers=4,
        n_gpus=1,
        max_queue_length=8,
        stagger_s=0.0,
        cost=CostModel(point_overhead_s=0.0),
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the service layer."""

    #: Admission-queue capacity across both lanes (unique requests).
    queue_capacity: int = 32
    #: Service workers; each owns one hybrid node (``hybrid``).
    n_service_workers: int = 2
    #: Unique requests dispatched per hybrid batch.
    batch_max: int = 4
    #: Continuous batching: how long a worker lingers (virtual seconds)
    #: to let plan-compatible arrivals accumulate before dispatching a
    #: megabatch.  ``None`` (the default) keeps the legacy one-request-
    #: per-plan dispatch path bit for bit; ``0.0`` batches whatever is
    #: already queued without waiting (the "empty window" edge case).
    #: Interactive arrivals always short-circuit the wait.
    batch_window_s: Optional[float] = None
    #: Max temperatures fused into one megabatch group.
    batch_width_max: int = 16
    #: Backpressure hint returned with a rejection.
    retry_after_s: float = 0.5
    cache_max_entries: int = 256
    cache_max_bytes: int = 32 << 20
    cache_ttl_s: float = 3600.0
    hybrid: HybridConfig = field(default_factory=_default_hybrid)
    #: Atomic database scope shared by all requests.
    db_n_max: int = 4
    db_z_max: int = 14
    #: Cap per-lane latency samples at this reservoir size (uniform
    #: sample, deterministic); ``None`` keeps every sample, matching the
    #: historical behaviour.
    latency_reservoir: Optional[int] = None
    #: Wall-clock backend for request payload evaluation ("serial" runs
    #: payloads inside the simulated tasks exactly as before; "thread" /
    #: "process" precompute each batch's spectra on a host pool while
    #: the simulation prices cost-only tasks — same bits, same virtual
    #: time, less wall time).
    backend: str = "serial"
    #: Worker count of the payload pool (``None``: one per core).
    jobs: Optional[int] = None
    #: Approximate serving (:mod:`repro.approx`).  Engages only for
    #: requests declaring a positive ``accuracy`` budget; ``False``
    #: routes every request to the exact path regardless.
    lattice: bool = True
    #: Temperature domain of the per-family lattices (log-spaced).
    lattice_t_min_k: float = 5.0e5
    lattice_t_max_k: float = 1.0e8
    #: Initial nodes per lattice; bisection refines on demand.
    lattice_nodes: int = 33
    #: Interpolation method along ln kT ("linear" | "cubic").
    lattice_method: str = "cubic"
    #: Certified bound = safety x measured midpoint error.
    lattice_safety: float = 2.0
    #: Store-wide byte budget across families (LRU past it).
    lattice_max_bytes: int = 8 << 20
    #: Interval bisections allowed per served request.
    lattice_refine_max: int = 2

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.n_service_workers < 1:
            raise ValueError("need at least one service worker")
        if self.batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if self.batch_window_s is not None and self.batch_window_s < 0.0:
            raise ValueError("batch_window_s must be >= 0 or None")
        if self.batch_width_max < 1:
            raise ValueError("batch_width_max must be >= 1")
        if self.retry_after_s <= 0.0:
            raise ValueError("retry_after_s must be positive")
        if self.latency_reservoir is not None and self.latency_reservoir < 1:
            raise ValueError("latency_reservoir must be >= 1 or None")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.jobs is not None and self.jobs < 1:
            raise ValueError("jobs must be >= 1 or None")
        if not 0.0 < self.lattice_t_min_k < self.lattice_t_max_k:
            raise ValueError("need 0 < lattice_t_min_k < lattice_t_max_k")
        if self.lattice_nodes < 2:
            raise ValueError("lattice_nodes must be >= 2")
        if self.lattice_method not in INTERP_METHODS:
            raise ValueError(
                f"unknown lattice_method {self.lattice_method!r}; "
                f"expected one of {INTERP_METHODS}"
            )
        if self.lattice_safety < 1.0:
            raise ValueError("lattice_safety must be >= 1")
        if self.lattice_max_bytes < 1:
            raise ValueError("lattice_max_bytes must be >= 1")
        if self.lattice_refine_max < 0:
            raise ValueError("lattice_refine_max must be >= 0")


@dataclass
class Ticket:
    """The broker's receipt for one submitted request."""

    request: SpectrumRequest
    lane: str
    key: str
    submitted_at: float
    status: str = "pending"  # pending | completed | rejected
    cached: bool = False
    coalesced: bool = False
    #: Served by lattice interpolation within the declared accuracy.
    lattice: bool = False
    #: Certified peak-relative error bound of a lattice-served result
    #: (0 on the exact path — the answer is the answer).
    error_bound: float = 0.0
    retry_after_s: float = 0.0
    completed_at: float = 0.0
    result: Optional[np.ndarray] = None
    #: Async-span correlation id of this request in the trace (0 when
    #: tracing is off or the ticket was rejected before a span opened).
    #: Allocated from the tracer's span-id space, so group/task/kernel
    #: spans link to it directly.
    trace_id: int = 0
    #: Leader's trace id when this ticket coalesced onto an in-flight
    #: request — the causal link from a follower to the executed work.
    leader_trace_id: int = 0
    #: Fires with the spectrum when the request resolves (pre-fired for
    #: cache hits); ``None`` on rejected tickets.
    signal: Optional[Signal] = None

    @property
    def rejected(self) -> bool:
        return self.status == "rejected"

    @property
    def done(self) -> bool:
        return self.status == "completed"

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.submitted_at

    def _complete(self, now: float, result: np.ndarray) -> None:
        self.status = "completed"
        self.completed_at = now
        self.result = result


class SpectrumBroker:
    """Admission, coalescing, caching, and dispatch on one SimClock."""

    def __init__(
        self,
        clock: SimClock,
        config: ServiceConfig | None = None,
        db: AtomicDatabase | None = None,
        tracer=None,
        slo=None,
        tsdb=None,
        anomaly=None,
        cost_model=None,
    ) -> None:
        self.clock = clock
        #: Optional :class:`repro.obs.slo.SLOEngine`; sampled at each
        #: batch completion.  ``None`` (or an engine with no rules)
        #: keeps the run bit-identical to an unmonitored one — no
        #: registry snapshot is ever built.
        self.slo = slo
        #: Continuous telemetry: a :class:`~repro.obs.tsdb.TimeSeriesStore`
        #: scraped at batch completions on this clock.  The default
        #: :data:`~repro.obs.tsdb.NULL_TSDB` reduces the hot path to one
        #: ``enabled`` attribute read.
        self.tsdb = tsdb if tsdb is not None else NULL_TSDB
        #: Optional :class:`~repro.obs.anomaly.AnomalyDetector`, scanned
        #: after each scrape; events flow onto the service bus.
        self.anomaly = anomaly
        self.config = config or ServiceConfig()
        self.db = db or AtomicDatabase(
            AtomicConfig(n_max=self.config.db_n_max, z_max=self.config.db_z_max)
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            cache_track = self.tracer.track("service", "cache")
            coalesce_track = self.tracer.track("service", "coalescer")
            queue_track = self.tracer.track("service", "queue")
            lane_tracks = {
                lane: self.tracer.track("service", f"lane.{lane}") for lane in LANES
            }
        else:
            cache_track = coalesce_track = queue_track = 0
            lane_tracks = {}
        self._lane_tracks = lane_tracks
        self.cache = SpectrumCache(
            max_entries=self.config.cache_max_entries,
            max_bytes=self.config.cache_max_bytes,
            ttl_s=self.config.cache_ttl_s,
            tracer=self.tracer,
            track=cache_track,
        )
        self.coalescer = RequestCoalescer(tracer=self.tracer, track=coalesce_track)
        self.telemetry = ServiceTelemetry(
            LANES, latency_reservoir=self.config.latency_reservoir
        )
        self.bus = ServiceBus(
            self.telemetry,
            tracer=self.tracer,
            queue_track=queue_track,
            lane_tracks=lane_tracks,
        )
        self._queues: dict[str, deque[InFlight]] = {lane: deque() for lane in LANES}
        self._assembler = BatchAssembler(width_max=self.config.batch_width_max)
        self._idle: deque[Signal] = deque()
        self._batch_seq = 0
        self._started = False
        # Causal cost attribution rides the trace: with tracing off the
        # handle stays None and the hot path pays nothing.  The online
        # cost model additionally backs predictive scheduling, so it is
        # built whenever the trace *or* the scheduler needs it (or the
        # caller injects a persisted one via ``cost_model`` — the
        # ``--cost-model PATH`` round-trip).
        if self.tracer.enabled:
            self.attribution: Optional[Attribution] = Attribution(self.tracer)
        else:
            self.attribution = None
        if cost_model is not None:
            self.cost_model: Optional[SpanCostModel] = cost_model
        elif (
            self.tracer.enabled
            or self.config.hybrid.scheduler_kind == "predictive"
        ):
            self.cost_model = SpanCostModel.seeded_from_counters(
                self.config.hybrid.device
            )
        else:
            self.cost_model = None
        self._payload_backend: Optional[ExecutionBackend] = None
        # Built on the first positive-accuracy request, so exact-only
        # runs (and their traces) are untouched by the lattice tier.
        self._lattice: Optional[LatticeStore] = None
        # Route plan-cache events to this broker's tracer (the cache is
        # process-global; the newest broker owns the instrumentation).
        PLAN_CACHE.bind_tracer(self.tracer if self.tracer.enabled else None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def lattice_store(self) -> Optional[LatticeStore]:
        """The approximate-serving store (``None`` until first used)."""
        return self._lattice

    def report(self) -> dict:
        """One dict spanning the whole stack: service, cache, coalescer."""
        out = self.telemetry.as_dict()
        out["cache"] = self.cache.stats.as_dict()
        out["cache"]["entries"] = len(self.cache)
        out["cache"]["bytes_stored"] = self.cache.bytes_stored
        out["coalescer"] = {
            "opened": self.coalescer.opened,
            "coalesced": self.coalescer.coalesced,
        }
        if self._lattice is not None:
            out["lattice"] = self._lattice.as_dict()
        else:
            out["lattice"] = LatticeStats().as_dict()
            out["lattice"].update(families=0, nodes=0, bytes_stored=0)
        return out

    def registry(self):
        """Fresh metrics snapshot of this broker's current state.

        The handle the SLO engine and exposition consumers share —
        equivalent to :func:`repro.obs.prom.service_registry` but
        discoverable on the object that owns the telemetry.
        """
        from repro.obs.prom import service_registry

        return service_registry(self)

    def profile(self):
        """Hierarchical cost attribution over this broker's trace.

        Requires the broker to have been built with an
        :class:`~repro.obs.tracer.EventTracer`.
        """
        from repro.obs.profile import Profile

        if not self.tracer.enabled:
            raise ValueError(
                "broker has no event tracer; construct it with "
                "tracer=EventTracer() to profile"
            )
        return Profile.from_tracer(self.tracer)

    def cost_report(self) -> Optional[AttributionResult]:
        """Per-request attributed cost ledger (``None`` when untraced).

        Ingests any spans recorded since the last batch completion first,
        so the snapshot is current as of the call.
        """
        if self.attribution is None:
            return None
        self.attribution.ingest()
        observations = self.attribution.drain_observations()
        if (
            self.cost_model is not None
            and self.config.hybrid.scheduler_kind != "predictive"
        ):
            self.cost_model.ingest(observations)
        return self.attribution.result()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(
        self, request: SpectrumRequest, lane: str = "interactive", *, retry: bool = False
    ) -> Ticket:
        """Admit one request at the current virtual time.

        Returns a ticket that is already completed (cache hit), pending
        (queued or coalesced — wait on ``ticket.signal``), or rejected
        (queue full — resubmit with ``retry=True`` after
        ``ticket.retry_after_s`` so only the first attempt counts as an
        arrival).
        """
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; expected one of {LANES}")
        if not self._started:
            raise RuntimeError("broker not started; call start() first")
        now = self.clock.now
        if retry:
            self.bus.on_retry(lane)
        else:
            self.bus.on_arrival(lane)
        key = request.key
        ticket = Ticket(request=request, lane=lane, key=key, submitted_at=now)
        traced = self.tracer.enabled
        if traced:
            ticket.trace_id = self.tracer.new_id()

        hit = self.cache.get(key, now)
        if hit is not None:
            ticket.cached = True
            ticket._complete(now, hit)
            sig = Signal(name=f"cached.{key[:8]}")
            sig.fire(self.clock, hit)
            ticket.signal = sig
            if traced:
                lt = self._lane_tracks[lane]
                self.tracer.async_begin(
                    lt, "request", ticket.trace_id, cat="request",
                    args={"key": key[:8], "outcome": "cache_hit"},
                )
                self.tracer.async_end(lt, "request", ticket.trace_id, cat="request")
            self.bus.on_completion(
                lane, 0.0, cached=True, coalesced=False, trace_id=ticket.trace_id
            )
            return ticket

        if self.config.lattice and request.accuracy > 0.0:
            served = self._lattice_serve(request)
            if served is not None:
                ticket.lattice = True
                ticket.error_bound = served.error_bound
                ticket._complete(now, served.values)
                sig = Signal(name=f"lattice.{key[:8]}")
                sig.fire(self.clock, served.values)
                ticket.signal = sig
                if traced:
                    lt = self._lane_tracks[lane]
                    self.tracer.async_begin(
                        lt, "request", ticket.trace_id, cat="request",
                        args={
                            "key": key[:8],
                            "outcome": "lattice_hit",
                            "error_bound": served.error_bound,
                        },
                    )
                    self.tracer.async_end(
                        lt, "request", ticket.trace_id, cat="request"
                    )
                self.bus.on_completion(
                    lane,
                    0.0,
                    cached=False,
                    coalesced=False,
                    lattice=True,
                    trace_id=ticket.trace_id,
                )
                return ticket

        entry = self.coalescer.lookup(key)
        if entry is not None:
            ticket.coalesced = True
            ticket.signal = entry.done
            self.coalescer.attach(entry, ticket)
            if traced:
                # The leader (first subscriber) owns the executed work;
                # the follower's span parents under it so the trace shows
                # exactly which request's compute it rode.
                leader = entry.subscribers[0] if entry.subscribers else None
                ticket.leader_trace_id = leader.trace_id if leader else 0
                self.tracer.async_begin(
                    self._lane_tracks[lane], "request", ticket.trace_id,
                    cat="request",
                    args={
                        "key": key[:8],
                        "outcome": "coalesced",
                        "leader": ticket.leader_trace_id,
                    },
                    parent=ticket.leader_trace_id or None,
                )
            return ticket

        if self.queue_depth >= self.config.queue_capacity:
            ticket.status = "rejected"
            ticket.retry_after_s = self.config.retry_after_s
            self.bus.on_rejection(lane)
            return ticket

        entry = self.coalescer.open(key, request, lane, now)
        entry.subscribers.append(ticket)
        ticket.signal = entry.done
        self._queues[lane].append(entry)
        if traced:
            self.tracer.async_begin(
                self._lane_tracks[lane], "request", ticket.trace_id,
                cat="request", args={"key": key[:8], "outcome": "queued"},
            )
        self.bus.on_queue_depth(self.queue_depth, now)
        self._wake_worker()
        return ticket

    # ------------------------------------------------------------------
    # Approximate serving
    # ------------------------------------------------------------------
    def _lattice_serve(self, request: SpectrumRequest):
        """Lattice lookup for one positive-accuracy request.

        Returns the :class:`~repro.approx.store.LatticeResult` on a
        certified hit, ``None`` when the exact path must run (out of
        domain, or still over budget after refinement).  Store work is
        host-side precomputation — zero virtual time, like plan
        compilation.
        """
        if self._lattice is None:
            track = (
                self.tracer.track("service", "lattice")
                if self.tracer.enabled
                else 0
            )
            cfg = self.config
            self._lattice = LatticeStore(
                evaluator=RequestEvaluator(self.db),
                spec=LatticeSpec(
                    t_min_k=cfg.lattice_t_min_k,
                    t_max_k=cfg.lattice_t_max_k,
                    n_nodes=cfg.lattice_nodes,
                    method=cfg.lattice_method,
                    safety=cfg.lattice_safety,
                ),
                max_bytes=cfg.lattice_max_bytes,
                refine_max=cfg.lattice_refine_max,
                tracer=self.tracer,
                track=track,
            )
        result = self._lattice.serve(request)
        return result if result.served else None

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the service workers on the clock (idempotent)."""
        if self._started:
            return
        self._started = True
        for wid in range(self.config.n_service_workers):
            self.clock.spawn(self._worker(wid), name=f"svc{wid}")

    def _wake_worker(self) -> None:
        if self._idle:
            self._idle.popleft().fire(self.clock)

    def _backend(self) -> ExecutionBackend:
        if self._payload_backend is None:
            self._payload_backend = get_backend(
                self.config.backend, self.config.jobs
            )
        return self._payload_backend

    def close(self) -> None:
        """Release the payload worker pool (no-op for the serial backend)."""
        if self._payload_backend is not None:
            self._payload_backend.close()
            self._payload_backend = None

    def _group_payloads(
        self, groups: list[MegabatchGroup], batching: bool
    ) -> Optional[list[np.ndarray]]:
        """Precomputed spectra per group, or ``None`` on the serial path.

        On a parallel backend the batch's request spectra are evaluated
        on the host pool while the hybrid simulation runs cost-only
        tasks; :func:`request_spectrum` / :func:`family_spectra`
        accumulate in exact task order, so the results are bit-identical
        to in-simulation accumulation.  The legacy path (``batching``
        off, every group width 1) maps :func:`request_spectrum` exactly
        as it always did; megabatch groups map the stacked
        :func:`family_spectra` — one pool item per fused launch.
        """
        if self.config.backend == "serial":
            return None
        n_max, z_max = self.db.config.n_max, self.db.config.z_max
        if not batching:
            payloads = [(g.entries[0].request, n_max, z_max) for g in groups]
            return self._backend().map(request_spectrum, payloads)
        items = [(g.requests, n_max, z_max) for g in groups]
        return self._backend().map(family_spectra, items)

    def _drain_batch(self) -> list[InFlight]:
        """Up to ``batch_max`` entries, interactive strictly first."""
        batch: list[InFlight] = []
        for lane in LANES:
            queue = self._queues[lane]
            while queue and len(batch) < self.config.batch_max:
                batch.append(queue.popleft())
        if batch:
            self.bus.on_queue_depth(self.queue_depth, self.clock.now)
        return batch

    def _worker(self, wid: int) -> Generator:
        runner = HybridRunner(
            self.config.hybrid,
            tracer=self.tracer,
            scope=f"svc{wid}",
            span_cost_model=self.cost_model,
        )
        traced = self.tracer.enabled
        worker_track = (
            self.tracer.track(f"svc{wid}", "dispatch") if traced else 0
        )
        groups_track = (
            self.tracer.track(f"svc{wid}", "groups") if traced else 0
        )
        window = self.config.batch_window_s
        batching = window is not None
        while True:
            if (
                batching
                and window > 0.0
                and 0 < self.queue_depth < self.config.batch_max
                and not self._queues["interactive"]
            ):
                # Admission window: a pure-survey backlog narrower than
                # a full batch lingers so plan-compatible arrivals can
                # pile onto the same fused launch.  An interactive
                # entry anywhere in the queue short-circuits the wait —
                # latency-sensitive requests never pay for batch width.
                self.bus.on_window_wait()
                yield window
            batch = self._drain_batch()
            if not batch:
                idle = Signal(name=f"svc{wid}.idle")
                self._idle.append(idle)
                yield idle
                continue
            if batching:
                groups = self._assembler.assemble(batch)
                self.bus.on_megabatch([g.width for g in groups])
            else:
                groups = [MegabatchGroup((entry,)) for entry in batch]
            payloads = self._group_payloads(groups, batching)
            tasks = []
            # Megabatch groups compile with spread point indices — one
            # point per ion task — so the hybrid rank partition shares a
            # group's host prep across every rank instead of chaining
            # the whole group on one.  ``group_slots[gi]`` remembers the
            # (first point, task count) slice for the fan-back fold.
            group_slots: list[tuple[int, int]] = []
            # Per-group trace context: one span id per dispatched group
            # (allocated up front so compiled tasks parent under it) plus
            # the member roots and fair-share weights the attribution
            # layer splits the group's measured spans by.
            group_ids: list[int] = []
            group_meta: list[dict] = []
            for gi, group in enumerate(groups):
                gid = 0
                if traced:
                    gid = self.tracer.new_id()
                    group_meta.append(
                        {
                            "members": [
                                e.subscribers[0].trace_id if e.subscribers else 0
                                for e in group.entries
                            ],
                            "weights": group_member_weights(
                                group.requests, self.db
                            ),
                            "width": group.width,
                            "method": group.entries[0].request.rule,
                        }
                    )
                group_ids.append(gid)
                if batching:
                    base = tasks[-1].point_index + 1 if tasks else 0
                    gtasks = compile_group_tasks(
                        group.requests, self.db,
                        point_index=base, task_id_base=len(tasks),
                        with_payload=payloads is None, spread=True,
                        trace_parent=gid,
                    )
                    group_slots.append((base, len(gtasks)))
                    tasks.extend(gtasks)
                else:
                    tasks.extend(
                        compile_tasks(
                            group.entries[0].request, self.db,
                            point_index=gi, task_id_base=len(tasks),
                            with_payload=payloads is None,
                            trace_parent=gid,
                        )
                    )
            self._batch_seq += 1
            batch_name = f"svc{wid}.batch{self._batch_seq}"
            dispatched_at = self.clock.now
            handle = runner.spawn_batch(tasks, self.clock, name=batch_name)
            result = yield handle
            now = self.clock.now
            if traced:
                self.tracer.span(
                    worker_track,
                    batch_name,
                    dispatched_at,
                    now,
                    cat="dispatch",
                    args={"n_requests": len(batch), "n_tasks": len(tasks)},
                )
                # One span per dispatched group, parented under its
                # leading member's request root — the middle link of the
                # request -> group -> task -> kernel chain.  Groups of one
                # batch share the dispatch interval, which nests cleanly.
                for gi, meta in enumerate(group_meta):
                    members = meta["members"]
                    self.tracer.span(
                        groups_track,
                        f"{batch_name}.g{gi}",
                        dispatched_at,
                        now,
                        cat="group",
                        id=group_ids[gi],
                        parent=(members[0] or None) if members else None,
                        args=meta,
                    )
            for gi, group in enumerate(groups):
                if payloads is not None:
                    block = payloads[gi]
                elif batching:
                    # Ion-order fold of the group's spread per-task
                    # blocks: the same copy-then-`+=` sequence the
                    # runner applies when every task shares one point,
                    # so the fold is bit-identical however completions
                    # interleaved across ranks.
                    base, count = group_slots[gi]
                    block = None
                    for p in range(base, base + count):
                        arr = result.spectra.get(p)
                        if arr is None:
                            continue
                        if block is None:
                            block = arr.copy()
                        else:
                            block += arr
                else:
                    block = result.spectra.get(gi)
                for j, entry in enumerate(group.entries):
                    if block is None:  # cost-only tasks, no payload
                        spectrum = np.zeros(entry.request.n_bins)
                    elif getattr(block, "ndim", 1) == 2:
                        # Megabatch payloads stack one row per
                        # temperature; each row is bit-identical to the
                        # request's unbatched spectrum.
                        spectrum = block[j].copy()
                    else:
                        spectrum = block
                    self.cache.put(entry.key, spectrum, now)
                    self.coalescer.resolve(entry.key)
                    for ticket in entry.subscribers:
                        ticket._complete(now, spectrum)
                        if traced and ticket.trace_id:
                            self.tracer.async_end(
                                self._lane_tracks[ticket.lane],
                                "request",
                                ticket.trace_id,
                                cat="request",
                                args={"latency_s": ticket.latency_s},
                            )
                        self.bus.on_completion(
                            ticket.lane,
                            ticket.latency_s,
                            cached=False,
                            coalesced=ticket.coalesced,
                            trace_id=ticket.trace_id,
                        )
                    entry.done.fire(self.clock, spectrum)
            self.bus.on_batch(result, len(batch))
            if self.attribution is not None:
                # Fold the batch's new spans into the ledger and feed the
                # completed tasks' measured costs to the online model —
                # unless the predictive dispatch already observed them
                # directly (each measurement must update the EWMA once).
                self.attribution.ingest()
                observations = self.attribution.drain_observations()
                if (
                    self.cost_model is not None
                    and self.config.hybrid.scheduler_kind != "predictive"
                ):
                    self.cost_model.ingest(observations)
            registry = None
            if self.tsdb.enabled and self.tsdb.due(now):
                registry = self.registry()
                self.tsdb.scrape(registry, now)
                if self.anomaly is not None:
                    for event in self.anomaly.scan(self.tsdb):
                        self.bus.on_anomaly(event)
            if self.slo is not None and self.slo.rules:
                self.slo.sample(
                    registry if registry is not None else self.registry(), now
                )


# ----------------------------------------------------------------------
# Trace playback
# ----------------------------------------------------------------------
def run_trace(
    trace: Sequence[Arrival],
    config: ServiceConfig | None = None,
    db: AtomicDatabase | None = None,
    max_retry_backoff: float = 32.0,
    tracer=None,
    slo=None,
    flight_dir: Optional[str] = None,
    flight_window_s: float = 10.0,
    tsdb=None,
    anomaly=None,
    cost_model=None,
) -> tuple[SpectrumBroker, list[Optional[Ticket]]]:
    """Play a traffic trace through a fresh broker to completion.

    One client process per arrival: it submits at its arrival time and,
    on rejection, backs off exponentially (deterministically) from the
    broker's retry-after hint until admitted — so a finite trace always
    ends with zero lost requests unless the service itself stalls.

    ``flight_dir`` (with an ``slo`` engine or ``anomaly`` detector
    attached) arms a :class:`~repro.obs.flight.FlightRecorder`: every
    rule entering ``firing`` — and every anomaly event — dumps a
    postmortem bundle — the trailing ``flight_window_s`` of trace and
    scraped series plus the cost ledger — into that directory.  The
    recorder is exposed as ``broker.flight``.

    ``tsdb`` (a :class:`~repro.obs.tsdb.TimeSeriesStore`) is scraped at
    batch completions under its cadence plus once after the trace
    drains; ``anomaly`` scans it after every scrape.

    Returns the broker (telemetry, cache, coalescer all inspectable) and
    each arrival's final ticket, trace-ordered.
    """
    clock = SimClock()
    if tracer is not None:
        tracer.bind(clock)
    broker = SpectrumBroker(
        clock, config, db=db, tracer=tracer, slo=slo, tsdb=tsdb,
        anomaly=anomaly, cost_model=cost_model,
    )
    broker.flight = None
    if flight_dir is not None and (slo is not None or anomaly is not None):
        from repro.obs.flight import FlightRecorder

        broker.flight = FlightRecorder(broker, flight_dir, window_s=flight_window_s)
        if slo is not None:
            broker.flight.arm(slo)
        if anomaly is not None:
            broker.flight.arm_anomalies(anomaly)
    broker.start()
    tickets: list[Optional[Ticket]] = [None] * len(trace)

    def client(i: int, arrival: Arrival) -> Generator:
        attempt = 0
        while True:
            ticket = broker.submit(
                arrival.request, lane=arrival.lane, retry=attempt > 0
            )
            if not ticket.rejected:
                tickets[i] = ticket
                if not ticket.done:
                    yield ticket.signal
                return
            backoff = min(2.0**attempt, max_retry_backoff)
            attempt += 1
            yield ticket.retry_after_s * backoff

    def dispatcher() -> Generator:
        for i, arrival in enumerate(trace):
            delay = arrival.t - clock.now
            if delay > 0:
                yield delay
            clock.spawn(client(i, arrival), name=f"client{i}")

    clock.spawn(dispatcher(), name="dispatcher")
    try:
        clock.run()
    finally:
        broker.close()
    broker.bus.finalize(clock.now)
    if broker.tsdb.enabled:
        # One closing scrape so the stored series end on the finalized
        # registry state (residency folded, end_time stamped).
        broker.tsdb.scrape(broker.registry(), clock.now)
        if broker.anomaly is not None:
            for event in broker.anomaly.scan(broker.tsdb):
                broker.bus.on_anomaly(event)
    return broker, tickets
