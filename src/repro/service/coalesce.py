"""In-flight request deduplication.

When N identical requests are concurrently outstanding, only the first
one enters the admission queue; the other N-1 *attach* to its in-flight
entry and share the single hybrid run's result.  Attachment is free of
queue slots, so coalesced requests can never be rejected by
backpressure — they cost nothing to admit.

The coalescer is a plain deterministic map; the broker owns the locking
discipline (there is none to need: everything runs on one SimClock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.simclock import Signal
from repro.obs.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.service.broker import Ticket
    from repro.service.requests import SpectrumRequest

__all__ = ["InFlight", "RequestCoalescer"]


@dataclass
class InFlight:
    """One unique request currently queued or executing."""

    key: str
    request: "SpectrumRequest"
    lane: str
    opened_at: float
    done: Signal
    #: Every ticket (leader first) waiting on this entry's result.
    subscribers: list["Ticket"] = field(default_factory=list)

    @property
    def n_coalesced(self) -> int:
        """Followers that attached after the leader."""
        return max(0, len(self.subscribers) - 1)


class RequestCoalescer:
    """Tracks unique in-flight requests by content address."""

    def __init__(self, tracer=None, track: int = 0) -> None:
        self._inflight: dict[str, InFlight] = {}
        self.opened = 0
        self.coalesced = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track

    def __len__(self) -> int:
        return len(self._inflight)

    def lookup(self, key: str) -> Optional[InFlight]:
        return self._inflight.get(key)

    def open(
        self, key: str, request: "SpectrumRequest", lane: str, now: float
    ) -> InFlight:
        """Register a new unique in-flight request (the leader's entry)."""
        if key in self._inflight:
            raise ValueError(f"request {key} is already in flight")
        entry = InFlight(
            key=key,
            request=request,
            lane=lane,
            opened_at=now,
            done=Signal(name=f"inflight.{key[:8]}"),
        )
        self._inflight[key] = entry
        self.opened += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self.track,
                "coalesce.open",
                cat="coalesce",
                args={"key": key[:8], "lane": lane},
            )
        return entry

    def attach(self, entry: InFlight, ticket: "Ticket") -> None:
        """Join a follower ticket to an existing in-flight entry."""
        entry.subscribers.append(ticket)
        self.coalesced += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self.track,
                "coalesce.attach",
                cat="coalesce",
                args={"key": entry.key[:8], "subscribers": len(entry.subscribers)},
            )

    def resolve(self, key: str) -> InFlight:
        """Close an entry once its result exists; returns it for fan-out."""
        entry = self._inflight.pop(key, None)
        if entry is None:
            raise KeyError(f"no in-flight request with key {key}")
        if self.tracer.enabled:
            self.tracer.instant(
                self.track,
                "coalesce.resolve",
                cat="coalesce",
                args={"key": key[:8], "subscribers": len(entry.subscribers)},
            )
        return entry
