"""Continuous-batching assembly: fold a drained backlog into megabatches.

The broker's workers historically dispatched each queued request as its
own set of ion tasks — under survey traffic the device executed many tiny
plans back-to-back and sat idle between launches.  Continuous batching
(the spectral-service analogue of continuous batching in LLM serving)
instead groups the *compatible* part of the backlog — requests whose
:meth:`~repro.service.requests.SpectrumRequest.family_key` matches, i.e.
identical db/grid fingerprints, ion subset, quadrature rule and tail
tolerance, differing only in temperature — into one megabatch whose ion
tasks each cover every temperature of the group.

The assembler is deliberately pure and order-preserving: entries arrive
in drain order (interactive lane strictly before survey), groups are
keyed by family and capped at ``width_max``, and group dispatch order is
the order each family was first seen.  Determinism of the assembled
groups is what lets the batched dispatch path stay bit-identical to
one-request-at-a-time dispatch.

The admission *window* — how long a worker lingers to let compatible
arrivals accumulate — lives in the broker's dispatch loop, not here: the
wait interacts with the clock and lane fairness (an interactive arrival
short-circuits it), while the grouping itself is a pure function of the
drained entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.service.coalesce import InFlight
from repro.service.requests import SpectrumRequest

__all__ = ["BatchAssembler", "MegabatchGroup"]


@dataclass(frozen=True)
class MegabatchGroup:
    """One assembled megabatch: same-family entries, drain-ordered."""

    entries: tuple[InFlight, ...]

    @property
    def width(self) -> int:
        """Temperatures riding this group's fused launch."""
        return len(self.entries)

    @property
    def requests(self) -> tuple[SpectrumRequest, ...]:
        return tuple(entry.request for entry in self.entries)

    @property
    def lanes(self) -> tuple[str, ...]:
        return tuple(entry.lane for entry in self.entries)


class BatchAssembler:
    """Groups a drained backlog by plan-family compatibility.

    ``width_max`` caps how many temperatures one fused launch carries —
    a family wider than the cap spills into consecutive groups (each a
    full-width launch) rather than growing without bound.
    """

    def __init__(self, width_max: int = 16) -> None:
        if width_max < 1:
            raise ValueError("width_max must be >= 1")
        self.width_max = width_max

    def assemble(self, entries: Sequence[InFlight]) -> list[MegabatchGroup]:
        """Partition ``entries`` into family groups of at most
        ``width_max``, preserving drain order within each group and
        first-seen order across groups.

        Because the broker drains the interactive lane first, any group
        containing an interactive entry sorts ahead of pure-survey
        groups that entered the backlog later — fairness falls out of
        order preservation.
        """
        order: list[list[InFlight]] = []
        open_group: dict[str, list[InFlight]] = {}
        for entry in entries:
            family = entry.request.family_key
            group = open_group.get(family)
            if group is None or len(group) >= self.width_max:
                group = []
                open_group[family] = group
                order.append(group)
            group.append(entry)
        return [MegabatchGroup(tuple(group)) for group in order]
