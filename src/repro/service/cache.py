"""LRU + TTL spectrum cache with a byte budget.

Keys are the content addresses of :class:`~repro.service.requests.
SpectrumRequest`; values are per-bin spectra (numpy arrays).  Three
limits apply together:

- ``max_entries`` — LRU capacity in entry count;
- ``max_bytes`` — total stored payload (``sizeof``: array bytes plus a
  fixed per-entry bookkeeping overhead);
- ``ttl_s`` — entries older than this (in the caller's clock, virtual or
  wall) are expired on access or during :meth:`sweep`.

Every decision increments a counter in :class:`CacheStats`, which the
service telemetry folds into its report.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs.tracer import NULL_TRACER

__all__ = ["CacheStats", "SpectrumCache"]

#: Flat bookkeeping charge per entry (key, timestamps, list links).
ENTRY_OVERHEAD_BYTES = 128


@dataclass
class CacheStats:
    """Counters of every cache decision since construction."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    expirations: int = 0
    oversize_rejections: int = 0

    def hit_ratio(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio(),
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "oversize_rejections": self.oversize_rejections,
        }


@dataclass
class _Entry:
    value: np.ndarray
    nbytes: int
    inserted_at: float


class SpectrumCache:
    """Bounded spectrum store: LRU order, TTL expiry, byte budget."""

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int = 32 << 20,
        ttl_s: float = float("inf"),
        tracer=None,
        track: int = 0,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if ttl_s <= 0.0:
            raise ValueError("ttl_s must be positive")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._bytes = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def bytes_stored(self) -> int:
        return self._bytes

    @staticmethod
    def sizeof(value: np.ndarray) -> int:
        """Budgeted size of one entry: payload bytes + fixed overhead."""
        return int(np.asarray(value).nbytes) + ENTRY_OVERHEAD_BYTES

    def keys(self) -> list[str]:
        """Keys in LRU order (least recently used first)."""
        return list(self._entries)

    # ------------------------------------------------------------------
    # The cache protocol
    # ------------------------------------------------------------------
    def get(self, key: str, now: float) -> Optional[np.ndarray]:
        """Look up ``key`` at time ``now``; None on miss or expiry."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    self.track, "cache.miss", cat="cache", args={"key": key[:8]}
                )
            return None
        if now - entry.inserted_at >= self.ttl_s:
            self._drop(key, entry)
            self.stats.expirations += 1
            self.stats.misses += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    self.track,
                    "cache.expired",
                    cat="cache",
                    args={"key": key[:8], "age_s": now - entry.inserted_at},
                )
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self.track, "cache.hit", cat="cache", args={"key": key[:8]}
            )
        return entry.value

    def put(self, key: str, value: np.ndarray, now: float) -> bool:
        """Insert (or refresh) an entry; False if it exceeds the budget."""
        arr = np.asarray(value)
        nbytes = self.sizeof(arr)
        if nbytes > self.max_bytes:
            self.stats.oversize_rejections += 1
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._entries[key] = _Entry(value=arr, nbytes=nbytes, inserted_at=now)
        self._bytes += nbytes
        self.stats.insertions += 1
        if self.tracer.enabled:
            self.tracer.instant(
                self.track,
                "cache.insert",
                cat="cache",
                args={"key": key[:8], "nbytes": nbytes},
            )
        self._evict_over_budget()
        return True

    def sweep(self, now: float) -> int:
        """Expire every entry past its TTL; returns how many went."""
        stale = [
            key
            for key, entry in self._entries.items()
            if now - entry.inserted_at >= self.ttl_s
        ]
        for key in stale:
            self._drop(key, self._entries[key])
            self.stats.expirations += 1
        return len(stale)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop(self, key: str, entry: _Entry) -> None:
        del self._entries[key]
        self._bytes -= entry.nbytes

    def _evict_over_budget(self) -> None:
        while len(self._entries) > self.max_entries or self._bytes > self.max_bytes:
            key, entry = self._entries.popitem(last=False)
            self._bytes -= entry.nbytes
            self.stats.evictions += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    self.track,
                    "cache.evict",
                    cat="cache",
                    args={"key": key[:8], "nbytes": entry.nbytes},
                )
