"""Service telemetry: per-request, per-lane, and per-batch ledgers.

The same accounting style as :class:`repro.core.metrics.MetricsLedger`
(time-weighted residency closed at interval edges, counters advanced by
hooks), lifted one level up: the unit here is a *request*, not a task.
Per-batch :class:`~repro.core.metrics.RunResult` ledgers from the hybrid
runner are folded in so one report spans the whole stack — admission,
queueing, caching, and device placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import RunResult

__all__ = ["LaneStats", "ServiceTelemetry"]


@dataclass
class LaneStats:
    """Request counters and latency samples of one priority lane."""

    arrivals: int = 0
    completions: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    rejections: int = 0
    retries: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def lost(self) -> int:
        """Requests that arrived but never completed."""
        return self.arrivals - self.completions

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def mean_latency_s(self) -> float:
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    def as_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "completions": self.completions,
            "lost": self.lost,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "rejections": self.rejections,
            "retries": self.retries,
            "latency_mean_s": self.mean_latency_s(),
            "latency_p50_s": self.latency_percentile(50.0),
            "latency_p95_s": self.latency_percentile(95.0),
            "latency_max_s": max(self.latencies_s, default=0.0),
        }


class ServiceTelemetry:
    """Accumulates service statistics over one simulated serving run."""

    def __init__(self, lanes: tuple[str, ...] = ("interactive", "survey")) -> None:
        if not lanes:
            raise ValueError("need at least one lane")
        self.lanes: dict[str, LaneStats] = {lane: LaneStats() for lane in lanes}
        # Queue-depth residency (all lanes pooled): virtual seconds the
        # admission queue spent at each observed depth.
        self._depth_residency: dict[int, float] = {}
        self._depth = 0
        self._depth_since = 0.0
        self.max_depth = 0
        # Per-batch records folded from the hybrid runner's ledgers.
        self.batch_sizes: list[int] = []
        self.batch_makespans_s: list[float] = []
        self.gpu_tasks = 0
        self.cpu_tasks = 0
        self.end_time = 0.0

    def _lane(self, lane: str) -> LaneStats:
        try:
            return self.lanes[lane]
        except KeyError:
            raise ValueError(
                f"unknown lane {lane!r}; expected one of {tuple(self.lanes)}"
            ) from None

    # ------------------------------------------------------------------
    # Hooks called by the broker
    # ------------------------------------------------------------------
    def on_arrival(self, lane: str) -> None:
        self._lane(lane).arrivals += 1

    def on_rejection(self, lane: str) -> None:
        self._lane(lane).rejections += 1

    def on_retry(self, lane: str) -> None:
        self._lane(lane).retries += 1

    def on_completion(
        self, lane: str, latency_s: float, *, cached: bool, coalesced: bool
    ) -> None:
        stats = self._lane(lane)
        stats.completions += 1
        stats.latencies_s.append(latency_s)
        if cached:
            stats.cache_hits += 1
        elif coalesced:
            stats.coalesced += 1
        else:
            stats.computed += 1

    def on_queue_depth(self, depth: int, now: float) -> None:
        """Close the residency interval at the old depth, open the new."""
        if depth < 0:
            raise ValueError("queue depth cannot be negative")
        self._depth_residency[self._depth] = (
            self._depth_residency.get(self._depth, 0.0) + now - self._depth_since
        )
        self._depth = depth
        self._depth_since = now
        self.max_depth = max(self.max_depth, depth)

    def on_batch(self, result: RunResult, n_requests: int) -> None:
        """Fold one dispatched batch's hybrid ledger into the totals."""
        self.batch_sizes.append(n_requests)
        self.batch_makespans_s.append(result.makespan_s)
        self.gpu_tasks += int(result.metrics.gpu_tasks.sum())
        self.cpu_tasks += result.metrics.cpu_tasks

    def finalize(self, now: float) -> None:
        """Close the open residency interval at the end of the run."""
        self.on_queue_depth(self._depth, now)
        self.end_time = now

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def arrivals(self) -> int:
        return sum(s.arrivals for s in self.lanes.values())

    @property
    def completions(self) -> int:
        return sum(s.completions for s in self.lanes.values())

    @property
    def lost(self) -> int:
        return self.arrivals - self.completions

    @property
    def rejections(self) -> int:
        return sum(s.rejections for s in self.lanes.values())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.lanes.values())

    def mean_queue_depth(self) -> float:
        """Time-weighted mean admission-queue depth."""
        total = sum(self._depth_residency.values())
        if total <= 0.0:
            return 0.0
        weighted = sum(d * t for d, t in self._depth_residency.items())
        return weighted / total

    def gpu_task_ratio(self) -> float:
        total = self.gpu_tasks + self.cpu_tasks
        return self.gpu_tasks / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "completions": self.completions,
            "lost": self.lost,
            "rejections": self.rejections,
            "retries": self.retries,
            "queue_depth_mean": self.mean_queue_depth(),
            "queue_depth_max": self.max_depth,
            "batches": len(self.batch_sizes),
            "batch_size_mean": (
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            "gpu_tasks": self.gpu_tasks,
            "cpu_tasks": self.cpu_tasks,
            "gpu_task_ratio": self.gpu_task_ratio(),
            "virtual_time_s": self.end_time,
            "lanes": {lane: s.as_dict() for lane, s in self.lanes.items()},
        }
