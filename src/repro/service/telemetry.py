"""Service telemetry: per-request, per-lane, and per-batch ledgers.

The same accounting style as :class:`repro.core.metrics.MetricsLedger`
(time-weighted residency closed at interval edges, counters advanced by
hooks), lifted one level up: the unit here is a *request*, not a task.
Per-batch :class:`~repro.core.metrics.RunResult` ledgers from the hybrid
runner are folded in so one report spans the whole stack — admission,
queueing, caching, and device placement.

The hooks are fed through :class:`repro.obs.bus.ServiceBus`, which makes
this ledger one *derived consumer* of the service event stream (the span
tracer being the other); calling the hooks directly remains supported —
a ledger is a valid sink for its own API.

Latency samples are exact by default; for long trace replays pass
``latency_reservoir`` to cap per-lane memory with deterministic
reservoir sampling (mean/max stay exact from streaming aggregates,
percentiles come from the reservoir).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.metrics import RunResult

__all__ = ["LaneStats", "ServiceTelemetry"]

#: Fixed seed of the reservoir's replacement draws — sampling stays
#: deterministic for a given observation sequence, like everything else.
_RESERVOIR_SEED = 20150413


@dataclass
class LaneStats:
    """Request counters and latency samples of one priority lane.

    ``reservoir=None`` keeps every latency sample (exact percentiles,
    unbounded memory); ``reservoir=k`` holds a uniform k-sample
    reservoir (Vitter's algorithm R) instead, so arbitrarily long
    replays use O(k) memory.  Mean and max are always exact — they come
    from streaming aggregates, not the sample set.
    """

    arrivals: int = 0
    completions: int = 0
    cache_hits: int = 0
    #: Served by lattice interpolation within the declared budget.
    lattice_hits: int = 0
    coalesced: int = 0
    computed: int = 0
    rejections: int = 0
    retries: int = 0
    latencies_s: list[float] = field(default_factory=list)
    #: Most recent (latency, trace_id) pairs of traced completions —
    #: the exemplar source linking the Prometheus latency histogram back
    #: to concrete request spans (OpenMetrics-style exemplars).
    latency_exemplars: list[tuple[float, int]] = field(default_factory=list)
    reservoir: Optional[int] = None
    _seen: int = field(default=0, repr=False)
    _sum: float = field(default=0.0, repr=False)
    _max: float = field(default=0.0, repr=False)
    _rng: Optional[np.random.Generator] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.reservoir is not None and self.reservoir < 1:
            raise ValueError("reservoir capacity must be >= 1")

    @property
    def lost(self) -> int:
        """Requests that arrived but never completed."""
        return self.arrivals - self.completions

    def record_latency(self, latency_s: float, trace_id: int = 0) -> None:
        """Stream one latency sample into the (bounded or exact) store."""
        if trace_id > 0:
            self.latency_exemplars.append((latency_s, trace_id))
            if len(self.latency_exemplars) > 64:
                del self.latency_exemplars[0]
        self._seen += 1
        self._sum += latency_s
        if latency_s > self._max:
            self._max = latency_s
        if self.reservoir is None or len(self.latencies_s) < self.reservoir:
            self.latencies_s.append(latency_s)
            return
        if self._rng is None:
            self._rng = np.random.default_rng(_RESERVOIR_SEED)
        j = int(self._rng.integers(0, self._seen))
        if j < self.reservoir:
            self.latencies_s[j] = latency_s

    def latency_samples(self) -> list[float]:
        """The retained samples (every one, or the reservoir's subset)."""
        return list(self.latencies_s)

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.asarray(self.latencies_s), q))

    def latency_quantile(self, q: float) -> float:
        """Quantile accessor on the [0, 1] scale the SLO engine uses.

        Same linear-interpolation estimator as ``latency_percentile``
        (which takes 0-100), so SLO rules and reports that target
        p95/p99 read one number from one code path.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        return self.latency_percentile(q * 100.0)

    def mean_latency_s(self) -> float:
        if self._seen:
            return self._sum / self._seen
        # Hand-built stats (latencies_s passed directly): fall back.
        return float(np.mean(self.latencies_s)) if self.latencies_s else 0.0

    def max_latency_s(self) -> float:
        if self._seen:
            return self._max
        return max(self.latencies_s, default=0.0)

    def as_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "completions": self.completions,
            "lost": self.lost,
            "cache_hits": self.cache_hits,
            "lattice_hits": self.lattice_hits,
            "coalesced": self.coalesced,
            "computed": self.computed,
            "rejections": self.rejections,
            "retries": self.retries,
            "latency_mean_s": self.mean_latency_s(),
            "latency_p50_s": self.latency_percentile(50.0),
            "latency_p95_s": self.latency_percentile(95.0),
            "latency_max_s": self.max_latency_s(),
        }


class ServiceTelemetry:
    """Accumulates service statistics over one simulated serving run."""

    def __init__(
        self,
        lanes: tuple[str, ...] = ("interactive", "survey"),
        latency_reservoir: Optional[int] = None,
    ) -> None:
        if not lanes:
            raise ValueError("need at least one lane")
        self.lanes: dict[str, LaneStats] = {
            lane: LaneStats(reservoir=latency_reservoir) for lane in lanes
        }
        # Queue-depth residency (all lanes pooled): virtual seconds the
        # admission queue spent at each observed depth.
        self._depth_residency: dict[int, float] = {}
        self._depth = 0
        self._depth_since = 0.0
        self.max_depth = 0
        # Per-batch records folded from the hybrid runner's ledgers.
        self.batch_sizes: list[int] = []
        self.batch_makespans_s: list[float] = []
        self.gpu_tasks = 0
        self.cpu_tasks = 0
        self.evals_saved = 0
        # Continuous-batching ledger: one width sample per assembled
        # megabatch group, plus the counters the repro_batch_* metric
        # families export.  All stay zero on the legacy dispatch path.
        self.megabatch_widths: list[int] = []
        self.batched_temperatures = 0
        self.batch_coalesced_requests = 0
        self.batch_window_waits = 0
        # Anomaly events emitted by an attached detector (via the bus).
        self.anomalies = 0
        #: Summed device load residency across batches (device x load
        #: virtual seconds), grown to the widest batch shape seen.
        self.load_residency: Optional[np.ndarray] = None
        # Predictive-scheduling ledger folded from batch metrics: steal /
        # donation counts per device index and the cost model's relative
        # prediction errors.  All stay empty/zero on depth-scheduled runs.
        self.sched_steals: list[int] = []
        self.sched_donations: list[int] = []
        self.sched_prediction_errors: list[float] = []
        self.end_time = 0.0

    def _lane(self, lane: str) -> LaneStats:
        try:
            return self.lanes[lane]
        except KeyError:
            raise ValueError(
                f"unknown lane {lane!r}; expected one of {tuple(self.lanes)}"
            ) from None

    # ------------------------------------------------------------------
    # Hooks called by the broker (through the ServiceBus)
    # ------------------------------------------------------------------
    def on_arrival(self, lane: str) -> None:
        self._lane(lane).arrivals += 1

    def on_rejection(self, lane: str) -> None:
        self._lane(lane).rejections += 1

    def on_retry(self, lane: str) -> None:
        self._lane(lane).retries += 1

    def on_completion(
        self,
        lane: str,
        latency_s: float,
        *,
        cached: bool,
        coalesced: bool,
        lattice: bool = False,
        trace_id: int = 0,
    ) -> None:
        stats = self._lane(lane)
        stats.completions += 1
        stats.record_latency(latency_s, trace_id=trace_id)
        if cached:
            stats.cache_hits += 1
        elif lattice:
            stats.lattice_hits += 1
        elif coalesced:
            stats.coalesced += 1
        else:
            stats.computed += 1

    def on_queue_depth(self, depth: int, now: float) -> None:
        """Close the residency interval at the old depth, open the new."""
        if depth < 0:
            raise ValueError("queue depth cannot be negative")
        self._depth_residency[self._depth] = (
            self._depth_residency.get(self._depth, 0.0) + now - self._depth_since
        )
        self._depth = depth
        self._depth_since = now
        self.max_depth = max(self.max_depth, depth)

    def on_megabatch(self, widths: list[int]) -> None:
        """Record one dispatch cycle's assembled megabatch groups.

        ``widths`` holds the temperature count of each group.  A request
        counts as *batch-coalesced* when it shared its fused launch with
        at least one other request (group width >= 2).
        """
        self.megabatch_widths.extend(int(w) for w in widths)
        self.batched_temperatures += sum(int(w) for w in widths)
        self.batch_coalesced_requests += sum(
            int(w) for w in widths if w >= 2
        )

    def on_window_wait(self) -> None:
        """One admission-window wait taken by a service worker."""
        self.batch_window_waits += 1

    def on_anomaly(self, event) -> None:
        """One anomaly event emitted by an attached detector."""
        self.anomalies += 1

    def on_batch(self, result: RunResult, n_requests: int) -> None:
        """Fold one dispatched batch's hybrid ledger into the totals."""
        self.batch_sizes.append(n_requests)
        self.batch_makespans_s.append(result.makespan_s)
        self.gpu_tasks += int(result.metrics.gpu_tasks.sum())
        self.cpu_tasks += result.metrics.cpu_tasks
        self.evals_saved += result.metrics.evals_saved
        for d, (stolen, donated) in enumerate(
            zip(result.metrics.steals, result.metrics.donations)
        ):
            while len(self.sched_steals) <= d:
                self.sched_steals.append(0)
                self.sched_donations.append(0)
            self.sched_steals[d] += int(stolen)
            self.sched_donations[d] += int(donated)
        self.sched_prediction_errors.extend(
            result.metrics.prediction_errors()
        )
        batch = result.metrics.load_residency
        if self.load_residency is None:
            self.load_residency = batch.copy()
        else:
            rows = max(self.load_residency.shape[0], batch.shape[0])
            cols = max(self.load_residency.shape[1], batch.shape[1])
            if (rows, cols) != self.load_residency.shape:
                grown = np.zeros((rows, cols))
                grown[
                    : self.load_residency.shape[0], : self.load_residency.shape[1]
                ] = self.load_residency
                self.load_residency = grown
            self.load_residency[: batch.shape[0], : batch.shape[1]] += batch

    def finalize(self, now: float) -> None:
        """Close the open residency interval at the end of the run."""
        self.on_queue_depth(self._depth, now)
        self.end_time = now

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def sched_mean_loads(self) -> list[float]:
        """Time-weighted mean queue load per device (all batches pooled)."""
        if self.load_residency is None:
            return []
        out = []
        for row in self.load_residency:
            total = row.sum()
            if total == 0.0:
                out.append(0.0)
                continue
            out.append(float((row * np.arange(row.size)).sum() / total))
        return out

    def sched_imbalance(self) -> float:
        """Spread (max - min) of the pooled mean device loads."""
        means = self.sched_mean_loads()
        if len(means) < 2:
            return 0.0
        return max(means) - min(means)

    @property
    def total_steals(self) -> int:
        return sum(self.sched_steals)

    @property
    def arrivals(self) -> int:
        return sum(s.arrivals for s in self.lanes.values())

    @property
    def completions(self) -> int:
        return sum(s.completions for s in self.lanes.values())

    @property
    def lost(self) -> int:
        return self.arrivals - self.completions

    @property
    def rejections(self) -> int:
        return sum(s.rejections for s in self.lanes.values())

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.lanes.values())

    def mean_queue_depth(self) -> float:
        """Time-weighted mean admission-queue depth."""
        total = sum(self._depth_residency.values())
        if total <= 0.0:
            return 0.0
        weighted = sum(d * t for d, t in self._depth_residency.items())
        return weighted / total

    def gpu_task_ratio(self) -> float:
        total = self.gpu_tasks + self.cpu_tasks
        return self.gpu_tasks / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "completions": self.completions,
            "lost": self.lost,
            "rejections": self.rejections,
            "retries": self.retries,
            "queue_depth_mean": self.mean_queue_depth(),
            "queue_depth_max": self.max_depth,
            "batches": len(self.batch_sizes),
            "batch_size_mean": (
                float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0
            ),
            "gpu_tasks": self.gpu_tasks,
            "cpu_tasks": self.cpu_tasks,
            "gpu_task_ratio": self.gpu_task_ratio(),
            "evals_saved": self.evals_saved,
            "megabatch_groups": len(self.megabatch_widths),
            "batch_width_mean": (
                float(np.mean(self.megabatch_widths))
                if self.megabatch_widths
                else 0.0
            ),
            "batch_width_max": max(self.megabatch_widths, default=0),
            "batched_temperatures": self.batched_temperatures,
            "batch_coalesced_requests": self.batch_coalesced_requests,
            "batch_window_waits": self.batch_window_waits,
            "sched_steals": self.total_steals,
            "sched_prediction_error_mean": (
                float(np.mean(self.sched_prediction_errors))
                if self.sched_prediction_errors
                else 0.0
            ),
            "sched_load_imbalance": self.sched_imbalance(),
            "anomalies": self.anomalies,
            "virtual_time_s": self.end_time,
            "lanes": {lane: s.as_dict() for lane, s in self.lanes.items()},
        }
