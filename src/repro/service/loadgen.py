"""Deterministic synthetic service traffic.

Arrivals are Poisson (exponential interarrival times); grid points are
drawn from a bounded Zipf law over a fixed population of temperatures —
the skew that makes caching and coalescing pay, exactly as a survey
pipeline hammers the same emission-measure grid points over and over.
Everything is driven by one seeded :class:`numpy.random.Generator`, so a
``(spec)`` pair maps to one trace, forever.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.service.requests import SpectrumRequest

__all__ = ["Arrival", "TrafficSpec", "generate_trace", "zipf_weights"]

_PATTERNS = ("zipf", "uniform")


@dataclass(frozen=True)
class Arrival:
    """One request arriving at virtual time ``t`` on a priority lane."""

    t: float
    request: SpectrumRequest
    lane: str


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one synthetic traffic trace."""

    n_requests: int = 200
    seed: int = 7
    #: Mean of the exponential interarrival time (1 / arrival rate).
    mean_interarrival_s: float = 0.05
    #: "zipf" (rank-skewed popularity) or "uniform" over the population.
    pattern: str = "zipf"
    #: Zipf exponent; larger = more skew = hotter hot set.
    zipf_s: float = 1.1
    #: Distinct grid points in the request population.
    n_distinct: int = 32
    #: Fraction of requests on the interactive lane (rest: survey).
    interactive_fraction: float = 0.25
    #: Temperature range of the population (log-spaced).
    t_min_k: float = 1.0e6
    t_max_k: float = 5.0e7
    #: Per-request shape knobs, shared by the whole population.
    z_max: int = 8
    n_bins: int = 64
    rule: str = "simpson"
    tolerance: float = 1.0e-6
    tail_tol: float = 0.0

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("need at least one request")
        if self.mean_interarrival_s <= 0.0:
            raise ValueError("mean interarrival must be positive")
        if self.pattern not in _PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; expected {_PATTERNS}"
            )
        if self.zipf_s <= 0.0:
            raise ValueError("zipf exponent must be positive")
        if self.n_distinct < 1:
            raise ValueError("need at least one distinct grid point")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must be in [0, 1]")
        if not 0.0 < self.t_min_k <= self.t_max_k:
            raise ValueError("need 0 < t_min <= t_max")


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized bounded-Zipf probabilities over ranks 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-s
    return w / w.sum()


def generate_trace(spec: TrafficSpec) -> list[Arrival]:
    """Materialize one trace: times ascending from the first arrival."""
    rng = np.random.default_rng(spec.seed)
    times = np.cumsum(
        rng.exponential(spec.mean_interarrival_s, size=spec.n_requests)
    )
    if spec.pattern == "zipf":
        p = zipf_weights(spec.n_distinct, spec.zipf_s)
    else:
        p = np.full(spec.n_distinct, 1.0 / spec.n_distinct)
    point_ids = rng.choice(spec.n_distinct, size=spec.n_requests, p=p)
    lanes = np.where(
        rng.random(spec.n_requests) < spec.interactive_fraction,
        "interactive",
        "survey",
    )
    if spec.n_distinct == 1:
        temperatures = np.array([spec.t_min_k])
    else:
        temperatures = np.geomspace(spec.t_min_k, spec.t_max_k, spec.n_distinct)
    trace = []
    for t, pid, lane in zip(times, point_ids, lanes):
        trace.append(
            Arrival(
                t=float(t),
                request=SpectrumRequest(
                    temperature_k=float(temperatures[pid]),
                    z_max=spec.z_max,
                    n_bins=spec.n_bins,
                    rule=spec.rule,
                    tolerance=spec.tolerance,
                    tail_tol=spec.tail_tol,
                ),
                lane=str(lane),
            )
        )
    return trace
