"""Deterministic synthetic service traffic.

Arrivals are Poisson (exponential interarrival times); grid points are
drawn from a bounded Zipf law over a fixed population of temperatures —
the skew that makes caching and coalescing pay, exactly as a survey
pipeline hammers the same emission-measure grid points over and over.
Everything is driven by one seeded :class:`numpy.random.Generator`, so a
``(spec)`` pair maps to one trace, forever.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.service.requests import SpectrumRequest

__all__ = ["Arrival", "TrafficSpec", "generate_trace", "zipf_weights"]

_PATTERNS = ("zipf", "uniform", "walk")


@dataclass(frozen=True)
class Arrival:
    """One request arriving at virtual time ``t`` on a priority lane."""

    t: float
    request: SpectrumRequest
    lane: str


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one synthetic traffic trace."""

    n_requests: int = 200
    seed: int = 7
    #: Mean of the exponential interarrival time (1 / arrival rate).
    mean_interarrival_s: float = 0.05
    #: Arrivals per cluster: ``1`` keeps plain Poisson arrivals (the
    #: legacy draw sequence, bit for bit); ``k > 1`` lands requests in
    #: simultaneous clusters of ``k`` whose cluster gaps are exponential
    #: with mean ``k * mean_interarrival_s`` — the same long-run rate,
    #: arriving the way survey pipelines actually submit (a pile of grid
    #: points per job), which is what batch assembly feeds on.
    burst: int = 1
    #: "zipf" (rank-skewed popularity), "uniform" over the population,
    #: or "walk" (a reflected random walk in log T: each request sits
    #: near its predecessor — correlated traffic that revisits nearby
    #: temperatures without repeating any exactly).
    pattern: str = "zipf"
    #: Zipf exponent; larger = more skew = hotter hot set.
    zipf_s: float = 1.1
    #: Step size of the "walk" pattern, in dex of temperature.
    walk_sigma_dex: float = 0.05
    #: Accuracy budget stamped on every generated request (0 = exact).
    accuracy: float = 0.0
    #: Distinct grid points in the request population.
    n_distinct: int = 32
    #: Fraction of requests on the interactive lane (rest: survey).
    interactive_fraction: float = 0.25
    #: Temperature range of the population (log-spaced).
    t_min_k: float = 1.0e6
    t_max_k: float = 5.0e7
    #: Per-request shape knobs, shared by the whole population.
    z_max: int = 8
    n_bins: int = 64
    rule: str = "simpson"
    tolerance: float = 1.0e-6
    tail_tol: float = 0.0
    #: Heavy-tail work mix: fraction of requests whose ``z_max`` is
    #: inflated by a Pareto(``tail_alpha``) factor (capped at
    #: ``tail_z_max``), making task costs skewed the way a survey mixes
    #: light and heavy plasmas.  ``0`` adds no draws, so legacy traces
    #: replay bit for bit; any ``tail > 0`` branches the sequence.
    tail: float = 0.0
    tail_alpha: float = 1.5
    tail_z_max: int = 26

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("need at least one request")
        if self.mean_interarrival_s <= 0.0:
            raise ValueError("mean interarrival must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.pattern not in _PATTERNS:
            raise ValueError(
                f"unknown pattern {self.pattern!r}; expected {_PATTERNS}"
            )
        if self.zipf_s <= 0.0:
            raise ValueError("zipf exponent must be positive")
        if self.walk_sigma_dex <= 0.0:
            raise ValueError("walk step size must be positive")
        if self.accuracy < 0.0:
            raise ValueError("accuracy budget must be non-negative")
        if self.n_distinct < 1:
            raise ValueError("need at least one distinct grid point")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must be in [0, 1]")
        if not 0.0 < self.t_min_k <= self.t_max_k:
            raise ValueError("need 0 < t_min <= t_max")
        if not 0.0 <= self.tail < 1.0:
            raise ValueError("tail fraction must be in [0, 1)")
        if self.tail_alpha <= 0.0:
            raise ValueError("tail_alpha must be positive")
        if self.tail > 0.0 and self.tail_z_max < self.z_max:
            raise ValueError("tail_z_max must be >= z_max")


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized bounded-Zipf probabilities over ranks 1..n."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-s
    return w / w.sum()


def _walk_temperatures(spec: TrafficSpec, rng: np.random.Generator) -> np.ndarray:
    """Reflected log-T random walk over [t_min, t_max].

    Starts at a uniform point in log T, steps by N(0, sigma) in log
    space, and folds excursions back into the domain (a walk off one
    edge re-enters mirrored), so long traces stay in range while each
    request lands *near* — almost never *on* — its predecessor.
    """
    lo, hi = math.log(spec.t_min_k), math.log(spec.t_max_k)
    span = hi - lo
    if span == 0.0:
        return np.full(spec.n_requests, spec.t_min_k)
    sigma = spec.walk_sigma_dex * math.log(10.0)
    steps = rng.normal(0.0, sigma, size=spec.n_requests)
    steps[0] = rng.uniform(0.0, span)
    u = np.cumsum(steps)
    folded = np.mod(u, 2.0 * span)
    folded = np.where(folded > span, 2.0 * span - folded, folded)
    return np.exp(lo + folded)


def generate_trace(spec: TrafficSpec) -> list[Arrival]:
    """Materialize one trace: times ascending from the first arrival."""
    rng = np.random.default_rng(spec.seed)
    if spec.burst > 1:
        # Clustered arrivals: one exponential gap per cluster of
        # ``burst`` requests, mean scaled by the cluster size so the
        # long-run rate matches the Poisson case.  Only the times draw
        # branches (burst=1 replays the legacy draw sequence bit for
        # bit); a (spec) pair still maps to one trace forever.
        n_bursts = -(-spec.n_requests // spec.burst)
        gaps = rng.exponential(
            spec.mean_interarrival_s * spec.burst, size=n_bursts
        )
        times = np.repeat(np.cumsum(gaps), spec.burst)[: spec.n_requests]
    else:
        times = np.cumsum(
            rng.exponential(spec.mean_interarrival_s, size=spec.n_requests)
        )
    # Draw order is part of each pattern's contract: a (spec) pair maps
    # to one trace forever, so new patterns branch rather than reorder.
    if spec.pattern == "walk":
        request_temps = _walk_temperatures(spec, rng)
    else:
        if spec.pattern == "zipf":
            p = zipf_weights(spec.n_distinct, spec.zipf_s)
        else:
            p = np.full(spec.n_distinct, 1.0 / spec.n_distinct)
        point_ids = rng.choice(spec.n_distinct, size=spec.n_requests, p=p)
        if spec.n_distinct == 1:
            temperatures = np.array([spec.t_min_k])
        else:
            temperatures = np.geomspace(
                spec.t_min_k, spec.t_max_k, spec.n_distinct
            )
        request_temps = temperatures[point_ids]
    lanes = np.where(
        rng.random(spec.n_requests) < spec.interactive_fraction,
        "interactive",
        "survey",
    )
    z_maxes = np.full(spec.n_requests, spec.z_max, dtype=np.int64)
    if spec.tail > 0.0:
        # Heavy-tail draws come after every legacy draw, so tail=0
        # leaves the established sequences untouched.
        heavy = rng.random(spec.n_requests) < spec.tail
        factors = 1.0 + rng.pareto(spec.tail_alpha, size=spec.n_requests)
        inflated = np.minimum(
            spec.tail_z_max, np.round(spec.z_max * factors).astype(np.int64)
        )
        z_maxes = np.where(heavy, inflated, z_maxes)
    trace = []
    for t, temp, lane, z in zip(times, request_temps, lanes, z_maxes):
        trace.append(
            Arrival(
                t=float(t),
                request=SpectrumRequest(
                    temperature_k=float(temp),
                    z_max=int(z),
                    n_bins=spec.n_bins,
                    rule=spec.rule,
                    tolerance=spec.tolerance,
                    tail_tol=spec.tail_tol,
                    accuracy=spec.accuracy,
                ),
                lane=str(lane),
            )
        )
    return trace
