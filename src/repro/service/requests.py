"""Typed spectrum requests and their canonical content address.

A :class:`SpectrumRequest` names one unit of service work: a
parameter-space grid point (temperature, density), an ion subset, a
binning, a quadrature rule, and a tolerance.  Two requests that would
produce the same spectrum hash to the same :meth:`~SpectrumRequest.key`,
which is what the cache and the coalescer address by.

:func:`compile_tasks` lowers a request to the hybrid runner's task list:
one Ion-granularity task per ion in scope, each carrying a real execute
callable so the batch produces an actual per-bin spectrum that can be
cached and returned to clients.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.atomic.database import AtomicDatabase
from repro.atomic.ions import Ion
from repro.constants import K_B_KEV, RYDBERG_KEV
from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec
from repro.physics.plan import PLAN_CACHE, PlanCache
from repro.physics.spectrum import EnergyGrid

__all__ = [
    "SpectrumRequest",
    "compile_group_tasks",
    "compile_tasks",
    "family_spectra",
    "group_member_weights",
    "ion_emission",
    "request_grid",
    "request_spectrum",
]

_RULES = ("simpson", "romberg")

#: Spectral window of the service (the paper's Fig. 7 axis).
LAMBDA_MIN_A = 10.0
LAMBDA_MAX_A = 45.0

#: Emission lines modelled per ion — caps the synthetic numerics at
#: O(lines x bins) so a service batch stays cheap.
MAX_LINES_PER_ION = 8


@dataclass(frozen=True)
class SpectrumRequest:
    """One client request for a spectrum at one grid point.

    Attributes
    ----------
    temperature_k, ne_cm3:
        The parameter-space grid point.
    z_max:
        Ion subset: every ion with atomic number <= ``z_max``.
    n_bins:
        Spectral bins across the 10-45 Angstrom window.
    rule:
        Quadrature rule priced on the GPU path ("simpson" | "romberg").
    tolerance:
        Requested relative accuracy; sets the rule's refinement depth.
    tail_tol:
        Relative tail tolerance for active-window pruning
        (:mod:`repro.physics.windows`); ``0`` disables pruning.  Part of
        the content address — a pruned and an unpruned spectrum must
        never share a cache entry.
    accuracy:
        Declared peak-relative error budget for approximate serving
        (:mod:`repro.approx`); ``0`` (the default) demands the exact
        path.  Positive budgets join the content address — an
        interpolated and an exact spectrum must never share a cache
        entry — while ``0`` renders exactly as before, keeping legacy
        keys stable.
    """

    temperature_k: float
    ne_cm3: float = 1.0
    z_max: int = 8
    n_bins: int = 64
    rule: str = "simpson"
    tolerance: float = 1.0e-6
    tail_tol: float = 0.0
    accuracy: float = 0.0

    def __post_init__(self) -> None:
        if self.temperature_k <= 0.0:
            raise ValueError("temperature must be positive")
        if self.ne_cm3 <= 0.0:
            raise ValueError("density must be positive")
        if self.z_max < 1:
            raise ValueError("z_max must be >= 1")
        if self.n_bins < 1:
            raise ValueError("need at least one bin")
        if self.rule not in _RULES:
            raise ValueError(f"unknown rule {self.rule!r}; expected {_RULES}")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        if self.tail_tol < 0.0:
            raise ValueError("tail tolerance must be non-negative")
        if self.accuracy < 0.0:
            raise ValueError("accuracy budget must be non-negative")

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------
    def canonical(self) -> str:
        """Canonical text form: equal requests render identically.

        The ``acc=`` field appears only for positive budgets, so every
        pre-accuracy request renders (and hashes) exactly as it always
        has — ``accuracy=0`` is bit-compatible with history.
        """
        fields = [
            f"T={self.temperature_k:.9e}",
            f"ne={self.ne_cm3:.9e}",
            f"z={self.z_max}",
            f"bins={self.n_bins}",
            f"rule={self.rule}",
            f"tol={self.tolerance:.3e}",
            f"tt={self.tail_tol:.3e}",
        ]
        if self.accuracy > 0.0:
            fields.append(f"acc={self.accuracy:.3e}")
        return "|".join(fields)

    @property
    def key(self) -> str:
        """Content address: sha1 of the canonical form."""
        return hashlib.sha1(self.canonical().encode("ascii")).hexdigest()

    def family_canonical(self) -> str:
        """Canonical form of the request *family*: everything but the
        temperature and the accuracy budget.  One family maps to one
        lattice in :class:`repro.approx.store.LatticeStore` — the
        lattice spans the temperature axis, and budgets are evaluated
        per request against its certificates."""
        return "|".join(
            (
                f"ne={self.ne_cm3:.9e}",
                f"z={self.z_max}",
                f"bins={self.n_bins}",
                f"rule={self.rule}",
                f"tol={self.tolerance:.3e}",
                f"tt={self.tail_tol:.3e}",
            )
        )

    @property
    def family_key(self) -> str:
        """Content address of the request family (lattice lookup key)."""
        return hashlib.sha1(self.family_canonical().encode("ascii")).hexdigest()

    # ------------------------------------------------------------------
    # Quadrature pricing
    # ------------------------------------------------------------------
    @property
    def evals_per_integral(self) -> int:
        """Integrand evaluations per bin integral implied by the rule.

        Tighter tolerances buy more refinement: Simpson doubles its piece
        count per decade below 1e-4; Romberg deepens its extrapolation
        table by one level per decade.  Both mappings are deterministic,
        so tolerance is part of the content address *and* of the price.
        """
        decades = max(0, int(round(-np.log10(self.tolerance))))
        if self.rule == "simpson":
            pieces = min(512, 16 * 2 ** max(0, decades - 4))
            return pieces + 1
        k = min(13, max(5, decades + 1))
        return 2**k + 1


def request_grid(request: SpectrumRequest) -> EnergyGrid:
    """The energy grid a request's spectrum is accumulated on."""
    return EnergyGrid.from_wavelength(LAMBDA_MIN_A, LAMBDA_MAX_A, request.n_bins)


def ion_emission(
    ion: Ion, n_levels: int, request: SpectrumRequest, grid: EnergyGrid | None = None
) -> np.ndarray:
    """Deterministic per-ion emission on the request's grid.

    A cheap vectorized stand-in for the full RRC integration — a
    recombination-continuum-shaped exponential plus a hydrogenic line
    ladder — used as the *real* payload both execution paths return, so
    spectra accumulated through the scheduler are reproducible and
    byte-sized for the cache.  (The physics-grade path stays
    :class:`repro.physics.apec.SerialAPEC`; the service models the
    workload's data flow, not its opacity tables.)
    """
    grid = grid or request_grid(request)
    e = grid.centers
    kt = K_B_KEV * request.temperature_k
    charge = ion.charge
    # Continuum: Kramers-flavoured edge at the ground-state binding energy.
    e_bind = RYDBERG_KEV * charge**2
    cont = np.where(e >= min(e_bind, e[-1] * 0.999), 0.0, np.exp(-e / kt))
    cont *= ion.z / (1.0 + charge)
    # Line ladder: the first few hydrogenic transitions n -> 1.
    out = cont
    width = max(2.0 * float(np.mean(grid.widths)), 1e-4)
    for n in range(2, 2 + min(n_levels, MAX_LINES_PER_ION)):
        e_line = e_bind * (1.0 - 1.0 / n**2)
        if not e[0] <= e_line <= e[-1]:
            continue
        strength = np.exp(-e_line / kt) / n**3
        out = out + strength * np.exp(-0.5 * ((e - e_line) / width) ** 2)
    return out * request.ne_cm3


def _plan_rule_knobs(request: SpectrumRequest) -> tuple[int, int]:
    """(pieces, k) implied by the request's rule + tolerance pricing."""
    evals = request.evals_per_integral
    if request.rule == "simpson":
        return evals - 1, 7
    return 64, (evals - 1).bit_length() - 1


def request_spectrum(
    payload: tuple[SpectrumRequest, int, int]
) -> np.ndarray:
    """Full spectrum of one request, ion order, left-fold accumulation.

    Module-level and picklable (``payload`` is ``(request, db n_max,
    db z_max)``), so the broker can farm payload evaluation out to a
    process pool.  The accumulation order matches the hybrid runner's
    synchronous per-point task order bit for bit, so precomputed and
    simulation-accumulated spectra are interchangeable.
    """
    from repro.physics.apec import _worker_db

    request, n_max, z_max = payload
    db = _worker_db(n_max, z_max)
    grid = request_grid(request)
    out = np.zeros(grid.n_bins, dtype=np.float64)
    for ion in db.ions:
        if ion.z > request.z_max:
            continue
        out += ion_emission(ion, db.n_levels(ion), request, grid)
    return out


def family_spectra(
    payload: tuple[tuple[SpectrumRequest, ...], int, int]
) -> np.ndarray:
    """Stacked spectra of one same-family request group, ion-major.

    ``payload`` is ``(requests, db n_max, db z_max)`` — module-level and
    picklable like :func:`request_spectrum`, so megabatch payloads can
    cross a process pool.  Returns shape ``(len(requests), n_bins)``.

    Accumulation runs ion-major (outer loop over ions, inner over
    temperatures): row ``j`` receives exactly the same additions in
    exactly the same order as ``request_spectrum(requests[j])``, so each
    row is bit-identical to unbatched evaluation — the determinism
    contract the continuous-batching tests pin down.
    """
    from repro.physics.apec import _worker_db

    requests, n_max, z_max = payload
    if not requests:
        return np.zeros((0, 0), dtype=np.float64)
    lead = requests[0]
    db = _worker_db(n_max, z_max)
    grid = request_grid(lead)
    out = np.zeros((len(requests), grid.n_bins), dtype=np.float64)
    for ion in db.ions:
        if ion.z > lead.z_max:
            continue
        n_levels = db.n_levels(ion)
        for j, request in enumerate(requests):
            out[j] += ion_emission(ion, n_levels, request, grid)
    return out


def compile_tasks(
    request: SpectrumRequest,
    db: AtomicDatabase,
    point_index: int = 0,
    task_id_base: int = 0,
    with_payload: bool = True,
    plan_cache: PlanCache = PLAN_CACHE,
    trace_parent: int = 0,
) -> list[Task]:
    """Lower one request to Ion-granularity tasks for the hybrid runner.

    Every task carries the same execute callable on both the GPU and the
    CPU-fallback path (the service mirrors the repo's "real numerics
    under simulated time" rule: placement decides the *price*, never the
    *answer*), so a batch's accumulated spectrum is independent of
    scheduling.  ``with_payload=False`` compiles *cost-only* tasks —
    identical prices, no execute callables — for brokers that evaluate
    payloads out of band (closures cannot cross a process pool).

    Active-window pricing goes through the plan cache: the per-ion
    window search is compiled once per ``(db, grid, rule, tail_tol)``
    combination and repeated requests reprice from the cached plan.
    """
    if request.z_max > db.config.z_max:
        raise ValueError(
            f"request z_max={request.z_max} exceeds database "
            f"z_max={db.config.z_max}"
        )
    grid = request_grid(request)
    evals = request.evals_per_integral
    kt_kev = K_B_KEV * request.temperature_k
    ions = tuple(ion for ion in db.ions if ion.z <= request.z_max)

    # Active-window pruning shrinks the priced workload: the device
    # model, scheduler load counters, and autotuner all see the cheaper
    # tasks.  tail_tol=0 keeps the dense levels x bins count (pruning
    # off must price exactly like the legacy kernels).
    active_per_ion = None
    if request.tail_tol > 0.0:
        pieces, k = _plan_rule_knobs(request)
        plan = plan_cache.get(
            db, grid, ions=ions, method=request.rule,
            pieces=pieces, k=k, tail_tol=request.tail_tol, gaunt=True,
            trace_parent=trace_parent,
        )
        active_per_ion = plan.per_ion_active(kt_kev)

    tasks: list[Task] = []
    tid = task_id_base
    for i, ion in enumerate(ions):
        n_levels = db.n_levels(ion)
        n_active = None
        if active_per_ion is not None and n_levels > 0:
            n_active = int(active_per_ion[i])

        if with_payload:
            def execute(ion=ion, n_levels=n_levels) -> np.ndarray:
                return ion_emission(ion, n_levels, request, grid)
        else:
            execute = None

        tasks.append(
            Task(
                task_id=tid,
                kind=TaskKind.ION,
                kernel=KernelSpec.for_ion_task(
                    n_levels=n_levels,
                    n_bins=request.n_bins,
                    evals_per_integral=evals,
                    label=f"req{point_index}/{ion.name}",
                    execute=execute,
                    n_active=n_active,
                ),
                point_index=point_index,
                n_levels=n_levels,
                cpu_execute=execute,
                label=f"req{point_index}/{ion.name}",
                trace_parent=trace_parent,
                method=request.rule,
            )
        )
        tid += 1
    return tasks


def compile_group_tasks(
    requests: tuple[SpectrumRequest, ...],
    db: AtomicDatabase,
    point_index: int = 0,
    task_id_base: int = 0,
    with_payload: bool = True,
    plan_cache: PlanCache = PLAN_CACHE,
    spread: bool = False,
    trace_parent: int = 0,
) -> list[Task]:
    """Lower a same-family request group to megabatched ion tasks.

    The continuous-batching analogue of :func:`compile_tasks`: one task
    per ion covers *all* temperatures of the group, returning a stacked
    ``(width, n_bins)`` payload whose row ``j`` is bit-identical to the
    single-request task for ``requests[j]``.  The kernel is priced as the
    fused launch it models — the per-level parameter upload (``bytes_in``)
    is paid once for the whole group while the output, the dense bound
    and the active-pair count scale with the batch width — so the host
    prep, RPC, and submit overheads the simulation charges per *task*
    amortize across every temperature riding the batch.

    Active-window prices come from the shared plan (windows memoized per
    ``kT``), summed over the group's temperatures.

    ``spread=True`` gives task ``i`` point index ``point_index + i`` —
    one point per ion task — so the hybrid runner's per-point rank
    partition spreads the group's host prep across every rank instead
    of serializing the whole group on ``point_index % n_workers``.  The
    caller then owns the ion-order fold of the per-task blocks (the
    runner's per-point accumulation degenerates to identity).
    """
    group = tuple(requests)
    if not group:
        return []
    lead = group[0]
    if any(r.family_key != lead.family_key for r in group[1:]):
        raise ValueError("megabatch group must share one request family")
    if lead.z_max > db.config.z_max:
        raise ValueError(
            f"request z_max={lead.z_max} exceeds database "
            f"z_max={db.config.z_max}"
        )
    width = len(group)
    grid = request_grid(lead)
    evals = lead.evals_per_integral
    ions = tuple(ion for ion in db.ions if ion.z <= lead.z_max)

    active_per_ion = None
    if lead.tail_tol > 0.0:
        pieces, k = _plan_rule_knobs(lead)
        plan = plan_cache.get(
            db, grid, ions=ions, method=lead.rule,
            pieces=pieces, k=k, tail_tol=lead.tail_tol, gaunt=True,
            trace_parent=trace_parent,
        )
        active_per_ion = np.zeros(len(ions), dtype=np.int64)
        for request in group:
            active_per_ion += plan.per_ion_active(K_B_KEV * request.temperature_k)

    tasks: list[Task] = []
    tid = task_id_base
    for i, ion in enumerate(ions):
        n_levels = db.n_levels(ion)
        n_active = None
        if active_per_ion is not None and n_levels > 0:
            n_active = int(active_per_ion[i])

        if with_payload:
            def execute(ion=ion, n_levels=n_levels) -> np.ndarray:
                return np.stack(
                    [ion_emission(ion, n_levels, r, grid) for r in group]
                )
        else:
            execute = None

        label = f"grp{point_index}/{ion.name}x{width}"
        tasks.append(
            Task(
                task_id=tid,
                kind=TaskKind.ION,
                kernel=KernelSpec.for_ion_task(
                    n_levels=n_levels,
                    n_bins=lead.n_bins * width,
                    evals_per_integral=evals,
                    label=label,
                    execute=execute,
                    n_active=n_active,
                ),
                point_index=point_index + len(tasks) if spread else point_index,
                n_levels=n_levels,
                cpu_execute=execute,
                label=label,
                trace_parent=trace_parent,
                method=lead.rule,
            )
        )
        tid += 1
    return tasks


def group_member_weights(
    requests: tuple[SpectrumRequest, ...],
    db: AtomicDatabase,
    plan_cache: PlanCache = PLAN_CACHE,
) -> list[float]:
    """Fair-share weights of one megabatch group's member requests.

    The width-proportional baseline (every member rides the same fused
    launch) corrected by each member's *marginal* work: with active-window
    pruning on, a member's weight is its temperature's total active
    (level, bin) pair count summed over the group's ions — exactly the
    term its row contributes to the fused kernel's priced work — so hot
    temperatures that keep more windows alive carry proportionally more
    of the group's measured cost.  With pruning off every temperature
    prices the same dense ``levels x bins`` work and the weights are
    uniform.  Weights are plain deterministic floats (no measurement in
    the loop), so attribution splits are bit-identical across execution
    backends.
    """
    group = tuple(requests)
    if not group:
        return []
    lead = group[0]
    if lead.tail_tol <= 0.0:
        return [1.0] * len(group)
    grid = request_grid(lead)
    ions = tuple(ion for ion in db.ions if ion.z <= lead.z_max)
    pieces, k = _plan_rule_knobs(lead)
    plan = plan_cache.get(
        db, grid, ions=ions, method=lead.rule,
        pieces=pieces, k=k, tail_tol=lead.tail_tol, gaunt=True,
    )
    weights = [
        float(plan.per_ion_active(K_B_KEV * r.temperature_k).sum()) for r in group
    ]
    if all(w <= 0.0 for w in weights):
        return [1.0] * len(group)
    # A fully pruned member still rode the launch: floor at one pair so
    # the split stays defined and every member pays a nonzero share.
    return [max(w, 1.0) for w in weights]
