"""Task granularity: packing integrals into schedulable tasks.

Section III-B: "we defined a coarse-grained task, and such a task contains
tens of thousands RRC integrals... both the energy level and the ion can
be used to define the task scope."  Three policies are provided:

- ``ION`` (the paper's winner): one task per ion, all of its levels'
  bins accumulated on-device, one result transfer;
- ``LEVEL`` (the paper's fine-grained comparison): one task per energy
  level (~bins_per_level integrals each);
- ``ELEMENT`` (the paper's "too coarse" remark, built for the ablation
  bench): one task per element, covering all of its ions.

Level counts come from the real synthetic database, so task sizes are
genuinely inhomogeneous — with the default profile (n_max = 5,
bins_per_level = 5e4) one grid point carries ~2e8 integrals, the scale
the paper quotes in Fig. 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.atomic.ions import Ion
from repro.core.task import Task, TaskKind
from repro.gpusim.kernel import KernelSpec

__all__ = [
    "Granularity",
    "WorkloadSpec",
    "build_tasks",
    "workload_database",
    "ELEMENT_KERNEL_EFFICIENCY",
]

#: Achieved fraction of peak device throughput for element-granularity
#: kernels (branch divergence over heterogeneous ions).
ELEMENT_KERNEL_EFFICIENCY: float = 0.5


class Granularity(enum.Enum):
    ION = "ion"
    LEVEL = "level"
    ELEMENT = "element"

    @property
    def task_kind(self) -> TaskKind:
        return {
            Granularity.ION: TaskKind.ION,
            Granularity.LEVEL: TaskKind.LEVEL,
            Granularity.ELEMENT: TaskKind.ELEMENT,
        }[self]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one spectral-calculation workload.

    Defaults mirror the paper's test: 24 grid points, ion granularity,
    Simpson with 64 pieces, ~5e4 bins per level, and a level-count
    profile whose per-point total lands at ~2e8 integrals.
    """

    n_points: int = 24
    bins_per_level: int = 50_000
    granularity: Granularity = Granularity.ION
    method: str = "simpson"  # "simpson" | "romberg"
    pieces: int = 64
    k: int = 7
    db_config: AtomicConfig = field(default_factory=lambda: AtomicConfig(n_max=5))

    def __post_init__(self) -> None:
        if self.n_points < 1:
            raise ValueError("need at least one grid point")
        if self.bins_per_level < 1:
            raise ValueError("need at least one bin per level")
        if self.method not in ("simpson", "romberg"):
            raise ValueError(f"unknown method {self.method!r}")

    @property
    def evals_per_integral(self) -> int:
        """Integrand evaluations per bin integral on the GPU path."""
        if self.method == "simpson":
            return self.pieces + 1
        return 2**self.k + 1


def workload_database(spec: WorkloadSpec) -> AtomicDatabase:
    """The database supplying the level-count profile of a workload."""
    return AtomicDatabase(spec.db_config)


def build_tasks(
    spec: WorkloadSpec,
    db: Optional[AtomicDatabase] = None,
    gpu_execute_factory: Optional[Callable[[Ion, int], Callable[[], object]]] = None,
    cpu_execute_factory: Optional[Callable[[Ion, int], Callable[[], object]]] = None,
) -> list[Task]:
    """Materialize the task list of a workload.

    Parameters
    ----------
    gpu_execute_factory / cpu_execute_factory:
        Optional ``(ion, point_index) -> callable`` hooks attaching real
        numerics to each task (used by the accuracy experiments); cost-only
        simulation runs leave them ``None``.

    Tasks are ordered by (point, ion) — the order each MPI rank walks its
    sub-space in the paper.
    """
    db = db or workload_database(spec)
    evals = spec.evals_per_integral
    tasks: list[Task] = []
    tid = 0

    for point in range(spec.n_points):
        if spec.granularity is Granularity.ION:
            for ion in db.ions:
                n_levels = db.n_levels(ion)
                gpu_exec = (
                    gpu_execute_factory(ion, point) if gpu_execute_factory else None
                )
                cpu_exec = (
                    cpu_execute_factory(ion, point) if cpu_execute_factory else None
                )
                tasks.append(
                    Task(
                        task_id=tid,
                        kind=TaskKind.ION,
                        kernel=KernelSpec.for_ion_task(
                            n_levels=n_levels,
                            n_bins=spec.bins_per_level,
                            evals_per_integral=evals,
                            label=f"pt{point}/{ion.name}",
                            execute=gpu_exec,
                        ),
                        point_index=point,
                        n_levels=n_levels,
                        cpu_execute=cpu_exec,
                        label=f"pt{point}/{ion.name}",
                    )
                )
                tid += 1
        elif spec.granularity is Granularity.LEVEL:
            for ion in db.ions:
                n_levels = db.n_levels(ion)
                gpu_exec = (
                    gpu_execute_factory(ion, point) if gpu_execute_factory else None
                )
                cpu_exec = (
                    cpu_execute_factory(ion, point) if cpu_execute_factory else None
                )
                for lvl in range(n_levels):
                    tasks.append(
                        Task(
                            task_id=tid,
                            kind=TaskKind.LEVEL,
                            kernel=KernelSpec.for_level_task(
                                n_bins=spec.bins_per_level,
                                evals_per_integral=evals,
                                label=f"pt{point}/{ion.name}/L{lvl}",
                                execute=gpu_exec if lvl == 0 else None,
                            ),
                            point_index=point,
                            n_levels=1,
                            cpu_execute=cpu_exec if lvl == 0 else None,
                            label=f"pt{point}/{ion.name}/L{lvl}",
                        )
                    )
                    tid += 1
        elif spec.granularity is Granularity.ELEMENT:
            by_element: dict[int, list[Ion]] = {}
            for ion in db.ions:
                by_element.setdefault(ion.z, []).append(ion)
            for z, ions in sorted(by_element.items()):
                n_levels = sum(db.n_levels(ion) for ion in ions)
                tasks.append(
                    Task(
                        task_id=tid,
                        kind=TaskKind.ELEMENT,
                        kernel=KernelSpec.for_ion_task(
                            n_levels=n_levels,
                            n_bins=spec.bins_per_level,
                            evals_per_integral=evals,
                            label=f"pt{point}/Z{z}",
                            # Multi-ion kernels branch across ions: the
                            # paper's reason element granularity is "not
                            # suitable to run on GPU".
                            efficiency=ELEMENT_KERNEL_EFFICIENCY,
                        ),
                        point_index=point,
                        n_levels=n_levels,
                        label=f"pt{point}/Z{z}",
                    )
                )
                tid += 1
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(spec.granularity)
    return tasks
