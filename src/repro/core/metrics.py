"""Measurement ledger behind Figs. 4-6 and Tables I-II.

Collected during a hybrid run:

- task placement counts (per device / CPU fallback) -> Fig. 5, Table I;
- time-weighted *load residency*: how long each device's load sat at each
  value 0..max -> Fig. 6 and Table I's "GPU load >= 3" column;
- per-device busy statistics and the run makespan -> Figs. 3-4;
- per-task wait/service records for deeper diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TaskEvent", "MetricsLedger", "RunResult"]


@dataclass(frozen=True)
class TaskEvent:
    """One task's lifetime inside a hybrid run (for timeline analysis).

    ``enqueue`` is when the task became ready for service (GPU path: the
    moment it was submitted to the device; CPU path: when the fallback
    execution began), ``start`` is when service actually began (GPU
    path: after any device-queue wait), and ``end`` is when the rank
    moved on (result in hand) — so ``start``/``end`` delimit pure
    service and :attr:`wait` is the queueing delay, no longer conflated.
    ``device`` is -1 for CPU fallback executions.  ``enqueue`` defaults
    to ``None`` for hand-built events (wait reads as zero).
    """

    rank: int
    task_id: int
    placement: str  # "gpu" | "cpu"
    device: int
    start: float
    end: float
    enqueue: float | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def wait(self) -> float:
        """Queueing delay between readiness and service start."""
        if self.enqueue is None:
            return 0.0
        return self.start - self.enqueue


class MetricsLedger:
    """Accumulates scheduling statistics over one simulated run."""

    def __init__(
        self, n_devices: int, max_queue_length: int, start_time: float = 0.0
    ) -> None:
        if n_devices < 0 or max_queue_length < 0:
            raise ValueError("negative sizes")
        self.n_devices = n_devices
        self.max_queue_length = max_queue_length
        #: Virtual time the run began — non-zero for batches embedded in a
        #: larger simulation (the service broker), so residency intervals
        #: open at the batch start rather than at t = 0.
        self.start_time = start_time
        self.gpu_tasks = np.zeros(max(1, n_devices), dtype=np.int64)
        self.cpu_tasks = 0
        # Load residency: residency[d, L] = virtual seconds device d spent
        # with load exactly L.
        self.load_residency = np.zeros(
            (max(1, n_devices), max_queue_length + 1), dtype=np.float64
        )
        self._last_change = np.full(max(1, n_devices), start_time, dtype=np.float64)
        self._current_load = np.zeros(max(1, n_devices), dtype=np.int64)
        self.task_waits: list[float] = []
        self.task_services: list[float] = []
        #: Work stealing (predictive dispatch): tasks each device pulled
        #: from another queue / had pulled away.  All-zero on depth runs.
        self.steals = np.zeros(max(1, n_devices), dtype=np.int64)
        self.donations = np.zeros(max(1, n_devices), dtype=np.int64)
        #: Predicted-vs-measured service pairs from the cost model
        #: (predictive dispatch only): one (predicted_s, measured_s) per
        #: GPU-executed task, for the prediction-error histogram.
        self.predictions: list[tuple[float, float]] = []
        #: Integrand evaluations pruned by active windows across the
        #: batch's tasks (set once by the runner, folded by telemetry).
        self.evals_saved: int = 0
        self.end_time: float = 0.0
        #: Per-task timeline records (populated only when the runner is
        #: configured with ``record_trace=True``).
        self.trace: list[TaskEvent] = []

    # ------------------------------------------------------------------
    # Hooks called by the scheduler / runner
    # ------------------------------------------------------------------
    def on_load_change(self, device: int, old: int, new: int, now: float) -> None:
        """Close the residency interval at ``old`` and open one at ``new``."""
        self.load_residency[device, old] += now - self._last_change[device]
        self._last_change[device] = now
        self._current_load[device] = new
        if new > old:
            self.gpu_tasks[device] += 1

    def on_cpu_task(self) -> None:
        self.cpu_tasks += 1

    def on_admission_revoked(self, device: int) -> None:
        """Undo one GPU-task count (admission whose submit failed)."""
        if self.gpu_tasks[device] <= 0:
            raise ValueError(f"device {device} has no admissions to revoke")
        self.gpu_tasks[device] -= 1

    def on_task_timing(self, wait_s: float, service_s: float) -> None:
        self.task_waits.append(wait_s)
        self.task_services.append(service_s)

    def on_steal(self, victim: int, thief: int) -> None:
        """One task moved from ``victim``'s queue to ``thief``'s.

        The thief's ``on_load_change`` rise already counted the task as
        a thief placement, so the victim hands its admission-time count
        back — total GPU task counts are conserved across steals.
        """
        if self.gpu_tasks[victim] <= 0:
            raise ValueError(f"device {victim} has no admissions to donate")
        self.gpu_tasks[victim] -= 1
        self.steals[thief] += 1
        self.donations[victim] += 1

    def on_prediction(self, predicted_s: float, measured_s: float) -> None:
        """One cost-model prediction resolved against measured service."""
        self.predictions.append((predicted_s, measured_s))

    def on_task_event(self, event: TaskEvent) -> None:
        self.trace.append(event)

    def to_chrome_trace(self) -> list[dict]:
        """The task timeline as Chrome trace-event JSON objects.

        Load the returned list (``json.dump`` it to a file) in
        ``chrome://tracing`` or Perfetto: one row per rank, one per GPU,
        complete ("X") events with microsecond timestamps.
        """
        events = []
        for ev in self.trace:
            if ev.placement == "gpu":
                pid, tid = 1, ev.device
                name = f"task {ev.task_id} (gpu{ev.device})"
            else:
                pid, tid = 0, ev.rank
                name = f"task {ev.task_id} (cpu)"
            events.append(
                {
                    "name": name,
                    "cat": ev.placement,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": ev.start * 1e6,
                    "dur": ev.duration * 1e6,
                    "args": {
                        "rank": ev.rank,
                        "task_id": ev.task_id,
                        "wait_s": ev.wait,
                    },
                }
            )
        return events

    def gantt_rows(self) -> list[tuple[int, str, float, float]]:
        """(lane, label, start, end) rows for timeline rendering.

        GPU executions get lanes ``n_ranks + device`` so devices and ranks
        can be plotted on one chart; here lanes are simply rank for CPU
        rows and 1000 + device for GPU rows.
        """
        rows = []
        for ev in self.trace:
            lane = 1000 + ev.device if ev.placement == "gpu" else ev.rank
            rows.append((lane, f"{ev.placement}:{ev.task_id}", ev.start, ev.end))
        return rows

    def finalize(self, now: float) -> None:
        """Close all residency intervals at the end of the run."""
        for d in range(self.n_devices):
            self.load_residency[d, self._current_load[d]] += (
                now - self._last_change[d]
            )
            self._last_change[d] = now
        self.end_time = now

    # ------------------------------------------------------------------
    # Derived quantities (the paper's reported metrics)
    # ------------------------------------------------------------------
    @property
    def total_tasks(self) -> int:
        return int(self.gpu_tasks.sum()) + self.cpu_tasks

    def gpu_task_ratio(self) -> float:
        """Fig. 5: tasks achieved by GPUs / total tasks."""
        total = self.total_tasks
        if total == 0:
            return 0.0
        return float(self.gpu_tasks.sum()) / total

    def load_distribution_percent(self, device: int = 0) -> np.ndarray:
        """Fig. 6: % of run time device spent at each load 0..max."""
        row = self.load_residency[device]
        total = row.sum()
        if total == 0.0:
            return np.zeros_like(row)
        return row / total * 100.0

    def load_at_least_ratio(self, threshold: int, device: int = 0) -> float:
        """Table I: fraction of run time with load >= ``threshold``."""
        row = self.load_residency[device]
        total = row.sum()
        if total == 0.0:
            return 0.0
        return float(row[threshold:].sum() / total)

    def mean_wait_s(self) -> float:
        return float(np.mean(self.task_waits)) if self.task_waits else 0.0

    @property
    def total_steals(self) -> int:
        return int(self.steals.sum())

    def prediction_errors(self) -> list[float]:
        """Relative |predicted - measured| / measured per resolved task."""
        return [
            abs(p - m) / m for p, m in self.predictions if m > 0.0
        ]

    def mean_device_load(self, device: int) -> float:
        """Time-weighted mean queue load of one device over the run."""
        row = self.load_residency[device]
        total = row.sum()
        if total == 0.0:
            return 0.0
        return float((row * np.arange(row.size)).sum() / total)

    def load_imbalance(self) -> float:
        """Spread of time-weighted mean loads across devices (max - min).

        0 = perfectly even residency; the gauge the predictive scheduler
        and work stealing exist to push down on skewed workloads.
        """
        if self.n_devices < 2:
            return 0.0
        means = [self.mean_device_load(d) for d in range(self.n_devices)]
        return max(means) - min(means)


@dataclass
class RunResult:
    """Outcome of one hybrid (or baseline) run."""

    makespan_s: float
    metrics: MetricsLedger
    n_tasks: int
    mode: str = "hybrid"
    #: point_index -> accumulated per-bin spectrum (real-execution runs).
    spectra: dict[int, np.ndarray] = field(default_factory=dict)
    #: Device utilizations at the end of the run.
    gpu_utilization: list[float] = field(default_factory=list)

    def speedup_vs(self, baseline_s: float) -> float:
        """Speedup of this run relative to a baseline wall time."""
        if self.makespan_s <= 0.0:
            raise ValueError("makespan must be positive to form a speedup")
        return baseline_s / self.makespan_s
