"""The complete Fig. 2 program over the message-passing layer.

:mod:`repro.core.hybrid` spawns worker generators directly — the right
tool for experiments.  This module instead reproduces the paper's actual
program structure end to end:

    main rank:  read input -> bcast config -> scatter point sub-spaces
    all ranks:  per-task loop { prep; SCHE-ALLOC; GPU or CPU; SCHE-FREE }
    main rank:  gather per-rank results -> aggregate

with every inter-rank interaction going through
:class:`~repro.cluster.mpi.MiniComm` collectives, exactly as the MPI
wrapper around APEC does.  It produces the same makespans as the direct
runner (the collectives cost ~nothing next to the tasks), which is itself
a cross-check of the two implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cluster.mpi import MiniComm
from repro.cluster.simclock import SimClock
from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig
from repro.core.metrics import MetricsLedger, RunResult
from repro.core.scheduler import NO_DEVICE, SharedMemoryScheduler
from repro.core.task import Task
from repro.gpusim.device import SimulatedGPU

__all__ = ["MPIProgram"]


@dataclass
class _RankSummary:
    """What each rank reports back at the gather."""

    rank: int
    tasks_done: int
    gpu_tasks: int
    cpu_tasks: int
    spectra: dict[int, np.ndarray] = field(default_factory=dict)


class MPIProgram:
    """Run a task list as the paper's MPI program (main + ranks)."""

    def __init__(self, config: HybridConfig | None = None, latency: float = 0.0) -> None:
        self.config = config or HybridConfig()
        self.latency = latency

    def run(self, tasks: list[Task]) -> RunResult:
        cfg = self.config
        clock = SimClock()
        comm = MiniComm(clock, cfg.n_workers, latency=self.latency)
        metrics = MetricsLedger(cfg.n_gpus, cfg.max_queue_length)
        sched = SharedMemoryScheduler(
            cfg.n_gpus, cfg.max_queue_length, metrics, tie_break=cfg.tie_break
        )
        specs = cfg.devices or tuple(cfg.device for _ in range(cfg.n_gpus))
        gpus = [SimulatedGPU(clock, specs[d], index=d) for d in range(cfg.n_gpus)]
        summaries: dict[int, list[_RankSummary]] = {}

        for rank in range(cfg.n_workers):
            clock.spawn(
                self._rank_program(
                    rank, tasks, clock, comm, sched, gpus, metrics, summaries
                ),
                name=f"mpi-rank{rank}",
            )
        makespan = clock.run()
        metrics.finalize(makespan)
        sched.validate()

        gathered = summaries.get(0, [])
        spectra: dict[int, np.ndarray] = {}
        for summary in gathered:
            for point, arr in summary.spectra.items():
                if point in spectra:
                    spectra[point] = spectra[point] + arr
                else:
                    spectra[point] = arr
        return RunResult(
            makespan_s=makespan,
            metrics=metrics,
            n_tasks=len(tasks),
            mode="mpi-program",
            spectra=spectra,
            gpu_utilization=[g.utilization(makespan) for g in gpus],
        )

    # ------------------------------------------------------------------
    def _rank_program(
        self,
        rank: int,
        all_tasks: list[Task],
        clock: SimClock,
        comm: MiniComm,
        sched: SharedMemoryScheduler,
        gpus: list[SimulatedGPU],
        metrics: MetricsLedger,
        summaries: dict[int, list[_RankSummary]],
    ) -> Generator:
        cfg = self.config
        cost: CostModel = cfg.cost

        # --- main reads the input and broadcasts the run configuration.
        run_cfg = (
            {"max_queue_length": cfg.max_queue_length, "n_gpus": cfg.n_gpus}
            if rank == 0
            else None
        )
        run_cfg = yield from comm.bcast(run_cfg, root=0, rank=rank)
        assert run_cfg["max_queue_length"] == cfg.max_queue_length

        # --- main divides the space into equal sub-spaces and scatters.
        if rank == 0:
            chunks: Optional[list[list[Task]]] = [
                [] for _ in range(cfg.n_workers)
            ]
            for task in all_tasks:
                chunks[task.point_index % cfg.n_workers].append(task)
        else:
            chunks = None
        my_tasks: list[Task] = yield from comm.scatter(chunks, root=0, rank=rank)

        # --- startup skew, then the per-task loop of Fig. 2.
        yield rank * (cfg.stagger_s or 0.0)
        gpu_done = 0
        cpu_done = 0
        spectra: dict[int, np.ndarray] = {}
        counts: dict[int, int] = {}
        for task in my_tasks:
            counts[task.point_index] = counts.get(task.point_index, 0) + 1
        share = {p: cost.point_overhead_s / c for p, c in counts.items()}

        for task in my_tasks:
            yield cost.prep_s(task.n_levels) + share[task.point_index]
            device = sched.sche_alloc(clock.now)
            if device != NO_DEVICE:
                yield cost.submit_overhead_s
                done = gpus[device].submit(task.kernel)
                payload = yield done
                sched.sche_free(device, clock.now)
                gpu_done += 1
            else:
                yield cost.cpu_task_fallback_s(
                    task.n_integrals, task.cpu_evals_per_integral
                )
                payload = task.run_cpu()
                metrics.on_cpu_task()
                cpu_done += 1
            if payload is not None:
                arr = np.asarray(payload, dtype=np.float64)
                if task.point_index in spectra:
                    spectra[task.point_index] = spectra[task.point_index] + arr
                else:
                    spectra[task.point_index] = arr

        # --- gather results at the main rank.
        summary = _RankSummary(
            rank=rank,
            tasks_done=len(my_tasks),
            gpu_tasks=gpu_done,
            cpu_tasks=cpu_done,
            spectra=spectra,
        )
        gathered = yield from comm.gather(summary, root=0, rank=rank)
        if rank == 0:
            summaries[0] = gathered
