"""The end-to-end hybrid runner — the architecture of Fig. 2.

The main program divides the parameter space into equal subspaces (one or
more grid points per MPI rank); each rank walks its tasks, asking the
local scheduler for a device per task.  Admitted tasks run on the chosen
GPU while the rank blocks (the paper's synchronous mode); rejected tasks
run on the rank's own CPU with the serial QAGS routine.

Besides the hybrid run, the runner prices the two baselines every speedup
in the paper is quoted against:

- :meth:`HybridRunner.serial_time` — the original serial APEC;
- :meth:`HybridRunner.run_mpi_only` — the 24-rank pure-MPI version
  (13.5x over serial, per the paper).

An asynchronous mode (bounded in-flight submissions per rank) implements
the paper's "future work" paragraph and is exercised by an ablation
bench.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.cluster.simclock import SimClock
from repro.core.calibration import CostModel
from repro.core.metrics import MetricsLedger, RunResult, TaskEvent
from repro.obs.attribution import ion_from_label
from repro.obs.bus import RunBus
from repro.obs.tracer import NULL_TRACER
from repro.obs.tsdb import NULL_TSDB
from repro.core.scheduler import (
    NO_DEVICE,
    ClientServerScheduler,
    PredictiveScheduler,
    RandomScheduler,
    SharedMemoryScheduler,
    WeightedScheduler,
)
from repro.core.task import Task
from repro.gpusim.device import DeviceSpec, SimulatedGPU, TESLA_C2075

__all__ = ["HybridConfig", "HybridRunner"]


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of one hybrid run (paper defaults: 24 ranks, Fermi GPUs)."""

    n_workers: int = 24
    n_gpus: int = 3
    max_queue_length: int = 12
    device: DeviceSpec = TESLA_C2075
    #: Optional heterogeneous fleet: one spec per GPU (overrides
    #: ``device`` x ``n_gpus``).  The paper's node is homogeneous; mixed
    #: fleets exercise the scheduler's "tasks of equal size" assumption.
    devices: Optional[tuple[DeviceSpec, ...]] = None
    cost: CostModel = field(default_factory=CostModel)
    #: "shared" (Algorithm 1), "client-server" (MPS-like ablation),
    #: "random" (policy baseline), "weighted" (the future-work speed-aware
    #: rule; uses each device's mean service time for a reference task),
    #: "predictive" (measured-cost placement via the online EWMA cost
    #: model, with work stealing in the dispatch loop).
    scheduler_kind: str = "shared"
    rpc_latency_s: float = 5.0e-4
    #: Work stealing on the predictive dispatch path: an idle device
    #: pulls from the tail of the most-loaded pending queue.  Results
    #: are bit-identical either way (placement prices, never answers);
    #: off is the ablation that isolates placement from stealing.
    steal: bool = True
    #: Predictive CPU-fallback threshold, in predicted *seconds*: a task
    #: whose best predicted finish time exceeds this runs on the rank's
    #: CPU instead.  ``None`` keeps only the slot-count bound.
    cpu_threshold_s: Optional[float] = None
    #: 0 = synchronous (the paper's implementation); n > 0 allows each
    #: rank n outstanding GPU tasks (the "future work" asynchronous mode).
    async_depth: int = 0
    #: Per-rank start offset modelling real MPI startup skew (ranks never
    #: hit the scheduler in perfect lockstep); 0.2 s spreads the 24 ranks
    #: over ~5 s, killing the artificial t=0 admission burst.
    stagger_s: Optional[float] = 0.2
    #: Tie-breaking rule among equally loaded devices ("history" = the
    #: paper's minimum-history rule; "first" = positional, for ablation).
    tie_break: str = "history"
    #: Record a per-task TaskEvent timeline in the metrics ledger
    #: (off by default: ~12k events per paper-scale run).
    record_trace: bool = False

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("need at least one worker")
        if self.n_gpus < 0:
            raise ValueError("GPU count must be non-negative")
        if self.max_queue_length < 1:
            raise ValueError("maximum queue length must be >= 1")
        if self.scheduler_kind not in (
            "shared", "client-server", "random", "weighted", "predictive"
        ):
            raise ValueError(f"unknown scheduler kind {self.scheduler_kind!r}")
        if self.async_depth < 0:
            raise ValueError("async_depth must be non-negative")
        if self.scheduler_kind == "predictive" and self.async_depth > 0:
            raise ValueError(
                "predictive scheduling dispatches through per-device "
                "workers; async_depth applies only to direct-submit modes"
            )
        if self.cpu_threshold_s is not None and self.cpu_threshold_s <= 0.0:
            raise ValueError("cpu_threshold_s must be positive or None")
        if self.devices is not None and len(self.devices) != self.n_gpus:
            raise ValueError(
                f"devices tuple has {len(self.devices)} entries for "
                f"n_gpus={self.n_gpus}"
            )


class HybridRunner:
    """Runs task lists through the simulated hybrid node.

    ``tracer`` (default: the no-op tracer) receives per-task spans with
    placement-decision attributes (queue loads, history counts, chosen
    device), queue-wait sub-spans, per-device load counters, and batch
    spans; ``scope`` names the trace process grouping the node's tracks
    (the service broker sets it to the owning worker's name).

    ``tsdb`` (default: the no-op :data:`~repro.obs.tsdb.NULL_TSDB`)
    receives continuous telemetry: each batch scrapes a live registry of
    the ledger's state at its start and end, plus every
    ``scrape_cadence_s`` of virtual time in between via a cadence
    process on the batch's clock.  Scraping is pure observation — the
    simulated schedule is bit-identical with or without it.
    """

    def __init__(
        self,
        config: HybridConfig | None = None,
        tracer=None,
        scope: str = "hybrid",
        tsdb=None,
        scrape_cadence_s: float = 0.5,
        span_cost_model=None,
    ) -> None:
        self.config = config or HybridConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scope = scope
        self.tsdb = tsdb if tsdb is not None else NULL_TSDB
        if scrape_cadence_s <= 0.0:
            raise ValueError("scrape_cadence_s must be positive")
        self.scrape_cadence_s = scrape_cadence_s
        #: Online EWMA :class:`~repro.obs.attribution.CostModel` backing
        #: predictive placement.  ``None`` lazily seeds one from the
        #: config's device spec + the kernel-savings ledger on the first
        #: predictive batch; the broker passes its shared (possibly
        #: persisted) model so every batch prices from the same history.
        self.span_cost_model = span_cost_model

    # ------------------------------------------------------------------
    # Observability handles
    # ------------------------------------------------------------------
    def registry(self, result, wall_s: float | None = None):
        """Metrics snapshot of one finished run's ledger.

        Thin handle over :func:`repro.obs.prom.run_registry`, so the SLO
        engine and exposition writers can consume a run without knowing
        the registry module.
        """
        from repro.obs.prom import run_registry

        return run_registry(result, wall_s=wall_s)

    def profile(self):
        """Hierarchical cost attribution over this runner's trace.

        Requires the runner to have been built with an
        :class:`~repro.obs.tracer.EventTracer` and at least one batch to
        have run through it.
        """
        from repro.obs.profile import Profile

        if not self.tracer.enabled:
            raise ValueError(
                "runner has no event tracer; construct it with "
                "tracer=EventTracer() to profile"
            )
        return Profile.from_tracer(self.tracer)

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def serial_time(self, tasks: list[Task]) -> float:
        """Wall time of the original serial APEC on this workload."""
        cost = self.config.cost
        total = 0.0
        points = set()
        for task in tasks:
            total += cost.cpu_task_serial_s(task.n_integrals, task.cpu_evals_per_integral)
            total += cost.prep_s(task.n_levels)
            points.add(task.point_index)
        return total + len(points) * cost.point_overhead_s

    def run_mpi_only(self, tasks: list[Task]) -> RunResult:
        """The pure-MPI baseline: every task on its rank's CPU."""
        cost = self.config.cost
        per_worker = self._partition(tasks)
        makespans = []
        metrics = MetricsLedger(0, self.config.max_queue_length)
        for my_tasks in per_worker:
            t = 0.0
            points = set()
            for task in my_tasks:
                points.add(task.point_index)
                t += cost.prep_s(task.n_levels)
                t += cost.cpu_task_mpi_s(task.n_integrals, task.cpu_evals_per_integral)
                metrics.on_cpu_task()
            t += len(points) * cost.point_overhead_s
            makespans.append(t)
        makespan = max(makespans) if makespans else 0.0
        metrics.finalize(makespan)
        return RunResult(
            makespan_s=makespan, metrics=metrics, n_tasks=len(tasks), mode="mpi"
        )

    # ------------------------------------------------------------------
    # The hybrid run
    # ------------------------------------------------------------------
    def run(self, tasks: list[Task]) -> RunResult:
        """Simulate the full hybrid execution; returns the run result."""
        clock = SimClock()
        handle = self.spawn_batch(tasks, clock)
        clock.run()
        if handle.alive:
            # The event heap drained with ranks still blocked: a device
            # died with tasks in flight and their waiters are stranded.
            raise RuntimeError(
                "hybrid run stalled: stranded waiters leaked queue slots"
            )
        result = handle.result
        assert isinstance(result, RunResult)
        return result

    def spawn_batch(self, tasks: list[Task], clock: SimClock, name: str = "batch"):
        """Start one batch as a process on an *existing* clock.

        This is the reusable per-batch entry point the service broker
        dispatches through: the batch runs embedded in the caller's
        simulation (its ranks, scheduler, and GPUs live on the shared
        clock), and the returned :class:`ProcessHandle` can be yielded
        from another process to join.  ``handle.result`` is the batch's
        :class:`RunResult`; its ``makespan_s`` is the batch's *elapsed*
        virtual time, not the absolute clock reading.
        """
        if self.tracer.enabled and not self.tracer.bound:
            self.tracer.bind(clock)
        return clock.spawn(self._batch_process(tasks, clock, name), name=name)

    def _batch_process(
        self, tasks: list[Task], clock: SimClock, name: str = "batch"
    ) -> Generator:
        """Generator process executing one batch; returns its RunResult."""
        cfg = self.config
        tracer = self.tracer
        start = clock.now
        metrics = MetricsLedger(cfg.n_gpus, cfg.max_queue_length, start_time=start)
        metrics.evals_saved = sum(t.kernel.evals_saved for t in tasks)
        if tracer.enabled:
            device_tracks = [
                tracer.track(self.scope, f"gpu{d}") for d in range(cfg.n_gpus)
            ]
            batch_track = tracer.track(self.scope, "batches")
        else:
            device_tracks = []
            batch_track = 0
        # The bus is the single ingestion point: the ledger (and, when
        # tracing, the span tracer) consume the same event stream.
        bus = RunBus(metrics, tracer, device_tracks)
        specs = cfg.devices or tuple(cfg.device for _ in range(cfg.n_gpus))
        if cfg.scheduler_kind == "client-server":
            sched: SharedMemoryScheduler = ClientServerScheduler(
                cfg.n_gpus, cfg.max_queue_length, cfg.rpc_latency_s, bus
            )
            sched.tie_break = cfg.tie_break
        elif cfg.scheduler_kind == "random":
            sched = RandomScheduler(cfg.n_gpus, cfg.max_queue_length, bus)
        elif cfg.scheduler_kind == "weighted":
            reference = tasks[0].kernel if tasks else None
            service = [
                specs[d].service_time(reference) if reference is not None else 1.0
                for d in range(cfg.n_gpus)
            ]
            sched = WeightedScheduler(
                cfg.n_gpus, cfg.max_queue_length, service, bus
            )
        elif cfg.scheduler_kind == "predictive":
            sched = PredictiveScheduler(
                cfg.n_gpus,
                cfg.max_queue_length,
                bus,
                cpu_threshold_s=cfg.cpu_threshold_s,
                tie_break=cfg.tie_break,
            )
        else:
            sched = SharedMemoryScheduler(
                cfg.n_gpus, cfg.max_queue_length, bus, tie_break=cfg.tie_break
            )
        if tracer.enabled:
            gpus = [
                SimulatedGPU(
                    clock, specs[d], index=d, tracer=tracer, track=device_tracks[d]
                )
                for d in range(cfg.n_gpus)
            ]
        else:
            # Positional-only construction so test doubles that replace
            # SimulatedGPU.__init__ with the narrower historical signature
            # keep working when tracing is off.
            gpus = [SimulatedGPU(clock, specs[d], index=d) for d in range(cfg.n_gpus)]
        spectra: dict[int, np.ndarray] = {}

        dispatch = None
        if cfg.scheduler_kind == "predictive":
            if self.span_cost_model is None:
                from repro.obs.attribution import CostModel as SpanCostModel

                self.span_cost_model = SpanCostModel.seeded_from_counters(
                    cfg.device
                )
            dispatch = _PredictiveDispatch(
                clock, sched, gpus, bus, self.span_cost_model,
                steal=cfg.steal,
            )
            for d in range(cfg.n_gpus):
                for slot in range(specs[d].max_concurrent_kernels):
                    clock.spawn(
                        dispatch.device_worker(d),
                        name=f"{name}.gpu{d}.disp{slot}",
                    )

        per_worker = self._partition(tasks)
        stagger = self._stagger()
        handles = []
        for rank, my_tasks in enumerate(per_worker):
            rank_track = (
                tracer.track(self.scope, f"rank{rank}") if tracer.enabled else 0
            )
            if dispatch is not None:
                gen = self._worker_predictive(
                    rank, my_tasks, clock, sched, dispatch, bus, spectra,
                    stagger, rank_track,
                )
            elif cfg.async_depth > 0:
                gen = self._worker_async(
                    rank, my_tasks, clock, sched, gpus, bus, spectra, stagger,
                    rank_track,
                )
            else:
                gen = self._worker_sync(
                    rank, my_tasks, clock, sched, gpus, bus, spectra, stagger,
                    rank_track,
                )
            handles.append(clock.spawn(gen, name=f"rank{rank}"))

        # Continuous telemetry: scrape the ledger's live state at the
        # batch boundaries and on a cadence process in between.  Pure
        # observation — the workers' schedule is untouched.
        batch_done = [False]
        if self.tsdb.enabled:
            self.tsdb.scrape(self._live_registry(metrics, cfg.n_gpus), clock.now)

            def scraper() -> Generator:
                while True:
                    yield self.scrape_cadence_s
                    if batch_done[0]:
                        return
                    self.tsdb.scrape(
                        self._live_registry(metrics, cfg.n_gpus), clock.now
                    )

            clock.spawn(scraper(), name=f"{name}.scraper")

        for handle in handles:
            yield handle
        batch_done[0] = True
        if dispatch is not None:
            dispatch.close()
        makespan = clock.now - start
        metrics.finalize(clock.now)
        if self.tsdb.enabled:
            # Boundary scrape on the finalized ledger.
            self.tsdb.scrape(self._live_registry(metrics, cfg.n_gpus), clock.now)
        sched.validate()
        if sched.segment.total_load() != 0:
            raise RuntimeError("scheduler leaked queue slots at end of run")
        if sched.segment.total_backlog() != 0:
            raise RuntimeError(
                "scheduler leaked predicted backlog at end of run"
            )
        if tracer.enabled:
            tracer.complete(
                batch_track,
                name,
                start,
                cat="batch",
                args={
                    "n_tasks": len(tasks),
                    "gpu_tasks": int(metrics.gpu_tasks.sum()),
                    "cpu_tasks": metrics.cpu_tasks,
                    "evals_saved": metrics.evals_saved,
                },
            )
        return RunResult(
            makespan_s=makespan,
            metrics=metrics,
            n_tasks=len(tasks),
            mode="hybrid",
            spectra=spectra,
            gpu_utilization=[g.utilization(makespan) for g in gpus],
        )

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _worker_sync(
        self, rank, my_tasks, clock, sched, gpus, bus, spectra, stagger,
        rank_track=0,
    ) -> Generator:
        cfg = self.config
        cost = cfg.cost
        tracer = self.tracer
        yield rank * stagger
        point_share = self._point_share(my_tasks)
        for task in my_tasks:
            task_started = clock.now
            # One span id per task: the gpusim sub-spans parent under it,
            # and it parents under whatever compiled the task (megabatch
            # group span or request root) via task.trace_parent.
            span_id = tracer.new_id() if tracer.enabled else 0
            # Per-point overhead (I/O, ion balance) is interleaved with the
            # task loop in APEC, so it is amortized across the point's
            # tasks rather than paid as a serial prelude that would starve
            # the GPUs at startup.
            yield cost.prep_s(task.n_levels) + point_share[task.point_index]
            if sched.rpc_latency_s:
                yield sched.rpc_latency_s
            if tracer.enabled:
                loads = sched.loads()
                histories = sched.histories()
            device = sched.sche_alloc(clock.now)
            if tracer.enabled:
                tracer.instant(
                    rank_track,
                    "sche_alloc",
                    cat="sched",
                    args={
                        "chosen": device,
                        "loads": loads,
                        "histories": histories,
                        "task_id": task.task_id,
                    },
                )
            if device != NO_DEVICE:
                yield cost.submit_overhead_s
                submitted_at = clock.now
                try:
                    done = gpus[device].submit(task.kernel, parent=span_id)
                except RuntimeError:
                    # The device died between admission and submission:
                    # release the slot, revoke the phantom admission, and
                    # degrade to the CPU path (the operational behaviour a
                    # real node needs — the task must not vanish and the
                    # queue must not leak).
                    sched.sche_free(device, clock.now)
                    bus.on_admission_revoked(device)
                    device = NO_DEVICE
                if device != NO_DEVICE:
                    payload = yield done
                    service = gpus[device].spec.service_time(task.kernel)
                    wait_s = max(0.0, clock.now - submitted_at - service)
                    bus.on_task_timing(wait_s=wait_s, service_s=service)
                    if sched.rpc_latency_s:
                        yield sched.rpc_latency_s
                    sched.sche_free(device, clock.now)
                    self._accumulate(spectra, task, payload)
                    if tracer.enabled:
                        if wait_s > 0.0:
                            tracer.span(
                                rank_track, "queue-wait", submitted_at,
                                submitted_at + wait_s, cat="wait",
                                args={"device": device},
                                parent=span_id,
                            )
                        tracer.complete(
                            rank_track,
                            task.label or f"task{task.task_id}",
                            task_started,
                            cat="task",
                            args={
                                "placement": "gpu",
                                "device": device,
                                "wait_s": wait_s,
                                "service_s": service,
                            },
                            id=span_id,
                            parent=task.trace_parent or None,
                        )
                    if cfg.record_trace:
                        bus.on_task_event(TaskEvent(
                            rank=rank, task_id=task.task_id, placement="gpu",
                            device=device, start=submitted_at + wait_s,
                            end=clock.now, enqueue=submitted_at,
                        ))
            if device == NO_DEVICE:
                bus.on_cpu_task()
                cpu_started = clock.now
                yield cost.cpu_task_fallback_s(task.n_integrals, task.cpu_evals_per_integral)
                self._accumulate(spectra, task, task.run_cpu())
                if tracer.enabled:
                    tracer.complete(
                        rank_track,
                        task.label or f"task{task.task_id}",
                        task_started,
                        cat="task",
                        args={"placement": "cpu", "device": -1, "wait_s": 0.0},
                        id=span_id,
                        parent=task.trace_parent or None,
                    )
                if cfg.record_trace:
                    bus.on_task_event(TaskEvent(
                        rank=rank, task_id=task.task_id, placement="cpu",
                        device=-1, start=cpu_started, end=clock.now,
                        enqueue=cpu_started,
                    ))

    def _worker_async(
        self, rank, my_tasks, clock, sched, gpus, bus, spectra, stagger,
        rank_track=0,
    ) -> Generator:
        """Bounded-depth asynchronous submission (the future-work mode).

        The rank keeps up to ``async_depth`` GPU tasks in flight; queue
        slots are freed by completion callbacks rather than by the
        blocked rank, so the GPU never waits on host wakeups.
        """
        cfg = self.config
        cost = cfg.cost
        tracer = self.tracer
        yield rank * stagger
        # Completion signals, oldest first; popleft() keeps the drain O(1)
        # per task where a list.pop(0) would shift the whole window.
        in_flight: deque = deque()
        point_share = self._point_share(my_tasks)

        for task in my_tasks:
            span_id = tracer.new_id() if tracer.enabled else 0
            yield cost.prep_s(task.n_levels) + point_share[task.point_index]
            while len(in_flight) >= cfg.async_depth:
                oldest = in_flight.popleft()
                yield oldest
            if sched.rpc_latency_s:
                yield sched.rpc_latency_s
            if tracer.enabled:
                loads = sched.loads()
                histories = sched.histories()
            device = sched.sche_alloc(clock.now)
            if tracer.enabled:
                tracer.instant(
                    rank_track,
                    "sche_alloc",
                    cat="sched",
                    args={
                        "chosen": device,
                        "loads": loads,
                        "histories": histories,
                        "task_id": task.task_id,
                    },
                )
            if device != NO_DEVICE:
                yield cost.submit_overhead_s
                submitted_at = clock.now
                done = gpus[device].submit(task.kernel, parent=span_id)

                def on_done(payload, d=device, t=task, t0=submitted_at, sid=span_id):
                    sched.sche_free(d, clock.now)
                    self._accumulate(spectra, t, payload)
                    if tracer.enabled:
                        tracer.complete(
                            rank_track,
                            t.label or f"task{t.task_id}",
                            t0,
                            cat="task",
                            args={"placement": "gpu", "device": d},
                            id=sid,
                            parent=t.trace_parent or None,
                        )

                done.add_callback(clock, on_done)
                in_flight.append(done)
            else:
                bus.on_cpu_task()
                cpu_started = clock.now
                yield cost.cpu_task_fallback_s(task.n_integrals, task.cpu_evals_per_integral)
                self._accumulate(spectra, task, task.run_cpu())
                if tracer.enabled:
                    tracer.complete(
                        rank_track,
                        task.label or f"task{task.task_id}",
                        cpu_started,
                        cat="task",
                        args={"placement": "cpu", "device": -1},
                        id=span_id,
                        parent=task.trace_parent or None,
                    )
        for sig in in_flight:
            yield sig

    def _worker_predictive(
        self, rank, my_tasks, clock, sched, dispatch, bus, spectra, stagger,
        rank_track=0,
    ) -> Generator:
        """Rank loop for the predictive dispatch path.

        Mirrors :meth:`_worker_sync`, but admitted tasks are priced by
        the online cost model, placed by predicted finish time, and
        handed to the per-device dispatch queues (where work stealing
        may relocate them).  The rank still blocks on each task's
        completion signal, so accumulation order — and with it every
        spectrum bit — is the rank's own task order regardless of which
        device ends up executing each task.
        """
        cfg = self.config
        cost = cfg.cost
        tracer = self.tracer
        model = dispatch.model
        yield rank * stagger
        point_share = self._point_share(my_tasks)
        for task in my_tasks:
            task_started = clock.now
            span_id = tracer.new_id() if tracer.enabled else 0
            yield cost.prep_s(task.n_levels) + point_share[task.point_index]
            ion, method, evals = _task_cost_key(task)
            predicted = model.predict(ion, method, evals)
            if tracer.enabled:
                loads = sched.loads()
                histories = sched.histories()
                backlogs = sched.backlogs_s()
            device = sched.sche_alloc(clock.now, cost_s=predicted)
            if tracer.enabled:
                tracer.instant(
                    rank_track,
                    "sche_alloc",
                    cat="sched",
                    args={
                        "chosen": device,
                        "loads": loads,
                        "histories": histories,
                        "backlogs_s": backlogs,
                        "predicted_s": predicted,
                        "task_id": task.task_id,
                    },
                )
            if device != NO_DEVICE:
                yield cost.submit_overhead_s
                entry = dispatch.enqueue(device, task, predicted, span_id)
                payload = yield entry.done
                if entry.failed:
                    bus.on_admission_revoked(entry.executed_device)
                    device = NO_DEVICE
                else:
                    self._accumulate(spectra, task, payload)
                    wait_s = entry.exec_started - entry.enqueued_at
                    if tracer.enabled:
                        if wait_s > 0.0:
                            tracer.span(
                                rank_track, "queue-wait", entry.enqueued_at,
                                entry.exec_started, cat="wait",
                                args={"device": entry.executed_device},
                                parent=span_id,
                            )
                        tracer.complete(
                            rank_track,
                            task.label or f"task{task.task_id}",
                            task_started,
                            cat="task",
                            args={
                                "placement": "gpu",
                                "device": entry.executed_device,
                                "stolen": entry.executed_device != device,
                                "predicted_s": predicted,
                                "wait_s": wait_s,
                                "service_s": entry.service_s,
                            },
                            id=span_id,
                            parent=task.trace_parent or None,
                        )
                    if cfg.record_trace:
                        bus.on_task_event(TaskEvent(
                            rank=rank, task_id=task.task_id, placement="gpu",
                            device=entry.executed_device,
                            start=entry.exec_started, end=clock.now,
                            enqueue=entry.enqueued_at,
                        ))
            if device == NO_DEVICE:
                bus.on_cpu_task()
                cpu_started = clock.now
                yield cost.cpu_task_fallback_s(task.n_integrals, task.cpu_evals_per_integral)
                self._accumulate(spectra, task, task.run_cpu())
                if tracer.enabled:
                    tracer.complete(
                        rank_track,
                        task.label or f"task{task.task_id}",
                        task_started,
                        cat="task",
                        args={"placement": "cpu", "device": -1, "wait_s": 0.0},
                        id=span_id,
                        parent=task.trace_parent or None,
                    )
                if cfg.record_trace:
                    bus.on_task_event(TaskEvent(
                        rank=rank, task_id=task.task_id, placement="cpu",
                        device=-1, start=cpu_started, end=clock.now,
                        enqueue=cpu_started,
                    ))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _live_registry(metrics: MetricsLedger, n_gpus: int):
        """A registry snapshot of the ledger's *live* mid-run state.

        Unlike :func:`repro.obs.prom.run_registry` (which needs a
        finished :class:`RunResult`), this reads the incremental fields
        a running batch maintains — task placements, instantaneous
        device loads, evals saved — so the cadence scraper can observe
        a batch while it executes.
        """
        from repro.obs.prom import MetricsRegistry

        reg = MetricsRegistry()
        tasks = reg.counter(
            "repro_node_tasks_total",
            "Tasks completed so far by placement.",
            ("placement",),
        )
        tasks.inc(float(metrics.gpu_tasks.sum()), placement="gpu")
        tasks.inc(float(metrics.cpu_tasks), placement="cpu")
        load = reg.gauge(
            "repro_node_device_load",
            "Instantaneous admitted queue length per device.",
            ("device",),
        )
        for d in range(n_gpus):
            load.set(float(metrics._current_load[d]), device=str(d))
        saved = reg.counter(
            "repro_node_evals_saved_total",
            "Kernel evaluations elided by active-window pruning.",
        )
        saved.inc(float(metrics.evals_saved))
        return reg

    def _partition(self, tasks: list[Task]) -> list[list[Task]]:
        """Equal sub-spaces: rank r owns the points with index % n == r."""
        n = self.config.n_workers
        out: list[list[Task]] = [[] for _ in range(n)]
        for task in tasks:
            out[task.point_index % n].append(task)
        return out

    def _point_share(self, my_tasks: list[Task]) -> dict[int, float]:
        """Per-task share of the per-point overhead, for each owned point."""
        counts: dict[int, int] = {}
        for task in my_tasks:
            counts[task.point_index] = counts.get(task.point_index, 0) + 1
        overhead = self.config.cost.point_overhead_s
        return {p: overhead / c for p, c in counts.items()}

    def _stagger(self) -> float:
        if self.config.stagger_s is not None:
            return self.config.stagger_s
        # Fallback: spread rank starts across roughly one prep period.
        return self.config.cost.prep_s(1) / max(1, self.config.n_workers)

    @staticmethod
    def _accumulate(spectra: dict, task: Task, payload: object) -> None:
        if payload is None:
            return
        arr = np.asarray(payload, dtype=np.float64)
        existing = spectra.get(task.point_index)
        if existing is None:
            spectra[task.point_index] = arr.copy()
        else:
            existing += arr


# ----------------------------------------------------------------------
# Predictive dispatch (measured-cost placement + work stealing)
# ----------------------------------------------------------------------
def _task_cost_key(task: Task) -> tuple[str, str, int]:
    """(ion, method, evals) — one task's cost-model axes."""
    label = task.kernel.label or task.label
    return ion_from_label(label), task.cost_key_method, task.kernel.total_evals


class _PendingTask:
    """One admitted task parked in a device's dispatch queue."""

    __slots__ = (
        "task", "ion", "method", "evals", "cost_s", "span_id",
        "enqueued_at", "done", "executed_device", "exec_started",
        "service_s", "failed",
    )

    def __init__(self, task, ion, method, evals, cost_s, span_id, now, done):
        self.task = task
        self.ion = ion
        self.method = method
        self.evals = evals
        #: Predicted cost at admission time — the exact value added to
        #: the segment backlog, carried so free/steal remove it exactly.
        self.cost_s = cost_s
        self.span_id = span_id
        self.enqueued_at = now
        self.done = done
        # Set by the executing dispatch worker:
        self.executed_device = -1
        self.exec_started = 0.0
        self.service_s = 0.0
        self.failed = False


class _PredictiveDispatch:
    """Per-device dispatch queues with work stealing.

    Rank workers enqueue admitted tasks here instead of submitting to
    the device directly; one dispatch worker per device kernel slot
    drains its own queue head-first (FIFO — admission order, matching
    the direct-submit modes), and, when stealing is on, an idle device
    pulls from the *tail* of the pending queue with the largest summed
    predicted backlog (ties to the lowest index).  The steal rebalances
    slot + predicted ticks on the shared segment through
    :meth:`PredictiveScheduler.on_steal`, so conservation is validated
    at end of run exactly as for unstolen tasks.

    Relocating a task never changes its result — placement prices
    answers, it does not compute them — and each rank still blocks per
    task, so spectra are bit-identical with stealing on or off.
    """

    def __init__(self, clock, sched, gpus, bus, model, steal=True):
        self.clock = clock
        self.sched = sched
        self.gpus = gpus
        self.bus = bus
        self.model = model
        self.steal = steal
        self.pending: list[deque] = [deque() for _ in gpus]
        self._idle: list = []
        self.closed = False

    def enqueue(self, device, task, cost_s, span_id) -> _PendingTask:
        """Park one admitted task on ``device``'s queue; wake idle workers."""
        ion, method, evals = _task_cost_key(task)
        entry = _PendingTask(
            task, ion, method, evals, cost_s, span_id,
            self.clock.now, self.clock.signal(f"task{task.task_id}.done"),
        )
        self.pending[device].append(entry)
        self._wake_all(prefer=device)
        return entry

    def close(self) -> None:
        """All ranks joined: let idle dispatch workers exit."""
        self.closed = True
        self._wake_all()

    def _wake_all(self, prefer: int = -1) -> None:
        """Wake every idle worker; ``prefer``'s own workers step first.

        Waking is a same-instant schedule, so ordering decides who claims
        a fresh entry: the owning device gets first refusal, and another
        device steals it only when the owner's slots are all busy.
        """
        waiters, self._idle = self._idle, []
        waiters.sort(key=lambda pair: pair[0] != prefer)
        for _d, sig in waiters:
            sig.fire(self.clock)

    def _steal_from(self, thief: int) -> Optional[_PendingTask]:
        """Pull the tail task of the most-backlogged pending queue."""
        best = -1
        best_ticks = 0
        for d, queue in enumerate(self.pending):
            if d == thief or not queue:
                continue
            ticks = sum(
                PredictiveScheduler.cost_ticks(e.cost_s) for e in queue
            )
            if best < 0 or ticks > best_ticks:
                best, best_ticks = d, ticks
        if best < 0:
            return None
        entry = self.pending[best].pop()
        self.sched.on_steal(best, thief, self.clock.now, cost_s=entry.cost_s)
        return entry

    def device_worker(self, device: int) -> Generator:
        """One kernel slot's drain loop: own head, else steal, else idle."""
        clock = self.clock
        sched = self.sched
        gpu = self.gpus[device]
        while True:
            entry = None
            if self.pending[device]:
                entry = self.pending[device].popleft()
            elif (
                self.steal
                and not gpu.failed
                and sched.queues[device].load < sched.max_queue_length
            ):
                entry = self._steal_from(device)
            if entry is None:
                if self.closed and not any(self.pending):
                    return
                sig = clock.signal(f"gpu{device}.disp.idle")
                self._idle.append((device, sig))
                yield sig
                continue
            try:
                gpu_done = gpu.submit(entry.task.kernel, parent=entry.span_id)
            except RuntimeError:
                # Device died after admission: release the slot, flag the
                # entry; the owning rank revokes the placement count and
                # degrades to the CPU path.  Keep looping so later
                # entries (enqueued or stolen here) fail fast too.
                sched.sche_free(device, clock.now, cost_s=entry.cost_s)
                entry.executed_device = device
                entry.failed = True
                entry.done.fire(clock, None)
                continue
            entry.exec_started = clock.now
            payload = yield gpu_done
            measured = clock.now - entry.exec_started
            entry.executed_device = device
            entry.service_s = measured
            self.model.observe(entry.ion, entry.method, entry.evals, measured)
            self.bus.on_prediction(entry.cost_s, measured)
            self.bus.on_task_timing(
                wait_s=entry.exec_started - entry.enqueued_at,
                service_s=measured,
            )
            sched.sche_free(device, clock.now, cost_s=entry.cost_s)
            entry.done.fire(clock, payload)
