"""Per-device task-queue state — the data structure of Section III-A.

The paper's terminology, mapped one-to-one:

- *Active task*: running on the GPU (``SimulatedGPU._running``).
- *Waiting task*: queued on the device.
- *Load*: active + waiting — the shared-memory counter this class wraps.
- *Maximum queue length*: the admission bound; a full device receives no
  further tasks.
- *History task count*: cumulative tasks ever admitted (the tie-breaker).

The counters themselves live in a :class:`~repro.cluster.sharedmem.SharedSegment`
so the scheduler manipulates exactly the arrays Algorithm 1 describes.
"""

from __future__ import annotations

from repro.cluster.sharedmem import SharedSegment

__all__ = ["TaskQueue"]


class TaskQueue:
    """View of one device's queue slots inside the shared segment."""

    def __init__(
        self, segment: SharedSegment, device_index: int, max_length: int
    ) -> None:
        if not 0 <= device_index < max(1, segment.n_devices):
            raise ValueError(
                f"device index {device_index} outside segment of "
                f"{segment.n_devices} devices"
            )
        if max_length < 1:
            raise ValueError("maximum queue length must be >= 1")
        self.segment = segment
        self.device_index = device_index
        self.max_length = max_length

    @property
    def load(self) -> int:
        """Current load: active + waiting tasks."""
        return self.segment.load[self.device_index]

    @property
    def history(self) -> int:
        """History task count: total tasks ever admitted."""
        return self.segment.history[self.device_index]

    @property
    def is_full(self) -> bool:
        return self.load >= self.max_length

    @property
    def backlog_ticks(self) -> int:
        """Predicted backlog of admitted tasks, integer picosecond ticks."""
        return self.segment.backlog[self.device_index]

    def occupy(self, cost_ticks: int = 0) -> None:
        """Admit one task: load++ and history++ in one atomic step.

        Mirrors the paper: "the scheduler will increase the current load
        value of the GPU by one in an atomic operation" together with the
        history count.  ``cost_ticks`` (the predictive tier) adds the
        task's predicted cost to the device's backlog in the same step;
        the caller must release (or transfer) the identical amount.
        """
        if cost_ticks < 0:
            raise ValueError("cost_ticks must be non-negative")
        new_load = self.segment.load.atomic_add(self.device_index, 1)
        self.segment.history.atomic_add(self.device_index, 1)
        if new_load > self.max_length:
            # Roll back and fail loudly: an admission beyond the bound
            # means the caller skipped the is_full check (a logic bug).
            self.segment.load.atomic_add(self.device_index, -1)
            self.segment.history.atomic_add(self.device_index, -1)
            raise RuntimeError(
                f"device {self.device_index}: admission beyond max queue "
                f"length {self.max_length}"
            )
        if cost_ticks:
            self.segment.backlog.atomic_add(self.device_index, cost_ticks)

    def release(self, cost_ticks: int = 0) -> None:
        """Task finished: load-- (history is monotone, never decremented)."""
        if cost_ticks < 0:
            raise ValueError("cost_ticks must be non-negative")
        new_load = self.segment.load.atomic_add(self.device_index, -1)
        if new_load < 0:
            self.segment.load.atomic_add(self.device_index, 1)
            raise RuntimeError(
                f"device {self.device_index}: release without matching occupy"
            )
        if cost_ticks:
            new_backlog = self.segment.backlog.atomic_add(
                self.device_index, -cost_ticks
            )
            if new_backlog < 0:
                self.segment.backlog.atomic_add(self.device_index, cost_ticks)
                self.segment.load.atomic_add(self.device_index, 1)
                raise RuntimeError(
                    f"device {self.device_index}: backlog release exceeds "
                    f"admitted cost"
                )

    def transfer_to(self, thief: "TaskQueue", cost_ticks: int = 0) -> None:
        """Move one admitted task's slot (and backlog) to ``thief``.

        The work-stealing bookkeeping: the victim's load and backlog
        drop, the thief's rise, and the steal/donation counters advance
        — all on the shared segment, so conservation is checkable
        (``total_load``/``total_backlog`` are unchanged by a transfer).
        History does not move: it records where the scheduler *admitted*
        the task, and steals are a dispatch-level rebalance.
        """
        if thief.segment is not self.segment:
            raise ValueError("steal across segments")
        if thief.device_index == self.device_index:
            raise ValueError("device cannot steal from itself")
        if cost_ticks < 0:
            raise ValueError("cost_ticks must be non-negative")
        if self.load < 1:
            raise RuntimeError(
                f"device {self.device_index}: steal from an empty queue"
            )
        if thief.is_full:
            raise RuntimeError(
                f"device {thief.device_index}: steal beyond max queue length"
            )
        self.segment.load.atomic_add(self.device_index, -1)
        self.segment.load.atomic_add(thief.device_index, 1)
        if cost_ticks:
            self.segment.backlog.atomic_add(self.device_index, -cost_ticks)
            self.segment.backlog.atomic_add(thief.device_index, cost_ticks)
        self.segment.donations.atomic_add(self.device_index, 1)
        self.segment.steals.atomic_add(thief.device_index, 1)
