"""Per-device task-queue state — the data structure of Section III-A.

The paper's terminology, mapped one-to-one:

- *Active task*: running on the GPU (``SimulatedGPU._running``).
- *Waiting task*: queued on the device.
- *Load*: active + waiting — the shared-memory counter this class wraps.
- *Maximum queue length*: the admission bound; a full device receives no
  further tasks.
- *History task count*: cumulative tasks ever admitted (the tie-breaker).

The counters themselves live in a :class:`~repro.cluster.sharedmem.SharedSegment`
so the scheduler manipulates exactly the arrays Algorithm 1 describes.
"""

from __future__ import annotations

from repro.cluster.sharedmem import SharedSegment

__all__ = ["TaskQueue"]


class TaskQueue:
    """View of one device's queue slots inside the shared segment."""

    def __init__(
        self, segment: SharedSegment, device_index: int, max_length: int
    ) -> None:
        if not 0 <= device_index < max(1, segment.n_devices):
            raise ValueError(
                f"device index {device_index} outside segment of "
                f"{segment.n_devices} devices"
            )
        if max_length < 1:
            raise ValueError("maximum queue length must be >= 1")
        self.segment = segment
        self.device_index = device_index
        self.max_length = max_length

    @property
    def load(self) -> int:
        """Current load: active + waiting tasks."""
        return self.segment.load[self.device_index]

    @property
    def history(self) -> int:
        """History task count: total tasks ever admitted."""
        return self.segment.history[self.device_index]

    @property
    def is_full(self) -> bool:
        return self.load >= self.max_length

    def occupy(self) -> None:
        """Admit one task: load++ and history++ in one atomic step.

        Mirrors the paper: "the scheduler will increase the current load
        value of the GPU by one in an atomic operation" together with the
        history count.
        """
        new_load = self.segment.load.atomic_add(self.device_index, 1)
        self.segment.history.atomic_add(self.device_index, 1)
        if new_load > self.max_length:
            # Roll back and fail loudly: an admission beyond the bound
            # means the caller skipped the is_full check (a logic bug).
            self.segment.load.atomic_add(self.device_index, -1)
            self.segment.history.atomic_add(self.device_index, -1)
            raise RuntimeError(
                f"device {self.device_index}: admission beyond max queue "
                f"length {self.max_length}"
            )

    def release(self) -> None:
        """Task finished: load-- (history is monotone, never decremented)."""
        new_load = self.segment.load.atomic_add(self.device_index, -1)
        if new_load < 0:
            self.segment.load.atomic_add(self.device_index, 1)
            raise RuntimeError(
                f"device {self.device_index}: release without matching occupy"
            )
