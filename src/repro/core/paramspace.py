"""The three-dimensional parameter space of Fig. 1.

"There is a three-dimensional parameter space: temperature, density and
time.  The parameter space is often given by a result of astrophysical
simulation or a configuration file."  This module provides that object:
axes, grid-point enumeration, equal-subspace partitioning (what the main
program hands to MPI ranks), and loading from a configuration mapping or
from synthetic "simulation output" (a tracer-particle history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.physics.apec import GridPoint

__all__ = ["Axis", "ParameterSpace"]


@dataclass(frozen=True)
class Axis:
    """One axis of the space: a name and its sampled values."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        if any(not np.isfinite(v) for v in self.values):
            raise ValueError(f"axis {self.name!r} has non-finite values")

    def __len__(self) -> int:
        return len(self.values)

    @classmethod
    def linear(cls, name: str, lo: float, hi: float, n: int) -> "Axis":
        if n < 1:
            raise ValueError("need at least one sample")
        return cls(name, tuple(np.linspace(lo, hi, n)))

    @classmethod
    def log(cls, name: str, lo: float, hi: float, n: int) -> "Axis":
        if lo <= 0.0 or hi <= 0.0:
            raise ValueError("log axis needs positive bounds")
        if n < 1:
            raise ValueError("need at least one sample")
        return cls(name, tuple(np.logspace(np.log10(lo), np.log10(hi), n)))


@dataclass(frozen=True)
class ParameterSpace:
    """A (temperature, density, time) grid of :class:`GridPoint` s.

    Iteration order is C-order over (temperature, density, time) — the
    stable point indexing every task list and result dict refers to.
    """

    temperature: Axis
    density: Axis
    time: Axis = field(
        default_factory=lambda: Axis(name="time", values=(0.0,))
    )

    @property
    def shape(self) -> tuple[int, int, int]:
        return (len(self.temperature), len(self.density), len(self.time))

    @property
    def n_points(self) -> int:
        t, d, s = self.shape
        return t * d * s

    def __len__(self) -> int:
        return self.n_points

    def __iter__(self) -> Iterator[GridPoint]:
        for t in self.temperature.values:
            for d in self.density.values:
                for s in self.time.values:
                    yield GridPoint(temperature_k=t, ne_cm3=d, time_s=s)

    def point(self, index: int) -> GridPoint:
        """The grid point with flat index ``index`` (C-order)."""
        if not 0 <= index < self.n_points:
            raise IndexError(
                f"point index {index} outside 0..{self.n_points - 1}"
            )
        _nt, nd, ns = self.shape
        it, rem = divmod(index, nd * ns)
        id_, is_ = divmod(rem, ns)
        return GridPoint(
            temperature_k=self.temperature.values[it],
            ne_cm3=self.density.values[id_],
            time_s=self.time.values[is_],
        )

    def partition(self, n_ranks: int) -> list[list[int]]:
        """Equal sub-spaces for ``n_ranks`` workers (the paper's split).

        Round-robin on the flat index, so every rank receives an equal
        share to within one point.
        """
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        parts: list[list[int]] = [[] for _ in range(n_ranks)]
        for i in range(self.n_points):
            parts[i % n_ranks].append(i)
        return parts

    # ------------------------------------------------------------------
    # Construction from external descriptions
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: Mapping[str, object]) -> "ParameterSpace":
        """Build from a configuration mapping.

        Expected keys: ``temperature``, ``density`` and optionally
        ``time``, each one of

        - a sequence of explicit values, or
        - a mapping ``{"lo": .., "hi": .., "n": .., "spacing": "linear"|"log"}``.
        """

        def axis(name: str, spec: object) -> Axis:
            if isinstance(spec, Mapping):
                spacing = spec.get("spacing", "linear")
                ctor = Axis.log if spacing == "log" else Axis.linear
                if spacing not in ("linear", "log"):
                    raise ValueError(f"unknown spacing {spacing!r} for {name}")
                return ctor(name, float(spec["lo"]), float(spec["hi"]), int(spec["n"]))
            if isinstance(spec, Sequence):
                return Axis(name, tuple(float(v) for v in spec))
            raise TypeError(f"cannot build axis {name!r} from {type(spec)!r}")

        if "temperature" not in config or "density" not in config:
            raise ValueError("config needs 'temperature' and 'density'")
        time_spec = config.get("time", (0.0,))
        return cls(
            temperature=axis("temperature", config["temperature"]),
            density=axis("density", config["density"]),
            time=axis("time", time_spec),
        )

    @classmethod
    def from_simulation(
        cls,
        temperatures_k: np.ndarray,
        densities_cm3: np.ndarray,
        times_s: np.ndarray,
    ) -> "ParameterSpace":
        """Build from tracer-history arrays (a simulation's output).

        Values are deduplicated and sorted per axis; the space is the
        cartesian grid spanned by the distinct samples — how post-
        processing pipelines rasterize tracer data before spectral
        synthesis.
        """
        return cls(
            temperature=Axis("temperature", tuple(np.unique(temperatures_k))),
            density=Axis("density", tuple(np.unique(densities_cm3))),
            time=Axis("time", tuple(np.unique(times_s))),
        )

    @classmethod
    def paper_test_space(cls) -> "ParameterSpace":
        """The paper's 24-grid-point test: a small region where 'the
        amount of calculation at each point is approximately the same'."""
        return cls(
            temperature=Axis.log("temperature", 8.0e6, 1.2e7, 4),
            density=Axis.linear("density", 0.8, 1.2, 3),
            time=Axis.linear("time", 0.0, 1.0, 2),
        )
