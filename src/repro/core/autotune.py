"""Automatic maximum-queue-length search.

Section III-A: "the scheduler chooses the maximum queue length through an
automatic test.  At the beginning the scheduler will try to find the most
proper maximum queue length by increasing the value of it gradually until
the performance inflexion occurs", then fixes the value at the inflexion
point.

The probe workload should be a small prefix of the real one (the paper
runs the test "at the beginning"); callers usually pass a few hundred
tasks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.task import Task

__all__ = ["autotune_queue_length", "probe_prefix"]


def probe_prefix(
    tasks: Sequence[Task],
    config: HybridConfig,
    tasks_per_point: int = 60,
) -> tuple[list[Task], HybridConfig]:
    """Build a representative probe from the start of a real workload.

    Two properties the probe must preserve or the tuned queue length will
    not transfer to the full run:

    - *contention structure*: every rank must be active, so the prefix
      takes the first ``tasks_per_point`` tasks of **every** grid point
      rather than whole points (a few-point probe leaves most ranks idle
      and the GPUs unsaturated — it tunes the wrong operating point);
    - *per-task host cost*: the per-point overhead amortizes over the
      point's full task count in the real run, so the probe's cost model
      scales it by the prefix fraction.

    Returns ``(probe_tasks, probe_config)`` ready for
    :func:`autotune_queue_length`.
    """
    if tasks_per_point < 1:
        raise ValueError("tasks_per_point must be >= 1")
    per_point: dict[int, int] = {}
    probe: list[Task] = []
    for task in tasks:
        seen = per_point.get(task.point_index, 0)
        if seen < tasks_per_point:
            probe.append(task)
            per_point[task.point_index] = seen + 1
    if not probe:
        raise ValueError("empty workload")
    full_per_point = max(
        sum(1 for t in tasks if t.point_index == p) for p in per_point
    )
    fraction = min(1.0, tasks_per_point / max(1, full_per_point))
    cost = config.cost.with_overrides(
        point_overhead_s=config.cost.point_overhead_s * fraction
    )
    return probe, replace(config, cost=cost)


def autotune_queue_length(
    config: HybridConfig,
    probe_tasks: Sequence[Task],
    candidates: Sequence[int] = (2, 4, 6, 8, 10, 12, 14, 16),
    patience: int = 1,
) -> tuple[int, dict[int, float]]:
    """Find the queue length at the performance inflexion point.

    Walks ``candidates`` in increasing order, timing the probe workload at
    each; stops after the makespan has risen for ``patience`` consecutive
    steps past the best seen (the inflexion).  Returns the best length and
    the measured times.

    Determinism: the simulation is deterministic, so repeated calls with
    the same inputs return identical results.
    """
    if not probe_tasks:
        raise ValueError("need a non-empty probe workload")
    if not candidates:
        raise ValueError("need at least one candidate queue length")
    if sorted(candidates) != list(candidates):
        raise ValueError("candidates must be increasing")

    times: dict[int, float] = {}
    best_len = candidates[0]
    best_time = float("inf")
    worse_streak = 0

    for length in candidates:
        runner = HybridRunner(replace(config, max_queue_length=length))
        result = runner.run(list(probe_tasks))
        times[length] = result.makespan_s
        if result.makespan_s < best_time:
            best_time = result.makespan_s
            best_len = length
            worse_streak = 0
        else:
            worse_streak += 1
            if worse_streak > patience:
                break
    return best_len, times
