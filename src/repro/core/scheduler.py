"""Algorithm 1: the dynamic load-balancing scheduler.

``SCHE-ALLOC`` scans the shared load array for the least-loaded device,
breaking ties by the smallest *history task count*; if that minimum load
is below the maximum queue length the slot is occupied atomically and the
device index returned, otherwise -1 ("all GPUs are busy") and the caller
runs the task on its own CPU with the traditional QAGS routine.

Two variants:

- :class:`SharedMemoryScheduler` — the paper's design: scheduling is a
  few shared-memory reads plus one atomic update, effectively free.
- :class:`ClientServerScheduler` — the MPS-style ablation: identical
  policy, but every alloc/free round-trips through a scheduler server
  with a configurable RPC latency, reproducing the overhead argument the
  paper makes against client-server architectures for small tasks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.sharedmem import SharedSegment
from repro.core.metrics import MetricsLedger
from repro.core.queue import TaskQueue

__all__ = [
    "NO_DEVICE",
    "TICKS_PER_S",
    "SharedMemoryScheduler",
    "ClientServerScheduler",
    "RandomScheduler",
    "WeightedScheduler",
    "PredictiveScheduler",
]

#: Sentinel returned by SCHE-ALLOC when every queue is at full load.
NO_DEVICE: int = -1

#: Backlog accounting resolution: picoseconds per virtual second — the
#: same tick the attribution ledger uses, so predicted costs conserve
#: exactly through occupy/steal/release integer arithmetic.
TICKS_PER_S: int = 10**12


class SharedMemoryScheduler:
    """The shared-memory scheduler of Section III-A / Algorithm 1."""

    def __init__(
        self,
        n_devices: int,
        max_queue_length: int,
        metrics: Optional[MetricsLedger] = None,
        segment: Optional[SharedSegment] = None,
        tie_break: str = "history",
    ) -> None:
        if n_devices < 0:
            raise ValueError("device count must be non-negative")
        if max_queue_length < 1:
            raise ValueError("maximum queue length must be >= 1")
        if tie_break not in ("history", "first"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.n_devices = n_devices
        self.max_queue_length = max_queue_length
        self.segment = segment or SharedSegment(n_devices)
        self.queues: list[TaskQueue] = [
            TaskQueue(self.segment, d, max_queue_length) for d in range(n_devices)
        ]
        self.metrics = metrics
        #: "history" (the paper: minimum history count wins ties) or
        #: "first" (first device at the minimum load — the ablation).
        self.tie_break = tie_break

    #: Scheduling cost charged to the caller (none: shared memory).
    rpc_latency_s: float = 0.0

    def sche_alloc(self, now: float = 0.0) -> int:
        """Algorithm 1 SCHE-ALLOC: pick a device or return ``NO_DEVICE``.

        Scan order follows the pseudocode: track the minimum load; among
        devices tied at the minimum, prefer the smallest history count.
        """
        if self.n_devices == 0:
            return NO_DEVICE
        load, history = self.segment.attach()
        best = 0
        l_min = load[0]
        h_min = history[0]
        use_history = self.tie_break == "history"
        for d in range(1, self.n_devices):
            l_d = load[d]
            h_d = history[d]
            if l_d < l_min or (use_history and l_d == l_min and h_d < h_min):
                best, l_min, h_min = d, l_d, h_d
        if l_min >= self.max_queue_length:
            return NO_DEVICE
        old_load = self.queues[best].load
        self.queues[best].occupy()
        if self.metrics is not None:
            self.metrics.on_load_change(best, old_load, old_load + 1, now)
        return best

    def sche_free(self, device: int, now: float = 0.0) -> None:
        """Algorithm 1 SCHE-FREE: release the slot after completion."""
        if not 0 <= device < self.n_devices:
            raise ValueError(f"device {device} out of range")
        old_load = self.queues[device].load
        self.queues[device].release()
        if self.metrics is not None:
            self.metrics.on_load_change(device, old_load, old_load - 1, now)

    def loads(self) -> list[int]:
        return [q.load for q in self.queues]

    def histories(self) -> list[int]:
        return [q.history for q in self.queues]

    def validate(self) -> None:
        self.segment.validate(self.max_queue_length)


class ClientServerScheduler(SharedMemoryScheduler):
    """MPS-like ablation: same policy, paid per-request RPC latency.

    The paper: "the client-server architecture will introduce much extra
    overhead if each task is fast and scheduling is quite frequent like in
    the spectral calculation."  Workers must stall ``rpc_latency_s`` on
    every alloc *and* every free; with ~12k tasks and two RPCs each, a
    500 us round-trip already costs ~12 s of pure scheduling.
    """

    def __init__(
        self,
        n_devices: int,
        max_queue_length: int,
        rpc_latency_s: float = 5.0e-4,
        metrics: Optional[MetricsLedger] = None,
        segment: Optional[SharedSegment] = None,
    ) -> None:
        super().__init__(n_devices, max_queue_length, metrics, segment)
        if rpc_latency_s < 0.0:
            raise ValueError("RPC latency must be non-negative")
        self.rpc_latency_s = rpc_latency_s


class RandomScheduler(SharedMemoryScheduler):
    """Policy baseline: uniform-random placement among non-full devices.

    Ablation target for Algorithm 1's min-load rule.  Admission still
    respects the maximum queue length (otherwise nothing would bound GPU
    backlog), but the *choice* among admissible devices is random, so the
    queue-length distribution across devices is unmanaged.  Deterministic
    via an internal seeded generator.
    """

    def __init__(
        self,
        n_devices: int,
        max_queue_length: int,
        metrics: Optional[MetricsLedger] = None,
        segment: Optional[SharedSegment] = None,
        seed: int = 20150413,
    ) -> None:
        super().__init__(n_devices, max_queue_length, metrics, segment)
        import numpy as np

        self._rng = np.random.default_rng(seed)

    def sche_alloc(self, now: float = 0.0) -> int:
        if self.n_devices == 0:
            return NO_DEVICE
        load, _history = self.segment.attach()
        admissible = [
            d for d in range(self.n_devices) if load[d] < self.max_queue_length
        ]
        if not admissible:
            return NO_DEVICE
        best = int(self._rng.choice(admissible))
        old_load = self.queues[best].load
        self.queues[best].occupy()
        if self.metrics is not None:
            self.metrics.on_load_change(best, old_load, old_load + 1, now)
        return best


class WeightedScheduler(SharedMemoryScheduler):
    """Speed-aware placement — the paper's future-work improvement.

    The conclusion promises "an improved scheme for load balancing"; the
    heterogeneity ablation shows why: Algorithm 1's min-load rule is
    blind to device speed, so a mixed fleet queues equal task *counts* on
    unequal devices and the slow card gates the makespan.

    The fix keeps the shared-memory structure and the queue bound but
    ranks devices by *expected backlog time* — load x expected service
    time — instead of raw load.  With equal weights it reduces exactly to
    Algorithm 1 (history tie-break included), so it is a strict
    generalization.
    """

    def __init__(
        self,
        n_devices: int,
        max_queue_length: int,
        service_s: Sequence[float],
        metrics: Optional[MetricsLedger] = None,
        segment: Optional[SharedSegment] = None,
    ) -> None:
        super().__init__(n_devices, max_queue_length, metrics, segment)
        service = list(service_s)
        if len(service) != n_devices:
            raise ValueError(
                f"need one service time per device, got {len(service)} "
                f"for {n_devices}"
            )
        if any(s <= 0.0 for s in service):
            raise ValueError("service times must be positive")
        self.service_s = service

    def sche_alloc(self, now: float = 0.0) -> int:
        if self.n_devices == 0:
            return NO_DEVICE
        load, history = self.segment.attach()
        best = -1
        best_backlog = float("inf")
        best_history = 0
        for d in range(self.n_devices):
            l_d = load[d]
            if l_d >= self.max_queue_length:
                continue
            # Backlog the *new* task would see, in seconds.
            backlog = (l_d + 1) * self.service_s[d]
            h_d = history[d]
            if backlog < best_backlog or (
                backlog == best_backlog and h_d < best_history
            ):
                best, best_backlog, best_history = d, backlog, h_d
        if best < 0:
            return NO_DEVICE
        old_load = self.queues[best].load
        self.queues[best].occupy()
        if self.metrics is not None:
            self.metrics.on_load_change(best, old_load, old_load + 1, now)
        return best


class PredictiveScheduler(SharedMemoryScheduler):
    """Measured-cost placement: minimize *predicted* finish time.

    :class:`WeightedScheduler` fixed the device axis of Algorithm 1's
    blindness (unequal devices); this scheduler fixes the task axis —
    unequal *tasks*.  The shared segment gains a per-device ``backlog``
    array holding the summed predicted cost (integer picosecond ticks)
    of every admitted task, maintained by the caller passing each task's
    predicted cost (from the online EWMA
    :class:`~repro.obs.attribution.CostModel`) to ``sche_alloc`` /
    ``sche_free``.  SCHE-ALLOC places the task on the device whose
    backlog-plus-new-cost is smallest, history tie-break unchanged — so
    with equal costs it reduces exactly to Algorithm 1 (backlog is then
    load x cost).

    The CPU fallback turns from a queue-*depth* rule into a predicted-
    *seconds* rule: ``cpu_threshold_s`` rejects a placement whose
    predicted finish time would exceed the threshold, which is the
    quantity the paper's max-queue-length bound was approximating under
    the equal-size-task assumption.  The slot bound stays as a hard cap
    (the shared arrays are still bounded).

    ``on_steal`` is the work-stealing transfer: an idle device pulls one
    admitted task from a loaded victim, moving its slot and predicted
    backlog atomically on the segment (conservation is validated at end
    of run — no slot or tick is lost or duplicated).
    """

    def __init__(
        self,
        n_devices: int,
        max_queue_length: int,
        metrics: Optional[MetricsLedger] = None,
        segment: Optional[SharedSegment] = None,
        cpu_threshold_s: Optional[float] = None,
        tie_break: str = "history",
    ) -> None:
        super().__init__(
            n_devices, max_queue_length, metrics, segment, tie_break
        )
        if cpu_threshold_s is not None and cpu_threshold_s <= 0.0:
            raise ValueError("cpu_threshold_s must be positive or None")
        self.cpu_threshold_s = cpu_threshold_s

    @staticmethod
    def cost_ticks(cost_s: float) -> int:
        """A predicted cost in the segment's integer tick resolution."""
        if cost_s < 0.0:
            raise ValueError("predicted cost must be non-negative")
        return int(round(cost_s * TICKS_PER_S))

    def sche_alloc(self, now: float = 0.0, cost_s: float = 0.0) -> int:
        """Place one task of predicted cost ``cost_s`` (seconds).

        Scans for the minimum predicted finish time (device backlog +
        this task's cost), history tie-break among exact tick ties; the
        new cost is added to the winner's backlog in the same atomic
        admission step.  Returns ``NO_DEVICE`` when every queue is at
        the slot cap or the best predicted finish time crosses
        ``cpu_threshold_s``.
        """
        if self.n_devices == 0:
            return NO_DEVICE
        ticks = self.cost_ticks(cost_s)
        load, history = self.segment.attach()
        backlog = self.segment.backlog
        use_history = self.tie_break == "history"
        best = -1
        best_finish = 0
        best_history = 0
        for d in range(self.n_devices):
            if load[d] >= self.max_queue_length:
                continue
            finish = backlog[d] + ticks
            h_d = history[d]
            if (
                best < 0
                or finish < best_finish
                or (use_history and finish == best_finish and h_d < best_history)
            ):
                best, best_finish, best_history = d, finish, h_d
        if best < 0:
            return NO_DEVICE
        if (
            self.cpu_threshold_s is not None
            and best_finish > self.cost_ticks(self.cpu_threshold_s)
        ):
            return NO_DEVICE
        old_load = self.queues[best].load
        self.queues[best].occupy(ticks)
        if self.metrics is not None:
            self.metrics.on_load_change(best, old_load, old_load + 1, now)
        return best

    def sche_free(self, device: int, now: float = 0.0, cost_s: float = 0.0) -> None:
        """Release one slot, removing the cost admitted for the task.

        ``cost_s`` must be the value passed to the matching
        ``sche_alloc`` (or carried through ``on_steal``) — the tick
        conversion is deterministic, so the backlog returns to exactly
        what it was.
        """
        if not 0 <= device < self.n_devices:
            raise ValueError(f"device {device} out of range")
        old_load = self.queues[device].load
        self.queues[device].release(self.cost_ticks(cost_s))
        if self.metrics is not None:
            self.metrics.on_load_change(device, old_load, old_load - 1, now)

    def on_steal(
        self, victim: int, thief: int, now: float = 0.0, cost_s: float = 0.0
    ) -> None:
        """Transfer one admitted task's slot + backlog from victim to thief."""
        for d in (victim, thief):
            if not 0 <= d < self.n_devices:
                raise ValueError(f"device {d} out of range")
        ticks = self.cost_ticks(cost_s)
        victim_old = self.queues[victim].load
        thief_old = self.queues[thief].load
        self.queues[victim].transfer_to(self.queues[thief], ticks)
        if self.metrics is not None:
            self.metrics.on_load_change(victim, victim_old, victim_old - 1, now)
            self.metrics.on_load_change(thief, thief_old, thief_old + 1, now)
            self.metrics.on_steal(victim, thief)

    def backlogs_s(self) -> list[float]:
        """Predicted backlog per device, in seconds (diagnostics)."""
        return [q.backlog_ticks / TICKS_PER_S for q in self.queues]
