"""The cost model: simulated seconds from paper-derived constants.

Every timing experiment in the paper is a function of a handful of cost
ratios.  We pin them to the paper's own published numbers, reconciled
across figures (the figures are mutually consistent to within a few
percent once read together):

- Fig. 3 and Fig. 4 agree that the serial run of the 24-point test space
  takes ~34,500 s (196.4 x 176 s = 311.4 x 111 s = 34.5 ks), i.e.
  ~1,440 s per grid point — the text's "nearly 800 s" refers to the
  integral portion alone of a smaller configuration.
- The profiled integral fraction is > 90 %.
- The 24-core MPI version achieves 13.5x, implying a memory-contention
  factor of 24 / 13.5 ~ 1.78 on concurrent CPU integration.
- Algorithm 1's CPU fallback calls QAGS with explicit (errabs, errrel),
  i.e. a stricter adaptive integration than the GPU's fixed Simpson-64;
  we model its extra subdivision work with ``cpu_fallback_penalty``.

The defaults below reproduce the paper's *shapes* (who wins, where the
Fig. 4 inflexion sits, how Table I degrades with k); EXPERIMENTS.md
records measured-vs-paper for every figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

__all__ = ["CostModel", "measure_live_eval_rates"]


@dataclass(frozen=True)
class CostModel:
    """Host-side and CPU-side cost constants (seconds).

    Attributes
    ----------
    cpu_eval_s:
        Time of one integrand evaluation inside the serial CPU integrator
        (compiled-C speed on the paper's Xeon E5-2640).
    cpu_qags_evals_per_integral:
        Average integrand evaluations QAGS spends per bin integral.
    cpu_fallback_penalty:
        Multiplier on CPU fallback integration inside a *hybrid* run
        (stricter tolerances than the GPU path + cache contention).
    mpi_contention:
        Multiplier on CPU integration when all 24 ranks compute at once
        (the pure-MPI baseline); 24 / 13.5 from the paper.
    prep_fixed_s:
        Host-side work per task independent of its size (task assembly,
        scheduler bookkeeping, result registration).
    prep_per_level_s:
        Host-side work per *energy level* contained in a task (parameter
        marshalling, spectrum accumulation) — this is what makes Ion
        tasks cheaper per integral than Level tasks on the host.
    submit_overhead_s:
        Per-GPU-task host cost of the synchronous submit/return path
        (driver calls, pinned-buffer copies, blocking wait wakeup).
    point_overhead_s:
        Per-grid-point work outside the task loop (I/O, ion balance).
    """

    cpu_eval_s: float = 5.8e-8
    cpu_qags_evals_per_integral: int = 105
    cpu_fallback_penalty: float = 2.0
    mpi_contention: float = 1.83
    prep_fixed_s: float = 0.010
    prep_per_level_s: float = 0.00464
    submit_overhead_s: float = 0.0177
    point_overhead_s: float = 70.0

    def __post_init__(self) -> None:
        if min(
            self.cpu_eval_s,
            self.cpu_fallback_penalty,
            self.mpi_contention,
        ) <= 0.0:
            raise ValueError("cost constants must be positive")
        if min(
            self.prep_fixed_s,
            self.prep_per_level_s,
            self.submit_overhead_s,
            self.point_overhead_s,
        ) < 0.0:
            raise ValueError("overheads must be non-negative")

    def prep_s(self, n_levels: int) -> float:
        """Host-side preparation time of a task holding ``n_levels`` levels."""
        if n_levels < 0:
            raise ValueError("n_levels must be non-negative")
        return self.prep_fixed_s + n_levels * self.prep_per_level_s

    # ------------------------------------------------------------------
    # CPU-side task times
    # ------------------------------------------------------------------
    def cpu_integral_s(self, evals_per_integral: int | None = None) -> float:
        """Serial CPU time of one bin integral (QAGS unless overridden)."""
        evals = evals_per_integral or self.cpu_qags_evals_per_integral
        return evals * self.cpu_eval_s

    def cpu_task_serial_s(
        self, n_integrals: int, evals_per_integral: int | None = None
    ) -> float:
        """One task on an otherwise idle CPU core (the serial baseline)."""
        return n_integrals * self.cpu_integral_s(evals_per_integral)

    def cpu_task_mpi_s(
        self, n_integrals: int, evals_per_integral: int | None = None
    ) -> float:
        """One task on a fully loaded 24-rank node (pure-MPI baseline)."""
        return self.cpu_task_serial_s(n_integrals, evals_per_integral) * self.mpi_contention

    def cpu_task_fallback_s(
        self, n_integrals: int, evals_per_integral: int | None = None
    ) -> float:
        """Algorithm 1's CPU fallback inside a hybrid run."""
        return (
            self.cpu_task_serial_s(n_integrals, evals_per_integral)
            * self.cpu_fallback_penalty
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def serial_point_s(self, n_integrals_point: int, prep_total_s: float) -> float:
        """Wall time of one grid point in the original serial APEC."""
        return (
            self.cpu_task_serial_s(n_integrals_point)
            + prep_total_s
            + self.point_overhead_s
        )

    def mpi_point_s(self, n_integrals_point: int, prep_total_s: float) -> float:
        """Wall time of one grid point per rank in the pure-MPI version."""
        return (
            self.cpu_task_mpi_s(n_integrals_point)
            + prep_total_s
            + self.point_overhead_s
        )

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Calibration helper: replace selected constants."""
        return replace(self, **kwargs)


def measure_live_eval_rates(
    integrand: Callable, n_evals: int = 200_000
) -> dict[str, float]:
    """Micro-benchmark this machine's actual eval rates (diagnostics).

    Times the *real* vectorized batch kernel and a scalar Python loop on
    the supplied integrand, returning evals/second for each.  Not used by
    the simulation (which is calibrated to the paper's hardware), but
    reported by the benchmark harness so readers can see the live ratio
    on their own machine.
    """
    import numpy as np

    x = np.linspace(0.5, 1.5, n_evals)
    t0 = time.perf_counter()
    integrand(x)
    t_vec = time.perf_counter() - t0

    n_scalar = max(200, n_evals // 1000)
    xs = x[:n_scalar]
    t0 = time.perf_counter()
    for v in xs:
        integrand(np.array([v]))
    t_scalar = time.perf_counter() - t0

    return {
        "vectorized_evals_per_s": n_evals / max(t_vec, 1e-12),
        "scalar_evals_per_s": n_scalar / max(t_scalar, 1e-12),
    }
