"""Task descriptors — the scheduling unit of the hybrid framework.

A task bundles (a) the GPU kernel it would launch, (b) enough information
to price its CPU fallback, and (c) optional *real* execution callables so
the same task object can drive either a cost-only simulation or a run
that produces actual spectra.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.gpusim.kernel import KernelSpec

__all__ = ["TaskKind", "Task"]


class TaskKind(enum.Enum):
    """What one task covers (the paper's granularity choices + NEI)."""

    ION = "ion"  # all levels x bins of one ion (coarse, Algorithm 2)
    LEVEL = "level"  # one level's bins (fine)
    ELEMENT = "element"  # all ions of one element (coarser; ablation)
    NEI_CHUNK = "nei"  # ten packed NEI timesteps (Table II)


@dataclass
class Task:
    """One schedulable unit of work.

    Attributes
    ----------
    task_id:
        Unique, dense id (doubles as deterministic ordering key).
    kind:
        Granularity class of the task.
    kernel:
        GPU cost/compute descriptor.
    point_index:
        Which parameter-space grid point the task belongs to.
    cpu_execute:
        Optional real CPU computation (the QAGS path) returning the same
        result type as ``kernel.execute``.
    label:
        Human-readable tag, e.g. ``"pt3/Fe+16"``.
    """

    task_id: int
    kind: TaskKind
    kernel: KernelSpec
    point_index: int = 0
    #: Energy levels contained in the task (prices the host-side prep).
    n_levels: int = 1
    #: CPU work per integral on the fallback path, in integrand-eval
    #: units; None = the cost model's QAGS default.  NEI tasks override it
    #: (LSODA steps cost differently than quadrature).
    cpu_evals_per_integral: Optional[int] = None
    cpu_execute: Optional[Callable[[], object]] = field(default=None, repr=False)
    label: str = ""
    #: Trace span id of whatever caused this task (megabatch group span or
    #: request root); 0 = untraced.  The hybrid runner parents the task
    #: span — and through it every gpusim sub-span — under this id.
    trace_parent: int = 0
    #: Quadrature method for cost-model keying; request compilers stamp
    #: the rule ("simpson" | "romberg") so predictive scheduling queries
    #: the same (ion, method, width) keys the attribution ledger feeds.
    #: Empty for workloads with no rule axis (falls back to the kind).
    method: str = ""

    @property
    def cost_key_method(self) -> str:
        """The method axis of this task's cost-model key."""
        return self.method or self.kind.value

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if self.n_levels < 0:
            raise ValueError("n_levels must be non-negative")

    @property
    def n_integrals(self) -> int:
        return self.kernel.n_integrals

    def run_gpu(self) -> object:
        """Execute the real GPU-path numerics (vectorized batch kernel)."""
        if self.kernel.execute is None:
            return None
        return self.kernel.execute()

    def run_cpu(self) -> object:
        """Execute the real CPU-fallback numerics (scalar QAGS path)."""
        if self.cpu_execute is None:
            return None
        return self.cpu_execute()
