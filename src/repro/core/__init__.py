"""The paper's contribution: hybrid CPU/GPU scheduling of small tasks.

- :mod:`repro.core.task` — task descriptors (Ion / Level / NEI-chunk).
- :mod:`repro.core.queue` — per-device task queue state (load, history,
  maximum queue length).
- :mod:`repro.core.scheduler` — Algorithm 1 (SCHE-ALLOC / SCHE-FREE) over
  shared memory, plus the client-server (MPS-like) ablation variant.
- :mod:`repro.core.granularity` — packing integrals into tasks at ion /
  level / element granularity.
- :mod:`repro.core.calibration` — the cost model tying simulated seconds
  to the paper's measured constants.
- :mod:`repro.core.hybrid` — the end-to-end hybrid runner (the Fig. 2
  architecture) over the discrete-event cluster.
- :mod:`repro.core.metrics` — task ratios, load-residency histograms and
  the timing ledger behind Figs. 4-6 and Table I.
- :mod:`repro.core.autotune` — the automatic maximum-queue-length search.
"""

from repro.core.task import Task, TaskKind
from repro.core.queue import TaskQueue
from repro.core.scheduler import (
    SharedMemoryScheduler,
    ClientServerScheduler,
    NO_DEVICE,
)
from repro.core.calibration import CostModel
from repro.core.granularity import Granularity, WorkloadSpec, build_tasks
from repro.core.metrics import MetricsLedger, RunResult
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.autotune import autotune_queue_length

__all__ = [
    "Task",
    "TaskKind",
    "TaskQueue",
    "SharedMemoryScheduler",
    "ClientServerScheduler",
    "NO_DEVICE",
    "CostModel",
    "Granularity",
    "WorkloadSpec",
    "build_tasks",
    "MetricsLedger",
    "RunResult",
    "HybridConfig",
    "HybridRunner",
    "autotune_queue_length",
]
