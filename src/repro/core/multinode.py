"""Multi-node execution — the outer tier of the paper's Fig. 2.

"For simplicity and stability there is no central load balance server in
the parallel program, instead each physical node is equipped with a local
task scheduler.  The main program is responsible for load balance among
the different physical machines by dividing the whole parameter space
into several equal subspaces."

This module implements exactly that: the main program scatters equal
point sub-spaces to nodes over the (simulated) interconnect, each node
runs its own independent hybrid schedule, and results are gathered back.
Nodes share nothing at runtime, so the cluster makespan is the slowest
node plus the scatter/gather cost — which is also the model's prediction
to test against: near-perfect scaling while the point count divides
evenly, with a quantifiable remainder penalty when it does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.metrics import RunResult
from repro.core.task import Task

__all__ = ["MultiNodeConfig", "MultiNodeResult", "MultiNodeRunner"]


@dataclass(frozen=True)
class MultiNodeConfig:
    """A homogeneous cluster of hybrid nodes.

    Attributes
    ----------
    n_nodes:
        Physical machines, each with its own workers, GPUs and scheduler.
    node:
        The per-node configuration (the paper's: 24 ranks + N GPUs).
    interconnect_latency_s / interconnect_bandwidth_bs:
        Cost of shipping one sub-space description out and one result
        set back (per node, overlapped across nodes).
    bytes_per_task_result:
        Result payload per task (spectral bins) for the gather cost.
    """

    n_nodes: int = 2
    node: HybridConfig = field(default_factory=HybridConfig)
    interconnect_latency_s: float = 1.0e-3
    interconnect_bandwidth_bs: float = 1.0e9
    bytes_per_task_result: int = 50_000 * 8

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.interconnect_latency_s < 0 or self.interconnect_bandwidth_bs <= 0:
            raise ValueError("invalid interconnect parameters")
        if self.bytes_per_task_result < 0:
            raise ValueError("result payload must be non-negative")


@dataclass
class MultiNodeResult:
    """Cluster-level outcome."""

    makespan_s: float
    node_results: list[RunResult]
    comm_s: float
    #: Per-node telemetry stores when the run scraped (``node index ->
    #: store``); feed to :func:`repro.obs.dash.federate` for one
    #: cluster dashboard under ``node=`` labels.
    stores: dict | None = None

    def federated_store(self, label: str = "node"):
        """Merge the per-node stores under a constant node label."""
        if not self.stores:
            raise ValueError("run() was not asked to scrape telemetry")
        from repro.obs.dash import federate

        return federate(self.stores, label=label)

    @property
    def slowest_node(self) -> int:
        times = [r.makespan_s for r in self.node_results]
        return times.index(max(times))

    def imbalance(self) -> float:
        """(max - min) / max node makespan; 0 = perfectly balanced."""
        times = [r.makespan_s for r in self.node_results]
        top = max(times)
        return (top - min(times)) / top if top > 0 else 0.0


class MultiNodeRunner:
    """Scatter points across nodes, run each node's hybrid schedule."""

    def __init__(self, config: MultiNodeConfig | None = None) -> None:
        self.config = config or MultiNodeConfig()

    def partition(self, tasks: list[Task]) -> list[list[Task]]:
        """Equal sub-spaces by grid point: point p goes to node p % N.

        Splitting whole *points* (not tasks) mirrors the paper: nodes
        receive sub-spaces of the parameter grid, and every task of one
        point stays with the rank that owns the point.
        """
        parts: list[list[Task]] = [[] for _ in range(self.config.n_nodes)]
        for task in tasks:
            parts[task.point_index % self.config.n_nodes].append(task)
        return parts

    def run(
        self, tasks: list[Task], scrape_cadence_s: float | None = None
    ) -> MultiNodeResult:
        """Run the cluster; ``scrape_cadence_s`` turns on telemetry.

        When set, every node's hybrid run scrapes its own
        :class:`~repro.obs.tsdb.TimeSeriesStore` at that virtual cadence
        (each node has its own clock, exactly as each physical machine
        has its own Prometheus) and the result carries the per-node
        stores for federation.
        """
        cfg = self.config
        parts = self.partition(tasks)
        node_results: list[RunResult] = []
        stores: dict[str, object] | None = None
        if scrape_cadence_s is not None:
            from repro.obs.tsdb import TimeSeriesStore

            stores = {}
        for node_index, node_tasks in enumerate(parts):
            # Re-index points onto the node's local ranks: rank r of a
            # node handles local points r, r + n_workers, ...
            local: list[Task] = []
            point_map: dict[int, int] = {}
            for task in node_tasks:
                local_point = point_map.setdefault(task.point_index, len(point_map))
                local.append(replace(task, point_index=local_point))
            if stores is not None:
                store = TimeSeriesStore()
                stores[str(node_index)] = store
                runner = HybridRunner(
                    cfg.node, tsdb=store, scrape_cadence_s=scrape_cadence_s
                )
            else:
                runner = HybridRunner(cfg.node)
            node_results.append(runner.run(local) if local else _empty_result())

        # Scatter + gather, overlapped across nodes: one latency each way
        # plus the largest node's result payload over the link.
        max_tasks = max((len(p) for p in parts), default=0)
        comm = 2.0 * cfg.interconnect_latency_s + (
            max_tasks * cfg.bytes_per_task_result / cfg.interconnect_bandwidth_bs
        )
        makespan = max((r.makespan_s for r in node_results), default=0.0) + comm
        return MultiNodeResult(
            makespan_s=makespan,
            node_results=node_results,
            comm_s=comm,
            stores=stores,
        )


def _empty_result() -> RunResult:
    from repro.core.metrics import MetricsLedger

    m = MetricsLedger(0, 1)
    m.finalize(0.0)
    return RunResult(makespan_s=0.0, metrics=m, n_tasks=0, mode="hybrid")
