"""Offline schedule analysis: replay and validate recorded traces.

A recorded :class:`~repro.core.metrics.TaskEvent` timeline is a complete
description of one hybrid schedule.  This module re-derives scheduler
state from the trace alone and checks it against the invariants the live
scheduler is supposed to maintain — an independent auditor, sharing no
code with the scheduler it audits — plus summary statistics for schedule
post-mortems (per-rank busy fractions, device occupancy, fallback
clustering).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.metrics import TaskEvent

__all__ = ["ReplayReport", "replay_trace"]


@dataclass
class ReplayReport:
    """Everything the auditor derived from one trace."""

    n_events: int
    n_gpu: int
    n_cpu: int
    makespan_s: float
    violations: list[str] = field(default_factory=list)
    rank_busy_fraction: dict[int, float] = field(default_factory=dict)
    device_task_counts: dict[int, int] = field(default_factory=dict)
    max_concurrent_per_device: dict[int, int] = field(default_factory=dict)
    fallback_runs: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def replay_trace(
    trace: list[TaskEvent],
    max_queue_length: int | None = None,
    n_expected_tasks: int | None = None,
) -> ReplayReport:
    """Audit a task timeline.

    Checks performed:

    - every task id appears exactly once;
    - per-rank intervals are disjoint (a synchronous rank runs one task
      at a time);
    - when ``max_queue_length`` is given, the number of *simultaneously
      open* GPU events per device never exceeds it (the queue bound seen
      from the outside);
    - when ``n_expected_tasks`` is given, the trace is complete.
    """
    report = ReplayReport(
        n_events=len(trace),
        n_gpu=sum(1 for e in trace if e.placement == "gpu"),
        n_cpu=sum(1 for e in trace if e.placement == "cpu"),
        makespan_s=max((e.end for e in trace), default=0.0),
    )

    # Uniqueness / completeness.
    ids = [e.task_id for e in trace]
    if len(set(ids)) != len(ids):
        report.violations.append("duplicate task ids in trace")
    if n_expected_tasks is not None and len(ids) != n_expected_tasks:
        report.violations.append(
            f"trace has {len(ids)} tasks, expected {n_expected_tasks}"
        )

    # Per-rank serialization + busy fractions.
    by_rank: dict[int, list[TaskEvent]] = {}
    for ev in trace:
        by_rank.setdefault(ev.rank, []).append(ev)
    for rank, events in by_rank.items():
        events.sort(key=lambda e: (e.start, e.end))
        busy = 0.0
        for a, b in zip(events, events[1:]):
            if b.start < a.end - 1e-9:
                report.violations.append(
                    f"rank {rank}: overlapping tasks {a.task_id} and {b.task_id}"
                )
        for ev in events:
            if ev.end < ev.start:
                report.violations.append(
                    f"rank {rank}: task {ev.task_id} ends before it starts"
                )
            busy += max(0.0, ev.duration)
        if report.makespan_s > 0.0:
            report.rank_busy_fraction[rank] = busy / report.makespan_s

    # Device occupancy from the outside: sweep event edges.
    by_device: dict[int, list[TaskEvent]] = {}
    for ev in trace:
        if ev.placement == "gpu":
            by_device.setdefault(ev.device, []).append(ev)
    for device, events in by_device.items():
        report.device_task_counts[device] = len(events)
        edges = sorted(
            [(e.start, +1) for e in events] + [(e.end, -1) for e in events],
            key=lambda p: (p[0], p[1]),
        )
        live = peak = 0
        for _t, delta in edges:
            live += delta
            peak = max(peak, live)
        report.max_concurrent_per_device[device] = peak
        if max_queue_length is not None and peak > max_queue_length:
            report.violations.append(
                f"device {device}: {peak} concurrent tasks exceeds the "
                f"queue bound {max_queue_length}"
            )

    # Fallback clustering: lengths of consecutive CPU placements in
    # task-id order (long runs = a rank stuck on the slow path).
    ordered = sorted(trace, key=lambda e: e.task_id)
    run = 0
    for ev in ordered:
        if ev.placement == "cpu":
            run += 1
        elif run:
            report.fallback_runs.append(run)
            run = 0
    if run:
        report.fallback_runs.append(run)

    return report
