"""Execution backends: serial, thread and process pools with one contract.

The contract that matters is *determinism*: a computation sharded across
workers must produce the same spectrum bits as the serial loop, or every
regression gate downstream (bench comparisons, golden files, cache keys)
becomes backend-dependent.  Two rules enforce it:

1. **Sharding is independent of the worker count.**  Work items are split
   into a fixed number of shards decided by the caller (not by ``jobs``),
   so the partial results are the same arrays no matter how many workers
   exist or in which order they finish.
2. **Reduction order is fixed.**  :func:`tree_reduce` combines partials
   in deterministic pairwise rounds; since every backend reduces the same
   shard arrays in the same order, serial, thread and process execution
   agree bit for bit.

``map`` preserves input order (results arrive as submitted, regardless of
completion order).  The process backend requires picklable functions and
arguments — module-level workers, not closures.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "default_jobs",
    "get_backend",
    "shard_items",
    "shutdown_warm_pools",
    "tree_reduce",
]

T = TypeVar("T")
R = TypeVar("R")

#: Recognized backend names, in CLI/help order.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


def default_jobs() -> int:
    """Default worker count: one per available core."""
    return os.cpu_count() or 1


class ExecutionBackend:
    """Common interface of the execution backends.

    ``map`` applies ``fn`` to every item and returns results in input
    order; ``close`` releases pooled workers (idempotent).  Backends are
    reusable across ``map`` calls — pools are created lazily on first use.
    """

    name: str = "abstract"

    @property
    def jobs(self) -> int:
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process, in-order execution — the default and the reference."""

    name = "serial"

    @property
    def jobs(self) -> int:
        return 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared lazy-pool plumbing of the thread/process backends."""

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._jobs = jobs if jobs is not None else default_jobs()
        self._pool: concurrent.futures.Executor | None = None

    @property
    def jobs(self) -> int:
        return self._jobs

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if self._pool is None:
            self._pool = self._make_pool()
        # Executor.map yields results in submission order, independent of
        # completion order — the determinism contract needs exactly that.
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadBackend(_PoolBackend):
    """Thread pool: shared memory, no pickling; NumPy releases the GIL
    inside the large vectorized kernels, so real speedups are possible."""

    name = "thread"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self._jobs, thread_name_prefix="repro-worker"
        )


#: Warm process pools parked across backend instances, keyed by worker
#: count.  Spawning worker processes dominates short maps (it is why the
#: process backend can lose to serial), so ``ProcessBackend.close`` parks
#: its pool here and the next backend asking for the same worker count
#: adopts it instead of forking a fresh one.
_WARM_POOLS: dict[int, concurrent.futures.ProcessPoolExecutor] = {}


def shutdown_warm_pools() -> None:
    """Tear down every parked warm process pool.

    Registered via ``atexit`` so parked pools are joined before the
    interpreter starts unloading modules (a pool reaped only by the
    garbage collector at shutdown races module teardown); tests and
    long-lived hosts can also call it to release workers early.
    """
    while _WARM_POOLS:
        _, pool = _WARM_POOLS.popitem()
        pool.shutdown(wait=True)


atexit.register(shutdown_warm_pools)


def _book_pool(*, reused: bool) -> None:
    # Imported lazily: the ledger lives with the kernel counters in
    # quadrature, and this package must stay importable without it.
    from repro.quadrature.batch import KERNEL_COUNTERS

    KERNEL_COUNTERS.book_pool(reused=reused)


def _book_map(n_chunks: int, n_items: int) -> None:
    from repro.quadrature.batch import KERNEL_COUNTERS

    KERNEL_COUNTERS.book_map(n_chunks, n_items)


def _run_chunk(payload: tuple[Callable, tuple]) -> list:
    """Worker-side chunk runner: apply ``fn`` to each item, in order.

    Module-level so ``(fn, chunk)`` crosses the process boundary as one
    pickle instead of one round trip per item.
    """
    fn, chunk = payload
    return [fn(item) for item in chunk]


class ProcessBackend(_PoolBackend):
    """Process pool: true multi-core parallelism; functions and arguments
    must be picklable (module-level workers, frozen dataclasses).

    Pools are *warm-reused*: ``close`` parks the pool in a module-level
    registry instead of shutting it down, and the next ``ProcessBackend``
    with the same worker count adopts it — repeated short maps pay the
    worker fork cost once per process, not once per backend instance.
    Adoptions and cold starts are booked as ``pool_reuses`` /
    ``pool_creates`` on :data:`repro.quadrature.batch.KERNEL_COUNTERS`.

    ``map`` submits sharded *chunks* rather than single items: one
    pickle round trip per chunk (at most ``4 x jobs`` chunks per call)
    instead of one per item, which is what made many-small-item maps
    slower than serial.  Chunk results are flattened in submission
    order, so input order — and therefore every downstream reduction —
    is untouched; chunk sizes depend only on the item count and
    ``jobs``, never on completion order.
    """

    name = "process"

    def _make_pool(self) -> concurrent.futures.Executor:
        pool = _WARM_POOLS.pop(self._jobs, None)
        reused = pool is not None
        if pool is None:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=self._jobs)
        _book_pool(reused=reused)
        return pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        if not len(items):
            return []
        if self._pool is None:
            self._pool = self._make_pool()
        chunks = shard_items(items, self._jobs * 4)
        _book_map(n_chunks=len(chunks), n_items=len(items))
        out: list[R] = []
        for part in self._pool.map(_run_chunk, [(fn, c) for c in chunks]):
            out.extend(part)
        return out

    def close(self) -> None:
        if self._pool is None:
            return
        parked = _WARM_POOLS.setdefault(self._jobs, self._pool)
        if parked is not self._pool:
            # A pool of this size is already parked; keeping two warm
            # doubles the resident workers for no further speedup.
            self._pool.shutdown(wait=True)
        self._pool = None


def get_backend(name: str, jobs: int | None = None) -> ExecutionBackend:
    """Instantiate a backend by name (``serial`` ignores ``jobs``)."""
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(jobs)
    if name == "process":
        return ProcessBackend(jobs)
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


def shard_items(items: Sequence[T], n_shards: int) -> list[tuple[T, ...]]:
    """Split ``items`` into at most ``n_shards`` contiguous, non-empty
    shards of near-equal size.

    The split depends only on ``len(items)`` and ``n_shards`` — never on
    the backend or worker count — so sharded results are reproducible.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = len(items)
    if n == 0:
        return []
    n_shards = min(n_shards, n)
    bounds = np.linspace(0, n, n_shards + 1).round().astype(int)
    return [
        tuple(items[bounds[i]: bounds[i + 1]]) for i in range(n_shards)
    ]


def tree_reduce(parts: Iterable[np.ndarray]) -> np.ndarray:
    """Deterministic pairwise sum of partial arrays.

    Adjacent pairs are combined round by round (odd tail carried over),
    so the floating-point association depends only on the number and
    order of partials — identical across serial/thread/process backends.
    """
    arrs = [np.asarray(p, dtype=np.float64) for p in parts]
    if not arrs:
        raise ValueError("tree_reduce needs at least one partial")
    while len(arrs) > 1:
        merged = [
            arrs[i] + arrs[i + 1] for i in range(0, len(arrs) - 1, 2)
        ]
        if len(arrs) % 2:
            merged.append(arrs[-1])
        arrs = merged
    return arrs[0]
