"""Wall-clock parallel execution backends.

Everything else in the reproduction measures *simulated* time on the
event clock; this package is about *real* time — sharding real NumPy
work across host cores so ``repro spectrum`` / ``serve`` and the bench
harness get multi-core speedups on actual hardware.

See :mod:`repro.parallel.executor` for the backend protocol and
:func:`repro.parallel.executor.tree_reduce` for the deterministic
reduction that keeps every backend bit-identical to serial execution.
"""

from repro.parallel.executor import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_jobs,
    get_backend,
    shard_items,
    tree_reduce,
)

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_jobs",
    "get_backend",
    "shard_items",
    "tree_reduce",
]
