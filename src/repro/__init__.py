"""repro — reproduction of "Accelerating Spectral Calculation through
Hybrid GPU-based Computing" (Xiao et al., ICPP 2015).

The package rebuilds the paper's full stack in Python:

- :mod:`repro.atomic` — synthetic ATOMDB-like database (496 ions);
- :mod:`repro.quadrature` — Simpson / Romberg / Gauss-Kronrod / QAGS and
  their vectorized batch forms (the "GPU kernels");
- :mod:`repro.physics` — Eq. (1) RRC emissivity, CIE ion balance, and the
  serial APEC-style calculator;
- :mod:`repro.gpusim` — simulated Fermi/Kepler GPUs with calibrated
  launch / transfer / compute costs;
- :mod:`repro.cluster` — discrete-event node (MPI ranks, shared memory)
  plus a live ``multiprocessing`` runner;
- :mod:`repro.core` — the paper's contribution: the shared-memory
  dynamic load-balancing scheduler (Algorithm 1), task granularity
  (Algorithm 2), the hybrid runner, auto-tuning and metrics;
- :mod:`repro.nei` — the NEI adaptability study (stiff ODEs, LSODA-style
  solver, Table II workload).

Quick start::

    from repro import HybridConfig, HybridRunner, WorkloadSpec, build_tasks

    tasks = build_tasks(WorkloadSpec())             # 24 points x 496 ions
    runner = HybridRunner(HybridConfig(n_gpus=3))   # 24 ranks + 3 C2075s
    result = runner.run(tasks)
    print(result.makespan_s, result.metrics.gpu_task_ratio())
"""

from repro.core import (
    CostModel,
    Granularity,
    HybridConfig,
    HybridRunner,
    MetricsLedger,
    RunResult,
    SharedMemoryScheduler,
    Task,
    TaskKind,
    WorkloadSpec,
    autotune_queue_length,
    build_tasks,
)
from repro.gpusim import DeviceSpec, TESLA_C2075, TESLA_K20
from repro.physics import EnergyGrid, GridPoint, SerialAPEC, Spectrum

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "Granularity",
    "HybridConfig",
    "HybridRunner",
    "MetricsLedger",
    "RunResult",
    "SharedMemoryScheduler",
    "Task",
    "TaskKind",
    "WorkloadSpec",
    "autotune_queue_length",
    "build_tasks",
    "DeviceSpec",
    "TESLA_C2075",
    "TESLA_K20",
    "EnergyGrid",
    "GridPoint",
    "SerialAPEC",
    "Spectrum",
    "__version__",
]
