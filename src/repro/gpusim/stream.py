"""CUDA-stream-flavoured ordering on the simulated device.

A :class:`Stream` serializes the operations submitted to it while letting
different streams interleave on the device — the property Algorithm 2
relies on when several MPI ranks share one card.  On Fermi the device
itself still executes one kernel at a time (application-level context
switching); on Kepler up to ``max_concurrent_kernels`` streams make
progress at once.  Both behaviours live in
:class:`~repro.gpusim.device.SimulatedGPU`; the stream adds the
*within-client* FIFO guarantee and a convenient completion signal chain.
"""

from __future__ import annotations

from repro.cluster.simclock import Signal
from repro.gpusim.device import SimulatedGPU
from repro.gpusim.kernel import KernelSpec

__all__ = ["Stream"]


class Stream:
    """An ordered lane of kernel submissions onto one simulated GPU."""

    def __init__(self, gpu: SimulatedGPU, name: str = "") -> None:
        self.gpu = gpu
        self.name = name or f"stream@gpu{gpu.index}"
        self._tail: Signal | None = None
        self.submitted = 0

    def enqueue(self, kernel: KernelSpec) -> Signal:
        """Submit after all previously enqueued work on this stream.

        Returns the completion signal of *this* kernel.  Implementation:
        if earlier work is still pending, chain the submission onto its
        completion via a relay process on the device clock.
        """
        clock = self.gpu.clock
        self.submitted += 1
        tracer = self.gpu.tracer
        if tracer.enabled:
            tracer.instant(
                self.gpu.track,
                "stream.enqueue",
                cat="stream",
                args={"stream": self.name, "seq": self.submitted},
            )
        if self._tail is None or self._tail.fired:
            done = self.gpu.submit(kernel)
        else:
            done = clock.signal(f"{self.name}.k{self.submitted}")
            prev = self._tail

            def relay(_payload: object) -> None:
                inner = self.gpu.submit(kernel)
                inner.add_callback(clock, lambda p: done.fire(clock, p))

            prev.add_callback(clock, relay)
        self._tail = done
        return done

    def synchronize_signal(self) -> Signal | None:
        """Signal that fires when the last enqueued kernel completes."""
        return self._tail
