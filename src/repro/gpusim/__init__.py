"""Simulated GPU devices with explicit analytic timing models.

No CUDA hardware is available (or needed) for the reproduction: every
experimental conclusion of the paper rests on the *ratios* between kernel
compute time, kernel-launch overhead, PCIe transfer cost and CPU serial
cost.  :class:`~repro.gpusim.device.DeviceSpec` encodes those ratios for a
Fermi Tesla C2075 (the paper's card) and a Kepler K20 (for the Hyper-Q
discussion); :class:`~repro.gpusim.device.SimulatedGPU` executes kernel
submissions against a :class:`~repro.cluster.simclock.SimClock`, while the
*numerical* work of a kernel is performed for real by the vectorized batch
integrators when a task carries an ``execute`` callable.
"""

from repro.gpusim.device import DeviceSpec, SimulatedGPU, TESLA_C2075, TESLA_K20
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.memory import DeviceMemory, DeviceOutOfMemory
from repro.gpusim.stream import Stream

__all__ = [
    "DeviceSpec",
    "SimulatedGPU",
    "TESLA_C2075",
    "TESLA_K20",
    "KernelSpec",
    "DeviceMemory",
    "DeviceOutOfMemory",
    "Stream",
]
