"""Device memory accounting.

The spectral workload streams small task buffers through the card, so
capacity is never the binding constraint on a 6 GB C2075 — but a model
that cannot run out of memory cannot be trusted when someone scales the
bins up, so allocations are tracked against the spec'd capacity and
exhaustion raises :class:`DeviceOutOfMemory` rather than silently
over-committing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceMemory", "DeviceOutOfMemory", "Allocation"]


class DeviceOutOfMemory(MemoryError):
    """Raised when an allocation exceeds remaining device memory."""


@dataclass(frozen=True)
class Allocation:
    """Handle for one live device buffer."""

    ident: int
    nbytes: int
    label: str = ""


class DeviceMemory:
    """A bump-counter allocator with explicit free and peak tracking."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity_bytes
        self.used = 0
        self.peak = 0
        self._next_id = 0
        self._live: dict[int, Allocation] = {}

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises :class:`DeviceOutOfMemory` if short."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.available:
            raise DeviceOutOfMemory(
                f"requested {nbytes} B with only {self.available} B free "
                f"(capacity {self.capacity} B, label={label!r})"
            )
        self._next_id += 1
        handle = Allocation(ident=self._next_id, nbytes=nbytes, label=label)
        self._live[handle.ident] = handle
        self.used += nbytes
        self.peak = max(self.peak, self.used)
        return handle

    def free(self, handle: Allocation) -> None:
        """Release a live allocation; double-free raises ``KeyError``."""
        stored = self._live.pop(handle.ident, None)
        if stored is None:
            raise KeyError(f"allocation {handle.ident} is not live (double free?)")
        self.used -= stored.nbytes

    def live_count(self) -> int:
        return len(self._live)

    def reset(self) -> None:
        """Free everything (device reset between runs)."""
        self._live.clear()
        self.used = 0
