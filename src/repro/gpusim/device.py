"""Device specifications and the event-driven GPU entity.

:class:`DeviceSpec` is the analytic cost model; :class:`SimulatedGPU`
plugs it into a :class:`~repro.cluster.simclock.SimClock` as a FIFO server
(Fermi application-level context switching: "the queued tasks are
performed serially in their submission orders") or a limited-concurrency
server (Kepler Hyper-Q, up to 32 connections).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.cluster.simclock import Signal, SimClock
from repro.gpusim.kernel import KernelSpec
from repro.obs.tracer import NULL_TRACER

__all__ = ["DeviceSpec", "SimulatedGPU", "TESLA_C2075", "TESLA_K20"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description + timing model of one GPU.

    The headline hardware numbers (SM count, clock, peak DP GFLOPS) are
    documentary; the three *calibrated* parameters that set every
    experiment's shape are ``eval_rate`` (integrand evaluations per
    second achieved by our batch kernels), ``kernel_launch_s`` and the
    PCIe pair (latency, bandwidth).
    """

    name: str
    architecture: str  # "fermi" | "kepler"
    sm_count: int
    cores_per_sm: int
    core_clock_ghz: float
    dp_gflops: float
    memory_gb: float
    pcie_bandwidth_gbs: float = 8.0  # PCIe 2.0 x16 effective
    pcie_latency_s: float = 10.0e-6
    kernel_launch_s: float = 8.0e-6
    eval_rate: float = 2.16e9  # integrand evals / s (calibrated)
    max_concurrent_kernels: int = 1
    #: Application-level context-switch cost per task.  On Fermi each MPI
    #: rank owns a separate CUDA context and "the queued tasks are
    #: performed serially in their submission orders", paying a context
    #: switch between clients; Kepler's Hyper-Q removes it.  This fixed
    #: per-task device cost is what caps the fine-grained Level
    #: granularity at roughly half the Ion speedup (Fig. 3).
    context_switch_s: float = 1.7e-3

    def __post_init__(self) -> None:
        if self.architecture not in ("fermi", "kepler"):
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if self.eval_rate <= 0 or self.pcie_bandwidth_gbs <= 0:
            raise ValueError("rates must be positive")
        if self.max_concurrent_kernels < 1:
            raise ValueError("need at least one concurrent kernel slot")

    @property
    def core_count(self) -> int:
        return self.sm_count * self.cores_per_sm

    def compute_time(self, spec: KernelSpec) -> float:
        """Pure kernel execution time (no launch, no transfer)."""
        return spec.total_evals / (self.eval_rate * spec.efficiency)

    def transfer_time(self, nbytes: int) -> float:
        """One PCIe transfer: fixed latency + bytes over bandwidth."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.pcie_latency_s + nbytes / (self.pcie_bandwidth_gbs * 1.0e9)

    def service_time(self, spec: KernelSpec) -> float:
        """End-to-end device time of one task.

        context switch + H2D + launch + compute + D2H.
        """
        return (
            self.context_switch_s
            + self.transfer_time(spec.bytes_in)
            + self.kernel_launch_s
            + self.compute_time(spec)
            + self.transfer_time(spec.bytes_out)
        )

    def with_eval_rate(self, eval_rate: float) -> "DeviceSpec":
        """Calibration helper: same card, different achieved throughput."""
        return replace(self, eval_rate=eval_rate)


#: The paper's card: Fermi, 448 cores @ 1.15 GHz, 515 DP GFLOPS, 6 GB,
#: PCIe 2.0, application-level context switching (serial task queue).
TESLA_C2075 = DeviceSpec(
    name="Tesla C2075",
    architecture="fermi",
    sm_count=14,
    cores_per_sm=32,
    core_clock_ghz=1.15,
    dp_gflops=515.0,
    memory_gb=6.0,
    pcie_bandwidth_gbs=8.0,
    max_concurrent_kernels=1,
)

#: Kepler with Hyper-Q: up to 32 simultaneous connections from MPI ranks,
#: no per-client context switching.
TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    architecture="kepler",
    sm_count=13,
    cores_per_sm=192,
    core_clock_ghz=0.706,
    dp_gflops=1170.0,
    memory_gb=5.0,
    pcie_bandwidth_gbs=8.0,
    eval_rate=4.5e9,
    max_concurrent_kernels=32,
    context_switch_s=0.0,
)


class SimulatedGPU:
    """One GPU as a discrete-event server with phased task execution.

    A task passes through three phases:

    1. *ingress* — context switch + H2D transfer + kernel launch;
    2. *compute* — SM execution at the device's eval rate;
    3. *egress*  — D2H result transfer.

    On Fermi (``max_concurrent_kernels = 1``) the phases of consecutive
    tasks serialize entirely — application-level context switching, "the
    queued tasks are performed serially in their submission orders".  On
    Kepler, up to ``max_concurrent_kernels`` clients may be in flight at
    once: their ingress/egress phases *overlap*, but the compute phases
    still serialize through the SMs at full rate — Hyper-Q hides the
    per-client overheads, it does not multiply the silicon.  (True
    fine-grained SM sharing would be processor-sharing; serializing
    compute at full rate has the same aggregate throughput and keeps the
    event model exact.)

    When a kernel carries an ``execute`` callable, the real computation
    runs at completion time and its result becomes the signal payload.

    With a tracer attached (``tracer``/``track``), each task emits three
    sub-spans on the device track — ``h2d+launch`` (ingress), ``compute``,
    and ``d2h`` (egress) — so a Perfetto timeline shows exactly where
    device time goes.  The default :data:`~repro.obs.tracer.NULL_TRACER`
    keeps the hot path untouched.
    """

    def __init__(
        self,
        clock: SimClock,
        spec: DeviceSpec,
        index: int = 0,
        tracer=None,
        track: int = 0,
    ) -> None:
        self.clock = clock
        self.spec = spec
        self.index = index
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track = track
        self._waiting: deque[tuple[KernelSpec, Signal, int]] = deque()
        self._active = 0  # tasks in any phase
        self._compute_queue: deque[tuple[KernelSpec, Signal, int]] = deque()
        self._compute_busy = False
        self.busy_time = 0.0  # any-phase-active time
        self.completed = 0
        self._busy_since: float | None = None
        self.failed = False
        self._seq = 0

    @property
    def in_flight(self) -> int:
        """Submitted-but-unfinished tasks (all phases + device waits)."""
        return self._active + len(self._waiting)

    def fail(self) -> None:
        """Failure injection: device stops accepting and completing work."""
        self.failed = True

    def submit(self, kernel: KernelSpec, parent: int = 0) -> Signal:
        """Queue one task; returns the signal fired at completion.

        ``parent`` is the trace span id of the causing task span; the
        three sub-spans the device emits link back to it.
        """
        if self.failed:
            raise RuntimeError(f"GPU {self.index} has failed")
        self._seq += 1
        done = self.clock.signal(f"gpu{self.index}.task{self._seq}")
        if self._active < self.spec.max_concurrent_kernels:
            self._start(kernel, done, parent)
        else:
            self._waiting.append((kernel, done, parent))
        return done

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _ingress_time(self, kernel: KernelSpec) -> float:
        return (
            self.spec.context_switch_s
            + self.spec.transfer_time(kernel.bytes_in)
            + self.spec.kernel_launch_s
        )

    def _start(self, kernel: KernelSpec, done: Signal, parent: int = 0) -> None:
        self._active += 1
        if self._busy_since is None:
            self._busy_since = self.clock.now
        t0 = self.clock.now if self.tracer.enabled else 0.0
        self.clock.at(
            self._ingress_time(kernel),
            lambda k=kernel, d=done, t=t0, p=parent: self._enter_compute(k, d, t, p),
        )

    def _enter_compute(
        self, kernel: KernelSpec, done: Signal, started: float = 0.0, parent: int = 0
    ) -> None:
        if self.failed:
            return
        if self.tracer.enabled:
            self.tracer.complete(
                self.track,
                "h2d+launch",
                started,
                cat="ingress",
                args={"label": kernel.label, "bytes_in": kernel.bytes_in},
                parent=parent or None,
            )
        self._compute_queue.append((kernel, done, parent))
        self._pump_compute()

    def _pump_compute(self) -> None:
        if self._compute_busy or not self._compute_queue:
            return
        self._compute_busy = True
        kernel, done, parent = self._compute_queue.popleft()
        t0 = self.clock.now if self.tracer.enabled else 0.0
        self.clock.at(
            self.spec.compute_time(kernel),
            lambda k=kernel, d=done, t=t0, p=parent: self._finish_compute(k, d, t, p),
        )

    def _finish_compute(
        self, kernel: KernelSpec, done: Signal, started: float = 0.0, parent: int = 0
    ) -> None:
        self._compute_busy = False
        if self.tracer.enabled and not self.failed:
            self.tracer.complete(
                self.track,
                "compute",
                started,
                cat="compute",
                args={
                    "label": kernel.label,
                    "evals": kernel.total_evals,
                    "evals_saved": kernel.evals_saved,
                },
                parent=parent or None,
            )
        if not self.failed:
            t0 = self.clock.now if self.tracer.enabled else 0.0
            self.clock.at(
                self.spec.transfer_time(kernel.bytes_out),
                lambda k=kernel, d=done, t=t0, p=parent: self._complete(k, d, t, p),
            )
        self._pump_compute()

    def _complete(
        self, kernel: KernelSpec, done: Signal, started: float = 0.0, parent: int = 0
    ) -> None:
        if self.failed:
            return  # results from a failed device never arrive
        if self.tracer.enabled:
            self.tracer.complete(
                self.track,
                "d2h",
                started,
                cat="egress",
                args={"label": kernel.label, "bytes_out": kernel.bytes_out},
                parent=parent or None,
            )
        self._active -= 1
        self.completed += 1
        if self._active == 0 and self._busy_since is not None:
            self.busy_time += self.clock.now - self._busy_since
            self._busy_since = None
        payload = kernel.execute() if kernel.execute is not None else None
        done.fire(self.clock, payload)
        if self._waiting and self._active < self.spec.max_concurrent_kernels:
            kernel_next, done_next, parent_next = self._waiting.popleft()
            self._start(kernel_next, done_next, parent_next)

    def utilization(self, makespan: float) -> float:
        """Fraction of the run this device had work in some phase."""
        if makespan <= 0.0:
            return 0.0
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.clock.now - self._busy_since
        return busy / makespan
