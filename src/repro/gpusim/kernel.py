"""Kernel descriptors: what a GPU task costs and (optionally) computes.

A :class:`KernelSpec` is the simulation-facing summary of one Algorithm 2
launch: how many integrand evaluations it performs, how many bytes cross
PCIe in each direction, and — when real numerics are wanted — a callable
producing the actual per-bin emission array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["KernelSpec"]

#: Host->device payload per integration task: per-level parameters
#: (binding energy, n, c_eff, g) plus bin-edge metadata.
BYTES_PER_LEVEL_PARAMS: int = 32
BYTES_PER_BIN_RESULT: int = 8  # float64 emissivity per energy bin


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel launch, cost-wise.

    Attributes
    ----------
    n_integrals:
        Number of one-dimensional bin integrals the launch covers
        (levels x bins for an Ion task; bins for a Level task).
    evals_per_integral:
        Integrand evaluations per integral: ``pieces + 1`` for Simpson,
        ``2**k + 1`` for Romberg — the paper's cost knob.
    bytes_in, bytes_out:
        PCIe payloads (host->device parameters, device->host results).
    execute:
        Optional zero-argument callable performing the real computation;
        ``None`` for cost-only simulation runs.
    efficiency:
        Fraction of the device's peak eval rate this kernel achieves.
        Ion/Level kernels run the uniform Algorithm 2 loop (1.0); packing
        several ions into one kernel (Element granularity) introduces
        branch divergence and register pressure — the paper: "the logic of
        the kernel will become more complex so that it is not suitable to
        run on GPU".
    evals_saved:
        Integrand evaluations pruned away relative to the dense
        levels x bins launch (active-window pruning); purely a ledger
        entry — ``total_evals`` already counts only the active work.
    label:
        Diagnostic tag (e.g. the ion name).
    """

    n_integrals: int
    evals_per_integral: int
    bytes_in: int = 0
    bytes_out: int = 0
    execute: Optional[Callable[[], object]] = field(default=None, compare=False)
    efficiency: float = 1.0
    evals_saved: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_integrals < 0:
            raise ValueError("n_integrals must be non-negative")
        if self.evals_saved < 0:
            raise ValueError("evals_saved must be non-negative")
        if self.evals_per_integral < 1:
            raise ValueError("evals_per_integral must be >= 1")
        if self.bytes_in < 0 or self.bytes_out < 0:
            raise ValueError("byte counts must be non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def total_evals(self) -> int:
        return self.n_integrals * self.evals_per_integral

    @classmethod
    def for_ion_task(
        cls,
        n_levels: int,
        n_bins: int,
        evals_per_integral: int,
        label: str = "",
        execute: Optional[Callable[[], object]] = None,
        efficiency: float = 1.0,
        n_active: Optional[int] = None,
    ) -> "KernelSpec":
        """Coarse-grained Ion task: all levels accumulated on-device.

        One parameter upload per level, but a *single* n_bins result array
        comes back — the accumulation-on-GPU trick the paper credits for
        the Ion granularity's win.

        ``n_active`` (active (level, bin) pairs after window pruning)
        replaces the dense ``n_levels * n_bins`` integral count when
        given; the difference is booked as ``evals_saved`` so schedulers
        and ledgers can report how much work the pruning removed.
        """
        dense = n_levels * n_bins
        if n_active is None:
            n_active = dense
        if not 0 <= n_active <= dense:
            raise ValueError(
                f"n_active must be in [0, {dense}], got {n_active}"
            )
        return cls(
            n_integrals=n_active,
            evals_per_integral=evals_per_integral,
            bytes_in=n_levels * BYTES_PER_LEVEL_PARAMS,
            bytes_out=n_bins * BYTES_PER_BIN_RESULT,
            execute=execute,
            efficiency=efficiency,
            evals_saved=(dense - n_active) * evals_per_integral,
            label=label,
        )

    @classmethod
    def for_level_task(
        cls,
        n_bins: int,
        evals_per_integral: int,
        label: str = "",
        execute: Optional[Callable[[], object]] = None,
    ) -> "KernelSpec":
        """Fine-grained Level task: one level's bins, one result transfer."""
        return cls(
            n_integrals=n_bins,
            evals_per_integral=evals_per_integral,
            bytes_in=BYTES_PER_LEVEL_PARAMS,
            bytes_out=n_bins * BYTES_PER_BIN_RESULT,
            execute=execute,
            label=label,
        )
