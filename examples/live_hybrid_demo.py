"""Algorithm 1 on real OS processes (the live shared-memory runner).

Everything else in this repository simulates time; this demo runs the
same scheduler for real: N worker processes share a device server through
shared-memory load/history counters, the "GPU" executes vectorized batch
kernels, the CPU fallback runs scalar adaptive quadrature, and the
wall-clock difference is genuine.

Run:  python examples/live_hybrid_demo.py
"""

import time

import numpy as np

from repro.cluster.shm import LiveHybridRunner, LiveTask


def build_tasks(n_tasks: int, n_bins: int) -> list[LiveTask]:
    edges = np.linspace(0.3, 2.5, n_bins + 1)
    return [
        LiveTask(
            task_id=i,
            lo=edges[:-1],
            hi=edges[1:],
            edge=0.5 + 0.01 * (i % 7),
            kt=0.8,
        )
        for i in range(n_tasks)
    ]


def main() -> None:
    tasks = build_tasks(n_tasks=32, n_bins=400)
    print(f"{len(tasks)} tasks x {len(tasks[0].lo)} bins each\n")

    # Reference: how long does one task take on each path, single-threaded?
    t0 = time.perf_counter()
    gpu_result = tasks[0].gpu_compute()
    t_gpu = time.perf_counter() - t0
    t0 = time.perf_counter()
    cpu_result = tasks[0].cpu_compute()
    t_cpu = time.perf_counter() - t0
    nz = cpu_result != 0
    agree = np.abs((gpu_result[nz] - cpu_result[nz]) / cpu_result[nz]).max()
    print(f"one task, batch kernel : {t_gpu * 1e3:7.2f} ms")
    print(f"one task, scalar QAGS  : {t_cpu * 1e3:7.2f} ms  "
          f"({t_cpu / t_gpu:.0f}x slower; paths agree to {agree:.1e})\n")

    for max_len in (1, 2, 4):
        runner = LiveHybridRunner(
            n_workers=4, n_devices=1, max_queue_length=max_len
        )
        res = runner.run(tasks)
        print(
            f"maxlen {max_len}: wall {res.wall_s:6.2f} s, "
            f"{res.gpu_tasks} tasks on the device server, "
            f"{res.cpu_tasks} on worker CPUs "
            f"({res.gpu_ratio:.0%} device share)"
        )

    # Verify every total against the analytic value of the integrand.
    task = tasks[0]
    exact = task.kt * (1.0 - np.exp(-(2.5 - task.edge) / task.kt))
    print(f"\ntask 0 total: {res.totals[0]:.12f} (analytic {exact:.12f})")


if __name__ == "__main__":
    main()
