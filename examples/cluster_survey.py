"""A production-style survey: parameter space -> multi-node schedule.

The workflow a simulation group would actually run: define the
(temperature, density, time) space from a config, auto-tune the queue
bound on a prefix probe, then scatter the space over a cluster of hybrid
nodes and report the schedule.  Everything here is the library's public
API — this file is the "downstream user" test.

Run:  python examples/cluster_survey.py
"""

from repro.core.autotune import autotune_queue_length, probe_prefix
from repro.core.granularity import WorkloadSpec, build_tasks
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.multinode import MultiNodeConfig, MultiNodeRunner
from repro.core.paramspace import ParameterSpace


def main() -> None:
    # 1. The parameter space, as a simulation post-processing config.
    space = ParameterSpace.from_config(
        {
            "temperature": {"lo": 2.0e6, "hi": 3.0e7, "n": 6, "spacing": "log"},
            "density": {"lo": 0.5, "hi": 2.0, "n": 4},
            "time": [0.0, 100.0],
        }
    )
    print(f"parameter space: {space.shape} = {space.n_points} grid points")

    # 2. The task list (ion granularity, Simpson-64 — the paper's choice).
    tasks = build_tasks(WorkloadSpec(n_points=space.n_points))
    print(f"workload: {len(tasks)} tasks, "
          f"{sum(t.n_integrals for t in tasks):.2e} integrals\n")

    # 3. Auto-tune the queue bound on a representative prefix.
    node = HybridConfig(n_gpus=2, max_queue_length=2)
    probe, probe_cfg = probe_prefix(tasks, node, tasks_per_point=40)
    best, _times = autotune_queue_length(probe_cfg, probe)
    node = HybridConfig(n_gpus=2, max_queue_length=best)
    print(f"auto-tuned maximum queue length: {best}")

    # 4. Single node first, then scale out.
    single = HybridRunner(node).run(tasks)
    print(f"\n1 node : {single.makespan_s:8.1f} s  "
          f"(GPU share {single.metrics.gpu_task_ratio():.1%})")
    for n_nodes in (2, 4):
        cluster = MultiNodeRunner(
            MultiNodeConfig(n_nodes=n_nodes, node=node)
        ).run(tasks)
        print(
            f"{n_nodes} nodes: {cluster.makespan_s:8.1f} s  "
            f"(scaling {single.makespan_s / cluster.makespan_s:.2f}x, "
            f"imbalance {cluster.imbalance():.1%}, "
            f"comm {cluster.comm_s:.1f} s)"
        )

    print(
        "\nEach node runs its own Algorithm 1 scheduler — 'there is no "
        "central load\nbalance server in the parallel program' (Section "
        "III-A) — so scaling is\nlimited only by the equal-subspace split "
        "and the result gather."
    )


if __name__ == "__main__":
    main()
