"""Quickstart: run the paper's main experiment end to end.

Builds the 24-point x 496-ion spectral workload, prices the serial and
24-core MPI baselines, then runs the hybrid CPU/GPU simulation with 3
Tesla C2075s (the paper's headline configuration) and prints the speedups
and scheduler statistics.

Run:  python examples/quickstart.py
"""

from repro import HybridConfig, HybridRunner, WorkloadSpec, build_tasks


def main() -> None:
    print("Building the paper's workload (24 points x 496 ions)...")
    tasks = build_tasks(WorkloadSpec())
    total_integrals = sum(t.n_integrals for t in tasks)
    print(f"  {len(tasks)} tasks, {total_integrals:.2e} bin integrals total\n")

    runner = HybridRunner(HybridConfig(n_gpus=3, max_queue_length=12))

    serial_s = runner.serial_time(tasks)
    mpi = runner.run_mpi_only(tasks)
    print(f"serial APEC      : {serial_s:9.0f} s  (1.0x)")
    print(
        f"24-core MPI      : {mpi.makespan_s:9.0f} s  "
        f"({serial_s / mpi.makespan_s:.1f}x)"
    )

    result = runner.run(tasks)
    print(
        f"hybrid, 3 GPUs   : {result.makespan_s:9.0f} s  "
        f"({serial_s / result.makespan_s:.1f}x vs serial, "
        f"{mpi.makespan_s / result.makespan_s:.1f}x vs MPI)\n"
    )

    m = result.metrics
    print(f"tasks on GPUs    : {int(m.gpu_tasks.sum())} ({m.gpu_task_ratio():.1%})")
    print(f"tasks on CPUs    : {m.cpu_tasks}")
    print(f"per-GPU tasks    : {[int(c) for c in m.gpu_tasks]}")
    print(f"GPU utilization  : {[f'{u:.0%}' for u in result.gpu_utilization]}")
    print(f"mean queue wait  : {m.mean_wait_s() * 1e3:.1f} ms per GPU task")

    print(
        "\nPaper reference (Fig. 3): 305.8x vs serial / ~22x vs MPI at 3 GPUs."
    )


if __name__ == "__main__":
    main()
