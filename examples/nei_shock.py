"""NEI after a shock: ionization catching up with a temperature jump.

A cold (1e4 K) solar-abundance plasma is instantaneously heated to 3e6 K
— the textbook non-equilibrium ionization scenario.  The LSODA-style
auto-switching solver evolves oxygen's charge states; the example prints
the ion-fraction history, the solver's method-switching diagnostics, and
the Table II-style hybrid scheduling summary for the full NEI workload.

Run:  python examples/nei_shock.py
"""

import numpy as np

from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.odes import NEISystem
from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks
from repro.nei.solvers import AutoSwitchSolver, exact_linear_solution


def main() -> None:
    z, ne = 8, 1.0e10  # oxygen in a dense post-shock flow
    t_cold, t_hot = 1.0e4, 3.0e6

    sys_ = NEISystem(z=z, ne_cm3=ne, temperature_k=t_hot)
    y0 = equilibrium_state(z, t_cold)
    tau = relaxation_time_scale(z, t_hot, ne)
    print(f"oxygen, {t_cold:.0e} K -> {t_hot:.0e} K at n_e = {ne:.0e} cm^-3")
    print(f"stiffness ratio {sys_.stiffness_ratio():.1e}, relaxation tau = {tau:.3g} s\n")

    solver = AutoSwitchSolver(rtol=1e-6, atol=1e-10)
    res = solver.solve(sys_.rhs, sys_.jacobian, y0, (0.0, 3.0 * tau))
    st = res.stats
    print(
        f"solver: {st.n_steps} steps ({st.nonstiff_steps} Adams, "
        f"{st.stiff_steps} BDF), {st.n_switches} mode switches, "
        f"{st.n_rejected} rejected\n"
    )

    # Ion-fraction history at a few charge states.
    charges = [0, 4, 6, 7, 8]
    print("      t/tau   " + "".join(f"   O{'+' + str(c) if c else ' I'}  " for c in charges))
    for frac in (0.0, 0.05, 0.2, 0.5, 1.0, 3.0):
        t_q = frac * 3.0 * tau / 3.0 if frac else 0.0
        idx = np.searchsorted(res.t, frac * tau)
        idx = min(idx, len(res.t) - 1)
        row = res.y[idx]
        print(
            f"  {res.t[idx] / tau:9.3f}   "
            + "".join(f"{row[c]:8.4f}" for c in charges)
        )

    exact = exact_linear_solution(sys_.matrix(), y0, np.array([3.0 * tau]))[0]
    print(f"\nmax |error| vs matrix-exponential reference: "
          f"{np.abs(res.y_final - exact).max():.2e}")

    # The Table II run: pack 10 evolutions per task, schedule on 1-4 GPUs.
    print("\nTable II-style hybrid NEI scheduling (scaled workload):")
    cost = CostModel(point_overhead_s=0.0)
    tasks = build_nei_tasks(NEIWorkloadSpec())
    mpi = HybridRunner(
        HybridConfig(n_gpus=0, max_queue_length=8, cost=cost)
    ).run_mpi_only(tasks)
    print(f"  24-core MPI: {mpi.makespan_s:7.0f} s")
    for g in (1, 2, 3, 4):
        r = HybridRunner(
            HybridConfig(n_gpus=g, max_queue_length=8, cost=cost)
        ).run(tasks)
        print(
            f"  {g} GPU(s)  : {r.makespan_s:7.0f} s  "
            f"speedup {mpi.makespan_s / r.makespan_s:4.1f}x  "
            f"(paper: {dict(((1, 2.8), (2, 5.9), (3, 10.8), (4, 15.1)))[g]}x)"
        )


if __name__ == "__main__":
    main()
