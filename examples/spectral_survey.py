"""Spectral survey: real RRC spectra across a temperature grid.

Computes actual spectra (not just scheduling costs) for several plasma
temperatures with the batched Simpson kernel, verifies one point against
the scalar QAGS reference, and prints an ASCII rendition of the
normalized flux in the paper's 10-45 Angstrom window (Fig. 7's view).

Run:  python examples/spectral_survey.py
"""

import numpy as np

from repro import EnergyGrid, GridPoint, SerialAPEC
from repro.atomic.database import AtomicConfig, AtomicDatabase


def ascii_spectrum(wavelengths: np.ndarray, flux: np.ndarray, width: int = 60) -> str:
    """Render normalized flux as a rotated ASCII bar chart."""
    lines = []
    step = max(1, len(flux) // 24)
    for i in range(0, len(flux), step):
        bar = "#" * int(round(flux[i] * width))
        lines.append(f"{wavelengths[i]:7.2f} A |{bar}")
    return "\n".join(lines)


def main() -> None:
    db = AtomicDatabase(AtomicConfig(n_max=6, z_max=14))
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 120)
    apec = SerialAPEC(db, grid, method="simpson-batch")

    print(f"database: {len(db.ions)} ions, {db.total_levels()} levels\n")

    temperatures = [3.0e6, 1.0e7, 3.0e7]
    spectra = {}
    for t in temperatures:
        point = GridPoint(temperature_k=t, ne_cm3=1.0)
        spectra[t] = apec.compute(point)
        peak_wl = grid.wavelength_centers[np.argmax(spectra[t].values)]
        print(
            f"T = {t:.1e} K: total emission {spectra[t].total():.3e}, "
            f"peak at {peak_wl:.1f} A"
        )

    # Accuracy spot check against the scalar QAGS reference (Fig. 7/8).
    print("\nverifying T = 1e7 K against per-bin QAGS (this is the slow path)...")
    point = GridPoint(temperature_k=1.0e7, ne_cm3=1.0)
    sample_ions = db.ions[40:55]
    ref = SerialAPEC(db, grid, method="qags").compute(point, ions=sample_ions)
    fast = SerialAPEC(db, grid, method="simpson-batch").compute(point, ions=sample_ions)
    err = fast.relative_error_percent(ref)
    err = err[np.isfinite(err)]
    print(
        f"  relative error over {err.size} bins: "
        f"[{err.min():.2e}%, {err.max():.2e}%]  (paper: -0.0003%..0.0033%)"
    )

    print("\nNormalized flux at T = 1e7 K (Fig. 7 view):\n")
    spec = spectra[1.0e7].normalized()
    print(ascii_spectrum(grid.wavelength_centers, spec.values))


if __name__ == "__main__":
    main()
