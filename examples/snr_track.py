"""A supernova-remnant cooling track: time-dependent NEI + spectra.

The realistic pipeline the paper's parameter space comes from: a
hydrodynamic tracer records (temperature, density) along its history; the
ionization state lags the gas (NEI), and spectra are synthesized at
selected epochs.  This example evolves oxygen through a shock-then-cool
temperature profile with the auto-switching solver, compares the NEI
state against the instantaneous-equilibrium assumption, and computes the
RRC spectrum with both ionization states to show where CIE would mislead
an observer.

Run:  python examples/snr_track.py
"""

import numpy as np

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.atomic.ions import Ion
from repro.core.paramspace import ParameterSpace
from repro.nei.equilibrium import equilibrium_state
from repro.nei.odes import NEISystem
from repro.nei.solvers import AutoSwitchSolver
from repro.physics.apec import GridPoint, ion_emissivity_batched
from repro.physics.ionbalance import cie_fractions
from repro.physics.spectrum import EnergyGrid


def shock_then_cool(t: float) -> float:
    """Tracer temperature history: jump to 1e7 K, then radiative cooling."""
    t_shock, t_floor, tau_cool = 1.0e7, 2.0e6, 40.0
    return t_floor + (t_shock - t_floor) * np.exp(-t / tau_cool)


def main() -> None:
    z, ne = 8, 1.0e9
    sys_ = NEISystem(
        z=z, ne_cm3=ne, temperature_k=1.0e7, temperature_profile=shock_then_cool
    )
    y0 = equilibrium_state(z, 1.0e4)  # cold pre-shock gas

    print("evolving oxygen through a shock-then-cool track "
          f"(n_e = {ne:.0e} cm^-3)...")
    res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
        sys_.rhs, sys_.jacobian, y0, (0.0, 120.0), save_every=5
    )
    print(f"solver: {res.stats.n_steps} steps, "
          f"{res.stats.n_switches} Adams<->BDF switches, "
          f"{sys_.n_matrix_builds} rate-matrix rebuilds (T varies)\n")

    # The tracer history as a parameter space (what Fig. 1 samples).
    epochs = np.array([1.0, 10.0, 40.0, 120.0])
    temps = np.array([shock_then_cool(t) for t in epochs])
    space = ParameterSpace.from_simulation(
        temperatures_k=temps, densities_cm3=np.array([ne]), times_s=epochs
    )
    print(f"tracer parameter space: {space.n_points} grid points "
          f"({space.shape[0]} temperatures x {space.shape[2]} epochs)\n")

    print("charge-state comparison (NEI vs instantaneous CIE):")
    print(f"{'t (s)':>8} {'T (K)':>10} {'<q> NEI':>9} {'<q> CIE':>9}  lag")
    charges = np.arange(z + 1)
    for t_now in epochs:
        idx = np.searchsorted(res.t, t_now)
        idx = min(idx, len(res.t) - 1)
        nei_frac = res.y[idx]
        t_gas = shock_then_cool(t_now)
        cie_frac = cie_fractions(z, t_gas)
        q_nei = float(charges @ nei_frac)
        q_cie = float(charges @ cie_frac)
        lag = "under-ionized" if q_nei < q_cie - 0.05 else (
            "over-ionized" if q_nei > q_cie + 0.05 else "~equilibrium")
        print(f"{t_now:8.1f} {t_gas:10.2e} {q_nei:9.2f} {q_cie:9.2f}  {lag}")

    # Spectra with the two ionization states at the 10 s epoch.
    db = AtomicDatabase(AtomicConfig.tiny())
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 80)
    t_now = 10.0
    t_gas = shock_then_cool(t_now)
    idx = min(np.searchsorted(res.t, t_now), len(res.t) - 1)
    nei_frac = res.y[idx]
    cie_frac = cie_fractions(z, t_gas)
    point = GridPoint(temperature_k=t_gas, ne_cm3=ne)

    def oxygen_spectrum(fractions: np.ndarray) -> np.ndarray:
        """RRC of all oxygen ions, reweighted to a given charge-state mix.

        The per-ion emissivity is linear in the recombining-ion density,
        so states the CIE balance leaves empty (fraction ~ 0) can be
        reweighted only if the target fraction is also ~0 — true here,
        because NEI populations of states with vanishing CIE fractions at
        this temperature are themselves negligible.
        """
        out = np.zeros(grid.n_bins)
        cie_now = cie_fractions(z, t_gas)
        for charge in range(1, z + 1):
            cie_f = cie_now[charge]
            if cie_f <= 1e-30:
                continue
            ion = Ion(z=z, charge=charge)
            raw = ion_emissivity_batched(db, ion, point, grid)
            out += raw * (fractions[charge] / cie_f)
        return out

    spec_nei = oxygen_spectrum(nei_frac)
    spec_cie = oxygen_spectrum(cie_frac)
    total_ratio = spec_nei.sum() / max(spec_cie.sum(), 1e-300)
    print(
        f"\noxygen RRC at t = {t_now:.0f} s: NEI/CIE total emission ratio = "
        f"{total_ratio:.2f}"
    )
    print("(an under-ionized plasma recombines less onto high charge "
          "states,\n so assuming CIE would misestimate the continuum — the "
          "reason NEI\n calculations are worth their cost, per Section IV-D)")


if __name__ == "__main__":
    main()
