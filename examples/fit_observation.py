"""Fit a mock X-ray observation — the paper's motivating workflow.

The paper's introduction: "it is a common task for modern astronomers to
fit the observed spectrum with the spectrum calculated from theoretical
models".  Each fit iteration needs a fresh model spectrum at the trial
temperature — precisely the calculation the hybrid framework accelerates.

This example: (1) generates a noisy observation of a T = 1.05e7 K plasma
through a toy instrument response, (2) recovers the temperature by
chi-square minimization with the fast batched kernel, (3) shows how many
full model spectra the fit consumed, i.e. how the speedup compounds.

Run:  python examples/fit_observation.py
"""

import time

import numpy as np

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.physics.apec import GridPoint, SerialAPEC
from repro.physics.fitting import (
    InstrumentResponse,
    fit_temperature,
    mock_observation,
)
from repro.physics.spectrum import EnergyGrid


def main() -> None:
    db = AtomicDatabase(AtomicConfig(n_max=6, z_max=14))
    grid = EnergyGrid.from_wavelength(10.0, 45.0, 150)
    apec = SerialAPEC(db, grid, method="simpson-batch",
                      components=("rrc", "lines", "brems"))
    response = InstrumentResponse(grid, fwhm_kev=0.015)

    t_true = 1.05e7
    print(f"true plasma temperature: {t_true:.3e} K")
    truth = apec.compute(GridPoint(temperature_k=t_true, ne_cm3=1.0))
    exposure = 2.0e6 / response.apply(truth.values).max()
    observed = mock_observation(
        truth, response, exposure, rng=np.random.default_rng(2015)
    )
    print(f"observation: {observed.sum():.0f} counts over {grid.n_bins} channels\n")

    t0 = time.perf_counter()
    result = fit_temperature(
        apec, observed, response, exposure, t_bounds=(2.0e6, 6.0e7)
    )
    elapsed = time.perf_counter() - t0

    print(f"best-fit temperature : {result.temperature_k:.3e} K "
          f"({result.temperature_k / t_true - 1.0:+.1%} vs truth)")
    print(f"chi^2                : {result.chi2:.1f} / {grid.n_bins} channels")
    print(f"model spectra needed : {result.n_model_evals}")
    print(f"wall time            : {elapsed:.2f} s "
          f"({elapsed / result.n_model_evals * 1e3:.0f} ms per model)\n")

    ts, c2s = result.chi2_curve()
    print("chi^2 profile (log-spaced trials):")
    c2_min = c2s.min()
    for t, c2 in zip(ts, c2s):
        bar = "#" * min(60, int((c2 / c2_min - 1.0) * 15.0))
        print(f"  T = {t:.3e} K  chi2 = {c2:9.1f} {bar}")

    print(
        "\nWith the paper's serial per-bin integration each model would "
        "take minutes;\nthe batched kernel makes the whole fit interactive "
        "— that compounding is the\npoint of accelerating spectral "
        "calculation."
    )


if __name__ == "__main__":
    main()
