"""The automatic maximum-queue-length search (Section III-A).

"At the beginning the scheduler will try to find the most proper maximum
queue length by increasing the value of it gradually until the
performance inflexion occurs."  This example builds a representative
probe from the front of the real workload (first ~60 tasks of *every*
grid point, so all 24 ranks contend exactly as in the real run — see
``probe_prefix`` for why naive few-point probes tune the wrong operating
point), runs the search for 1 and 3 GPUs, and checks the tuned value
against the full workload.

Run:  python examples/autotune_queue.py
"""

from repro import HybridConfig, HybridRunner, WorkloadSpec, autotune_queue_length, build_tasks
from repro.core.autotune import probe_prefix


def main() -> None:
    tasks = build_tasks(WorkloadSpec())
    print(f"full workload: {len(tasks)} tasks over 24 points\n")

    for n_gpus in (1, 3):
        cfg = HybridConfig(n_gpus=n_gpus, max_queue_length=2)
        probe, probe_cfg = probe_prefix(tasks, cfg, tasks_per_point=60)
        best, times = autotune_queue_length(
            probe_cfg, probe, candidates=(2, 4, 6, 8, 10, 12, 14, 16)
        )
        print(f"{n_gpus} GPU(s) — probe of {len(probe)} tasks:")
        for length, t in times.items():
            marker = "  <- chosen" if length == best else ""
            print(f"  maxlen {length:2d}: {t:7.1f} s{marker}")
        full = HybridRunner(
            HybridConfig(n_gpus=n_gpus, max_queue_length=best)
        ).run(tasks)
        print(
            f"  -> fixed at {best}; full workload at that setting: "
            f"{full.makespan_s:.1f} s "
            "(paper: peak performance at 10-12 for all testcases)\n"
        )


if __name__ == "__main__":
    main()
