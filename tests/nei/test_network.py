"""General reaction networks (the future-work substrate)."""

import numpy as np
import pytest

from repro.nei.network import Reaction, ReactionNetwork, alpha_chain_network
from repro.nei.solvers import AutoSwitchSolver, backward_euler, exact_linear_solution


class TestReaction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Reaction("a", "b", -1.0)
        with pytest.raises(ValueError):
            Reaction("a", "a", 1.0)


class TestReactionNetwork:
    @pytest.fixture()
    def simple(self):
        net = ReactionNetwork(species=["a", "b", "c"])
        net.add("a", "b", 2.0)
        net.add("b", "c", 1.0)
        net.add("c", "a", 0.1)
        return net

    def test_matrix_conserves(self, simple):
        a = simple.matrix()
        assert np.allclose(a.sum(axis=0), 0.0)

    def test_matrix_entries(self, simple):
        a = simple.matrix()
        assert a[1, 0] == 2.0  # a -> b
        assert a[0, 0] == -2.0
        assert a[2, 1] == 1.0
        assert a[0, 2] == 0.1

    def test_rhs_and_jacobian(self, simple):
        y = np.array([1.0, 0.5, 0.25])
        assert np.allclose(simple.rhs(0.0, y), simple.matrix() @ y)
        assert np.array_equal(simple.jacobian(0.0, y), simple.matrix())

    def test_duplicate_species_rejected(self):
        with pytest.raises(ValueError):
            ReactionNetwork(species=["a", "a"])

    def test_unknown_species_rejected(self, simple):
        with pytest.raises(ValueError):
            simple.add("a", "zz", 1.0)

    def test_solver_reaches_cycle_steady_state(self, simple):
        """A closed cycle relaxes to its stationary distribution."""
        y0 = np.array([1.0, 0.0, 0.0])
        res = AutoSwitchSolver(rtol=1e-8, atol=1e-12).solve(
            simple.rhs, simple.jacobian, y0, (0.0, 200.0)
        )
        assert res.success
        a = simple.matrix()
        # Stationary: A y = 0 with sum = 1.
        assert np.abs(a @ res.y_final).max() < 1e-6
        assert res.y_final.sum() == pytest.approx(1.0, abs=1e-8)


class TestAlphaChain:
    def test_structure(self):
        net = alpha_chain_network(n_stages=7, branch_every=3)
        assert net.dim == 7 + 2  # S3b, S6b
        assert net.sparsity() > 0.5  # sparse like real networks
        assert net.stiffness_ratio() > 1e2

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_chain_network(n_stages=1)

    def test_mass_conservation_through_evolution(self):
        net = alpha_chain_network(n_stages=9)
        y0 = np.zeros(net.dim)
        y0[0] = 1.0
        res = backward_euler(net.rhs, net.jacobian, y0, (0.0, 50.0), 2000)
        assert np.allclose(res.y.sum(axis=1), 1.0, atol=1e-9)
        # Mass flows down the chain: the head empties, the tail fills.
        assert res.y_final[0] < 0.5
        assert res.y_final[1:].sum() > 0.5

    def test_solver_matches_expm(self):
        net = alpha_chain_network(n_stages=8, rate_decades=4.0)
        y0 = np.zeros(net.dim)
        y0[0] = 1.0
        t_end = 30.0
        exact = exact_linear_solution(net.matrix(), y0, np.array([t_end]))[0]
        res = AutoSwitchSolver(rtol=1e-7, atol=1e-11).solve(
            net.rhs, net.jacobian, y0, (0.0, t_end)
        )
        assert res.success
        assert np.abs(res.y_final - exact).max() < 1e-5

    def test_branches_populate(self):
        net = alpha_chain_network(n_stages=7, branch_every=3)
        y0 = np.zeros(net.dim)
        y0[0] = 1.0
        res = backward_euler(net.rhs, net.jacobian, y0, (0.0, 100.0), 3000)
        idx = net.species.index("S3b")
        assert res.y_final[idx] > 0.0
