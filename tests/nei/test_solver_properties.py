"""Property-based NEI tests: conservation and solver agreement across the
whole (Z, T0, T1, ne) family (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.odes import NEISystem, nei_matrix
from repro.nei.solvers import AutoSwitchSolver, backward_euler, exact_linear_solution

zs = st.sampled_from([2, 6, 8, 12, 26])
log_temps = st.floats(min_value=4.5, max_value=8.0)


class TestMatrixProperties:
    @given(z=zs, log_t=log_temps, log_ne=st.floats(min_value=0.0, max_value=12.0))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_sign_structure(self, z, log_t, log_ne):
        a = nei_matrix(z, 10.0**log_t, 10.0**log_ne)
        scale = np.abs(a).max()
        if scale == 0.0:
            return
        # Columns sum to zero (conservation).
        assert np.abs(a.sum(axis=0)).max() < 1e-10 * scale
        # Diagonal non-positive, off-diagonal non-negative (M-matrix-like).
        assert np.all(np.diag(a) <= 0.0)
        off = a[~np.eye(z + 1, dtype=bool)]
        assert np.all(off >= 0.0)


class TestSolverProperties:
    @given(z=zs, log_t0=log_temps, log_t1=log_temps)
    @settings(max_examples=20, deadline=None)
    def test_backward_euler_tracks_exact(self, z, log_t0, log_t1):
        ne = 1e10
        sys_ = NEISystem(z=z, ne_cm3=ne, temperature_k=10.0**log_t1)
        y0 = equilibrium_state(z, 10.0**log_t0)
        tau = relaxation_time_scale(z, 10.0**log_t1, ne)
        t_end = min(2.0 * tau, 1e6)
        exact = exact_linear_solution(sys_.matrix(), y0, np.array([t_end]))[0]
        res = backward_euler(sys_.rhs, sys_.jacobian, y0, (0.0, t_end), 3000)
        # Fractions stay in [0,1] (up to first-order truncation) and
        # conserve; final state near the exact one.
        assert np.allclose(res.y.sum(axis=1), 1.0, atol=1e-8)
        assert np.abs(res.y_final - exact).max() < 5e-3

    @given(z=st.sampled_from([2, 6, 8]), log_t0=log_temps, log_t1=log_temps)
    @settings(max_examples=10, deadline=None)
    def test_autoswitch_conserves_and_converges(self, z, log_t0, log_t1):
        ne = 1e10
        sys_ = NEISystem(z=z, ne_cm3=ne, temperature_k=10.0**log_t1)
        y0 = equilibrium_state(z, 10.0**log_t0)
        tau = relaxation_time_scale(z, 10.0**log_t1, ne)
        t_end = min(2.0 * tau, 1e6)
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-9).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, t_end)
        )
        assert res.success
        assert abs(float(res.y_final.sum()) - 1.0) < 1e-5
        exact = exact_linear_solution(sys_.matrix(), y0, np.array([t_end]))[0]
        assert np.abs(res.y_final - exact).max() < 1e-3
