"""The NEI rate matrix and system (Eq. 4)."""

import numpy as np
import pytest

from repro.nei.odes import NEISystem, nei_matrix


class TestNEIMatrix:
    def test_shape(self):
        a = nei_matrix(8, 1e6, 1.0)
        assert a.shape == (9, 9)

    def test_columns_sum_to_zero(self):
        """Particle conservation: d/dt sum(n) = 0 exactly."""
        for z, t in [(1, 1e5), (8, 1e6), (26, 1e7)]:
            a = nei_matrix(z, t, 1e9)
            assert np.allclose(a.sum(axis=0), 0.0, atol=1e-12 * np.abs(a).max())

    def test_tridiagonal(self):
        a = nei_matrix(8, 1e6, 1.0)
        for i in range(9):
            for j in range(9):
                if abs(i - j) > 1:
                    assert a[i, j] == 0.0

    def test_off_diagonals_nonnegative(self):
        a = nei_matrix(26, 1e7, 1.0)
        assert np.all(a[np.eye(27, dtype=bool) == False] >= -0.0)  # noqa: E712

    def test_scales_linearly_with_ne(self):
        a1 = nei_matrix(8, 1e6, 1.0)
        a2 = nei_matrix(8, 1e6, 5.0)
        assert np.allclose(a2, 5.0 * a1)

    def test_eigenvalues_nonpositive_real_parts(self):
        """A rate matrix generates a contraction: Re(lambda) <= 0."""
        a = nei_matrix(8, 1e6, 1e9)
        eigs = np.linalg.eigvals(a)
        assert np.all(eigs.real <= 1e-9 * np.abs(eigs.real).max())

    @pytest.mark.parametrize("args", [(0, 1e6, 1.0), (8, 0.0, 1.0), (8, 1e6, -1.0)])
    def test_validation(self, args):
        with pytest.raises(ValueError):
            nei_matrix(*args)


class TestNEISystem:
    def test_rhs_is_matrix_product(self):
        sys_ = NEISystem(z=8, ne_cm3=1e9, temperature_k=1e6)
        y = np.linspace(0.1, 1.0, 9)
        assert np.allclose(sys_.rhs(0.0, y), sys_.matrix() @ y)

    def test_jacobian_equals_matrix(self):
        sys_ = NEISystem(z=8, ne_cm3=1e9, temperature_k=1e6)
        y = np.ones(9)
        assert np.array_equal(sys_.jacobian(0.0, y), sys_.matrix(0.0))

    def test_matrix_cached_at_constant_temperature(self):
        sys_ = NEISystem(z=8, ne_cm3=1e9, temperature_k=1e6)
        sys_.matrix(0.0)
        sys_.matrix(5.0)
        assert sys_.n_matrix_builds == 1

    def test_time_varying_temperature_rebuilds(self):
        sys_ = NEISystem(
            z=8,
            ne_cm3=1e9,
            temperature_k=1e6,
            temperature_profile=lambda t: 1e6 * (1.0 + t),
        )
        sys_.matrix(0.0)
        sys_.matrix(1.0)
        assert sys_.n_matrix_builds == 2

    def test_bad_temperature_profile_rejected(self):
        sys_ = NEISystem(
            z=8, ne_cm3=1e9, temperature_k=1e6, temperature_profile=lambda t: -1.0
        )
        with pytest.raises(ValueError):
            sys_.matrix(0.0)

    def test_conservation_defect(self):
        sys_ = NEISystem(z=8, ne_cm3=1e9, temperature_k=1e6)
        assert sys_.conservation_defect(np.full(9, 1.0 / 9.0)) == pytest.approx(0.0)
        assert sys_.conservation_defect(np.zeros(9)) == pytest.approx(1.0)

    def test_stiffness_ratio_large(self):
        """The rates span decades -> the system is genuinely stiff."""
        sys_ = NEISystem(z=26, ne_cm3=1e9, temperature_k=1e7)
        assert sys_.stiffness_ratio() > 1e3

    def test_dim(self):
        assert NEISystem(z=26, ne_cm3=1.0, temperature_k=1e7).dim == 27
