"""The LSODA-style solver against exact references."""

import numpy as np
import pytest

from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.odes import NEISystem
from repro.nei.solvers import (
    AutoSwitchSolver,
    backward_euler,
    exact_linear_solution,
)

NE = 1.0e10


@pytest.fixture(scope="module")
def heated_oxygen():
    """Cold oxygen suddenly heated to 1e6 K — the classic NEI scenario."""
    sys_ = NEISystem(z=8, ne_cm3=NE, temperature_k=1.0e6)
    y0 = equilibrium_state(8, 1.0e4)
    tau = relaxation_time_scale(8, 1.0e6, NE)
    return sys_, y0, tau


class TestExactReference:
    def test_identity_at_t_zero(self, heated_oxygen):
        sys_, y0, _ = heated_oxygen
        out = exact_linear_solution(sys_.matrix(), y0, np.array([0.0]))
        assert np.allclose(out[0], y0)

    def test_conserves_total(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        out = exact_linear_solution(sys_.matrix(), y0, np.array([tau, 3 * tau]))
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-10)

    def test_relaxes_to_equilibrium(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        final = exact_linear_solution(sys_.matrix(), y0, np.array([50.0 * tau]))[0]
        eq = equilibrium_state(8, 1.0e6, NE, via="nullspace")
        assert np.abs(final - eq).max() < 1e-6


class TestBackwardEuler:
    def test_converges_first_order(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        t_end = tau
        exact = exact_linear_solution(sys_.matrix(), y0, np.array([t_end]))[0]
        e1 = np.abs(
            backward_euler(sys_.rhs, sys_.jacobian, y0, (0, t_end), 500).y_final - exact
        ).max()
        e2 = np.abs(
            backward_euler(sys_.rhs, sys_.jacobian, y0, (0, t_end), 1000).y_final - exact
        ).max()
        assert e1 / e2 == pytest.approx(2.0, rel=0.3)

    def test_stable_at_huge_steps(self, heated_oxygen):
        """L-stability: even 10 steps over a stiff span stay bounded."""
        sys_, y0, tau = heated_oxygen
        res = backward_euler(sys_.rhs, sys_.jacobian, y0, (0, 3 * tau), 10)
        assert np.all(np.isfinite(res.y))
        assert np.abs(res.y_final).max() < 2.0

    def test_conserves_total(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        res = backward_euler(sys_.rhs, sys_.jacobian, y0, (0, tau), 200)
        assert np.allclose(res.y.sum(axis=1), 1.0, atol=1e-9)

    def test_step_validation(self, heated_oxygen):
        sys_, y0, _ = heated_oxygen
        with pytest.raises(ValueError):
            backward_euler(sys_.rhs, sys_.jacobian, y0, (0, 1.0), 0)

    def test_trajectory_shape(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        res = backward_euler(sys_.rhs, sys_.jacobian, y0, (0, tau), 50)
        assert res.t.shape == (51,)
        assert res.y.shape == (51, 9)


class TestAutoSwitchSolver:
    def test_matches_exact_solution(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        t_end = 3.0 * tau
        exact = exact_linear_solution(sys_.matrix(), y0, np.array([t_end]))[0]
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, t_end)
        )
        assert res.success
        assert np.abs(res.y_final - exact).max() < 1e-4

    def test_switches_to_stiff_mode(self, heated_oxygen):
        """The NEI transient must trigger the Adams->BDF switch."""
        sys_, y0, tau = heated_oxygen
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, 3.0 * tau)
        )
        assert res.stats.n_switches >= 1
        assert res.stats.stiff_steps > 0

    def test_nonstiff_problem_stays_nonstiff(self):
        """A gentle scalar decay never needs BDF."""
        rhs = lambda t, y: -0.5 * y
        jac = lambda t, y: np.array([[-0.5]])
        res = AutoSwitchSolver(rtol=1e-8, atol=1e-12).solve(
            rhs, jac, np.array([1.0]), (0.0, 4.0)
        )
        assert res.success
        assert res.y_final[0] == pytest.approx(np.exp(-2.0), rel=1e-5)
        assert res.stats.stiff_steps == 0

    def test_conservation_through_solve(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, tau)
        )
        assert np.allclose(res.y.sum(axis=1), 1.0, atol=1e-6)

    def test_agrees_with_scipy_lsoda(self, heated_oxygen):
        import scipy.integrate as si

        sys_, y0, tau = heated_oxygen
        t_end = 2.0 * tau
        ours = AutoSwitchSolver(rtol=1e-7, atol=1e-11).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, t_end)
        )
        ref = si.solve_ivp(
            sys_.rhs, (0.0, t_end), y0, method="LSODA", jac=sys_.jacobian,
            rtol=1e-9, atol=1e-12,
        )
        assert np.abs(ours.y_final - ref.y[:, -1]).max() < 1e-4

    def test_save_every_thins_output(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        dense = AutoSwitchSolver(rtol=1e-5, atol=1e-9).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, tau), save_every=1
        )
        thin = AutoSwitchSolver(rtol=1e-5, atol=1e-9).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, tau), save_every=50
        )
        assert len(thin.t) < len(dense.t)
        assert np.allclose(thin.y_final, dense.y_final, atol=1e-8)

    def test_max_steps_reported(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-10, max_steps=5).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, 3 * tau)
        )
        assert not res.success
        assert "max_steps" in res.message

    def test_invalid_span(self, heated_oxygen):
        sys_, y0, _ = heated_oxygen
        with pytest.raises(ValueError):
            AutoSwitchSolver().solve(sys_.rhs, sys_.jacobian, y0, (1.0, 1.0))

    def test_invalid_tolerances(self):
        with pytest.raises(ValueError):
            AutoSwitchSolver(rtol=0.0)

    def test_work_counters_populated(self, heated_oxygen):
        sys_, y0, tau = heated_oxygen
        res = AutoSwitchSolver(rtol=1e-6, atol=1e-10).solve(
            sys_.rhs, sys_.jacobian, y0, (0.0, tau)
        )
        st = res.stats
        assert st.n_steps == st.stiff_steps + st.nonstiff_steps
        assert st.n_rhs > 0
        assert st.n_jac > 0
