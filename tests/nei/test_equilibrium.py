"""Equilibrium states and relaxation scales."""

import numpy as np
import pytest

from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.odes import nei_matrix


class TestEquilibriumState:
    @pytest.mark.parametrize("z", [1, 8, 26])
    @pytest.mark.parametrize("t", [1e5, 1e7])
    def test_balance_and_nullspace_agree(self, z, t):
        """Two independent constructions of the same equilibrium."""
        f_balance = equilibrium_state(z, t, via="balance")
        f_null = equilibrium_state(z, t, 1.0, via="nullspace")
        assert np.abs(f_balance - f_null).max() < 1e-8

    def test_nullspace_is_stationary(self):
        a = nei_matrix(8, 1e6, 1.0)
        f = equilibrium_state(8, 1e6, 1.0, via="nullspace")
        assert np.abs(a @ f).max() < 1e-12 * np.abs(a).max()

    def test_normalized(self):
        f = equilibrium_state(26, 1e7)
        assert f.sum() == pytest.approx(1.0, abs=1e-12)
        assert np.all(f >= 0.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            equilibrium_state(8, 1e6, via="magic")


class TestRelaxationTimeScale:
    def test_positive_and_finite(self):
        tau = relaxation_time_scale(8, 1e6, 1e10)
        assert np.isfinite(tau)
        assert tau > 0.0

    def test_inverse_in_density(self):
        """NEI evolution depends on n_e * t: tau ~ 1/n_e."""
        t1 = relaxation_time_scale(8, 1e6, 1e8)
        t2 = relaxation_time_scale(8, 1e6, 1e10)
        assert t1 / t2 == pytest.approx(100.0, rel=1e-6)

    def test_frozen_modes_excluded(self):
        """The 12-decade cutoff keeps tau physically meaningful even when
        some charge states are effectively frozen."""
        tau = relaxation_time_scale(8, 1e6, 1e10)
        assert tau < 1e8  # seconds, not 1e27
