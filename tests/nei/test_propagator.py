"""The eigendecomposition propagator."""

import numpy as np
import pytest

from repro.nei.equilibrium import equilibrium_state, relaxation_time_scale
from repro.nei.odes import NEISystem
from repro.nei.propagator import EigenPropagator
from repro.nei.solvers import exact_linear_solution


@pytest.fixture(scope="module")
def oxygen():
    sys_ = NEISystem(z=8, ne_cm3=1e10, temperature_k=1e6)
    y0 = equilibrium_state(8, 1e4)
    tau = relaxation_time_scale(8, 1e6, 1e10)
    return sys_, y0, tau


class TestBuild:
    def test_builds_for_nei_matrix(self, oxygen):
        sys_, _y0, _tau = oxygen
        prop = EigenPropagator.build(sys_)
        assert prop.dim == 9
        assert prop.reconstruction_error < 1e-6

    def test_rejects_time_varying_system(self):
        sys_ = NEISystem(
            z=8, ne_cm3=1e10, temperature_k=1e6,
            temperature_profile=lambda t: 1e6,
        )
        with pytest.raises(ValueError, match="constant"):
            EigenPropagator.build(sys_)

    def test_rejects_ill_conditioned(self, oxygen):
        sys_, _y0, _tau = oxygen
        with pytest.raises(ValueError, match="condition"):
            EigenPropagator.build(sys_, max_condition=1.0)


class TestPropagate:
    def test_matches_expm(self, oxygen):
        sys_, y0, tau = oxygen
        prop = EigenPropagator.build(sys_)
        times = np.array([0.1 * tau, tau, 3.0 * tau])
        got = prop.propagate(y0, times)
        ref = exact_linear_solution(sys_.matrix(), y0, times)
        assert np.abs(got - ref).max() < 1e-9

    def test_identity_at_zero(self, oxygen):
        sys_, y0, _tau = oxygen
        prop = EigenPropagator.build(sys_)
        assert np.allclose(prop.propagate(y0, np.array([0.0]))[0], y0, atol=1e-12)

    def test_conservation(self, oxygen):
        sys_, y0, tau = oxygen
        prop = EigenPropagator.build(sys_)
        out = prop.propagate(y0, np.linspace(0.0, 2.0 * tau, 7))
        assert np.allclose(out.sum(axis=1), 1.0, atol=1e-9)

    def test_shape_validation(self, oxygen):
        sys_, _y0, _tau = oxygen
        prop = EigenPropagator.build(sys_)
        with pytest.raises(ValueError):
            prop.propagate(np.zeros(3), np.array([1.0]))


class TestPropagateMany:
    def test_batch_matches_single(self, oxygen):
        sys_, y0, tau = oxygen
        prop = EigenPropagator.build(sys_)
        eq = equilibrium_state(8, 1e6, 1e10, via="nullspace")
        states = np.stack([y0, eq])
        dt = 0.1 * tau
        traj = prop.propagate_many(states, dt, n_steps=5)
        assert traj.shape == (6, 2, 9)
        # First state evolves like the single-state API.
        single = prop.propagate(y0, dt * np.arange(6))
        assert np.abs(traj[:, 0, :] - single).max() < 1e-10
        # The equilibrium state stays put.
        assert np.abs(traj[-1, 1, :] - eq).max() < 1e-8

    def test_the_ten_point_pack(self, oxygen):
        """The paper's packing: ten evolutions advanced together."""
        sys_, y0, tau = oxygen
        prop = EigenPropagator.build(sys_)
        states = np.tile(y0, (10, 1))
        traj = prop.propagate_many(states, 0.01 * tau, n_steps=100)
        assert traj.shape == (101, 10, 9)
        # All ten identical inputs stay identical.
        assert np.abs(traj[-1] - traj[-1][0]).max() < 1e-12

    def test_shape_validation(self, oxygen):
        sys_, _y0, _tau = oxygen
        prop = EigenPropagator.build(sys_)
        with pytest.raises(ValueError):
            prop.propagate_many(np.zeros((2, 3)), 1.0, 2)
