"""NEI workload construction and the Table II regime."""

import pytest

from repro.core.calibration import CostModel
from repro.core.hybrid import HybridConfig, HybridRunner
from repro.core.task import TaskKind
from repro.nei.runner import NEIWorkloadSpec, build_nei_tasks


class TestNEIWorkloadSpec:
    def test_defaults(self):
        spec = NEIWorkloadSpec()
        assert spec.points_per_task == 10  # the paper's packing
        assert spec.n_tasks == 2400
        assert spec.steps_per_task == 10_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_grid_points=0),
            dict(points_per_task=0),
            dict(n_grid_points=25, points_per_task=10),  # not divisible
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NEIWorkloadSpec(**kwargs)


class TestBuildNEITasks:
    def test_task_count_and_kind(self):
        spec = NEIWorkloadSpec(n_grid_points=100, points_per_task=10)
        tasks = build_nei_tasks(spec)
        assert len(tasks) == 10
        assert all(t.kind is TaskKind.NEI_CHUNK for t in tasks)

    def test_cpu_pricing_override(self):
        spec = NEIWorkloadSpec(n_grid_points=10, points_per_task=10)
        task = build_nei_tasks(spec)[0]
        assert task.cpu_evals_per_integral == spec.cpu_units_per_step
        assert task.n_integrals == spec.steps_per_task

    def test_partition_spread(self):
        spec = NEIWorkloadSpec(n_grid_points=480, points_per_task=10)
        tasks = build_nei_tasks(spec, n_partitions=24)
        per_rank = {}
        for t in tasks:
            per_rank[t.point_index] = per_rank.get(t.point_index, 0) + 1
        assert len(per_rank) == 24
        assert max(per_rank.values()) == min(per_rank.values())

    def test_execute_factories(self):
        seen = []
        spec = NEIWorkloadSpec(n_grid_points=20, points_per_task=10)
        tasks = build_nei_tasks(
            spec,
            gpu_execute_factory=lambda tid: (lambda: seen.append(("gpu", tid))),
            cpu_execute_factory=lambda tid: (lambda: seen.append(("cpu", tid))),
        )
        tasks[0].run_gpu()
        tasks[1].run_cpu()
        assert seen == [("gpu", 0), ("cpu", 1)]


class TestTableIIRegime:
    """The Table II *shape*: monotone near-linear GPU scaling, in contrast
    to the spectral workload's saturation after 3 GPUs."""

    @pytest.fixture(scope="class")
    def nei_results(self):
        cost = CostModel(point_overhead_s=0.0)
        # 2400 tasks: enough that end-of-run stragglers do not dominate
        # (the paper's 1e5 tasks only sharpen these ratios further).
        spec = NEIWorkloadSpec(n_grid_points=24_000)
        tasks = build_nei_tasks(spec)
        mpi = HybridRunner(
            HybridConfig(n_gpus=0, max_queue_length=8, cost=cost)
        ).run_mpi_only(tasks)
        speedups = {}
        for g in (1, 2, 3, 4):
            r = HybridRunner(
                HybridConfig(n_gpus=g, max_queue_length=8, cost=cost)
            ).run(tasks)
            speedups[g] = mpi.makespan_s / r.makespan_s
        return speedups

    def test_speedup_monotone_in_gpus(self, nei_results):
        s = nei_results
        assert s[1] < s[2] < s[3] < s[4]

    def test_no_saturation_through_four_gpus(self, nei_results):
        """Unlike Fig. 3, the 3->4 GPU step still helps (>15% gain)."""
        assert nei_results[4] / nei_results[3] > 1.15

    def test_magnitudes_in_paper_range(self, nei_results):
        assert 2.0 < nei_results[1] < 6.0
        assert 8.0 < nei_results[4] < 18.0
