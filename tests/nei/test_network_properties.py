"""Property-based tests on reaction networks (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nei.network import ReactionNetwork
from repro.nei.solvers import backward_euler


@st.composite
def random_network(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    species = [f"s{i}" for i in range(n)]
    net = ReactionNetwork(species=species)
    n_reactions = draw(st.integers(min_value=1, max_value=15))
    for _ in range(n_reactions):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i == j:
            j = (j + 1) % n
        rate = draw(st.floats(min_value=1e-3, max_value=1e3))
        net.add(species[i], species[j], rate)
    return net


class TestNetworkProperties:
    @given(net=random_network())
    @settings(max_examples=80, deadline=None)
    def test_generator_structure(self, net):
        a = net.matrix()
        scale = np.abs(a).max()
        # Conservation: columns sum to zero.
        assert np.abs(a.sum(axis=0)).max() <= 1e-12 * max(scale, 1.0)
        # Sign structure: M-matrix-like.
        assert np.all(np.diag(a) <= 0.0)
        off = a[~np.eye(net.dim, dtype=bool)]
        assert np.all(off >= 0.0)
        # Stability: no growing modes.
        eigs = np.linalg.eigvals(a)
        assert np.all(eigs.real <= 1e-9 * max(scale, 1.0))

    @given(net=random_network())
    @settings(max_examples=30, deadline=None)
    def test_evolution_conserves_and_stays_nonnegative(self, net):
        y0 = np.zeros(net.dim)
        y0[0] = 1.0
        scale = np.abs(net.matrix()).max()
        t_end = 3.0 / max(scale, 1e-3)
        res = backward_euler(net.rhs, net.jacobian, y0, (0.0, t_end), 400)
        assert np.allclose(res.y.sum(axis=1), 1.0, atol=1e-9)
        # Backward Euler preserves non-negativity for M-matrix generators.
        assert np.all(res.y >= -1e-12)
