"""Kernel descriptors."""

import pytest

from repro.gpusim.kernel import (
    BYTES_PER_BIN_RESULT,
    BYTES_PER_LEVEL_PARAMS,
    KernelSpec,
)


class TestKernelSpec:
    def test_total_evals(self):
        k = KernelSpec(n_integrals=100, evals_per_integral=65)
        assert k.total_evals == 6500

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_integrals=-1, evals_per_integral=65),
            dict(n_integrals=1, evals_per_integral=0),
            dict(n_integrals=1, evals_per_integral=65, bytes_in=-1),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            KernelSpec(**kwargs)

    def test_ion_task_accumulates_on_device(self):
        """Ion tasks return ONE bin array regardless of level count."""
        k8 = KernelSpec.for_ion_task(n_levels=8, n_bins=1000, evals_per_integral=65)
        k1 = KernelSpec.for_ion_task(n_levels=1, n_bins=1000, evals_per_integral=65)
        assert k8.bytes_out == k1.bytes_out == 1000 * BYTES_PER_BIN_RESULT
        assert k8.bytes_in == 8 * BYTES_PER_LEVEL_PARAMS
        assert k8.n_integrals == 8 * 1000

    def test_level_task_transfers_per_level(self):
        """Level granularity pays one result transfer per level — the
        paper's 'frequent memory copy' cost."""
        ion = KernelSpec.for_ion_task(n_levels=8, n_bins=1000, evals_per_integral=65)
        levels = [
            KernelSpec.for_level_task(n_bins=1000, evals_per_integral=65)
            for _ in range(8)
        ]
        assert sum(l.bytes_out for l in levels) == 8 * ion.bytes_out
        assert sum(l.n_integrals for l in levels) == ion.n_integrals

    def test_execute_not_compared(self):
        a = KernelSpec(1, 1, execute=lambda: 1)
        b = KernelSpec(1, 1, execute=lambda: 2)
        assert a == b  # cost-wise identity ignores the callable
