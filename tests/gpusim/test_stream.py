"""Stream ordering semantics."""

import pytest

from repro.cluster.simclock import SimClock
from repro.gpusim.device import TESLA_C2075, TESLA_K20, SimulatedGPU
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.stream import Stream


def kernel(execute=None):
    return KernelSpec(n_integrals=1000, evals_per_integral=1, execute=execute)


class TestStream:
    def test_in_stream_ordering(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_K20)  # concurrent device
        stream = Stream(gpu)
        order = []
        k1 = kernel(execute=lambda: order.append("a"))
        k2 = kernel(execute=lambda: order.append("b"))
        stream.enqueue(k1)
        stream.enqueue(k2)
        clock.run()
        # Even on a 32-way concurrent device, one stream stays FIFO.
        assert order == ["a", "b"]

    def test_streams_interleave_on_concurrent_device(self):
        """Two streams overlap their ingress phases on Kepler; computes
        serialize, so the makespan is one ingress + two computes — less
        than two full service times (the Fermi cost)."""
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_K20)
        s1, s2 = Stream(gpu, "s1"), Stream(gpu, "s2")
        d1 = s1.enqueue(kernel())
        d2 = s2.enqueue(kernel())
        clock.run()
        k = kernel()
        ingress = TESLA_K20.kernel_launch_s
        compute = TESLA_K20.compute_time(k)
        assert d1.fired and d2.fired
        assert clock.now == pytest.approx(ingress + 2.0 * compute)
        assert clock.now < 2.0 * TESLA_K20.service_time(k)

    def test_serial_device_serializes_everything(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        s1, s2 = Stream(gpu), Stream(gpu)
        s1.enqueue(kernel())
        s2.enqueue(kernel())
        clock.run()
        svc = TESLA_C2075.service_time(kernel())
        assert clock.now == pytest.approx(2.0 * svc)

    def test_synchronize_signal(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        stream = Stream(gpu)
        assert stream.synchronize_signal() is None
        last = stream.enqueue(kernel())
        assert stream.synchronize_signal() is last
        clock.run()
        assert last.fired

    def test_payload_forwarded_through_chain(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        stream = Stream(gpu)
        stream.enqueue(kernel())
        done = stream.enqueue(kernel(execute=lambda: "result"))
        clock.run()
        assert done.payload == "result"

    def test_submission_counter(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        stream = Stream(gpu)
        for _ in range(3):
            stream.enqueue(kernel())
        assert stream.submitted == 3
