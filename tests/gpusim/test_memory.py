"""Device memory accounting."""

import pytest

from repro.gpusim.memory import Allocation, DeviceMemory, DeviceOutOfMemory


class TestDeviceMemory:
    def test_alloc_free_cycle(self):
        mem = DeviceMemory(1000)
        a = mem.alloc(400, label="bins")
        assert mem.used == 400
        assert mem.available == 600
        mem.free(a)
        assert mem.used == 0

    def test_oom_raises(self):
        mem = DeviceMemory(100)
        mem.alloc(60)
        with pytest.raises(DeviceOutOfMemory):
            mem.alloc(50)

    def test_oom_message_includes_label(self):
        mem = DeviceMemory(10)
        with pytest.raises(DeviceOutOfMemory, match="emi"):
            mem.alloc(20, label="emi")

    def test_peak_tracking(self):
        mem = DeviceMemory(1000)
        a = mem.alloc(700)
        mem.free(a)
        mem.alloc(100)
        assert mem.peak == 700

    def test_double_free_rejected(self):
        mem = DeviceMemory(100)
        a = mem.alloc(10)
        mem.free(a)
        with pytest.raises(KeyError):
            mem.free(a)

    def test_foreign_handle_rejected(self):
        mem = DeviceMemory(100)
        with pytest.raises(KeyError):
            mem.free(Allocation(ident=999, nbytes=10))

    def test_zero_byte_alloc_allowed(self):
        mem = DeviceMemory(100)
        a = mem.alloc(0)
        assert a.nbytes == 0
        mem.free(a)

    def test_negative_alloc_rejected(self):
        mem = DeviceMemory(100)
        with pytest.raises(ValueError):
            mem.alloc(-1)

    def test_reset(self):
        mem = DeviceMemory(100)
        mem.alloc(50)
        mem.alloc(30)
        mem.reset()
        assert mem.used == 0
        assert mem.live_count() == 0

    def test_live_count(self):
        mem = DeviceMemory(100)
        a = mem.alloc(10)
        mem.alloc(10)
        assert mem.live_count() == 2
        mem.free(a)
        assert mem.live_count() == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)

    def test_c2075_capacity_fits_ion_task(self):
        """One Ion task's buffers fit trivially in 6 GB (sanity)."""
        mem = DeviceMemory(int(6 * 2**30))
        bins = mem.alloc(100_000 * 8, label="emi")
        params = mem.alloc(2000 * 32, label="levels")
        assert mem.available > 6 * 2**30 * 0.99
        mem.free(bins)
        mem.free(params)
