"""DeviceSpec timing model and the event-driven GPU."""

import pytest

from repro.cluster.simclock import SimClock
from repro.gpusim.device import TESLA_C2075, TESLA_K20, DeviceSpec, SimulatedGPU
from repro.gpusim.kernel import KernelSpec


class TestDeviceSpec:
    def test_c2075_identity(self):
        assert TESLA_C2075.architecture == "fermi"
        assert TESLA_C2075.core_count == 448
        assert TESLA_C2075.dp_gflops == 515.0
        assert TESLA_C2075.max_concurrent_kernels == 1

    def test_k20_hyper_q(self):
        assert TESLA_K20.architecture == "kepler"
        assert TESLA_K20.max_concurrent_kernels == 32
        assert TESLA_K20.context_switch_s == 0.0

    def test_compute_time_linear_in_evals(self):
        k1 = KernelSpec(n_integrals=1000, evals_per_integral=65)
        k2 = KernelSpec(n_integrals=2000, evals_per_integral=65)
        assert TESLA_C2075.compute_time(k2) == pytest.approx(
            2.0 * TESLA_C2075.compute_time(k1)
        )

    def test_transfer_time_latency_plus_bandwidth(self):
        spec = TESLA_C2075
        t_small = spec.transfer_time(8)
        t_big = spec.transfer_time(8_000_000)
        assert t_small >= spec.pcie_latency_s
        assert t_big == pytest.approx(
            spec.pcie_latency_s + 8e6 / (spec.pcie_bandwidth_gbs * 1e9)
        )

    def test_zero_transfer_free(self):
        assert TESLA_C2075.transfer_time(0) == 0.0

    def test_service_time_components(self):
        k = KernelSpec(n_integrals=1000, evals_per_integral=65, bytes_in=64, bytes_out=8000)
        spec = TESLA_C2075
        expected = (
            spec.context_switch_s
            + spec.transfer_time(64)
            + spec.kernel_launch_s
            + spec.compute_time(k)
            + spec.transfer_time(8000)
        )
        assert spec.service_time(k) == pytest.approx(expected)

    def test_with_eval_rate(self):
        faster = TESLA_C2075.with_eval_rate(1e10)
        assert faster.eval_rate == 1e10
        assert faster.name == TESLA_C2075.name

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(architecture="volta"),
            dict(eval_rate=0.0),
            dict(max_concurrent_kernels=0),
        ],
    )
    def test_spec_validation(self, kwargs):
        base = dict(
            name="x",
            architecture="fermi",
            sm_count=1,
            cores_per_sm=32,
            core_clock_ghz=1.0,
            dp_gflops=100.0,
            memory_gb=1.0,
        )
        base.update(kwargs)
        with pytest.raises(ValueError):
            DeviceSpec(**base)


class TestSimulatedGPU:
    def _kernel(self, evals=1000):
        return KernelSpec(n_integrals=evals, evals_per_integral=1)

    def test_fifo_serial_execution(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        svc = TESLA_C2075.service_time(self._kernel())
        done1 = gpu.submit(self._kernel())
        done2 = gpu.submit(self._kernel())
        clock.run()
        assert done1.fired and done2.fired
        assert clock.now == pytest.approx(2.0 * svc)
        assert gpu.completed == 2

    def test_concurrent_kernels_on_kepler(self):
        """Hyper-Q overlaps ingress/egress but computes serialize at full
        rate: makespan = one ingress + N computes (no egress: 0 bytes)."""
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_K20)
        k = self._kernel()
        ingress = TESLA_K20.kernel_launch_s  # ctx switch 0, no bytes
        compute = TESLA_K20.compute_time(k)
        for _ in range(4):
            gpu.submit(k)
        clock.run()
        assert clock.now == pytest.approx(ingress + 4.0 * compute)
        assert gpu.completed == 4

    def test_busy_time_tracking(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        gpu.submit(self._kernel())
        clock.run()
        assert gpu.busy_time == pytest.approx(clock.now)
        assert gpu.utilization(clock.now) == pytest.approx(1.0)

    def test_idle_gap_not_counted_busy(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        gpu.submit(self._kernel())
        svc = TESLA_C2075.service_time(self._kernel())
        clock.at(svc * 3.0, lambda: gpu.submit(self._kernel()))
        clock.run()
        assert clock.now == pytest.approx(4.0 * svc)
        assert gpu.utilization(clock.now) == pytest.approx(0.5)

    def test_execute_payload_delivered(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        k = KernelSpec(n_integrals=10, evals_per_integral=1, execute=lambda: 42)
        done = gpu.submit(k)
        clock.run()
        assert done.payload == 42

    def test_in_flight_counter(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        gpu.submit(self._kernel())
        gpu.submit(self._kernel())
        assert gpu.in_flight == 2
        clock.run()
        assert gpu.in_flight == 0

    def test_failed_device_rejects_submissions(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        gpu.fail()
        with pytest.raises(RuntimeError):
            gpu.submit(self._kernel())

    def test_failure_mid_run_swallows_completions(self):
        clock = SimClock()
        gpu = SimulatedGPU(clock, TESLA_C2075)
        done = gpu.submit(self._kernel())
        gpu.fail()
        clock.run()
        assert not done.fired  # the result never arrives
