"""Kramers photoionization and the Milne-relation recombination."""

import numpy as np
import pytest

from repro.atomic.cross_sections import (
    kramers_photoionization,
    milne_recombination,
    recombination_cross_section,
)


class TestKramersPhotoionization:
    def test_zero_below_threshold(self):
        e = np.array([0.1, 0.49, 0.4999])
        sigma = kramers_photoionization(e, binding_kev=0.5, n=1, c_eff=8.0)
        assert np.all(sigma == 0.0)

    def test_positive_at_and_above_threshold(self):
        e = np.array([0.5, 0.6, 5.0])
        sigma = kramers_photoionization(e, binding_kev=0.5, n=1, c_eff=8.0)
        assert np.all(sigma > 0.0)

    def test_e_cubed_falloff(self):
        s1 = kramers_photoionization(np.array([1.0]), 0.5, 1, 8.0)[0]
        s2 = kramers_photoionization(np.array([2.0]), 0.5, 1, 8.0)[0]
        assert s1 / s2 == pytest.approx(8.0, rel=1e-12)

    def test_scales_linearly_with_n(self):
        s1 = kramers_photoionization(np.array([1.0]), 0.5, 1, 8.0)[0]
        s3 = kramers_photoionization(np.array([1.0]), 0.5, 3, 8.0)[0]
        assert s3 / s1 == pytest.approx(3.0)

    def test_scalar_input_supported(self):
        sigma = kramers_photoionization(1.0, 0.5, 1, 8.0)
        assert float(sigma) > 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(binding_kev=-0.5, n=1, c_eff=8.0),
            dict(binding_kev=0.5, n=0, c_eff=8.0),
            dict(binding_kev=0.5, n=1, c_eff=0.0),
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            kramers_photoionization(np.array([1.0]), **kwargs)


class TestMilneRecombination:
    def test_zero_at_nonpositive_electron_energy(self):
        sigma = milne_recombination(np.array([0.0, -1.0]), 0.5, 1, 8.0, 2.0)
        assert np.all(sigma == 0.0)

    def test_positive_above_zero(self):
        e = np.logspace(-3, 1, 20)
        sigma = milne_recombination(e, 0.5, 1, 8.0, 2.0)
        assert np.all(sigma > 0.0)

    def test_decreasing_with_electron_energy(self):
        """sigma_rec ~ 1/(E_e E_gamma): strictly decreasing."""
        e = np.logspace(-3, 1, 30)
        sigma = milne_recombination(e, 0.5, 1, 8.0, 2.0)
        assert np.all(np.diff(sigma) < 0.0)

    def test_statistical_weight_scaling(self):
        e = np.array([0.1])
        s_g2 = milne_recombination(e, 0.5, 1, 8.0, 2.0)[0]
        s_g6 = milne_recombination(e, 0.5, 1, 8.0, 6.0)[0]
        assert s_g6 / s_g2 == pytest.approx(3.0)

    def test_milne_product_identity(self):
        """E_e sigma_rec = g/(2 g_ion) E_g^2/(2 m_e c^2) sigma_ph exactly."""
        from repro.constants import ME_C2_KEV

        e_e = np.array([0.3])
        binding, n, c_eff, g = 0.5, 2, 7.0, 4.0
        e_g = e_e + binding
        lhs = e_e * milne_recombination(e_e, binding, n, c_eff, g)
        rhs = (
            (g / 2.0)
            * e_g**2
            / (2.0 * ME_C2_KEV)
            * kramers_photoionization(e_g, binding, n, c_eff)
        )
        assert lhs[0] == pytest.approx(rhs[0], rel=1e-12)

    def test_alias(self):
        e = np.array([0.2])
        assert recombination_cross_section(e, 0.5, 1, 8.0, 2.0) == pytest.approx(
            milne_recombination(e, 0.5, 1, 8.0, 2.0)
        )

    def test_physical_magnitude(self):
        """Recombination cross sections should be far below Thomson-scale
        geometric areas x 1e6 — i.e. sane atomic-physics magnitudes."""
        sigma = milne_recombination(np.array([0.01]), 0.5, 1, 8.0, 2.0)[0]
        assert 1e-28 < sigma < 1e-16
