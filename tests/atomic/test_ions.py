"""Ion registry: the 496 recombining ions and their indexing."""

import pytest

from repro.atomic.ions import TOTAL_IONS, Ion, ion_registry, ions_of_element


class TestIonRegistry:
    def test_total_count(self):
        assert TOTAL_IONS == 496
        assert len(ion_registry()) == 496

    def test_lexicographic_order(self):
        ions = ion_registry()
        keys = [(i.z, i.charge) for i in ions]
        assert keys == sorted(keys)

    def test_index_is_dense_and_stable(self):
        for k, ion in enumerate(ion_registry()):
            assert ion.index == k

    def test_registry_cached(self):
        assert ion_registry() is ion_registry()

    def test_ions_of_element(self):
        oxygens = ions_of_element(8)
        assert len(oxygens) == 8
        assert all(i.z == 8 for i in oxygens)
        assert [i.charge for i in oxygens] == list(range(1, 9))

    @pytest.mark.parametrize("z", [0, 32])
    def test_ions_of_element_range(self, z):
        with pytest.raises(ValueError):
            ions_of_element(z)


class TestIon:
    def test_names(self):
        assert Ion(z=8, charge=8).name == "O+8"
        assert Ion(z=26, charge=17).name == "Fe+17"

    def test_core_electrons(self):
        assert Ion(z=8, charge=8).n_core_electrons == 0  # bare
        assert Ion(z=8, charge=7).n_core_electrons == 1  # H-like
        assert Ion(z=26, charge=1).n_core_electrons == 25

    def test_recombined_charge(self):
        assert Ion(z=6, charge=4).recombined_charge == 3

    @pytest.mark.parametrize("z,charge", [(8, 0), (8, 9), (0, 1), (32, 1)])
    def test_invalid_states_rejected(self, z, charge):
        with pytest.raises(ValueError):
            Ion(z=z, charge=charge)

    def test_ordering(self):
        assert Ion(z=2, charge=1) < Ion(z=2, charge=2) < Ion(z=3, charge=1)

    def test_element_link(self):
        assert Ion(z=26, charge=10).element.symbol == "Fe"
