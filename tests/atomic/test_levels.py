"""Hydrogenic level structure: energies, degeneracies, cutoffs."""

import numpy as np
import pytest

from repro.atomic.levels import (
    Level,
    build_levels,
    effective_charge,
    n_levels_for,
    quantum_defect,
)
from repro.constants import RYDBERG_KEV


class TestEffectiveCharge:
    def test_bare_ion_sees_full_charge(self):
        assert effective_charge(8, 8, 0) == 8.0

    def test_screening_reduces_with_l(self):
        low_l = effective_charge(26, 10, 0)
        high_l = effective_charge(26, 10, 5)
        assert low_l > high_l > 10.0

    def test_bounded_by_nuclear_and_ionic_charge(self):
        for l in range(6):
            c_eff = effective_charge(26, 10, l)
            assert 10.0 < c_eff <= 26.0


class TestQuantumDefect:
    def test_zero_for_hydrogenic(self):
        assert quantum_defect(8, 8, 0) == 0.0

    def test_decays_with_l(self):
        d0 = quantum_defect(26, 5, 0)
        d3 = quantum_defect(26, 5, 3)
        assert d0 > d3 > 0.0

    def test_bounded_below_one(self):
        for z in (2, 10, 26, 31):
            for c in (1, z // 2 or 1, z):
                assert 0.0 <= quantum_defect(z, c, 0) < 1.0


class TestNLevelsFor:
    def test_full_ladder_for_bare_ion(self):
        n_max = 10
        assert n_levels_for(8, 8, n_max) == n_max * (n_max + 1) // 2

    def test_cutoff_for_low_charge(self):
        assert n_levels_for(26, 1, 10) < n_levels_for(26, 26, 10)

    def test_at_least_one_level(self):
        assert n_levels_for(31, 1, 1) >= 1

    def test_invalid_n_max(self):
        with pytest.raises(ValueError):
            n_levels_for(8, 8, 0)

    def test_paper_scale_thousands(self):
        """n_max = 62 gives 1953 levels — the paper's 'thousands'."""
        assert n_levels_for(8, 8, 62) == 1953


class TestBuildLevels:
    def test_hydrogen_ground_state_is_rydberg(self):
        ls = build_levels(1, 1, 5)
        assert ls.energy_kev[0] == pytest.approx(RYDBERG_KEV)

    def test_hydrogenic_scaling_z_squared(self):
        h = build_levels(1, 1, 3).energy_kev[0]
        o8 = build_levels(8, 8, 3).energy_kev[0]
        assert o8 / h == pytest.approx(64.0, rel=1e-12)

    def test_energies_follow_inverse_n_squared(self):
        ls = build_levels(8, 8, 6)
        s_states = ls.energy_kev[ls.l_arr == 0]
        ns = ls.n_arr[ls.l_arr == 0]
        assert np.allclose(s_states * ns**2, s_states[0], rtol=1e-12)

    def test_degeneracies(self):
        ls = build_levels(8, 8, 4)
        assert np.all(ls.degeneracy == 2 * (2 * ls.l_arr + 1))
        # Total degeneracy of shell n is 2 n^2.
        for n in range(1, 5):
            assert ls.degeneracy[ls.n_arr == n].sum() == 2 * n * n

    def test_level_ordering(self):
        ls = build_levels(6, 3, 4)
        pairs = list(zip(ls.n_arr, ls.l_arr))
        assert pairs == sorted(pairs)

    def test_level_materialization(self):
        ls = build_levels(6, 3, 4)
        lv = ls.level(0)
        assert isinstance(lv, Level)
        assert lv.n == 1 and lv.l == 0

    def test_len(self):
        ls = build_levels(8, 8, 4)
        assert len(ls) == 10

    def test_misaligned_arrays_rejected(self):
        ls = build_levels(6, 3, 3)
        with pytest.raises(ValueError):
            type(ls)(
                z=6,
                charge=3,
                n_arr=ls.n_arr,
                l_arr=ls.l_arr[:-1],
                energy_kev=ls.energy_kev,
                degeneracy=ls.degeneracy,
                c_eff=ls.c_eff,
            )


class TestLevelValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n=0, l=0, energy_kev=1.0, degeneracy=2),
            dict(n=2, l=2, energy_kev=1.0, degeneracy=2),
            dict(n=1, l=0, energy_kev=-1.0, degeneracy=2),
        ],
    )
    def test_invalid_levels_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Level(**kwargs)
