"""Ionization / recombination rate coefficients."""

import numpy as np
import pytest

from repro.atomic.rates import (
    dielectronic_recombination_rate,
    ionization_potential,
    ionization_rate,
    radiative_recombination_rate,
    recombination_rate,
)


class TestIonizationPotential:
    def test_hydrogen(self):
        from repro.constants import RYDBERG_KEV

        assert ionization_potential(1, 0) == pytest.approx(RYDBERG_KEV)

    def test_increases_with_charge(self):
        pots = [ionization_potential(8, c) for c in range(8)]
        assert pots[-1] > pots[0]

    def test_invalid_charges(self):
        with pytest.raises(ValueError):
            ionization_potential(8, 8)  # bare nucleus cannot ionize
        with pytest.raises(ValueError):
            ionization_potential(8, -1)


class TestIonizationRate:
    def test_positive_and_finite(self):
        t = np.logspace(4, 9, 30)
        s = ionization_rate(8, 3, t)
        assert np.all(np.isfinite(s))
        assert np.all(s >= 0.0)

    def test_suppressed_at_low_temperature(self):
        s_cold = ionization_rate(8, 6, np.array([1e4]))[0]
        s_hot = ionization_rate(8, 6, np.array([1e7]))[0]
        assert s_hot > s_cold * 1e3

    def test_rises_through_threshold_region(self):
        """S(T) grows with T until kT ~ dE (the Boltzmann factor)."""
        t = np.logspace(5, 7, 20)
        s = ionization_rate(8, 6, t)
        assert np.all(np.diff(s) > 0.0)

    def test_nonpositive_temperature_rejected(self):
        with pytest.raises(ValueError):
            ionization_rate(8, 3, np.array([0.0]))

    def test_vectorized(self):
        s = ionization_rate(26, 10, np.array([1e6, 1e7, 1e8]))
        assert s.shape == (3,)


class TestRecombinationRates:
    def test_radiative_decreases_with_temperature(self):
        t = np.logspace(4, 8, 20)
        alpha = radiative_recombination_rate(8, 7, t)
        assert np.all(np.diff(alpha) < 0.0)

    def test_radiative_grows_with_charge(self):
        t = np.array([1e6])
        a_low = radiative_recombination_rate(26, 2, t)[0]
        a_high = radiative_recombination_rate(26, 20, t)[0]
        assert a_high > a_low

    def test_dielectronic_zero_for_bare(self):
        t = np.logspace(5, 8, 5)
        assert np.all(dielectronic_recombination_rate(8, 8, t) == 0.0)

    def test_dielectronic_nonzero_with_core(self):
        t = np.array([1e7])
        assert dielectronic_recombination_rate(8, 7, t)[0] >= 0.0
        assert dielectronic_recombination_rate(26, 20, t)[0] > 0.0

    def test_dielectronic_peaks_at_intermediate_temperature(self):
        t = np.logspace(4, 9, 200)
        a_d = dielectronic_recombination_rate(26, 20, t)
        peak = np.argmax(a_d)
        assert 0 < peak < len(t) - 1

    def test_total_is_sum(self):
        t = np.logspace(5, 8, 7)
        total = recombination_rate(26, 20, t)
        parts = radiative_recombination_rate(26, 20, t) + dielectronic_recombination_rate(26, 20, t)
        assert np.allclose(total, parts)

    @pytest.mark.parametrize("charge", [0, 9])
    def test_invalid_recombining_charge(self, charge):
        with pytest.raises(ValueError):
            recombination_rate(8, charge, np.array([1e6]))

    def test_magnitudes_physical(self):
        """Rate coefficients should sit in the 1e-16..1e-7 cm^3/s decades."""
        t = np.array([1e6])
        for z, c in [(8, 5), (26, 13)]:
            a = recombination_rate(z, c, t)[0]
            s = ionization_rate(z, c - 1, t)[0]
            assert 1e-18 < a < 1e-7
            assert 0.0 <= s < 1e-6
