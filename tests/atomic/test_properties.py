"""Property-based tests on the atomic database (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atomic.cross_sections import kramers_photoionization, milne_recombination
from repro.atomic.levels import build_levels, effective_charge, quantum_defect
from repro.atomic.rates import ionization_rate, recombination_rate

zs = st.integers(min_value=1, max_value=31)


@st.composite
def ion_state(draw):
    z = draw(zs)
    charge = draw(st.integers(min_value=1, max_value=z))
    return z, charge


class TestLevelProperties:
    @given(state=ion_state(), n_max=st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_structure_invariants(self, state, n_max):
        z, charge = state
        ls = build_levels(z, charge, n_max)
        assert len(ls) >= 1
        # Energies positive and finite.
        assert np.all(np.isfinite(ls.energy_kev))
        assert np.all(ls.energy_kev > 0.0)
        # Quantum numbers valid.
        assert np.all(ls.l_arr < ls.n_arr)
        assert np.all(ls.n_arr >= 1)
        # Ground state most bound.
        assert ls.energy_kev.argmax() == 0
        # Within fixed l, binding decreases with n.
        for l in np.unique(ls.l_arr):
            sel = ls.l_arr == l
            series = ls.energy_kev[sel][np.argsort(ls.n_arr[sel])]
            assert np.all(np.diff(series) <= 1e-15)

    @given(state=ion_state(), l=st.integers(min_value=0, max_value=10))
    @settings(max_examples=80, deadline=None)
    def test_effective_charge_bounds(self, state, l):
        z, charge = state
        c_eff = effective_charge(z, charge, l)
        assert charge <= c_eff <= z
        assert 0.0 <= quantum_defect(z, charge, l) < 1.0


class TestCrossSectionProperties:
    @given(
        state=ion_state(),
        n=st.integers(min_value=1, max_value=10),
        binding=st.floats(min_value=1e-4, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_nonnegative_and_monotone(self, state, n, binding):
        z, charge = state
        c_eff = effective_charge(z, charge, 0)
        e_e = np.logspace(-4, 1, 40)
        sigma = milne_recombination(e_e, binding, n, c_eff, 2.0)
        assert np.all(sigma >= 0.0)
        assert np.all(np.isfinite(sigma))
        assert np.all(np.diff(sigma) <= 0.0)  # decreasing in E_e

    @given(binding=st.floats(min_value=1e-4, max_value=10.0), n=st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_photoionization_threshold_behaviour(self, binding, n):
        e = np.array([binding * 0.999, binding, binding * 1.001])
        sigma = kramers_photoionization(e, binding, n, 5.0)
        assert sigma[0] == 0.0
        assert sigma[1] > 0.0
        assert sigma[2] > 0.0
        assert sigma[1] >= sigma[2]  # falls off above threshold


class TestRateProperties:
    @given(state=ion_state(), log_t=st.floats(min_value=4.0, max_value=9.0))
    @settings(max_examples=80, deadline=None)
    def test_rates_finite_nonnegative(self, state, log_t):
        z, charge = state
        t = np.array([10.0**log_t])
        alpha = recombination_rate(z, charge, t)[0]
        assert np.isfinite(alpha) and alpha >= 0.0
        if charge < z:
            s = ionization_rate(z, charge, t)[0]
            assert np.isfinite(s) and s >= 0.0
