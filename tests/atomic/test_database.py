"""AtomicDatabase assembly, caching, validation."""

import pytest

from repro.atomic.database import AtomicConfig, AtomicDatabase
from repro.atomic.ions import Ion


class TestAtomicConfig:
    def test_presets(self):
        assert AtomicConfig.tiny().z_max == 8
        assert AtomicConfig.small().n_max == 10
        assert AtomicConfig.paper().n_max == 62

    @pytest.mark.parametrize("kwargs", [dict(n_max=0), dict(z_max=0), dict(z_max=32)])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            AtomicConfig(**kwargs)

    def test_frozen(self):
        cfg = AtomicConfig.tiny()
        with pytest.raises(AttributeError):
            cfg.n_max = 3


class TestAtomicDatabase:
    def test_full_ion_set_by_default(self, small_db):
        assert len(small_db.ions) == 496

    def test_tiny_scope(self, tiny_db):
        assert len(tiny_db.ions) == 36  # sum 1..8

    def test_levels_cached(self, tiny_db):
        ion = tiny_db.ions[10]
        assert tiny_db.levels(ion) is tiny_db.levels(ion)

    def test_out_of_scope_ion_rejected(self, tiny_db):
        with pytest.raises(ValueError):
            tiny_db.levels(Ion(z=26, charge=10))

    def test_total_levels_positive(self, tiny_db):
        assert tiny_db.total_levels() > len(tiny_db.ions)

    def test_n_levels_matches_structure(self, tiny_db):
        for ion in tiny_db.ions[:10]:
            assert tiny_db.n_levels(ion) == len(tiny_db.levels(ion))

    def test_max_binding_energy_is_heaviest_bare_ground(self, tiny_db):
        e_max = tiny_db.max_binding_energy_kev()
        bare_o = Ion(z=8, charge=8)
        assert e_max == pytest.approx(float(tiny_db.levels(bare_o).energy_kev[0]))

    def test_validate_passes(self, tiny_db):
        tiny_db.validate()  # should not raise

    def test_paper_scale_level_counts(self):
        db = AtomicDatabase(AtomicConfig(n_max=62, z_max=2))
        helium_like = Ion(z=2, charge=2)
        assert db.n_levels(helium_like) == 1953  # "thousands of levels"

    def test_des_profile_integral_scale(self, des_db):
        """The simulation profile's per-point integral count ~2e8 (Fig. 1)."""
        total_levels = des_db.total_levels()
        integrals_per_point = total_levels * 50_000
        assert 1.5e8 < integrals_per_point < 3.0e8
