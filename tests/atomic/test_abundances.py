"""Abundance sets and their plumbing through the emission components."""

import numpy as np
import pytest

from repro.atomic.abundances import SOLAR, AbundanceSet
from repro.atomic.elements import cosmic_abundance
from repro.atomic.ions import Ion


class TestAbundanceSet:
    def test_solar_default(self):
        for z in (1, 2, 8, 26):
            assert SOLAR.of(z) == cosmic_abundance(z)

    def test_metallicity_scales_metals_only(self):
        half = AbundanceSet(metallicity=0.5)
        assert half.of(1) == cosmic_abundance(1)  # H untouched
        assert half.of(2) == cosmic_abundance(2)  # He untouched
        assert half.of(26) == pytest.approx(0.5 * cosmic_abundance(26))

    def test_override_beats_metallicity(self):
        a = AbundanceSet(metallicity=0.5, overrides={26: 1.0e-3})
        assert a.of(26) == 1.0e-3
        assert a.of(14) == pytest.approx(0.5 * cosmic_abundance(14))

    def test_with_helpers_are_pure(self):
        a = SOLAR.with_metallicity(2.0)
        b = a.with_override(8, 1e-3)
        assert SOLAR.metallicity == 1.0
        assert a.of(8) == pytest.approx(2.0 * cosmic_abundance(8))
        assert b.of(8) == 1e-3

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(metallicity=-0.1),
            dict(overrides={0: 1.0}),
            dict(overrides={8: -1.0}),
            dict(overrides={99: 1.0}),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AbundanceSet(**kwargs)


class TestAbundancePlumbing:
    def test_ion_density_scales(self):
        from repro.physics.ionbalance import ion_density

        ion = Ion(z=26, charge=26)
        solar = ion_density(ion, 1e8, 1.0)
        doubled = ion_density(
            ion, 1e8, 1.0, abundances=AbundanceSet(metallicity=2.0)
        )
        assert doubled == pytest.approx(2.0 * solar)

    def test_rrc_emission_scales_linearly(self, tiny_db, hot_point, grid_small):
        from repro.physics.apec import ion_emissivity_batched

        ion = Ion(z=8, charge=8)
        solar = ion_emissivity_batched(tiny_db, ion, hot_point, grid_small)
        tenth = ion_emissivity_batched(
            tiny_db, ion, hot_point, grid_small,
            abundances=AbundanceSet(metallicity=0.1),
        )
        nz = solar > 0
        assert np.allclose(tenth[nz] / solar[nz], 0.1, rtol=1e-12)

    def test_hydrogen_unaffected_by_metallicity(self, tiny_db, grid_small):
        from repro.physics.apec import GridPoint, ion_emissivity_batched

        pt = GridPoint(temperature_k=3e5, ne_cm3=1.0)  # H+ populated
        ion = Ion(z=1, charge=1)
        solar = ion_emissivity_batched(tiny_db, ion, pt, grid_small)
        poor = ion_emissivity_batched(
            tiny_db, ion, pt, grid_small, abundances=AbundanceSet(metallicity=0.1)
        )
        assert np.array_equal(solar, poor)

    def test_serial_apec_metallicity(self, tiny_db, hot_point, grid_small):
        from repro.physics.apec import SerialAPEC

        solar = SerialAPEC(tiny_db, grid_small, method="simpson-batch").compute(
            hot_point
        )
        poor = SerialAPEC(
            tiny_db, grid_small, method="simpson-batch",
            abundances=AbundanceSet(metallicity=0.3),
        ).compute(hot_point)
        # Metals dominate this window, so total drops substantially —
        # but not by the full 0.3 factor (H/He contribute too).
        ratio = poor.total() / solar.total()
        assert 0.29 < ratio < 1.0

    def test_brems_tracks_z_squared_weighting(self):
        from repro.physics.apec import GridPoint
        from repro.physics.brems import brems_spectral_density

        pt = GridPoint(temperature_k=1e7, ne_cm3=1.0)
        e = np.array([1.0])
        solar = brems_spectral_density(e, pt, z_max=8)[0]
        rich = brems_spectral_density(
            e, pt, z_max=8, abundances=AbundanceSet(metallicity=3.0)
        )[0]
        assert rich > solar  # more metals, more Z^2
