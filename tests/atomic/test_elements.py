"""Elements table: identity, abundances, the 496-ion arithmetic."""

import pytest

from repro.atomic.elements import ELEMENTS, MAX_Z, Element, cosmic_abundance


class TestElementsTable:
    def test_covers_one_through_31(self):
        assert set(ELEMENTS) == set(range(1, MAX_Z + 1))

    def test_symbols_unique(self):
        symbols = [e.symbol for e in ELEMENTS.values()]
        assert len(set(symbols)) == len(symbols)

    def test_known_symbols(self):
        assert ELEMENTS[1].symbol == "H"
        assert ELEMENTS[8].symbol == "O"
        assert ELEMENTS[26].symbol == "Fe"
        assert ELEMENTS[31].symbol == "Ga"

    def test_ion_counts_sum_to_496(self):
        """The paper's 'most abundant elements ... totally contain 496 ions'."""
        assert sum(e.n_ions for e in ELEMENTS.values()) == 496

    def test_hydrogen_reference_abundance(self):
        assert ELEMENTS[1].abundance == pytest.approx(1.0)

    def test_abundances_positive_and_below_hydrogen(self):
        for z in range(2, MAX_Z + 1):
            assert 0.0 < ELEMENTS[z].abundance < 1.0

    def test_helium_about_a_tenth(self):
        assert ELEMENTS[2].abundance == pytest.approx(0.0977, rel=0.05)

    def test_iron_more_abundant_than_manganese(self):
        # The odd-even abundance structure of nucleosynthesis.
        assert ELEMENTS[26].abundance > ELEMENTS[25].abundance


class TestCosmicAbundance:
    def test_matches_table(self):
        assert cosmic_abundance(8) == ELEMENTS[8].abundance

    @pytest.mark.parametrize("z", [0, -1, 32, 100])
    def test_out_of_range_rejected(self, z):
        with pytest.raises(ValueError):
            cosmic_abundance(z)


class TestElementDataclass:
    def test_frozen(self):
        with pytest.raises(AttributeError):
            ELEMENTS[1].z = 2

    def test_n_ions_equals_z(self):
        e = Element(z=7, symbol="N", name="nitrogen", log_abundance=8.0)
        assert e.n_ions == 7
