"""The live multiprocessing runner (real processes, real shared memory)."""

import numpy as np
import pytest

from repro.cluster.shm import LiveHybridRunner, LiveTask, rrc_like_integrand


def make_tasks(n_tasks=8, n_bins=50):
    edges = np.linspace(0.3, 2.0, n_bins + 1)
    return [
        LiveTask(task_id=i, lo=edges[:-1], hi=edges[1:], edge=0.5, kt=0.8)
        for i in range(n_tasks)
    ]


def analytic_total(task: LiveTask) -> float:
    lo = max(float(task.lo[0]), task.edge)
    hi = float(task.hi[-1])
    return task.scale * task.kt * (1.0 - np.exp(-(hi - task.edge) / task.kt))


class TestLiveTask:
    def test_gpu_and_cpu_paths_agree(self):
        task = make_tasks(1)[0]
        gpu = task.gpu_compute()
        cpu = task.cpu_compute()
        nz = cpu != 0.0
        assert np.allclose(gpu[nz], cpu[nz], rtol=1e-9)

    def test_totals_match_analytic(self):
        task = make_tasks(1)[0]
        assert task.gpu_compute().sum() == pytest.approx(analytic_total(task), rel=1e-10)

    def test_integrand_factory(self):
        f = rrc_like_integrand(edge=1.0, kt=0.5, scale=2.0)
        x = np.array([0.5, 1.0, 1.5])
        vals = f(x)
        assert vals[0] == 0.0
        assert vals[1] == pytest.approx(2.0)
        assert vals[2] == pytest.approx(2.0 * np.exp(-1.0))


@pytest.mark.slow
class TestLiveHybridRunner:
    def test_all_tasks_complete_with_correct_results(self):
        tasks = make_tasks(12)
        runner = LiveHybridRunner(n_workers=3, n_devices=1, max_queue_length=2)
        res = runner.run(tasks, timeout_s=60.0)
        assert res.gpu_tasks + res.cpu_tasks == 12
        assert set(res.totals) == set(range(12))
        for t in tasks:
            assert res.totals[t.task_id] == pytest.approx(
                analytic_total(t), rel=1e-8
            )

    def test_multiple_devices(self):
        tasks = make_tasks(10)
        runner = LiveHybridRunner(n_workers=2, n_devices=2, max_queue_length=4)
        res = runner.run(tasks, timeout_s=60.0)
        assert res.gpu_tasks + res.cpu_tasks == 10
        assert res.gpu_ratio > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveHybridRunner(n_workers=0)
        with pytest.raises(ValueError):
            LiveHybridRunner(max_queue_length=0)
