"""Property-based tests of the event engine (hypothesis).

The simulator underpins every quantitative result in the reproduction —
causality, determinism and makespan arithmetic must hold for arbitrary
process populations, not only the hybrid runner's shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simclock import SimClock

delays = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


@st.composite
def process_population(draw):
    """A set of processes, each a list of sleep durations."""
    return draw(st.lists(delays, min_size=1, max_size=10))


class TestClockProperties:
    @given(population=process_population())
    @settings(max_examples=100, deadline=None)
    def test_makespan_is_max_process_duration(self, population):
        clock = SimClock()

        def proc(sleeps):
            for d in sleeps:
                yield d

        makespan = clock.run_all([proc(s) for s in population])
        assert makespan == max(sum(s) for s in population)

    @given(population=process_population())
    @settings(max_examples=60, deadline=None)
    def test_observed_time_monotone(self, population):
        clock = SimClock()
        observations = []

        def proc(sleeps):
            for d in sleeps:
                yield d
                observations.append(clock.now)

        clock.run_all([proc(s) for s in population])
        assert observations == sorted(observations)

    @given(population=process_population())
    @settings(max_examples=60, deadline=None)
    def test_trace_deterministic(self, population):
        def run_once():
            clock = SimClock()
            trace = []

            def proc(i, sleeps):
                for d in sleeps:
                    yield d
                    trace.append((i, clock.now))

            for i, s in enumerate(population):
                clock.spawn(proc(i, s), name=f"p{i}")
            clock.run()
            return trace

        assert run_once() == run_once()

    @given(
        population=process_population(),
        fire_after=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_signal_wakes_all_waiters_at_fire_time(self, population, fire_after):
        clock = SimClock()
        sig = clock.signal()
        wake_times = []

        def waiter(sleeps):
            for d in sleeps:
                yield d
            yield sig
            wake_times.append(clock.now)

        def firer():
            yield fire_after
            sig.fire(clock)

        for s in population:
            clock.spawn(waiter(s))
        clock.spawn(firer())
        clock.run()
        assert len(wake_times) == len(population)
        for t, sleeps in zip(sorted(wake_times), sorted(sum(s) for s in population)):
            assert t >= max(fire_after, sleeps) - 1e-12

    @given(population=process_population())
    @settings(max_examples=40, deadline=None)
    def test_join_returns_child_result(self, population):
        clock = SimClock()
        results = []

        def child(i, sleeps):
            for d in sleeps:
                yield d
            return i * 2

        def parent():
            handles = [
                clock.spawn(child(i, s), name=f"c{i}")
                for i, s in enumerate(population)
            ]
            for h in handles:
                value = yield h
                results.append(h.result)

        clock.spawn(parent())
        clock.run()
        assert results == [i * 2 for i in range(len(population))]
