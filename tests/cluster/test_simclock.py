"""The discrete-event engine: determinism, causality, process semantics."""

import pytest

from repro.cluster.simclock import Interrupt, SimClock, Signal


class TestScheduling:
    def test_callbacks_in_time_order(self):
        clock = SimClock()
        order = []
        clock.at(2.0, lambda: order.append("b"))
        clock.at(1.0, lambda: order.append("a"))
        clock.at(3.0, lambda: order.append("c"))
        clock.run()
        assert order == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_ties_broken_by_schedule_order(self):
        clock = SimClock()
        order = []
        for tag in "abc":
            clock.at(1.0, lambda t=tag: order.append(t))
        clock.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.at(-1.0, lambda: None)

    def test_run_until(self):
        clock = SimClock()
        fired = []
        clock.at(1.0, lambda: fired.append(1))
        clock.at(5.0, lambda: fired.append(5))
        clock.run(until=2.0)
        assert fired == [1]
        assert clock.now == 2.0
        clock.run()
        assert fired == [1, 5]

    def test_nested_scheduling(self):
        clock = SimClock()
        seen = []

        def outer():
            seen.append(clock.now)
            clock.at(1.5, lambda: seen.append(clock.now))

        clock.at(1.0, outer)
        clock.run()
        assert seen == [1.0, 2.5]


class TestProcesses:
    def test_timeout_yields(self):
        clock = SimClock()

        def proc():
            yield 1.0
            yield 2.0
            return "done"

        h = clock.spawn(proc())
        clock.run()
        assert clock.now == 3.0
        assert h.result == "done"
        assert not h.alive

    def test_signal_wait_and_payload(self):
        clock = SimClock()
        sig = clock.signal("data")
        got = []

        def waiter():
            payload = yield sig
            got.append((clock.now, payload))

        def firer():
            yield 2.0
            sig.fire(clock, payload={"x": 1})

        clock.spawn(waiter())
        clock.spawn(firer())
        clock.run()
        assert got == [(2.0, {"x": 1})]

    def test_already_fired_signal_returns_immediately(self):
        clock = SimClock()
        sig = clock.signal()
        sig.fire(clock, payload=7)

        def proc():
            payload = yield sig
            return payload

        h = clock.spawn(proc())
        clock.run()
        assert h.result == 7

    def test_double_fire_rejected(self):
        clock = SimClock()
        sig = clock.signal()
        sig.fire(clock)
        with pytest.raises(RuntimeError):
            sig.fire(clock)

    def test_join_process(self):
        clock = SimClock()

        def child():
            yield 3.0
            return 99

        def parent():
            h = clock.spawn(child(), name="child")
            result = yield h
            return (clock.now, result)

        h = clock.spawn(parent())
        clock.run()
        assert h.result == (3.0, 99)

    def test_multiple_waiters_all_wake(self):
        clock = SimClock()
        sig = clock.signal()
        woken = []

        def waiter(i):
            yield sig
            woken.append(i)

        for i in range(5):
            clock.spawn(waiter(i))
        clock.at(1.0, lambda: sig.fire(clock))
        clock.run()
        assert sorted(woken) == [0, 1, 2, 3, 4]

    def test_negative_yield_rejected(self):
        clock = SimClock()

        def proc():
            yield -1.0

        clock.spawn(proc())
        with pytest.raises(ValueError):
            clock.run()

    def test_bad_yield_type_rejected(self):
        clock = SimClock()

        def proc():
            yield "soon"

        clock.spawn(proc())
        with pytest.raises(TypeError):
            clock.run()

    def test_kill_interrupts(self):
        clock = SimClock()
        cleaned = []

        def proc():
            try:
                yield 100.0
            except Interrupt:
                cleaned.append(True)
                raise

        h = clock.spawn(proc())
        clock.at(1.0, h.kill)
        clock.run()
        assert cleaned == [True]
        assert not h.alive

    def test_add_callback(self):
        clock = SimClock()
        sig = clock.signal()
        got = []
        sig.add_callback(clock, got.append)
        clock.at(1.0, lambda: sig.fire(clock, payload="x"))
        clock.run()
        assert got == ["x"]

    def test_add_callback_after_fire(self):
        clock = SimClock()
        sig = clock.signal()
        sig.fire(clock, payload=3)
        got = []
        sig.add_callback(clock, got.append)
        clock.run()
        assert got == [3]


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def build_and_run():
            clock = SimClock()
            trace = []

            def worker(i):
                yield 0.1 * (i % 3)
                trace.append((round(clock.now, 6), i))
                yield 0.2
                trace.append((round(clock.now, 6), i))

            for i in range(10):
                clock.spawn(worker(i))
            clock.run()
            return trace

        assert build_and_run() == build_and_run()

    def test_run_all_returns_makespan(self):
        clock = SimClock()

        def proc(d):
            yield d

        makespan = clock.run_all([proc(1.0), proc(4.0), proc(2.0)])
        assert makespan == 4.0
