"""The mini message-passing layer."""

import pytest

from repro.cluster.mpi import MiniComm
from repro.cluster.simclock import SimClock


def run_ranks(size, body, latency=0.0):
    """Spawn `size` rank processes running body(comm, rank) generators."""
    clock = SimClock()
    comm = MiniComm(clock, size, latency=latency)
    handles = [clock.spawn(body(comm, r), name=f"rank{r}") for r in range(size)]
    makespan = clock.run()
    return makespan, [h.result for h in handles]


class TestPointToPoint:
    def test_send_recv(self):
        def body(comm, rank):
            if rank == 0:
                yield from comm.send({"a": 1}, dest=1, source=0)
                return None
            return (yield from comm.recv(source=0, dest=1))

        _, results = run_ranks(2, body)
        assert results[1] == {"a": 1}

    def test_recv_blocks_until_send(self):
        arrival = {}

        def body(comm, rank):
            if rank == 0:
                yield 5.0
                yield from comm.send("late", dest=1, source=0)
            else:
                msg = yield from comm.recv(source=0, dest=1)
                arrival["t"] = comm.clock.now
                return msg

        run_ranks(2, body)
        assert arrival["t"] == 5.0

    def test_message_order_preserved(self):
        def body(comm, rank):
            if rank == 0:
                for i in range(3):
                    yield from comm.send(i, dest=1, source=0)
                return None
            got = []
            for _ in range(3):
                got.append((yield from comm.recv(source=0, dest=1)))
            return got

        _, results = run_ranks(2, body)
        assert results[1] == [0, 1, 2]

    def test_latency_charged(self):
        def body(comm, rank):
            if rank == 0:
                yield from comm.send("x", dest=1, source=0)
            else:
                yield from comm.recv(source=0, dest=1)

        makespan, _ = run_ranks(2, body, latency=0.25)
        assert makespan == pytest.approx(0.25)

    def test_bad_rank_rejected(self):
        clock = SimClock()
        comm = MiniComm(clock, 2)
        gen = comm.send("x", dest=5, source=0)
        with pytest.raises(ValueError):
            next(gen)


class TestCollectives:
    def test_bcast(self):
        def body(comm, rank):
            data = {"cfg": 7} if rank == 0 else None
            return (yield from comm.bcast(data, root=0, rank=rank))

        _, results = run_ranks(4, body)
        assert all(r == {"cfg": 7} for r in results)

    def test_scatter(self):
        def body(comm, rank):
            chunks = [[r] for r in range(4)] if rank == 0 else None
            return (yield from comm.scatter(chunks, root=0, rank=rank))

        _, results = run_ranks(4, body)
        assert results == [[0], [1], [2], [3]]

    def test_scatter_wrong_chunk_count(self):
        def body(comm, rank):
            chunks = [[1], [2]] if rank == 0 else None
            return (yield from comm.scatter(chunks, root=0, rank=rank))

        clock = SimClock()
        comm = MiniComm(clock, 3)
        gen = body(comm, 0)
        with pytest.raises(ValueError):
            list(gen)

    def test_gather(self):
        def body(comm, rank):
            yield 0.1 * rank  # desynchronize
            return (yield from comm.gather(rank * rank, root=0, rank=rank))

        _, results = run_ranks(4, body)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_barrier_synchronizes(self):
        times = {}

        def body(comm, rank):
            yield float(rank)  # ranks arrive at different times
            yield from comm.barrier(rank)
            times[rank] = comm.clock.now

        run_ranks(4, body)
        assert all(t == 3.0 for t in times.values())

    def test_scatter_then_gather_roundtrip(self):
        def body(comm, rank):
            chunk = yield from comm.scatter(
                [[i, i + 1] for i in range(3)] if rank == 0 else None,
                root=0,
                rank=rank,
            )
            total = sum(chunk)
            return (yield from comm.gather(total, root=0, rank=rank))

        _, results = run_ranks(3, body)
        assert results[0] == [1, 3, 5]


class TestValidation:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            MiniComm(SimClock(), 0)

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            MiniComm(SimClock(), 2, latency=-1.0)
