"""Shared-memory segment and atomic operations."""

import pytest

from repro.cluster.sharedmem import SharedArray, SharedSegment


class TestSharedArray:
    def test_starts_zeroed(self):
        arr = SharedArray(4)
        assert list(arr) == [0, 0, 0, 0]

    def test_atomic_add_returns_new_value(self):
        arr = SharedArray(2)
        assert arr.atomic_add(0, 3) == 3
        assert arr.atomic_add(0, -1) == 2
        assert arr[0] == 2
        assert arr[1] == 0

    def test_cas_success_and_failure(self):
        arr = SharedArray(1)
        assert arr.atomic_cas(0, 0, 5)
        assert arr[0] == 5
        assert not arr.atomic_cas(0, 0, 9)
        assert arr[0] == 5

    def test_snapshot_is_copy(self):
        arr = SharedArray(2)
        snap = arr.snapshot()
        arr.atomic_add(0, 1)
        assert snap[0] == 0

    def test_store(self):
        arr = SharedArray(2)
        arr.store(1, 42)
        assert arr[1] == 42

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SharedArray(0)


class TestSharedSegment:
    def test_layout(self):
        seg = SharedSegment(3)
        load, history = seg.attach()
        assert len(load) == 3
        assert len(history) == 3
        assert load is seg.load

    def test_total_load(self):
        seg = SharedSegment(3)
        seg.load.atomic_add(0, 2)
        seg.load.atomic_add(2, 1)
        assert seg.total_load() == 3

    def test_zero_devices_allowed(self):
        seg = SharedSegment(0)
        assert seg.total_load() == 0

    def test_validate_detects_negative_load(self):
        seg = SharedSegment(2)
        seg.load.store(0, -1)
        with pytest.raises(ValueError):
            seg.validate(max_queue_length=4)

    def test_validate_detects_overfull_queue(self):
        seg = SharedSegment(2)
        seg.load.store(1, 5)
        with pytest.raises(ValueError):
            seg.validate(max_queue_length=4)

    def test_validate_detects_negative_history(self):
        seg = SharedSegment(1)
        seg.history.store(0, -2)
        with pytest.raises(ValueError):
            seg.validate(max_queue_length=4)

    def test_validate_passes_on_sane_state(self):
        seg = SharedSegment(2)
        seg.load.atomic_add(0, 3)
        seg.history.atomic_add(0, 10)
        seg.validate(max_queue_length=4)
