"""Property-based tests on the quadrature stack (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadrature.batch import batch_romberg, batch_simpson
from repro.quadrature.qags import qags
from repro.quadrature.romberg import romberg
from repro.quadrature.simpson import simpson

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
small_pos = st.floats(min_value=0.05, max_value=10.0)


@st.composite
def cubic_coeffs(draw):
    return [draw(finite_floats) for _ in range(4)]


def poly(coeffs):
    def f(x):
        out = np.zeros_like(np.asarray(x, dtype=np.float64))
        for p, c in enumerate(coeffs):
            out = out + c * np.asarray(x, dtype=np.float64) ** p
        return out

    return f


def poly_integral(coeffs, a, b):
    return sum(c * (b ** (p + 1) - a ** (p + 1)) / (p + 1) for p, c in enumerate(coeffs))


class TestSimpsonProperties:
    @given(coeffs=cubic_coeffs(), a=finite_floats, width=small_pos)
    @settings(max_examples=60, deadline=None)
    def test_exact_on_random_cubics(self, coeffs, a, width):
        b = a + width
        exact = poly_integral(coeffs, a, b)
        got = simpson(poly(coeffs), a, b, pieces=4).value
        scale = max(1.0, abs(exact))
        assert abs(got - exact) <= 1e-9 * scale

    @given(a=finite_floats, width=small_pos, shift=finite_floats)
    @settings(max_examples=40, deadline=None)
    def test_linearity_in_integrand(self, a, width, shift):
        """integral(f + c) = integral(f) + c * (b - a)."""
        b = a + width
        f = lambda x: np.sin(x)
        g = lambda x: np.sin(x) + shift
        i_f = simpson(f, a, b, pieces=16).value
        i_g = simpson(g, a, b, pieces=16).value
        assert i_g - i_f == pytest.approx(shift * width, rel=1e-9, abs=1e-9)

    @given(a=finite_floats, width=small_pos)
    @settings(max_examples=40, deadline=None)
    def test_interval_additivity(self, a, width):
        b = a + width
        mid = a + width / 2.0
        f = np.cos
        whole = simpson(f, a, b, pieces=64).value
        parts = simpson(f, a, mid, pieces=32).value + simpson(f, mid, b, pieces=32).value
        assert whole == pytest.approx(parts, rel=1e-8, abs=1e-10)


class TestRombergProperties:
    @given(coeffs=cubic_coeffs(), a=finite_floats, width=small_pos)
    @settings(max_examples=40, deadline=None)
    def test_exact_on_random_cubics(self, coeffs, a, width):
        b = a + width
        exact = poly_integral(coeffs, a, b)
        got = romberg(poly(coeffs), a, b, k=3).value
        scale = max(1.0, abs(exact))
        assert abs(got - exact) <= 1e-8 * scale

    @given(a=finite_floats, width=small_pos, k=st.integers(min_value=2, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_sign_flip_antisymmetry(self, a, width, k):
        b = a + width
        fwd = romberg(np.exp, a, b, k=k).value
        # integral over [a,b] of f == -integral over [b,a]; our API keeps
        # a <= b but trapezoid_ladder handles either orientation.
        rev = romberg(np.exp, b, a, k=k).value
        assert fwd == pytest.approx(-rev, rel=1e-12)


class TestBatchConsistencyProperties:
    @given(
        edges=st.lists(
            st.floats(min_value=0.1, max_value=20.0), min_size=3, max_size=12, unique=True
        ),
        pieces=st.sampled_from([2, 8, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_scalar_loop(self, edges, pieces):
        edges = np.array(sorted(edges))
        f = lambda x: np.exp(-0.3 * x) * (x + 1.0)
        batch = batch_simpson(f, edges[:-1], edges[1:], pieces=pieces)
        for i in range(len(edges) - 1):
            scalar = simpson(f, float(edges[i]), float(edges[i + 1]), pieces=pieces)
            assert batch[i] == pytest.approx(scalar.value, rel=1e-11, abs=1e-13)

    @given(
        lo=st.floats(min_value=0.0, max_value=5.0),
        width=small_pos,
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_batch_romberg_single_matches_scalar(self, lo, width, k):
        hi = lo + width
        f = lambda x: 1.0 / (1.0 + x**2)
        batch = batch_romberg(f, np.array([lo]), np.array([hi]), k=k)[0]
        scalar = romberg(f, lo, hi, k=k).value
        assert batch == pytest.approx(scalar, rel=1e-11, abs=1e-14)


class TestQAGSProperties:
    @given(coeffs=cubic_coeffs(), a=finite_floats, width=small_pos)
    @settings(max_examples=30, deadline=None)
    def test_converges_on_random_cubics(self, coeffs, a, width):
        b = a + width
        exact = poly_integral(coeffs, a, b)
        res = qags(poly(coeffs), a, b)
        assert res.converged
        scale = max(1.0, abs(exact))
        assert abs(res.value - exact) <= max(res.abserr * 10, 1e-8 * scale)

    @given(edge=st.floats(min_value=0.3, max_value=1.5), kt=st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_rrc_family_has_analytic_value(self, edge, kt):
        """The workload family integrates exactly; QAGS must match."""
        f = lambda x: np.where(x >= edge, np.exp(-(x - edge) / kt), 0.0)
        lo = max(0.1, edge)
        res = qags(f, lo, 3.0, epsrel=1e-10)
        exact = kt * (1.0 - np.exp(-(3.0 - edge) / kt)) if edge < 3.0 else 0.0
        assert res.value == pytest.approx(exact, rel=1e-7, abs=1e-12)
