"""Gauss-Legendre fixed rules."""

import numpy as np
import pytest

from repro.quadrature.gauss_legendre import (
    batch_gauss_legendre,
    gauss_legendre,
    gauss_legendre_nodes,
)


class TestNodes:
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_weights_sum_to_two(self, n):
        _x, w = gauss_legendre_nodes(n)
        assert w.sum() == pytest.approx(2.0)

    def test_nodes_symmetric_in_open_interval(self):
        x, _w = gauss_legendre_nodes(7)
        assert np.allclose(x, -x[::-1])
        assert np.all(np.abs(x) < 1.0)

    def test_cached(self):
        assert gauss_legendre_nodes(8)[0] is gauss_legendre_nodes(8)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            gauss_legendre_nodes(0)


class TestGaussLegendre:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_exact_to_degree_2n_minus_1(self, n):
        degree = 2 * n - 1
        f = lambda x: x**degree + x ** (degree - 1)
        a, b = -0.5, 1.5
        exact = (b ** (degree + 1) - a ** (degree + 1)) / (degree + 1) + (
            b**degree - a**degree
        ) / degree
        res = gauss_legendre(f, a, b, n)
        assert res.value == pytest.approx(exact, rel=1e-12)

    def test_not_exact_beyond(self):
        # degree 4 with n=2 (exact only to 3).
        res = gauss_legendre(lambda x: x**4, 0.0, 1.0, n=2)
        assert res.value != pytest.approx(0.2, rel=1e-10)

    def test_smooth_accuracy_with_few_points(self):
        res = gauss_legendre(np.exp, 0.0, 1.0, n=8)
        assert res.value == pytest.approx(np.e - 1.0, rel=1e-13)
        assert res.neval == 12  # 8 + embedded 4

    def test_zero_width(self):
        assert gauss_legendre(np.exp, 1.0, 1.0).value == 0.0

    def test_error_estimate_covers(self):
        f = lambda x: np.cos(7.0 * x)
        exact = np.sin(14.0) / 7.0
        res = gauss_legendre(f, 0.0, 2.0, n=8)
        assert abs(res.value - exact) <= max(res.abserr * 2.0, 1e-12)

    def test_bad_integrand_shape(self):
        with pytest.raises(ValueError):
            gauss_legendre(lambda x: np.zeros(3), 0.0, 1.0, n=8)


class TestBatchGaussLegendre:
    def test_matches_scalar(self):
        f = lambda x: np.exp(-x) * (x + 1.0)
        lo = np.array([0.0, 0.7, 1.4])
        hi = np.array([0.7, 1.4, 3.0])
        batch = batch_gauss_legendre(f, lo, hi, n=10)
        for i in range(3):
            scalar = gauss_legendre(f, float(lo[i]), float(hi[i]), n=10)
            assert batch[i] == pytest.approx(scalar.value, rel=1e-13)

    def test_agrees_with_batch_simpson_on_smooth(self):
        from repro.quadrature.batch import batch_simpson

        f = lambda x: 1.0 / (1.0 + x**2)
        lo = np.linspace(0.0, 4.0, 21)[:-1]
        hi = np.linspace(0.0, 4.0, 21)[1:]
        gl = batch_gauss_legendre(f, lo, hi, n=12)
        simp = batch_simpson(f, lo, hi, pieces=64)
        assert np.allclose(gl, simp, rtol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            batch_gauss_legendre(np.exp, np.zeros(2), np.ones(3))
