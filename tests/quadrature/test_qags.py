"""QAGS adaptive quadrature and the Wynn epsilon algorithm."""

import numpy as np
import pytest

from repro.quadrature.qags import qags, wynn_epsilon
from repro.quadrature.result import ErrorBudget, QuadratureError


class TestWynnEpsilon:
    def test_geometric_series_exact(self):
        partial = np.cumsum(0.5 ** np.arange(8))
        limit, err = wynn_epsilon(partial)
        assert limit == pytest.approx(2.0, abs=1e-12)
        assert err <= 1e-10

    def test_alternating_series_acceleration(self):
        partial = np.cumsum((-1.0) ** np.arange(12) / np.arange(1, 13))
        limit, _err = wynn_epsilon(partial)
        raw_err = abs(partial[-1] - np.log(2.0))
        acc_err = abs(limit - np.log(2.0))
        assert acc_err < raw_err * 1e-4

    def test_monotone_series_improved(self):
        partial = np.cumsum(1.0 / np.arange(1, 20) ** 2)
        limit, _err = wynn_epsilon(partial)
        exact = np.pi**2 / 6.0
        assert abs(limit - exact) < abs(partial[-1] - exact)

    def test_constant_sequence(self):
        limit, err = wynn_epsilon(np.full(5, 3.25))
        assert limit == 3.25
        assert err == 0.0

    def test_too_short_sequence_rejected(self):
        with pytest.raises(ValueError):
            wynn_epsilon(np.array([1.0, 2.0]))


class TestErrorBudget:
    def test_target_uses_max_of_abs_and_rel(self):
        budget = ErrorBudget(epsabs=1e-3, epsrel=1e-6)
        assert budget.target(1e6) == pytest.approx(1.0)
        assert budget.target(0.1) == pytest.approx(1e-3)

    def test_satisfied(self):
        budget = ErrorBudget(epsabs=1e-8, epsrel=1e-6)
        assert budget.satisfied(1.0, 1e-7)
        assert not budget.satisfied(1.0, 1e-5)

    def test_both_zero_rejected(self):
        with pytest.raises(ValueError):
            ErrorBudget(epsabs=0.0, epsrel=0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ErrorBudget(epsabs=-1.0)


class TestQAGS:
    def test_smooth_integrand(self):
        res = qags(np.exp, 0.0, 2.0)
        assert res.converged
        assert res.value == pytest.approx(np.exp(2.0) - 1.0, rel=1e-12)
        assert abs(res.value - (np.exp(2.0) - 1.0)) <= max(res.abserr, 1e-14)

    def test_oscillatory_integrand(self):
        # [0, 1] (not [0, pi]): an interval where sin(50x) is NOT odd
        # about the midpoint, so the symmetric rule cannot luck into 0.
        res = qags(lambda x: np.sin(50.0 * x), 0.0, 1.0, epsrel=1e-10)
        exact = (1.0 - np.cos(50.0)) / 50.0
        assert res.converged
        assert res.value == pytest.approx(exact, abs=1e-10)
        assert res.subdivisions > 1  # must have adapted

    def test_kinked_integrand(self):
        res = qags(lambda x: np.abs(x), -1.0, 2.0, epsrel=1e-10)
        assert res.value == pytest.approx(2.5, rel=1e-10)

    def test_near_singular_log(self):
        f = lambda x: np.where(x > 0, np.log(np.maximum(x, 1e-300)), 0.0)
        res = qags(f, 0.0, 1.0, epsabs=1e-10, epsrel=1e-10, limit=100)
        assert res.value == pytest.approx(-1.0, abs=1e-7)

    def test_rrc_like_edge(self):
        """The workload's actual shape: zero below an edge, exp above."""
        edge, kt = 0.7, 0.3
        f = lambda x: np.where(x >= edge, np.exp(-(x - edge) / kt), 0.0)
        res = qags(f, 0.5, 2.0, epsrel=1e-10)
        exact = kt * (1.0 - np.exp(-(2.0 - edge) / kt))
        assert res.value == pytest.approx(exact, rel=1e-8)

    def test_reversed_limits(self):
        fwd = qags(np.exp, 0.0, 1.0).value
        rev = qags(np.exp, 1.0, 0.0).value
        assert rev == pytest.approx(-fwd, rel=1e-14)

    def test_zero_width(self):
        res = qags(np.exp, 1.0, 1.0)
        assert res.value == 0.0
        assert res.neval == 0

    def test_limit_exhaustion_reported_not_hidden(self):
        """A hard integrand with a tiny limit must report non-convergence."""
        f = lambda x: np.sin(1.0 / np.maximum(np.abs(x), 1e-12))
        res = qags(f, 0.0, 1.0, epsrel=1e-14, epsabs=1e-14, limit=3)
        assert not res.converged
        with pytest.raises(QuadratureError):
            res.require_converged()

    def test_neval_accounting(self):
        res = qags(np.exp, 0.0, 1.0)
        assert res.neval % 21 == 0

    def test_converged_result_requires_ok(self):
        res = qags(np.exp, 0.0, 1.0)
        assert res.require_converged() == res.value
