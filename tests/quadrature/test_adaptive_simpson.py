"""Recursive adaptive Simpson."""

import numpy as np
import pytest

from repro.quadrature.adaptive_simpson import adaptive_simpson
from repro.quadrature.qags import qags


class TestAdaptiveSimpson:
    def test_smooth_integrand_to_tolerance(self):
        f = lambda x: np.exp(-x) * np.sin(3.0 * x)
        res = adaptive_simpson(f, 0.0, 2.0, tol=1e-12)
        ref = qags(f, 0.0, 2.0, epsrel=1e-13).value
        assert res.converged
        assert abs(res.value - ref) < 1e-11

    def test_adapts_where_needed(self):
        """A localized spike forces refinement only near the spike."""
        f = lambda x: np.exp(-1000.0 * (x - 0.3) ** 2)
        loose = adaptive_simpson(f, 0.0, 1.0, tol=1e-6)
        tight = adaptive_simpson(f, 0.0, 1.0, tol=1e-12)
        assert tight.neval > loose.neval
        exact = np.sqrt(np.pi / 1000.0)  # full Gaussian; tails negligible
        assert tight.value == pytest.approx(exact, rel=1e-9)

    def test_kink_handled(self):
        res = adaptive_simpson(lambda x: np.abs(x), -1.0, 2.0, tol=1e-12)
        assert res.value == pytest.approx(2.5, rel=1e-10)

    def test_reversed_interval(self):
        fwd = adaptive_simpson(np.exp, 0.0, 1.0, tol=1e-10).value
        rev = adaptive_simpson(np.exp, 1.0, 0.0, tol=1e-10).value
        assert rev == pytest.approx(-fwd)

    def test_zero_width(self):
        res = adaptive_simpson(np.exp, 1.0, 1.0)
        assert res.value == 0.0

    def test_rrc_edge_integrand(self):
        edge, kt = 0.7, 0.3
        f = lambda x: np.where(x >= edge, np.exp(-(x - edge) / kt), 0.0)
        res = adaptive_simpson(f, edge, 2.0, tol=1e-12)
        exact = kt * (1.0 - np.exp(-(2.0 - edge) / kt))
        assert res.value == pytest.approx(exact, rel=1e-9)

    def test_depth_exhaustion_flagged_not_fatal(self):
        """Near-singular derivative: the flag goes down, the value stays
        accurate (Richardson correction carries it)."""
        res = adaptive_simpson(
            lambda x: np.sqrt(np.abs(x)), 0.0, 1.0, tol=1e-12, max_depth=12
        )
        assert not res.converged
        assert res.value == pytest.approx(2.0 / 3.0, rel=1e-5)

    def test_panel_budget_flagged(self):
        f = lambda x: np.sin(200.0 * x)
        res = adaptive_simpson(f, 0.0, 3.0, tol=1e-14, max_panels=10)
        assert not res.converged
        assert np.isfinite(res.value)

    def test_tolerance_validation(self):
        with pytest.raises(ValueError):
            adaptive_simpson(np.exp, 0.0, 1.0, tol=0.0)

    def test_agrees_with_qags_family(self):
        """Three independent adaptive integrators, one answer."""
        f = lambda x: np.log(1.0 + x) / (1.0 + x**2)
        ref = qags(f, 0.0, 1.0, epsrel=1e-12).value
        res = adaptive_simpson(f, 0.0, 1.0, tol=1e-12)
        assert res.value == pytest.approx(ref, abs=1e-10)
