"""Megabatch window kernels vs the per-batch CSR kernels.

The megabatch drivers must produce the same per-bin totals as the
existing :mod:`repro.quadrature.batch` window kernels on identical
windows (they share the flatten/bounds/reduce machinery), while
additionally reporting launch statistics and eliding zero-width pairs.
"""

import numpy as np
import pytest

from repro.quadrature.batch import (
    KERNEL_COUNTERS,
    batch_gauss_windows,
    batch_simpson_windows,
    batch_romberg_windows,
)
from repro.quadrature.megabatch import (
    megabatch_gauss_windows,
    megabatch_romberg_windows,
    megabatch_simpson_windows,
)


@pytest.fixture()
def windows():
    """A small ragged window set with one zero-width (clipped) pair."""
    edges = np.linspace(0.0, 1.0, 9)
    first = np.array([0, 2, 5, 8])
    cutoff = np.array([3, 6, 8, 8])
    # Row 1's clip sits exactly on a bin's upper edge -> its first pair
    # [0.25, 0.375) clamps to [0.375, 0.375): zero width, elidable.
    clip = np.array([0.0, 0.375, 0.4, 0.9])
    return edges, first, cutoff, clip


def _f(rows: np.ndarray, x: np.ndarray) -> np.ndarray:
    return np.exp(-x) * (1.0 + rows[:, None])


class TestMatchesBatchKernels:
    @pytest.mark.parametrize(
        "mega,batch,kw",
        [
            (megabatch_simpson_windows, batch_simpson_windows, {"pieces": 8}),
            (megabatch_romberg_windows, batch_romberg_windows, {"k": 4}),
            (megabatch_gauss_windows, batch_gauss_windows, {"n": 6}),
        ],
    )
    def test_values_identical(self, windows, mega, batch, kw):
        edges, first, cutoff, clip = windows
        expected = batch(_f, edges, first, cutoff, lower_clip=clip, **kw)
        res = mega(_f, edges, first, cutoff, lower_clip=clip, **kw)
        np.testing.assert_array_equal(res.values, expected)

    def test_no_clip_matches_too(self, windows):
        edges, first, cutoff, _ = windows
        expected = batch_simpson_windows(_f, edges, first, cutoff, pieces=8)
        res = megabatch_simpson_windows(_f, edges, first, cutoff, pieces=8)
        np.testing.assert_array_equal(res.values, expected)
        assert res.n_pairs_skipped == 0


class TestLaunchStatistics:
    def test_pair_ledger(self, windows):
        edges, first, cutoff, clip = windows
        res = megabatch_simpson_windows(
            _f, edges, first, cutoff, lower_clip=clip, pieces=8
        )
        dense_pairs = int((cutoff - first).sum())
        assert res.n_pairs_skipped == 1
        assert res.n_pairs == dense_pairs - 1
        assert res.evals_saved == 9  # pieces + 1 points per elided pair
        assert res.n_passes >= 1

    def test_empty_windows(self):
        edges = np.linspace(0.0, 1.0, 5)
        first = np.array([4, 4])
        cutoff = np.array([4, 4])
        res = megabatch_simpson_windows(_f, edges, first, cutoff)
        assert res.n_passes == 0
        assert res.n_pairs == 0
        np.testing.assert_array_equal(res.values, np.zeros(4))

    def test_all_pairs_elided(self):
        edges = np.linspace(0.0, 1.0, 5)
        first = np.array([0])
        cutoff = np.array([1])
        clip = np.array([0.25])  # clamps the only pair to zero width
        res = megabatch_simpson_windows(
            _f, edges, first, cutoff, lower_clip=clip, pieces=4
        )
        assert res.n_pairs == 0
        assert res.n_pairs_skipped == 1
        np.testing.assert_array_equal(res.values, np.zeros(4))


class TestZeroWidthCounters:
    def test_batch_kernels_book_elisions(self, windows):
        edges, first, cutoff, clip = windows
        KERNEL_COUNTERS.reset()
        batch_simpson_windows(_f, edges, first, cutoff, lower_clip=clip, pieces=8)
        snap = KERNEL_COUNTERS.snapshot()
        assert snap["zero_width_pairs"] == 1
        assert snap["evals_saved"] == 9
        KERNEL_COUNTERS.reset()
        assert KERNEL_COUNTERS.snapshot() == {
            "zero_width_pairs": 0,
            "evals_saved": 0,
            "pool_creates": 0,
            "pool_reuses": 0,
            "map_chunks": 0,
            "map_items": 0,
        }

    def test_gauss_kernel_books_too(self, windows):
        edges, first, cutoff, clip = windows
        KERNEL_COUNTERS.reset()
        batch_gauss_windows(_f, edges, first, cutoff, lower_clip=clip, n=6)
        assert KERNEL_COUNTERS.zero_width_pairs == 1
        assert KERNEL_COUNTERS.evals_saved == 6
        KERNEL_COUNTERS.reset()

    def test_unclipped_books_nothing(self, windows):
        edges, first, cutoff, _ = windows
        KERNEL_COUNTERS.reset()
        batch_simpson_windows(_f, edges, first, cutoff, pieces=8)
        assert KERNEL_COUNTERS.zero_width_pairs == 0
