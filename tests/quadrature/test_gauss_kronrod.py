"""Gauss-Kronrod 10-21 pair: node/weight sanity and integration accuracy."""

import numpy as np
import pytest

from repro.quadrature.gauss_kronrod import (
    G10_WEIGHTS,
    GK21_NODES,
    GK21_WEIGHTS,
    gauss_kronrod_21,
)


class TestNodesAndWeights:
    def test_counts(self):
        assert GK21_NODES.shape == (21,)
        assert GK21_WEIGHTS.shape == (21,)
        assert G10_WEIGHTS.shape == (10,)

    def test_nodes_sorted_and_symmetric(self):
        assert np.all(np.diff(GK21_NODES) > 0)
        assert np.allclose(GK21_NODES, -GK21_NODES[::-1])

    def test_weights_positive_and_symmetric(self):
        assert np.all(GK21_WEIGHTS > 0)
        assert np.allclose(GK21_WEIGHTS, GK21_WEIGHTS[::-1])
        assert np.allclose(G10_WEIGHTS, G10_WEIGHTS[::-1])

    def test_kronrod_weights_sum_to_two(self):
        assert GK21_WEIGHTS.sum() == pytest.approx(2.0, abs=1e-14)

    def test_gauss_weights_sum_to_two(self):
        assert G10_WEIGHTS.sum() == pytest.approx(2.0, abs=1e-14)

    def test_gauss_nodes_interleave(self):
        """The odd-indexed Kronrod nodes are the 10 Gauss nodes."""
        gauss_nodes = GK21_NODES[1::2]
        assert gauss_nodes.shape == (10,)
        # Legendre P10 roots satisfy P10(x) = 0; check via numpy.
        p10 = np.polynomial.legendre.Legendre.basis(10)
        assert np.allclose(p10(gauss_nodes), 0.0, atol=1e-13)

    def test_tables_read_only(self):
        with pytest.raises(ValueError):
            GK21_NODES[0] = 0.0


class TestGaussKronrod21:
    def test_exact_on_high_degree_polynomial(self):
        """The 21-point Kronrod rule integrates degree-31 exactly."""
        f = lambda x: x**30
        val, _err, _ = gauss_kronrod_21(f, -1.0, 1.0)
        assert val == pytest.approx(2.0 / 31.0, rel=1e-12)

    def test_smooth_integral(self):
        val, err, resabs = gauss_kronrod_21(np.exp, 0.0, 1.0)
        assert val == pytest.approx(np.e - 1.0, rel=1e-14)
        assert err >= 0.0
        assert resabs == pytest.approx(val, rel=1e-12)  # positive integrand

    def test_error_estimate_covers_true_error(self):
        f = lambda x: np.sqrt(np.abs(x))  # kink at 0
        val, err, _ = gauss_kronrod_21(f, -1.0, 1.0)
        assert abs(val - 4.0 / 3.0) <= err

    def test_general_interval_scaling(self):
        val, _e, _ = gauss_kronrod_21(lambda x: x**2, 1.0, 4.0)
        assert val == pytest.approx(21.0, rel=1e-13)

    def test_resabs_for_signed_integrand(self):
        val, _e, resabs = gauss_kronrod_21(np.sin, -1.0, 1.0)
        assert abs(val) < 1e-14  # odd function
        assert resabs > 0.9  # integral of |sin| on [-1,1] ~ 0.92

    def test_bad_integrand_shape(self):
        with pytest.raises(ValueError):
            gauss_kronrod_21(lambda x: np.zeros(5), 0.0, 1.0)
