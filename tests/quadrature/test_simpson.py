"""Composite Simpson rule: exactness, convergence, validation."""

import numpy as np
import pytest

from repro.quadrature.result import IntegrationResult
from repro.quadrature.simpson import DEFAULT_PIECES, simpson, simpson_panels


class TestSimpsonExactness:
    """Simpson is exact on polynomials of degree <= 3."""

    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    def test_exact_on_cubics(self, degree):
        coeffs = np.arange(1.0, degree + 2.0)

        def f(x):
            return sum(c * x**p for p, c in enumerate(coeffs))

        a, b = -1.3, 2.7
        exact = sum(
            c * (b ** (p + 1) - a ** (p + 1)) / (p + 1)
            for p, c in enumerate(coeffs)
        )
        res = simpson(f, a, b, pieces=2)
        assert res.value == pytest.approx(exact, rel=1e-13)

    def test_not_exact_on_quartic(self):
        res = simpson(lambda x: x**4, 0.0, 1.0, pieces=2)
        assert res.value != pytest.approx(0.2, rel=1e-12)
        assert res.value == pytest.approx(0.2, rel=5e-2)

    def test_constant_function(self):
        res = simpson(lambda x: np.full_like(x, 3.5), 0.0, 2.0, pieces=4)
        assert res.value == pytest.approx(7.0)


class TestSimpsonConvergence:
    def test_fourth_order_convergence(self):
        """Halving h must reduce the error by ~16x on smooth integrands."""
        f = np.exp
        exact = np.e - 1.0
        err_coarse = abs(simpson(f, 0.0, 1.0, pieces=8).value - exact)
        err_fine = abs(simpson(f, 0.0, 1.0, pieces=16).value - exact)
        assert err_coarse / err_fine == pytest.approx(16.0, rel=0.1)

    def test_default_64_pieces_accuracy(self):
        """The paper's 64-piece default is 'enough accuracy' on RRC-like shapes."""
        f = lambda x: np.exp(-x) * x
        exact = 1.0 - 2.0 * np.exp(-1.0)
        res = simpson(f, 0.0, 1.0)
        assert res.neval == DEFAULT_PIECES + 1
        assert res.value == pytest.approx(exact, rel=1e-8)

    def test_error_estimate_bounds_true_error(self):
        f = np.sin
        exact = 1.0 - np.cos(2.0)
        res = simpson(f, 0.0, 2.0, pieces=32)
        assert abs(res.value - exact) <= 10.0 * res.abserr + 1e-15


class TestSimpsonEdgeCases:
    def test_zero_width_interval(self):
        res = simpson(np.exp, 1.0, 1.0)
        assert res.value == 0.0
        assert res.neval == 0

    def test_reversed_interval_flips_sign(self):
        fwd = simpson(np.exp, 0.0, 1.0).value
        rev = simpson(np.exp, 1.0, 0.0).value
        assert rev == pytest.approx(-fwd)

    @pytest.mark.parametrize("pieces", [0, -2, 3, 7])
    def test_invalid_pieces_rejected(self, pieces):
        with pytest.raises(ValueError):
            simpson(np.exp, 0.0, 1.0, pieces=pieces)

    def test_non_integer_pieces_rejected(self):
        with pytest.raises(TypeError):
            simpson(np.exp, 0.0, 1.0, pieces=2.0)

    def test_bad_integrand_shape_rejected(self):
        with pytest.raises(ValueError):
            simpson(lambda x: np.zeros(3), 0.0, 1.0, pieces=8)

    def test_returns_integration_result(self):
        res = simpson(np.exp, 0.0, 1.0)
        assert isinstance(res, IntegrationResult)
        assert res.converged


class TestSimpsonPanels:
    def test_matches_simpson_on_grid(self):
        x = np.linspace(0.0, 2.0, 65)
        y = np.exp(x)
        direct = simpson_panels(y, float(x[1] - x[0]))
        via_f = simpson(np.exp, 0.0, 2.0, pieces=64).value
        assert direct == pytest.approx(via_f, rel=1e-14)

    @pytest.mark.parametrize("n", [0, 1, 2, 4])
    def test_even_or_tiny_sample_counts_rejected(self, n):
        with pytest.raises(ValueError):
            simpson_panels(np.zeros(n), 0.1)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            simpson_panels(np.zeros((3, 3)), 0.1)
