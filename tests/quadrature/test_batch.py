"""Batch (vectorized) integrators must agree with their scalar forms."""

import numpy as np
import pytest

from repro.quadrature.batch import (
    batch_gauss_windows,
    batch_romberg,
    batch_romberg_windows,
    batch_simpson,
    batch_simpson_edges,
    batch_simpson_windows,
    batch_trapezoid,
    simpson_weights,
    unit_fractions,
)
from repro.quadrature.romberg import romberg
from repro.quadrature.simpson import simpson


def f_smooth(x):
    return np.exp(-x) * np.sin(3.0 * x) + 0.5


class TestSimpsonWeights:
    def test_pattern(self):
        w = simpson_weights(6) * 3.0
        assert np.allclose(w, [1, 4, 2, 4, 2, 4, 1])

    def test_sum_equals_pieces(self):
        # integral of 1 over [0, n] with h=1 must equal n.
        for pieces in (2, 8, 64):
            assert simpson_weights(pieces).sum() == pytest.approx(pieces)

    def test_odd_pieces_rejected(self):
        with pytest.raises(ValueError):
            simpson_weights(5)


class TestBatchSimpson:
    def test_matches_scalar_per_bin(self):
        lo = np.array([0.0, 0.5, 1.0, 2.0])
        hi = np.array([0.5, 1.0, 2.0, 2.25])
        batch = batch_simpson(f_smooth, lo, hi, pieces=64)
        for i in range(len(lo)):
            scalar = simpson(f_smooth, float(lo[i]), float(hi[i]), pieces=64)
            assert batch[i] == pytest.approx(scalar.value, rel=1e-13)

    def test_zero_width_bins_give_zero(self):
        lo = np.array([1.0, 2.0])
        hi = np.array([1.0, 3.0])
        out = batch_simpson(f_smooth, lo, hi)
        assert out[0] == 0.0
        assert out[1] != 0.0

    def test_single_bin(self):
        out = batch_simpson(f_smooth, np.array([0.0]), np.array([1.0]))
        assert out.shape == (1,)

    def test_large_batch_chunking(self, monkeypatch):
        """Chunked evaluation must be invisible in the results."""
        import repro.quadrature.batch as batch_mod

        lo = np.linspace(0.0, 10.0, 501)[:-1]
        hi = np.linspace(0.0, 10.0, 501)[1:]
        full = batch_simpson(f_smooth, lo, hi, pieces=16)
        monkeypatch.setattr(batch_mod, "MAX_GRID_ELEMENTS", 100)
        chunked = batch_simpson(f_smooth, lo, hi, pieces=16)
        # BLAS may reorder the reduction per chunk shape: ulp-level only.
        assert np.allclose(full, chunked, rtol=1e-14, atol=0.0)

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            batch_simpson(f_smooth, np.zeros(3), np.ones(4))

    def test_bad_integrand_shape_rejected(self):
        with pytest.raises(ValueError):
            batch_simpson(lambda x: np.zeros(7), np.zeros(2), np.ones(2))


class TestBatchSimpsonEdges:
    def test_equivalent_to_lo_hi_form(self):
        edges = np.linspace(0.5, 3.0, 11)
        a = batch_simpson_edges(f_smooth, edges, pieces=32)
        b = batch_simpson(f_smooth, edges[:-1], edges[1:], pieces=32)
        assert np.array_equal(a, b)

    def test_total_equals_whole_interval(self):
        edges = np.linspace(0.0, 2.0, 9)
        total = batch_simpson_edges(f_smooth, edges, pieces=64).sum()
        whole = simpson(f_smooth, 0.0, 2.0, pieces=512).value
        assert total == pytest.approx(whole, rel=1e-8)

    def test_descending_edges_rejected(self):
        with pytest.raises(ValueError):
            batch_simpson_edges(f_smooth, np.array([1.0, 0.5, 2.0]))

    def test_short_edges_rejected(self):
        with pytest.raises(ValueError):
            batch_simpson_edges(f_smooth, np.array([1.0]))


class TestBatchRomberg:
    @pytest.mark.parametrize("k", [3, 7])
    def test_matches_scalar_romberg(self, k):
        lo = np.array([0.0, 1.0])
        hi = np.array([1.0, 2.5])
        batch = batch_romberg(f_smooth, lo, hi, k=k)
        for i in range(2):
            scalar = romberg(f_smooth, float(lo[i]), float(hi[i]), k=k)
            assert batch[i] == pytest.approx(scalar.value, rel=1e-12)

    def test_zero_width_bins(self):
        out = batch_romberg(f_smooth, np.array([1.0]), np.array([1.0]), k=4)
        assert out[0] == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            batch_romberg(f_smooth, np.zeros(1), np.ones(1), k=-1)

    def test_accuracy_improves_with_k(self):
        lo, hi = np.array([0.0]), np.array([np.pi])
        e_small = abs(batch_romberg(np.sin, lo, hi, k=3)[0] - 2.0)
        e_large = abs(batch_romberg(np.sin, lo, hi, k=7)[0] - 2.0)
        assert e_large < e_small


class TestBatchTrapezoid:
    def test_linear_exact(self):
        out = batch_trapezoid(lambda x: 2.0 * x + 1.0, np.array([0.0]), np.array([3.0]), panels=1)
        assert out[0] == pytest.approx(12.0)

    def test_second_order_convergence(self):
        lo, hi = np.array([0.0]), np.array([1.0])
        exact = np.e - 1.0
        e1 = abs(batch_trapezoid(np.exp, lo, hi, panels=16)[0] - exact)
        e2 = abs(batch_trapezoid(np.exp, lo, hi, panels=32)[0] - exact)
        assert e1 / e2 == pytest.approx(4.0, rel=0.05)

    def test_invalid_panels(self):
        with pytest.raises(ValueError):
            batch_trapezoid(np.exp, np.zeros(1), np.ones(1), panels=0)


class TestCachedNodes:
    def test_simpson_weights_cached_and_readonly(self):
        a = simpson_weights(64)
        b = simpson_weights(64)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = 99.0

    def test_unit_fractions_cached_and_readonly(self):
        a = unit_fractions(65)
        assert a is unit_fractions(65)
        assert a[0] == 0.0 and a[-1] == 1.0
        with pytest.raises(ValueError):
            a[0] = 99.0
        with pytest.raises(ValueError):
            unit_fractions(1)


def f_rows(rows, x):
    """Ragged-batch form of f_smooth, scaled per row."""
    return (1.0 + rows[:, None]) * f_smooth(x)


class TestWindowKernels:
    edges = np.linspace(0.0, 2.0, 9)  # 8 bins

    def _dense_reference(self, first, cutoff, pieces=32):
        """Row-by-row dense evaluation, zeroed outside each window."""
        out = np.zeros(self.edges.size - 1)
        for r, (a, b) in enumerate(zip(first, cutoff)):
            per_bin = batch_simpson_edges(
                lambda x, r=r: (1.0 + r) * f_smooth(x), self.edges, pieces=pieces
            )
            out[a:b] += per_bin[a:b]
        return out

    def test_full_windows_match_dense(self):
        first = np.array([0, 0, 0])
        cutoff = np.array([8, 8, 8])
        got = batch_simpson_windows(f_rows, self.edges, first, cutoff, pieces=32)
        assert np.allclose(got, self._dense_reference(first, cutoff), rtol=1e-12)

    def test_partial_windows_match_dense(self):
        first = np.array([0, 3, 5, 8])
        cutoff = np.array([2, 7, 5, 8])  # includes an empty window
        got = batch_simpson_windows(f_rows, self.edges, first, cutoff, pieces=32)
        assert np.allclose(got, self._dense_reference(first, cutoff), rtol=1e-12)

    def test_lower_clip_truncates_first_bin(self):
        # One row, one bin [0.5, 0.75], clipped to start at 0.6.
        edges = np.array([0.5, 0.75])
        got = batch_simpson_windows(
            f_rows,
            edges,
            np.array([0]),
            np.array([1]),
            lower_clip=np.array([0.6]),
            pieces=32,
        )
        want = batch_simpson(f_smooth, np.array([0.6]), np.array([0.75]), pieces=32)
        assert got[0] == pytest.approx(want[0], rel=1e-12)

    def test_clip_above_bin_gives_zero(self):
        edges = np.array([0.0, 1.0])
        got = batch_simpson_windows(
            f_rows,
            edges,
            np.array([0]),
            np.array([1]),
            lower_clip=np.array([5.0]),
        )
        assert got[0] == 0.0

    def test_romberg_and_gauss_variants_agree(self):
        first = np.array([1, 2])
        cutoff = np.array([6, 8])
        simp = batch_simpson_windows(f_rows, self.edges, first, cutoff, pieces=64)
        romb = batch_romberg_windows(f_rows, self.edges, first, cutoff, k=7)
        gauss = batch_gauss_windows(f_rows, self.edges, first, cutoff, n=12)
        assert np.allclose(romb, simp, rtol=1e-9)
        assert np.allclose(gauss, simp, rtol=1e-9)

    def test_scatter_add_overlapping_windows(self):
        # Two rows covering the same bin must accumulate, not overwrite.
        first = np.array([2, 2])
        cutoff = np.array([3, 3])
        got = batch_simpson_windows(f_rows, self.edges, first, cutoff, pieces=32)
        one = self._dense_reference(np.array([2]), np.array([3]))
        two = self._dense_reference(np.array([2, 2]), np.array([3, 3]))
        assert got[2] == pytest.approx(two[2], rel=1e-12)
        assert two[2] > one[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_simpson_windows(
                f_rows, self.edges, np.array([0, 1]), np.array([2])
            )
        with pytest.raises(ValueError):
            batch_simpson_windows(f_rows, np.array([1.0]), np.array([0]), np.array([1]))
        with pytest.raises(ValueError):
            batch_simpson_windows(
                lambda rows, x: x[..., :3],
                self.edges,
                np.array([0]),
                np.array([2]),
            )
        with pytest.raises(ValueError):
            batch_romberg_windows(
                f_rows, self.edges, np.array([0]), np.array([1]), k=-1
            )
