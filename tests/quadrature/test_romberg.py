"""Romberg integration and the Eq. (3) tableau."""

import numpy as np
import pytest

from repro.quadrature.romberg import romberg, romberg_table, trapezoid_ladder


class TestTrapezoidLadder:
    def test_ladder_length_and_eval_count(self):
        calls = {"n": 0}

        def f(x):
            calls["n"] += len(np.atleast_1d(x))
            return np.exp(x)

        ladder = trapezoid_ladder(f, 0.0, 1.0, k=5)
        assert ladder.shape == (6,)
        assert calls["n"] == 2**5 + 1  # full reuse of previous samples

    def test_each_level_halves_error(self):
        exact = np.e - 1.0
        ladder = trapezoid_ladder(np.exp, 0.0, 1.0, k=8)
        errors = np.abs(ladder - exact)
        ratios = errors[:-1] / errors[1:]
        # Trapezoid is second order: refinement ratio -> 4.
        assert np.all(ratios[2:] > 3.5)

    def test_level_zero_is_plain_trapezoid(self):
        ladder = trapezoid_ladder(np.exp, 0.0, 2.0, k=0)
        assert ladder[0] == pytest.approx((np.exp(0) + np.exp(2)))

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            trapezoid_ladder(np.exp, 0.0, 1.0, k=-1)

    def test_scalar_integrand_rejected(self):
        with pytest.raises(ValueError):
            trapezoid_ladder(lambda x: 1.0, 0.0, 1.0, k=2)


class TestRombergTable:
    def test_recurrence_identity(self):
        """Every entry must satisfy Eq. (3) exactly."""
        table = romberg_table(np.exp, 0.0, 1.0, k=6)
        for m in range(1, 7):
            for i in range(m, 7):
                factor = 4.0**m
                expected = (
                    factor * table[i, m - 1] - table[i - 1, m - 1]
                ) / (factor - 1.0)
                assert table[i, m] == pytest.approx(expected, rel=1e-14)

    def test_upper_triangle_untouched(self):
        table = romberg_table(np.exp, 0.0, 1.0, k=4)
        for i in range(5):
            for m in range(i + 1, 5):
                assert table[i, m] == 0.0

    def test_diagonal_converges_fastest(self):
        exact = np.e - 1.0
        table = romberg_table(np.exp, 0.0, 1.0, k=6)
        assert abs(table[6, 6] - exact) < abs(table[6, 0] - exact) * 1e-6


class TestRomberg:
    @pytest.mark.parametrize("k", [4, 7, 9])
    def test_high_accuracy_on_smooth(self, k):
        exact = np.e - 1.0
        res = romberg(np.exp, 0.0, 1.0, k=k)
        assert res.value == pytest.approx(exact, rel=1e-10)
        assert res.neval == 2**k + 1

    def test_cost_doubles_per_k(self):
        """The paper: single-task work grows by 2x per k step."""
        n7 = romberg(np.exp, 0.0, 1.0, k=7).neval
        n9 = romberg(np.exp, 0.0, 1.0, k=9).neval
        assert (n9 - 1) == 4 * (n7 - 1)

    def test_exact_on_polynomials(self):
        res = romberg(lambda x: x**5 - 2 * x, -1.0, 2.0, k=4)
        exact = (2.0**6 - 1.0) / 6.0 - (4.0 - 1.0)
        assert res.value == pytest.approx(exact, rel=1e-12)

    def test_zero_width(self):
        res = romberg(np.exp, 1.0, 1.0, k=5)
        assert res.value == 0.0

    def test_error_estimate_reasonable(self):
        res = romberg(np.sin, 0.0, np.pi, k=6)
        assert abs(res.value - 2.0) <= max(10.0 * res.abserr, 1e-12)

    def test_higher_k_more_accurate(self):
        """Higher accuracy 'without adding extra computational complexity'
        per evaluation — the cost is in the 2^k evals."""
        f = lambda x: 1.0 / (1.0 + x**2)
        exact = np.arctan(3.0)
        e5 = abs(romberg(f, 0.0, 3.0, k=5).value - exact)
        e8 = abs(romberg(f, 0.0, 3.0, k=8).value - exact)
        assert e8 < e5
