"""Log-log interpolation kernels: exactness, zeros, and the error metric."""

import numpy as np
import pytest

from repro.approx.interp import INTERP_METHODS, interpolate_loglog, peak_rel_error


def _power_law_nodes(n_nodes: int = 9, n_bins: int = 6):
    """Node spectra exactly log-linear in u: flux_b(u) = C_b * exp(a_b u)."""
    u = np.linspace(0.0, 2.0, n_nodes)
    a = np.linspace(-1.5, 2.0, n_bins)
    c = np.linspace(0.5, 3.0, n_bins)
    values = c[None, :] * np.exp(u[:, None] * a[None, :])
    return u, values, a, c


class TestPeakRelError:
    def test_identical_is_zero(self):
        x = np.array([1.0, 2.0, 0.5])
        assert peak_rel_error(x, x) == 0.0

    def test_normalizes_by_exact_peak(self):
        exact = np.array([0.0, 10.0, 0.0])
        approx = np.array([1.0, 10.0, 0.0])
        assert peak_rel_error(approx, exact) == pytest.approx(0.1)

    def test_all_zero_exact_does_not_divide_by_zero(self):
        err = peak_rel_error(np.zeros(3), np.zeros(3))
        assert err == 0.0


class TestValidation:
    def test_unknown_method(self):
        u, values, _, _ = _power_law_nodes()
        with pytest.raises(ValueError, match="unknown method"):
            interpolate_loglog(u, values, 1.0, method="spline")

    def test_out_of_domain(self):
        u, values, _, _ = _power_law_nodes()
        with pytest.raises(ValueError, match="outside the lattice domain"):
            interpolate_loglog(u, values, 2.5)

    def test_single_node_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            interpolate_loglog(np.array([1.0]), np.ones((1, 4)), 1.0)


class TestInterpolation:
    @pytest.mark.parametrize("method", INTERP_METHODS)
    def test_node_passthrough_is_bitexact(self, method):
        u, values, _, _ = _power_law_nodes()
        for j in (0, 3, len(u) - 1):
            out = interpolate_loglog(u, values, float(u[j]), method=method)
            np.testing.assert_array_equal(out, values[j])

    @pytest.mark.parametrize("method", INTERP_METHODS)
    def test_power_law_is_reproduced(self, method):
        # A pure power law is linear in (u, ln flux) — both stencils
        # reproduce it to rounding at any off-node u.
        u, values, a, c = _power_law_nodes()
        for uu in (0.11, 0.97, 1.83):
            out = interpolate_loglog(u, values, uu, method=method)
            np.testing.assert_allclose(out, c * np.exp(uu * a), rtol=1e-12)

    def test_exact_zeros_stay_exact(self):
        u, values, _, _ = _power_law_nodes()
        values = values.copy()
        values[:, 2] = 0.0  # one bin is identically zero at every node
        for method in INTERP_METHODS:
            out = interpolate_loglog(u, values, 0.77, method=method)
            assert out[2] == 0.0

    def test_mixed_zero_stencil_falls_back_to_linear_flux(self):
        # A bin with one zero node cannot use the log transform; the
        # linear-flux fallback must stay finite and sign-sane.
        u = np.array([0.0, 1.0, 2.0, 3.0])
        values = np.ones((4, 3))
        values[1, 0] = 0.0
        for method in INTERP_METHODS:
            out = interpolate_loglog(u, values, 0.5, method=method)
            assert np.all(np.isfinite(out))
            assert out[0] == pytest.approx(0.5, abs=0.26)

    def test_cubic_beats_linear_on_smooth_curvature(self):
        # ln flux quadratic in u: linear leaves O(h^2) error, the
        # Hermite stencil tracks the curvature.
        u = np.linspace(0.0, 2.0, 9)
        values = np.exp(-((u - 1.0) ** 2))[:, None] * np.ones((1, 4))
        exact = float(np.exp(-((0.625 - 1.0) ** 2)))
        lin = interpolate_loglog(u, values, 0.625, method="linear")
        cub = interpolate_loglog(u, values, 0.625, method="cubic")
        assert abs(cub[0] - exact) < abs(lin[0] - exact)
